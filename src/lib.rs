//! # PUSHtap — PIM-based In-Memory HTAP with a Unified Data Storage Format
//!
//! A from-scratch Rust reproduction of the ASPLOS'25 paper *PUSHtap:
//! PIM-based In-Memory HTAP with Unified Data Storage Format* (Zhao et
//! al.): a hybrid transactional/analytical database that stores every
//! table once, in a format that is simultaneously row-friendly for the
//! CPU (interleaved access across devices) and column-friendly for
//! in-memory PIM units (local access inside devices).
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`pim`] | `pushtap-pim` | DRAM + PIM timing simulator (Table 1 systems) |
//! | [`mod@format`] | `pushtap-format` | unified data format (§4) |
//! | [`mvcc`] | `pushtap-mvcc` | version chains, bitmap snapshots, undo log, defrag (§5) |
//! | [`oltp`] | `pushtap-oltp` | DBx1000-style TPC-C executor with atomic retry |
//! | [`olap`] | `pushtap-olap` | two-phase PIM analytics, Q1/Q6/Q9 (§6) |
//! | [`chbench`] | `pushtap-chbench` | CH-benCHmark + HTAPBench workloads |
//! | [`core`] | `pushtap-core` | the assembled system + all baselines (§7) |
//! | [`shard`] | `pushtap-shard` | warehouse-partitioned scale-out service (routing + scatter-gather) |
//! | [`trace`] | `pushtap-trace` | lifecycle spans, latency histograms, Chrome-trace export |
//!
//! # Quickstart
//!
//! ```
//! use pushtap::core::{Pushtap, PushtapConfig};
//! use pushtap::olap::Query;
//!
//! // Build a small DIMM-based instance and run a mixed workload.
//! let mut system = Pushtap::new(PushtapConfig::small())?;
//! let mut txns = system.txn_gen(7);
//! system.run_txns(&mut txns, 100);
//! let report = system.run_query(Query::Q6);
//! println!("Q6 took {} (consistency {})", report.total(), report.consistency);
//! # Ok::<(), pushtap::format::LayoutError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pushtap_chbench as chbench;
pub use pushtap_core as core;
pub use pushtap_format as format;
pub use pushtap_mvcc as mvcc;
pub use pushtap_olap as olap;
pub use pushtap_oltp as oltp;
pub use pushtap_pim as pim;
pub use pushtap_shard as shard;
pub use pushtap_trace as trace;
