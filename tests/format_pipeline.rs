//! Integration tests of the format pipeline across crates: CH schemas →
//! key classification → layout generation → placement → storage, for
//! every table, both memory geometries, and the full threshold range.

use pushtap::chbench::{key_columns_upto, schema_with_keys, Table, ALL_TABLES};
use pushtap::format::{
    compact_layout, cpu_effective, naive_layout, pim_effective, RowSlot, TableStore,
};
use pushtap::pim::Geometry;

/// Every CH table gets a valid compact layout at every threshold on both
/// geometries (validation inside `TableLayout::new` checks byte-exact
/// coverage and key locality).
#[test]
fn all_tables_layout_cleanly() {
    let keys = key_columns_upto(22);
    for geometry in [Geometry::dimm(), Geometry::hbm()] {
        for table in ALL_TABLES {
            let key_names: Vec<&str> = keys.get(&table).cloned().unwrap_or_default();
            let schema = schema_with_keys(table, &key_names);
            for th in [0.0, 0.3, 0.6, 1.0] {
                let layout = compact_layout(&schema, geometry.devices_per_rank, th)
                    .unwrap_or_else(|e| panic!("{} th={th}: {e}", table.name()));
                assert!(cpu_effective(&layout, geometry.granularity) > 0.0);
                assert!(pim_effective(&layout, |_| 1.0) > 0.0);
            }
            // The naïve strawman also validates.
            naive_layout(&schema.with_all_keys(), geometry.devices_per_rank)
                .unwrap_or_else(|e| panic!("naive {}: {e}", table.name()));
        }
    }
}

/// Generated rows round-trip through the store for every table.
#[test]
fn generated_rows_round_trip_all_tables() {
    let keys = key_columns_upto(22);
    for table in ALL_TABLES {
        let key_names: Vec<&str> = keys.get(&table).cloned().unwrap_or_default();
        let schema = schema_with_keys(table, &key_names);
        let layout = compact_layout(&schema, 8, 0.6).expect("layout");
        let mut store = TableStore::new(layout, 16, 100, 32);
        let gen = pushtap::chbench::RowGen::new(table, 100);
        for row in [0u64, 1, 15, 16, 17, 99] {
            let values = gen.row(row);
            store.write_row(RowSlot::Data { row }, &values);
            assert_eq!(
                store.read_row(RowSlot::Data { row }),
                values,
                "{} row {row}",
                table.name()
            );
        }
    }
}

/// The key columns the queries scan really are device-local in the built
/// database (the property the PIM scan path depends on).
#[test]
fn scanned_columns_are_device_local() {
    let keys = key_columns_upto(22);
    for (table, cols) in &keys {
        let schema = schema_with_keys(*table, cols);
        let layout = compact_layout(&schema, 8, 0.6).expect("layout");
        for col in cols {
            if let Some(i) = schema.index_of(col) {
                if schema.column(i).is_key() {
                    assert!(
                        layout.key_location(i).is_some(),
                        "{}.{col} should be device-local",
                        table.name()
                    );
                    let eff = layout.pim_scan_effectiveness(i).expect("effectiveness");
                    assert!(eff >= 0.6 - 1e-9, "{}.{col} eff {eff}", table.name());
                }
            }
        }
    }
}

/// Thresholds interact with key-subset size as Fig. 8 expects: for the
/// Q1-only key set, both objectives can be satisfied simultaneously.
/// (ORDERLINE rows are 56 B, so a multi-part layout fetches ≥ 2 cache
/// lines per row: CPU effectiveness tops out near 0.44 — the bound below
/// is the two-line optimum, not an arbitrary constant.)
#[test]
fn q1_key_set_satisfies_both_bandwidth_goals() {
    let keys = key_columns_upto(1);
    let schema = schema_with_keys(Table::OrderLine, &keys[&Table::OrderLine]);
    let ok = (0..=10).any(|i| {
        let th = i as f64 / 10.0;
        let layout = compact_layout(&schema, 8, th).expect("layout");
        pim_effective(&layout, |_| 1.0) >= 0.85 && cpu_effective(&layout, 8) >= 0.40
    });
    assert!(ok, "no threshold satisfies both goals for the Q1 key set");
}
