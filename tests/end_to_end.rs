//! Cross-crate integration tests: the whole system driven through the
//! public facade, checking the paper's three HTAP design goals
//! (workload-specific optimization, performance isolation, data
//! freshness) *and* value correctness end to end.

use pushtap::chbench::Table;
use pushtap::core::{MultiInstance, Pushtap, PushtapConfig};
use pushtap::olap::{ref_q1, ref_q6, ref_q9, Query, QueryResult};
use pushtap::oltp::{DbConfig, DbFormat};
use pushtap::pim::{ControlArch, Ps, SystemConfig};

fn small_system() -> Pushtap {
    Pushtap::new(PushtapConfig::small()).expect("build")
}

/// Goal 3 (data freshness): a query issued after a transaction burst and
/// snapshot reflects every committed change, byte-for-byte equal to the
/// reference executor at the same timestamp.
#[test]
fn freshness_with_value_correctness() {
    let mut sys = small_system();
    let mut gen = sys.txn_gen(2024);
    sys.run_txns(&mut gen, 150);
    for q in Query::ALL {
        let report = sys.run_query(q);
        let ts = sys.db().last_ts();
        let expect = match q {
            Query::Q1 => ref_q1(sys.db(), ts),
            Query::Q6 => ref_q6(sys.db(), ts),
            Query::Q9 => ref_q9(sys.db(), ts),
        };
        assert_eq!(
            report.result,
            expect,
            "{} diverged from reference",
            q.name()
        );
    }
}

/// Correctness survives the full lifecycle: transactions → snapshot →
/// defragmentation → more transactions → snapshot, repeatedly.
#[test]
fn lifecycle_with_defragmentation() {
    let mut sys = small_system();
    let mut gen = sys.txn_gen(7);
    let mut last_revenue = None;
    for round in 0..4 {
        sys.run_txns(&mut gen, 80);
        if round % 2 == 1 {
            let (stats, _) = sys.defragment_all();
            assert!(stats.slots_reclaimed > 0, "round {round} reclaimed nothing");
        }
        let report = sys.run_query(Query::Q6);
        let ts = sys.db().last_ts();
        assert_eq!(report.result, ref_q6(sys.db(), ts));
        let QueryResult::Q6 { revenue } = report.result else {
            panic!("wrong kind")
        };
        if let Some(prev) = last_revenue {
            // NewOrder keeps inserting order lines: revenue keeps moving.
            assert_ne!(revenue, prev, "round {round} saw stale data");
        }
        last_revenue = Some(revenue);
    }
}

/// Goal 1 (workload-specific optimization): the unified format's OLTP cost
/// is close to the row-store ideal while its OLAP runs on the PIM side at
/// high effective bandwidth.
#[test]
fn workload_specific_optimization() {
    let mut unified = small_system();
    let mut rs_cfg = PushtapConfig::small();
    rs_cfg.db = rs_cfg.db.with_format(DbFormat::RowStore);
    let mut rs = Pushtap::new(rs_cfg).expect("build");

    let mut gen_u = unified.txn_gen(5);
    let mut gen_r = rs.txn_gen(5);
    let u = unified.run_txns(&mut gen_u, 250);
    let r = rs.run_txns(&mut gen_r, 250);
    let overhead = u.txn_time.ps() as f64 / r.txn_time.ps() as f64 - 1.0;
    assert!(overhead < 0.20, "unified OLTP overhead vs RS: {overhead}");

    unified.mem();
    let _ = unified.run_query(Query::Q6);
    assert!(
        unified.mem().stats().pim_effective() > 0.8,
        "PIM effective bandwidth {}",
        unified.mem().stats().pim_effective()
    );
}

/// Goal 2 (performance isolation): a CPU transaction issued while a scan
/// is in flight is delayed only by the current load phase, not the whole
/// offload; the single-instance design needs no rebuild.
#[test]
fn performance_isolation_vs_multi_instance() {
    // PUSHtap: consistency is snapshot + defrag, cheap and bounded.
    let mut push = small_system();
    let mut gen = push.txn_gen(11);
    push.run_txns(&mut gen, 400);
    let push_report = push.run_query(Query::Q6);

    // MI: the same stream forces a rebuild proportional to staleness.
    let mut mi = MultiInstance::new(
        DbConfig::small().with_format(DbFormat::RowStore),
        SystemConfig::dimm(),
        1.0,
    )
    .expect("build");
    let mut gen = pushtap::chbench::TxnGen::new(
        11,
        mi.row_db.table(Table::Warehouse).n_rows(),
        mi.row_db.table(Table::Customer).n_rows(),
        mi.row_db.table(Table::Item).n_rows(),
        mi.row_db.table(Table::Stock).n_rows(),
    );
    for txn in gen.batch(400) {
        mi.execute_txn(&txn);
    }
    let (_, rebuild) = mi.run_query(Query::Q6);
    assert!(
        rebuild > push_report.consistency / 4,
        "MI rebuild {rebuild} vs PUSHtap consistency {}",
        push_report.consistency
    );
}

/// The HBM configuration runs the whole stack too (§7.3's comparison).
#[test]
fn hbm_system_end_to_end() {
    let mut cfg = PushtapConfig::small();
    cfg.system = SystemConfig::hbm();
    let mut sys = Pushtap::new(cfg).expect("build");
    let mut gen = sys.txn_gen(3);
    sys.run_txns(&mut gen, 60);
    let report = sys.run_query(Query::Q1);
    let ts = sys.db().last_ts();
    assert_eq!(report.result, ref_q1(sys.db(), ts));
}

/// The original-PIM control architecture is functionally identical (only
/// slower) — Fig. 12(b)'s two systems answer the same queries.
#[test]
fn original_architecture_same_answers() {
    let mut push_cfg = PushtapConfig::small();
    push_cfg.arch = ControlArch::Pushtap;
    let mut orig_cfg = PushtapConfig::small();
    orig_cfg.arch = ControlArch::Original;

    let mut a = Pushtap::new(push_cfg).expect("build");
    let mut b = Pushtap::new(orig_cfg).expect("build");
    let mut gen_a = a.txn_gen(21);
    let mut gen_b = b.txn_gen(21);
    a.run_txns(&mut gen_a, 100);
    b.run_txns(&mut gen_b, 100);
    let ra = a.run_query(Query::Q6);
    let rb = b.run_query(Query::Q6);
    assert_eq!(ra.result, rb.result);
    // But the original pays far more control overhead.
    assert!(rb.timing.control > ra.timing.control * 5);
}

/// Deterministic replay: identical seeds produce identical results and
/// identical simulated times (the simulator is fully deterministic).
#[test]
fn deterministic_replay() {
    let run = || {
        let mut sys = small_system();
        let mut gen = sys.txn_gen(123);
        sys.run_txns(&mut gen, 120);
        let r = sys.run_query(Query::Q9);
        (r.result, r.timing.end, sys.now())
    };
    let (res1, t1, now1) = run();
    let (res2, t2, now2) = run();
    assert_eq!(res1, res2);
    assert_eq!(t1, t2);
    assert_eq!(now1, now2);
}

/// Simulated time only moves forward, across every kind of operation.
#[test]
fn monotonic_simulated_time() {
    let mut sys = small_system();
    let mut gen = sys.txn_gen(1);
    let mut last = Ps::ZERO;
    for _ in 0..5 {
        sys.run_txns(&mut gen, 30);
        assert!(sys.now() >= last);
        last = sys.now();
        sys.run_query(Query::Q6);
        assert!(sys.now() >= last);
        last = sys.now();
        sys.defragment_all();
        assert!(sys.now() >= last);
        last = sys.now();
    }
}
