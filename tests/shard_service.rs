//! Facade-level integration of the shard layer: the service is reachable
//! through `pushtap::shard`, and its headline property — scatter-gather
//! answers equal the single-instance engine's — holds end to end.

use pushtap::core::Pushtap;
use pushtap::olap::Query;
use pushtap::shard::{ShardConfig, ShardedHtap};

/// Two shards vs one single-instance engine, same global stream: every
/// query's merged scatter-gather result equals the single instance's
/// PIM-path result (which the olap tests pin to the naive reference).
#[test]
fn facade_scatter_gather_matches_single_instance() {
    let cfg = ShardConfig::small(2);
    let mut single = Pushtap::new(cfg.base.clone()).expect("build single");
    let mut service = ShardedHtap::new(cfg).expect("build shards");

    let mut gen_single = single.txn_gen(77);
    single.run_txns(&mut gen_single, 120);
    let mut gen_shard = service.global_txn_gen(77);
    let report = service.run_txns(&mut gen_shard, 120);
    assert_eq!(report.committed(), 120);

    for q in Query::ALL {
        let merged = service.run_query(q);
        let expect = single.run_query(q);
        assert_eq!(
            merged.result,
            expect.result,
            "{} diverged through the facade",
            q.name()
        );
    }
}

/// The routed batch accounts every transaction to exactly one shard.
#[test]
fn facade_routing_conserves_transactions() {
    let mut service = ShardedHtap::new(ShardConfig::small(4)).expect("build");
    let mut gen = service.global_txn_gen(5);
    let report = service.run_txns(&mut gen, 200);
    let per_shard: u64 = report.per_shard.iter().map(|l| l.routed).sum();
    assert_eq!(per_shard, 200);
    assert_eq!(report.committed(), 200);
    assert_eq!(report.remote.routed, 200);
}
