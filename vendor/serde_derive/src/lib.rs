//! No-op derive macros standing in for `serde_derive` in this offline
//! workspace. The engine derives `Serialize`/`Deserialize` on its config
//! and report types for downstream tooling, but nothing in the repo
//! serialises at runtime, so accepting the attribute and emitting no code
//! is sufficient (and keeps the derive sites source-compatible with the
//! real crate).

#![forbid(unsafe_code)]
use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
