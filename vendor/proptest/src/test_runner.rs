//! Deterministic case generation and failure reporting.

use std::fmt;

/// Per-test configuration (subset of the real `ProptestConfig`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A failed case, carried out of the test body by `prop_assert*`.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: String) -> TestCaseError {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Extracts a human-readable message from a caught panic payload, so a
/// panicking property body (plain `assert!` rather than `prop_assert!`)
/// can be shrunk like any other failure.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The deterministic generator behind every strategy draw: xoshiro256++
/// seeded from the property name, so every run generates the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from an arbitrary label (the property name).
    pub fn deterministic(label: &str) -> TestRng {
        // FNV-1a over the label, then SplitMix64 expansion.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut state = h;
        let mut split = || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [split(), split(), split(), split()],
        }
    }

    /// The next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}
