//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniform choice from a fixed list of values.
///
/// # Panics
///
/// Panics (on first generation) if `items` is empty.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    Select { items }
}

/// The strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len() as u64) as usize].clone()
    }
}
