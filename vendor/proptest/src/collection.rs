//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose
/// length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`](vec()).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        // Shorter first (dropping elements simplifies most): the
        // min-length prefix, a half-length prefix, one element fewer —
        // all clamped to the configured minimum.
        if value.len() > self.size.min {
            let mut lens = vec![
                self.size.min,
                self.size.min.max(value.len() / 2),
                value.len() - 1,
            ];
            lens.dedup();
            out.extend(lens.into_iter().map(|l| value[..l].to_vec()));
        }
        // Then element-wise: each position's own candidates, rest kept.
        for (i, v) in value.iter().enumerate() {
            for cand in self.element.shrink(v) {
                let mut next = value.clone();
                next[i] = cand;
                out.push(next);
            }
        }
        out
    }
}

/// Strategy for `BTreeSet`s with `size` *distinct* elements from
/// `element`. As in real proptest, generation keeps drawing until the
/// set reaches the target size (the element domain must be large
/// enough).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = std::collections::BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.max - self.size.min + 1) as u64;
        let target = self.size.min + rng.below(span) as usize;
        let mut set = std::collections::BTreeSet::new();
        // Bounded retries guard against domains smaller than the target.
        let mut budget = 64 * (target + 1);
        while set.len() < target && budget > 0 {
            set.insert(self.element.generate(rng));
            budget -= 1;
        }
        set
    }
}
