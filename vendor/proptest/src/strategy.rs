//! Value-generation strategies and their linear shrinkers.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::{TestCaseError, TestRng};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes strictly-simpler candidates for a failing value, in
    /// preference order (simplest first). The runner shrinks *linearly*:
    /// it adopts the first candidate that still fails and asks again
    /// ([`shrink_linear`]), so a shrinker must converge — every
    /// candidate strictly simpler than the input, no cycles. The
    /// default proposes nothing (no shrinking).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Clones a generated value. `proptest!` binds each case's
    /// arguments through this method rather than a bare
    /// `Clone::clone(input)` so the bound arguments get the concrete
    /// `Self::Value` type *before* the test body is type-checked — an
    /// inferred `&_` clone leaves them as inference variables, which
    /// defeats match ergonomics inside the body.
    fn clone_value(&self, value: &Self::Value) -> Self::Value
    where
        Self::Value: Clone,
    {
        value.clone()
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let strat = Rc::new(self);
        let gen = Rc::clone(&strat);
        BoxedStrategy {
            gen: Box::new(move |rng| gen.generate(rng)),
            shrinker: Box::new(move |v| strat.shrink(v)),
        }
    }
}

/// The type-erased shrink half of a [`BoxedStrategy`]: current value in,
/// strictly-simpler candidates out.
type Shrinker<V> = Box<dyn Fn(&V) -> Vec<V>>;

/// A type-erased strategy.
pub struct BoxedStrategy<V> {
    gen: Box<dyn Fn(&mut TestRng) -> V>,
    shrinker: Shrinker<V>,
}

impl<V> Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.gen)(rng)
    }
    fn shrink(&self, value: &V) -> Vec<V> {
        (self.shrinker)(value)
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
#[derive(Debug)]
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
    fn shrink(&self, value: &V) -> Vec<V> {
        // The union does not remember which arm generated the value, so
        // it pools every arm's proposals; any arm's value is a valid
        // union value.
        self.options.iter().flat_map(|o| o.shrink(value)).collect()
    }
}

/// The `.prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Candidates strictly between `start` and `v` (toward `start`): the
/// minimum itself, the midpoint, and the predecessor — deduplicated,
/// simplest first. Empty when `v` is already minimal or lies outside
/// the range (a pooled [`Union`] arm may be asked about another arm's
/// value).
fn shrink_integer(start: i128, end: i128, v: i128) -> Vec<i128> {
    if v <= start || v > end {
        return Vec::new();
    }
    let mut out = vec![start, start + (v - start) / 2, v - 1];
    out.dedup();
    out
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = ((self.end as i128) - (self.start as i128)) as u128;
                ((self.start as i128) + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                shrink_integer(self.start as i128, (self.end as i128) - 1, *v as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = ((end as i128) - (start as i128) + 1) as u128;
                ((start as i128) + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                shrink_integer(*self.start() as i128, *self.end() as i128, *v as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Float candidates toward `start`: the minimum and the midpoint,
/// filtered to values strictly below `v` (floats have no meaningful
/// predecessor step, so two proposals suffice for linear descent).
fn shrink_f64(start: f64, end: f64, v: f64) -> Vec<f64> {
    if !(start..=end).contains(&v) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for c in [start, start + (v - start) / 2.0] {
        if c < v && out.last() != Some(&c) {
            out.push(c);
        }
    }
    out
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
    fn shrink(&self, v: &f64) -> Vec<f64> {
        shrink_f64(self.start, self.end, *v)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        // Closed interval: scale a 53-bit draw over [0, 1].
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        start + unit * (end - start)
    }
    fn shrink(&self, v: &f64) -> Vec<f64> {
        shrink_f64(*self.start(), *self.end(), *v)
    }
}

/// Expands, for each tuple component in turn, the candidate tuples that
/// shrink *that* component and clone the rest — the per-component step
/// of linear tuple shrinking.
macro_rules! tuple_shrink_each {
    ($out:ident; $(($PS:ident, $pv:ident)),* ; ) => {};
    ($out:ident; $(($PS:ident, $pv:ident)),* ;
     ($S:ident, $v:ident) $(, ($TS:ident, $tv:ident))* ) => {
        for cand in $S.shrink($v) {
            $out.push((
                $(::std::clone::Clone::clone($pv),)*
                cand,
                $(::std::clone::Clone::clone($tv),)*
            ));
        }
        tuple_shrink_each!(
            $out; $(($PS, $pv),)* ($S, $v) ; $(($TS, $tv)),*
        );
    };
}

macro_rules! impl_tuple_strategy {
    ($(($name:ident, $val:ident)),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
            #[allow(non_snake_case)]
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let ($($name,)+) = self;
                let ($($val,)+) = value;
                let mut out = Vec::new();
                tuple_shrink_each!(out; ; $(($name, $val)),+);
                out
            }
        }
    };
}

impl_tuple_strategy!((A, a));
impl_tuple_strategy!((A, a), (B, b));
impl_tuple_strategy!((A, a), (B, b), (C, c));
impl_tuple_strategy!((A, a), (B, b), (C, c), (D, d));
impl_tuple_strategy!((A, a), (B, b), (C, c), (D, d), (E, e));
impl_tuple_strategy!((A, a), (B, b), (C, c), (D, d), (E, e), (F, f));
impl_tuple_strategy!((A, a), (B, b), (C, c), (D, d), (E, e), (F, f), (G, g));
impl_tuple_strategy!(
    (A, a),
    (B, b),
    (C, c),
    (D, d),
    (E, e),
    (F, f),
    (G, g),
    (H, h)
);
impl_tuple_strategy!(
    (A, a),
    (B, b),
    (C, c),
    (D, d),
    (E, e),
    (F, f),
    (G, g),
    (H, h),
    (I, i)
);
impl_tuple_strategy!(
    (A, a),
    (B, b),
    (C, c),
    (D, d),
    (E, e),
    (F, f),
    (G, g),
    (H, h),
    (I, i),
    (J, j)
);

/// The linear shrink loop: starting from a failing input, repeatedly
/// adopt the *first* shrink candidate that still fails (re-running the
/// property on each candidate) until no candidate fails or the step
/// budget runs out. Returns the minimal failing input found, its
/// failure, and how many shrink steps were taken.
pub fn shrink_linear<S, F>(
    strat: &S,
    mut current: S::Value,
    mut error: TestCaseError,
    run: &F,
) -> (S::Value, TestCaseError, u64)
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), TestCaseError>,
{
    // Each step strictly simplifies one component, so descent is fast;
    // the cap only guards against a non-converging custom shrinker.
    const MAX_STEPS: u64 = 512;
    let mut steps = 0;
    'descend: while steps < MAX_STEPS {
        for cand in strat.shrink(&current) {
            if let Err(e) = run(&cand) {
                current = cand;
                error = e;
                steps += 1;
                continue 'descend;
            }
        }
        break;
    }
    (current, error, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fails_at_or_above<T: PartialOrd + Copy>(
        limit: T,
    ) -> impl Fn(&T) -> Result<(), TestCaseError> {
        move |v| {
            if *v >= limit {
                Err(TestCaseError::fail("too big".into()))
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn integer_shrink_proposes_strictly_smaller_in_range() {
        let s = 3u64..100;
        for v in [4u64, 17, 99] {
            let cands = s.shrink(&v);
            assert!(!cands.is_empty());
            for c in cands {
                assert!((3..v).contains(&c), "candidate {c} not strictly below {v}");
            }
        }
        assert!(s.shrink(&3).is_empty(), "the minimum has nowhere to go");
        assert!(
            s.shrink(&200).is_empty(),
            "out-of-range values never shrink"
        );
        let neg = -8i32..=8;
        for c in neg.shrink(&5) {
            assert!((-8..5).contains(&c));
        }
    }

    #[test]
    fn float_shrink_descends_toward_start() {
        let s = 1.0f64..9.0;
        let cands = s.shrink(&8.0);
        assert_eq!(cands, vec![1.0, 4.5]);
        assert!(s.shrink(&1.0).is_empty());
        let inc = 0.0f64..=1.0;
        for c in inc.shrink(&0.5) {
            assert!((0.0..0.5).contains(&c));
        }
    }

    #[test]
    fn tuple_shrink_changes_one_component_at_a_time() {
        let s = (0u8..10, 5u64..50);
        let v = (7u8, 20u64);
        let cands = s.shrink(&v);
        assert!(!cands.is_empty());
        for (a, b) in cands {
            let changed = u32::from(a != v.0) + u32::from(b != v.1);
            assert_eq!(changed, 1, "({a}, {b}) must differ in exactly one slot");
            assert!(a <= v.0 && b <= v.1, "components only ever simplify");
        }
    }

    #[test]
    fn vec_shrink_shortens_first_and_respects_min_len() {
        let s = crate::collection::vec(0u32..100, 2..=6);
        let v = vec![50u32, 60, 70, 80];
        let cands = s.shrink(&v);
        assert_eq!(cands[0], vec![50, 60], "min-length prefix comes first");
        for c in &cands {
            assert!(c.len() >= 2, "never below the configured minimum");
            assert!(c.len() < v.len() || c.iter().zip(&v).any(|(a, b)| a < b));
        }
        let minimal = s.shrink(&vec![0u32, 0]);
        assert!(minimal.is_empty(), "a min-length all-minimum vec is done");
    }

    #[test]
    fn boxed_and_union_delegate_shrinking() {
        let boxed = (10u64..1000).boxed();
        for c in boxed.shrink(&500) {
            assert!((10..500).contains(&c));
        }
        let u = Union::new(vec![(10u64..1000).boxed(), Just(7u64).boxed()]);
        let cands = u.shrink(&500);
        assert!(!cands.is_empty(), "the range arm proposes candidates");
        for c in cands {
            assert!((10..500).contains(&c), "Just contributes nothing");
        }
    }

    #[test]
    fn map_and_just_do_not_shrink() {
        assert!(Just(9u8).shrink(&9).is_empty());
        let mapped = (0u8..9).prop_map(|v| v * 2);
        assert!(mapped.shrink(&8).is_empty(), "maps cannot invert");
    }

    #[test]
    fn shrink_linear_finds_the_boundary() {
        // Failing iff v >= 7: linear descent must land exactly on 7.
        let s = (0u64..100,);
        let run = |v: &(u64,)| {
            if v.0 >= 7 {
                Err(TestCaseError::fail("boundary".into()))
            } else {
                Ok(())
            }
        };
        let (minimal, err, steps) =
            shrink_linear(&s, (63,), TestCaseError::fail("seed".into()), &run);
        assert_eq!(minimal, (7,), "must converge to the smallest failure");
        assert!(steps > 0);
        assert_eq!(err.to_string(), "boundary");
    }

    #[test]
    fn shrink_linear_keeps_the_input_when_nothing_simpler_fails() {
        let s = (0u64..100,);
        let run = fails_at_or_above((55u64,));
        let only_55 = |v: &(u64,)| {
            if v.0 == 55 {
                Err(TestCaseError::fail("exactly 55".into()))
            } else {
                Ok(())
            }
        };
        let _ = run; // the >= case is covered above; here failure is a point
        let (minimal, _, steps) =
            shrink_linear(&s, (55,), TestCaseError::fail("seed".into()), &only_55);
        assert_eq!(minimal, (55,), "no simpler input fails");
        assert_eq!(steps, 0);
    }
}
