//! Value-generation strategies (generation only — no shrinking).

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Box::new(move |rng| self.generate(rng)),
        }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V> {
    gen: Box<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.gen)(rng)
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
#[derive(Debug)]
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// The `.prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128) - (start as u128) + 1;
                start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = ((self.end as i128) - (self.start as i128)) as u128;
                ((self.start as i128) + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = ((end as i128) - (start as i128) + 1) as u128;
                ((start as i128) + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        // Closed interval: scale a 53-bit draw over [0, 1].
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        start + unit * (end - start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
