//! Offline stand-in for `proptest`, covering exactly the API surface the
//! workspace's property tests use: the `proptest!` macro, `prop_assert*`,
//! `prop_oneof!`, `any::<T>()`, range strategies, tuple strategies,
//! `prop::collection::vec`, `prop::sample::select`, `Just`, `.prop_map`,
//! and `ProptestConfig::with_cases`.
//!
//! Semantics: each test body runs for `cases` deterministic
//! pseudo-random inputs (seeded from the test name, so failures
//! reproduce). A failing case (a `prop_assert*` violation *or* a panic
//! from a plain `assert!`) is shrunk **linearly** before reporting:
//! the runner asks the argument strategies for strictly-simpler
//! candidate inputs, adopts the first candidate that still fails, and
//! repeats until none fails ([`strategy::shrink_linear`]); the panic
//! then reports the original failure, the minimal failing input, and
//! the number of shrink steps taken.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! The `prop::` module path used by `prop::collection::vec` etc.
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]`-attributed function running `body` over
/// `cases` generated inputs (the attribute comes from the test's own
/// attribute list, exactly as in real proptest).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(@cfg($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            let strat = ($($strat,)+);
            // One case as a re-runnable closure: the shrink loop replays
            // it on every candidate input. Panics (plain `assert!`) are
            // caught and shrunk exactly like `prop_assert!` failures.
            let run = |input: &_| -> ::std::result::Result<
                (),
                $crate::test_runner::TestCaseError,
            > {
                let ($($arg,)+) =
                    $crate::strategy::Strategy::clone_value(&strat, input);
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match outcome {
                    ::std::result::Result::Ok(r) => r,
                    ::std::result::Result::Err(p) => ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(
                            $crate::test_runner::panic_message(p),
                        ),
                    ),
                }
            };
            for case in 0..cfg.cases {
                let input =
                    $crate::strategy::Strategy::generate(&strat, &mut rng);
                if let ::std::result::Result::Err(e) = run(&input) {
                    let (minimal, min_err, steps) =
                        $crate::strategy::shrink_linear(&strat, input, e.clone(), &run);
                    panic!(
                        "property '{}' failed at case {}: {}\n\
                         minimal failing input after {} linear shrink step(s): \
                         {:?} — failing with: {}",
                        stringify!($name), case, e, steps, minimal, min_err,
                    );
                }
            }
        }
        $crate::__proptest_tests!(@cfg($cfg) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// the process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {:?} != {:?}",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: both sides equal {:?}",
            a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, $($fmt)*);
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
