//! Offline stand-in for `criterion`'s harness API. Statistical sampling
//! is replaced by a single timed execution per benchmark — enough for the
//! bench binaries to compile, run under `cargo test`/`cargo bench`, and
//! smoke-test every figure harness end to end. Sampling parameters
//! (`sample_size`, `measurement_time`, `warm_up_time`) are accepted and
//! ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("[criterion-shim] group {name}");
        BenchmarkGroup {
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the shim always runs one sample.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Times one execution of the benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!(
            "[criterion-shim] {}/{}: {:?} (single sample)",
            self.name, id, b.elapsed
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Runs and times the benchmarked routine.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Executes `routine` once and records its wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.elapsed = start.elapsed();
        drop(out);
    }
}

/// Declares a group function running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
