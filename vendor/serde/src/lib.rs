//! Offline stand-in for `serde`: the workspace derives
//! `Serialize`/`Deserialize` for API compatibility but never serialises,
//! so the derives expand to nothing (see `serde_derive` in `vendor/`).

#![forbid(unsafe_code)]
pub use serde_derive::{Deserialize, Serialize};
