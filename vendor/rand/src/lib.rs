//! Offline stand-in for the `rand` 0.9 API surface this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` methods
//! `random_bool` / `random_range` over integer ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the real
//! `StdRng` stream, but the workspace only relies on determinism for a
//! fixed seed and on uniformity good enough for workload mixes, never on
//! byte-compatibility with upstream `rand`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    //! Concrete generator types.

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding constructors (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanded via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        rngs::StdRng { s }
    }
}

/// A range a generator can sample from uniformly, producing `T`.
///
/// Generic over the output type (rather than an associated type) so the
/// expected result type can drive integer-literal inference, exactly as
/// in upstream `rand`.
pub trait SampleRange<T> {
    /// Draws one value using `next` as the entropy source.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (((next() as u128) % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (((next() as u128) % span) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128) - (self.start as i128);
                ((self.start as i128) + ((next() as u128) % (span as u128)) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128) - (start as i128) + 1;
                ((start as i128) + ((next() as u128) % (span as u128)) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

/// The sampling methods the workspace uses (subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        // 53 uniform mantissa bits, exactly as rand's f64 sampling.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Uniform draw from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut next = || self.next_u64();
        range.sample(&mut next)
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = r.random_range(10..20);
            assert!((10..20).contains(&v));
            let w = r.random_range(5..=15);
            assert!((5..=15).contains(&w));
            let x: usize = r.random_range(0..3);
            assert!(x < 3);
        }
    }

    #[test]
    fn bool_probability_roughly_holds() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.random_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }
}
