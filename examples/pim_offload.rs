//! PIM offload anatomy: drive the two-phase execution model directly and
//! compare PUSHtap's memory-controller extension against the original
//! general-purpose PIM architecture across WRAM sizes — the mechanism
//! behind Figure 12(b).
//!
//! Run with: `cargo run --release --example pim_offload`

use pushtap::olap::{LaunchRequest, ScanEngine};
use pushtap::pim::{ControlArch, ControlModel, MemSystem, PimOpKind, Ps, SystemConfig};

fn main() {
    // 1. What actually goes over the wire: a launch request is a 64-byte
    //    write to a reserved address (Fig. 7(b)).
    let req = LaunchRequest::Filter {
        bitmap_offset: 0x0000,
        data_offset: 0x0400,
        result_offset: 0x7C00,
        data_width: 8,
        condition: 0x0000_0001_2345_6789,
    };
    let payload = req.encode();
    println!("Filter launch payload (type byte {}):", payload.op_type());
    for chunk in payload.as_bytes().chunks(16) {
        let hex: Vec<String> = chunk.iter().map(|b| format!("{b:02x}")).collect();
        println!("  {}", hex.join(" "));
    }
    assert_eq!(LaunchRequest::decode(&payload).unwrap(), req);

    // 2. Control-path cost: one disguised access vs per-unit messaging.
    let cfg = SystemConfig::dimm();
    for arch in [ControlArch::Pushtap, ControlArch::Original] {
        let m = ControlModel::new(arch, &cfg);
        println!(
            "\n{arch:?}: launch(LS) {}, launch(Filter) {}, poll {}",
            m.launch(PimOpKind::Ls),
            m.launch(PimOpKind::Filter),
            m.poll()
        );
    }

    // 3. Whole-scan effect across WRAM sizes (Fig. 12(b) mechanism):
    //    8 B-wide column over 6 M rows.
    println!("\nWRAM(kB)  PUSHtap       Original      speedup");
    for wram_kb in [16u32, 32, 64, 128, 256] {
        let sys = SystemConfig::dimm().with_wram(wram_kb * 1024);
        let mut times = Vec::new();
        for arch in [ControlArch::Pushtap, ControlArch::Original] {
            let engine = ScanEngine::new(arch, &sys);
            let mut mem = MemSystem::new(sys);
            let rows = 6_000_000u64;
            let per_unit = (rows * 8).div_ceil(engine.units());
            let out = engine.timed_phases(
                PimOpKind::Filter,
                per_unit,
                rows * 8,
                1.0,
                &mut mem,
                Ps::ZERO,
            );
            times.push(out.end);
        }
        println!(
            "{wram_kb:>7}   {:>12}  {:>12}  {:.2}x",
            times[0].to_string(),
            times[1].to_string(),
            times[1].ps() as f64 / times[0].ps() as f64
        );
    }
}
