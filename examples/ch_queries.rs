//! The full CH-benCHmark analytical sweep: run all 22 queries against a
//! freshly transacted database and report per-query time plus aggregate
//! QphH — the workload behind the paper's throughput numbers.
//!
//! Run with: `cargo run --release --example ch_queries`

use pushtap::core::{qphh, Pushtap, PushtapConfig};
use pushtap::olap::run_all_queries;
use pushtap::pim::Ps;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut system = Pushtap::new(PushtapConfig::small())?;
    let mut txns = system.txn_gen(77);
    system.run_txns(&mut txns, 300);

    // Fresh snapshots for every table the queries touch.
    for q in pushtap::olap::Query::ALL {
        system.snapshot_for(q);
    }

    println!(
        "{:<5} {:>7} {:>9} {:>9} {:>14} {:>12} {:>12}",
        "query", "tables", "PIM cols", "CPU cols", "time", "PIM load", "CPU coord"
    );
    let reports = {
        // Split borrows: queries need &db and &mut mem.
        let engine = system.engine().clone();
        let (db, mem) = system.db_and_mem_mut();
        run_all_queries(db, &engine, mem, Ps::ZERO)
    };
    let mut total = Ps::ZERO;
    for r in &reports {
        total += r.timing.end;
        println!(
            "Q{:<4} {:>7} {:>9} {:>9} {:>14} {:>12} {:>12}",
            r.query,
            r.tables,
            r.pim_columns,
            r.cpu_columns,
            r.timing.end.to_string(),
            r.timing.pim_load.to_string(),
            r.timing.cpu_compute.to_string(),
        );
    }
    println!(
        "\nfull sweep: {total}  →  {:.1} kQphH (22-query streams/hour basis)",
        qphh(22, total) / 1e3
    );
    Ok(())
}
