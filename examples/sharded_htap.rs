//! Sharded HTAP: scale PUSHtap out to N warehouse-partitioned engines,
//! route a global TPC-C stream (timestamps drawn from one shared oracle
//! in stream order, so committed state is byte-identical to a
//! single-instance execution), and answer Q1/Q6/Q9 by global-cut
//! scatter-gather.
//!
//! Run with: `cargo run --release --example sharded_htap [shards]`

use pushtap::olap::{Query, QueryResult};
use pushtap::shard::{ShardConfig, ShardedHtap};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shards: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let mut service = ShardedHtap::new(ShardConfig::small(shards))?;
    println!(
        "built {} shards over {} warehouses ({} warehouses per shard, ITEM replicated)",
        service.shard_count(),
        service.map().warehouses(),
        service.map().warehouses() / service.shard_count() as u64,
    );

    // OLTP: a global Payment/NewOrder stream routed by home warehouse,
    // per-shard batches executing on concurrent OS threads.
    let mut gen = service.global_txn_gen(42);
    let oltp = service.run_txns(&mut gen, 600);
    println!(
        "\nrouted {} txns: makespan {}, aggregate tpmC {:.0}, parallel speedup {:.2}x",
        oltp.committed(),
        oltp.makespan(),
        oltp.tpmc(16),
        oltp.parallel_efficiency(),
    );
    println!(
        "global timestamp oracle at {} ({} delta-pressure retries, {} wasted attempt time)",
        service.ts_oracle().watermark(),
        oltp.aborts(),
        oltp.wasted_retry_time(),
    );
    println!(
        "cross-shard: {:.1}% of txns touched a remote shard ({} remote row touches, {} coordination time)",
        oltp.remote.cross_shard_fraction() * 100.0,
        oltp.remote.remote_touches,
        oltp.remote_time(),
    );
    for (i, load) in oltp.per_shard.iter().enumerate() {
        println!(
            "  shard {i}: {:>4} txns in {} ({} remote touches)",
            load.routed, load.elapsed, load.remote_touches
        );
    }

    // OLAP: scatter-gather over every shard's two-phase PIM scan.
    println!();
    for q in Query::ALL {
        let report = service.run_query(q);
        let summary = match &report.result {
            QueryResult::Q1(rows) => format!("{} groups", rows.len()),
            QueryResult::Q6 { revenue } => format!("revenue {revenue}"),
            QueryResult::Q9(rows) => format!("{} join groups", rows.len()),
        };
        let cut = report.global_cut().expect("one agreed cut");
        println!(
            "{}: {:>12}  cut {cut}  scatter {} (slowest shard) + merge {} = {}  [{} partial rows gathered]",
            q.name(),
            summary,
            report.scatter_latency,
            report.merge_time,
            report.total(),
            report.gathered_rows(),
        );
    }

    // The perfectly-partitionable upper bound: warehouse-local streams.
    let local = service.run_local_txns(7, 600 / shards as u64);
    println!(
        "\nwarehouse-local load: {} txns, aggregate tpmC {:.0} (the no-coordination upper bound)",
        local.committed(),
        local.tpmc(16),
    );
    Ok(())
}
