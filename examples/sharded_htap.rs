//! Sharded HTAP: scale PUSHtap out to N warehouse-partitioned engines,
//! route a global TPC-C stream (timestamps drawn from one shared oracle
//! in stream order, cross-shard writes forwarded to their owning shards
//! under a simulated two-phase commit, so committed state is
//! byte-identical to a single-instance execution), and answer Q1/Q6/Q9
//! by global-cut scatter-gather.
//!
//! Run with:
//! `cargo run --release --example sharded_htap [shards] [mix] [mode] [trace.json]`
//! where `mix` is `uniform` (default), `tpcc`, or `local`, `mode` is
//! `pipelined` (conflict-aware wave scheduling, the default) or
//! `serial` (the barrier-flush oracle), and an optional fourth argument
//! writes the batch's lifecycle spans as a Chrome-trace JSON file
//! (load it at <https://ui.perfetto.dev> or `chrome://tracing`).

use std::sync::Arc;

use pushtap::chbench::RemoteMix;
use pushtap::olap::{Query, QueryResult};
use pushtap::shard::{CoordinatorMode, ShardConfig, ShardedHtap};
use pushtap::trace::{chrome, fmt_ps, two_pc_overlap_peak, MemSink};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shards: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let (mix, mix_name) = match std::env::args().nth(2).as_deref() {
        Some("tpcc") => (RemoteMix::TPCC, "TPC-C 1%/15% remote"),
        Some("local") => (RemoteMix::LOCAL, "warehouse-local"),
        _ => (RemoteMix::Uniform, "uniform"),
    };
    let (mode, mode_name) = match std::env::args().nth(3).as_deref() {
        Some("serial") => (CoordinatorMode::Serial, "serial (barrier-flush)"),
        _ => (CoordinatorMode::Pipelined, "pipelined (wave-scheduled)"),
    };
    let trace_path = std::env::args().nth(4);
    let mut service = ShardedHtap::new(ShardConfig::small(shards).with_mode(mode))?;
    let sink = Arc::new(MemSink::default());
    if trace_path.is_some() {
        service.set_trace_sink(sink.clone());
    }
    println!(
        "built {} shards over {} warehouses ({} warehouses per shard, ITEM replicated), {mix_name} mix, {mode_name} coordinator",
        service.shard_count(),
        service.map().warehouses(),
        service.map().warehouses() / service.shard_count() as u64,
    );

    // OLTP: a global Payment/NewOrder stream routed by home warehouse.
    // Under the pipelined coordinator, conflict-free waves execute
    // concurrently and cross-shard two-phase commits overlap; under the
    // serial oracle, local transactions queue per shard and every 2PC
    // runs alone behind a barrier flush.
    let warehouses = service.map().warehouses();
    let mut gen = service.global_txn_gen(42).with_remote_mix(mix, warehouses);
    let oltp = service.run_txns(&mut gen, 600);
    println!(
        "\nrouted {} txns: makespan {}, aggregate tpmC {:.0}, parallel speedup {:.2}x",
        oltp.committed(),
        oltp.makespan(),
        oltp.tpmc(16),
        oltp.parallel_efficiency(),
    );
    println!(
        "global timestamp oracle at {} ({} delta-pressure retries, {} wasted attempt time)",
        service.ts_oracle().watermark(),
        oltp.aborts(),
        oltp.wasted_retry_time(),
    );
    let lat = oltp.commit_latency().stats();
    println!(
        "commit latency: p50 {} / p90 {} / p99 {} / p99.9 {} / max {} (mean {})",
        fmt_ps(lat.p50),
        fmt_ps(lat.p90),
        fmt_ps(lat.p99),
        fmt_ps(lat.p999),
        fmt_ps(lat.max),
        fmt_ps(lat.mean),
    );
    println!(
        "2PC: {:.1}% of txns crossed shards ({} remote touches, {} forwarded effects, \
         {} prepares, {} participant aborts, {} commit rounds, {:.2}% of busy time)",
        oltp.remote.cross_shard_fraction() * 100.0,
        oltp.remote.remote_touches,
        oltp.forwarded_effects(),
        oltp.prepared_txns(),
        oltp.participant_aborts(),
        oltp.commit_rounds(),
        oltp.two_pc_time_share() * 100.0,
    );
    println!(
        "schedule: {} waves (widest {}), {} barrier flushes, {:.1}% of 2PCs overlapped, \
         round latency {} on the critical path vs {} sequential",
        oltp.coord.waves,
        oltp.coord.max_wave,
        oltp.coord.barrier_flushes,
        oltp.overlap_ratio() * 100.0,
        oltp.critical_path_time(),
        oltp.two_pc_time(),
    );
    for (i, load) in oltp.per_shard.iter().enumerate() {
        println!(
            "  shard {i}: {:>4} txns in {} ({} forwarded effects applied, {} 2PC round time = {:.2}% of this engine's time)",
            load.routed,
            load.elapsed,
            load.report.forwarded_effects,
            load.remote_time,
            load.report.two_pc_time_share() * 100.0,
        );
    }

    // OLAP: scatter-gather over every shard's two-phase PIM scan.
    println!();
    for q in Query::ALL {
        let report = service.run_query(q);
        let summary = match &report.result {
            QueryResult::Q1(rows) => format!("{} groups", rows.len()),
            QueryResult::Q6 { revenue } => format!("revenue {revenue}"),
            QueryResult::Q9(rows) => format!("{} join groups", rows.len()),
        };
        let cut = report.global_cut().expect("one agreed cut");
        println!(
            "{}: {:>12}  cut {cut}  scatter {} (slowest shard) + merge {} = {}  [{} partial rows gathered]",
            q.name(),
            summary,
            report.scatter_latency,
            report.merge_time,
            report.total(),
            report.gathered_rows(),
        );
    }

    // The perfectly-partitionable upper bound: warehouse-local streams.
    let local = service.run_local_txns(7, 600 / shards as u64);
    println!(
        "\nwarehouse-local load: {} txns, aggregate tpmC {:.0} (the no-coordination upper bound)",
        local.committed(),
        local.tpmc(16),
    );

    if let Some(path) = trace_path {
        let spans = sink.take();
        let (wave, peak) = two_pc_overlap_peak(&spans);
        let doc = chrome::render(&spans);
        chrome::validate(&doc).expect("rendered trace must validate");
        std::fs::write(&path, &doc)?;
        println!(
            "\nwrote {path} ({} spans, peak {peak} concurrent 2PCs in wave {wave}) — \
             load it at https://ui.perfetto.dev",
            spans.len(),
        );
    }
    Ok(())
}
