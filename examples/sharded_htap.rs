//! Sharded HTAP: scale PUSHtap out to N warehouse-partitioned engines,
//! route a global TPC-C stream (timestamps drawn from one shared oracle
//! in stream order, cross-shard writes forwarded to their owning shards
//! under a simulated two-phase commit, so committed state is
//! byte-identical to a single-instance execution), and answer Q1/Q6/Q9
//! by global-cut scatter-gather.
//!
//! Run with:
//! `cargo run --release --example sharded_htap [shards] [mix] [mode] [trace.json]`
//! where `mix` is `uniform` (default), `tpcc`, or `local`, `mode` is
//! `pipelined` (conflict-aware wave scheduling, the default) or
//! `serial` (the barrier-flush oracle), and an optional fourth argument
//! writes the batch's lifecycle spans as a Chrome-trace JSON file
//! (load it at <https://ui.perfetto.dev> or `chrome://tracing`).
//!
//! Or run the crash-recovery demo:
//! `cargo run --release --example sharded_htap crash [dir]`
//! — logs a routed batch to per-shard effect WALs on disk, kills the
//! deployment mid-decision-log write, recovers a fresh deployment from
//! the surviving log files alone, byte-diffs every recovered row
//! against an unpartitioned reference executing exactly the recovered
//! commits, and exits nonzero on any divergence.

use std::sync::Arc;

use pushtap::chbench::RemoteMix;
use pushtap::olap::{Query, QueryResult};
use pushtap::shard::{CoordinatorMode, ShardConfig, ShardedHtap};
use pushtap::trace::{chrome, fmt_ps, two_pc_overlap_peak, MemSink};

/// The crash-recovery demo: write-ahead-log a batch to `dir`, crash
/// mid-protocol, recover from the files, prove byte identity.
fn crash_demo(dir: &std::path::Path) -> Result<(), Box<dyn std::error::Error>> {
    use pushtap::chbench::{Partitioning, ALL_TABLES};
    use pushtap::core::Pushtap;
    use pushtap::format::RowSlot;
    use pushtap::oltp::stripe_start;
    use pushtap::shard::{CrashPoint, CrashSite, WalBytes};

    const SHARDS: u32 = 4;
    const TXNS: u64 = 400;
    const SEED: u64 = 42;
    let mix = RemoteMix::Uniform;
    let cfg = ShardConfig::small(SHARDS).with_mode(CoordinatorMode::Pipelined);

    // Phase 1: a logged deployment that dies at an armed crash point —
    // here halfway through a decision-log write, the nastiest spot
    // (a torn record the recovery scan must truncate).
    std::fs::create_dir_all(dir)?;
    let mut service = ShardedHtap::new(cfg.clone())?;
    service.enable_wal_files(dir)?;
    service.arm_crash(CrashPoint {
        site: CrashSite::MidDecisionLogWrite,
        event: 5,
    });
    let warehouses = service.map().warehouses();
    let mut gen = service
        .global_txn_gen(SEED)
        .with_remote_mix(mix, warehouses);
    let before = service.run_txns(&mut gen, TXNS);
    assert!(service.crashed(), "the armed crash point must fire");
    println!(
        "killed the deployment mid-decision-log write (5th cross-shard decision): \
         {} of {TXNS} txns had committed; {} effect records ({} bytes) and {} \
         decisions were durable in {}",
        before.committed(),
        before.wal_appends(),
        before.wal_bytes(),
        before.coord.decision_appends,
        dir.display(),
    );
    drop(service); // the process is gone — only the log files survive

    // Phase 2: recover a fresh deployment from the files alone.
    let image = WalBytes::read_dir(dir, SHARDS)?;
    let (mut recovered, rec) = ShardedHtap::recover(cfg.clone(), &image)?;
    println!(
        "recovered: {} records scanned, {} replayed, {} skipped by presumed abort, \
         {} torn decision bytes truncated, oracle resumed past {}",
        rec.per_shard.iter().map(|s| s.records).sum::<u64>(),
        rec.replayed(),
        rec.skipped(),
        rec.decision_truncated,
        rec.watermark,
    );

    // Phase 3: byte-identity oracle — an unpartitioned reference
    // executing exactly the recovered committed set at the original
    // pinned timestamps (the i-th stream txn carries timestamp i+1).
    recovered.defragment_all();
    let mut reference = Pushtap::new(cfg.base.clone())?;
    let mut rgen = reference.txn_gen(SEED).with_remote_mix(mix, warehouses);
    let batch = rgen.batch(TXNS as usize);
    for &ts in &rec.committed {
        reference.execute_txn_at(&batch[ts.0 as usize - 1], ts);
    }
    reference.defragment_all();

    let mut mismatched = 0u64;
    let mut compared = 0u64;
    for i in 0..recovered.shard_count() {
        let db = recovered.shard(i).db();
        let rdb = reference.db();
        for table in ALL_TABLES {
            let global = rdb.global_rows_of(table);
            let row_base = match table.partitioning() {
                Partitioning::Replicated => 0,
                Partitioning::ByWarehouse => {
                    stripe_start(db.warehouse_range().start, global, db.warehouses_global())
                }
            };
            let t = db.table(table);
            let rt = rdb.table(table);
            for row in 0..t.n_rows() {
                compared += 1;
                let ours = t.store().read_row(RowSlot::Data { row });
                let theirs = rt.store().read_row(RowSlot::Data {
                    row: row_base + row,
                });
                if ours != theirs {
                    mismatched += 1;
                }
            }
        }
    }
    if mismatched > 0 {
        eprintln!("BYTE MISMATCH: {mismatched} of {compared} recovered rows diverged");
        std::process::exit(1);
    }
    println!(
        "byte identity: all {compared} rows across {} shards match the reference exactly",
        recovered.shard_count(),
    );

    // Phase 4: the recovered deployment keeps serving.
    let mut more = recovered
        .global_txn_gen(SEED ^ 0x5eed)
        .with_remote_mix(mix, warehouses);
    let after = recovered.run_txns(&mut more, 64);
    println!(
        "resumed service: {} further txns committed on the recovered deployment",
        after.committed(),
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::args().nth(1).as_deref() == Some("crash") {
        let dir = std::env::args()
            .nth(2)
            .unwrap_or_else(|| "pushtap-wal-demo".into());
        return crash_demo(std::path::Path::new(&dir));
    }
    let shards: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let (mix, mix_name) = match std::env::args().nth(2).as_deref() {
        Some("tpcc") => (RemoteMix::TPCC, "TPC-C 1%/15% remote"),
        Some("local") => (RemoteMix::LOCAL, "warehouse-local"),
        _ => (RemoteMix::Uniform, "uniform"),
    };
    let (mode, mode_name) = match std::env::args().nth(3).as_deref() {
        Some("serial") => (CoordinatorMode::Serial, "serial (barrier-flush)"),
        _ => (CoordinatorMode::Pipelined, "pipelined (wave-scheduled)"),
    };
    let trace_path = std::env::args().nth(4);
    let mut service = ShardedHtap::new(ShardConfig::small(shards).with_mode(mode))?;
    let sink = Arc::new(MemSink::default());
    if trace_path.is_some() {
        service.set_trace_sink(sink.clone());
    }
    println!(
        "built {} shards over {} warehouses ({} warehouses per shard, ITEM replicated), {mix_name} mix, {mode_name} coordinator",
        service.shard_count(),
        service.map().warehouses(),
        service.map().warehouses() / service.shard_count() as u64,
    );

    // OLTP: a global Payment/NewOrder stream routed by home warehouse.
    // Under the pipelined coordinator, conflict-free waves execute
    // concurrently and cross-shard two-phase commits overlap; under the
    // serial oracle, local transactions queue per shard and every 2PC
    // runs alone behind a barrier flush.
    let warehouses = service.map().warehouses();
    let mut gen = service.global_txn_gen(42).with_remote_mix(mix, warehouses);
    let oltp = service.run_txns(&mut gen, 600);
    println!(
        "\nrouted {} txns: makespan {}, aggregate tpmC {:.0}, parallel speedup {:.2}x",
        oltp.committed(),
        oltp.makespan(),
        oltp.tpmc(16),
        oltp.parallel_efficiency(),
    );
    println!(
        "global timestamp oracle at {} ({} delta-pressure retries, {} wasted attempt time)",
        service.ts_oracle().watermark(),
        oltp.aborts(),
        oltp.wasted_retry_time(),
    );
    let lat = oltp.commit_latency().stats();
    println!(
        "commit latency: p50 {} / p90 {} / p99 {} / p99.9 {} / max {} (mean {})",
        fmt_ps(lat.p50),
        fmt_ps(lat.p90),
        fmt_ps(lat.p99),
        fmt_ps(lat.p999),
        fmt_ps(lat.max),
        fmt_ps(lat.mean),
    );
    println!(
        "2PC: {:.1}% of txns crossed shards ({} remote touches, {} forwarded effects, \
         {} prepares, {} participant aborts, {} commit rounds, {:.2}% of busy time)",
        oltp.remote.cross_shard_fraction() * 100.0,
        oltp.remote.remote_touches,
        oltp.forwarded_effects(),
        oltp.prepared_txns(),
        oltp.participant_aborts(),
        oltp.commit_rounds(),
        oltp.two_pc_time_share() * 100.0,
    );
    println!(
        "schedule: {} waves (widest {}), {} barrier flushes, {:.1}% of 2PCs overlapped, \
         round latency {} on the critical path vs {} sequential",
        oltp.coord.waves,
        oltp.coord.max_wave,
        oltp.coord.barrier_flushes,
        oltp.overlap_ratio() * 100.0,
        oltp.critical_path_time(),
        oltp.two_pc_time(),
    );
    for (i, load) in oltp.per_shard.iter().enumerate() {
        println!(
            "  shard {i}: {:>4} txns in {} ({} forwarded effects applied, {} 2PC round time = {:.2}% of this engine's time)",
            load.routed,
            load.elapsed,
            load.report.forwarded_effects,
            load.remote_time,
            load.report.two_pc_time_share() * 100.0,
        );
    }

    // OLAP: scatter-gather over every shard's two-phase PIM scan.
    println!();
    for q in Query::ALL {
        let report = service.run_query(q);
        let summary = match &report.result {
            QueryResult::Q1(rows) => format!("{} groups", rows.len()),
            QueryResult::Q6 { revenue } => format!("revenue {revenue}"),
            QueryResult::Q9(rows) => format!("{} join groups", rows.len()),
        };
        let cut = report.global_cut().expect("one agreed cut");
        println!(
            "{}: {:>12}  cut {cut}  scatter {} (slowest shard) + merge {} = {}  [{} partial rows gathered]",
            q.name(),
            summary,
            report.scatter_latency,
            report.merge_time,
            report.total(),
            report.gathered_rows(),
        );
    }

    // The perfectly-partitionable upper bound: warehouse-local streams.
    let local = service.run_local_txns(7, 600 / shards as u64);
    println!(
        "\nwarehouse-local load: {} txns, aggregate tpmC {:.0} (the no-coordination upper bound)",
        local.committed(),
        local.tpmc(16),
    );

    if let Some(path) = trace_path {
        let spans = sink.take();
        let (wave, peak) = two_pc_overlap_peak(&spans);
        let doc = chrome::render(&spans);
        chrome::validate(&doc).expect("rendered trace must validate");
        std::fs::write(&path, &doc)?;
        println!(
            "\nwrote {path} ({} spans, peak {peak} concurrent 2PCs in wave {wave}) — \
             load it at https://ui.perfetto.dev",
            spans.len(),
        );
    }
    Ok(())
}
