//! Format advisor: the §4 layout machinery as a standalone tool.
//!
//! Given a schema and the analytical queries you care about, sweep the
//! bin-packing threshold and report CPU/PIM effective bandwidth, storage
//! breakdown, and the generated part structure — the analysis behind
//! Fig. 8 — so you can pick `th` for your own workload mix.
//!
//! Run with: `cargo run --release --example format_advisor [-- th]`

use pushtap::chbench::{key_columns_upto, scan_weight, schema_with_keys, Table};
use pushtap::format::{
    compact_layout, cpu_effective, naive_layout, pim_effective, storage_breakdown,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let devices = 8; // DIMM ADE width
    let queries: Vec<u8> = (1..=22).collect();
    let keys = key_columns_upto(22);

    // Focus table: ORDERLINE (the fact table all three evaluation
    // queries scan).
    let table = Table::OrderLine;
    let schema = schema_with_keys(table, &keys[&table]);
    println!(
        "table {} — {} columns, {} key columns, row width {} B\n",
        table.name(),
        schema.len(),
        schema.key_indices().len(),
        schema.row_width()
    );

    println!("th     parts  CPU-eff  PIM-eff  padding  snapshot");
    for i in 0..=10 {
        let th = i as f64 / 10.0;
        let layout = compact_layout(&schema, devices, th)?;
        let weight = |c: u32| scan_weight(&schema.column(c).name, &queries);
        let b = storage_breakdown(&layout, 0.5);
        println!(
            "{th:<6} {:<6} {:>6.1}%  {:>6.1}%  {:>6.2}%  {:>6.2}%",
            layout.parts().len(),
            cpu_effective(&layout, 8) * 100.0,
            pim_effective(&layout, weight) * 100.0,
            b.padding * 100.0,
            b.snapshot * 100.0,
        );
    }

    // Show the chosen layout in detail at the paper's default.
    let th: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.6);
    let layout = compact_layout(&schema, devices, th)?;
    println!("\nlayout at th = {th}:");
    for (i, part) in layout.parts().iter().enumerate() {
        let keys_in_part: Vec<&str> = schema
            .key_indices()
            .into_iter()
            .filter(|&c| layout.key_location(c).map(|(p, _)| p) == Some(i as u32))
            .map(|c| schema.column(c).name.as_str())
            .collect();
        println!(
            "  part {i}: width {:>3} B/device, {:>2} data bytes, {:>2} padding — keys: {}",
            part.width(),
            part.data_bytes(),
            part.padding_bytes(),
            if keys_in_part.is_empty() {
                "(normal bytes)".to_string()
            } else {
                keys_in_part.join(", ")
            }
        );
    }

    // Compare with the naïve aligned strawman.
    let naive = naive_layout(&schema.with_all_keys(), devices)?;
    println!(
        "\nnaïve aligned format for comparison: {} parts, CPU eff {:.1}%, padding {:.1}%",
        naive.parts().len(),
        cpu_effective(&naive, 8) * 100.0,
        naive.padding_per_row() as f64 / naive.padded_row_bytes() as f64 * 100.0,
    );
    Ok(())
}
