//! Mixed HTAP workload: interleave transaction bursts with analytical
//! queries on PUSHtap and on the multi-instance (MI) baseline, and print
//! the freshness-vs-isolation trade the paper's Figure 2 describes.
//!
//! Run with: `cargo run --release --example htap_mixed`

use pushtap::core::{MultiInstance, Pushtap, PushtapConfig};
use pushtap::olap::Query;
use pushtap::oltp::DbConfig;
use pushtap::pim::{Ps, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut pushtap = Pushtap::new(PushtapConfig::small())?;
    let mut mi = MultiInstance::new(DbConfig::small(), SystemConfig::dimm(), 1.0)?;

    let mut gen_p = pushtap.txn_gen(123);
    let mut gen_m = pushtap.txn_gen(123); // same stream for both systems

    println!("burst  txns   | PUSHtap query (consistency)      | MI query (rebuild)");
    println!("-------------|----------------------------------|--------------------");
    let mut mi_query_total = Ps::ZERO;
    let mut push_query_total = Ps::ZERO;
    for burst in 1..=5u32 {
        let txns = 100 * burst as u64;
        // OLTP burst on both systems.
        pushtap.run_txns(&mut gen_p, txns);
        for txn in gen_m.batch(txns as usize) {
            mi.execute_txn(&txn);
        }
        // One analytical query each; both must deliver fresh data, but MI
        // pays a rebuild proportional to the burst.
        let p = pushtap.run_query(Query::Q6);
        let (mi_total, mi_rebuild) = mi.run_query(Query::Q6);
        push_query_total += p.total();
        mi_query_total += mi_total;
        println!(
            "{burst:>5}  {txns:>5} | {:>12} ({:>12})       | {:>12} ({:>12})",
            p.total().to_string(),
            p.consistency.to_string(),
            mi_total.to_string(),
            mi_rebuild.to_string(),
        );
    }
    println!(
        "\ntotal analytical time — PUSHtap: {push_query_total}, MI: {mi_query_total} ({:.2}x)",
        mi_query_total.ps() as f64 / push_query_total.ps().max(1) as f64
    );

    // Defragmentation strategies (§5.3) on the accumulated delta region.
    pushtap.run_txns(&mut gen_p, 300);
    let model = *pushtap.defrag_cost();
    println!("\ndefragmentation cost model (Eq. 1–3):");
    for w in [2u32, 8, 16, 24, 56, 152] {
        let cpu = model.comm_cpu(10_000, 0.8, 8, w);
        let pim = model.comm_pim(10_000, 0.8, 8, w);
        println!(
            "  row width {w:>3} B: CPU {:>8.1} µs, PIM {:>8.1} µs → {}",
            cpu * 1e6,
            pim * 1e6,
            model.pick(0.8, w).label()
        );
    }
    if let Some(c) = model.crossover_width(0.8) {
        println!("  crossover width at p=0.8: {c:.1} B");
    }
    let (stats, pause) = pushtap.defragment_all();
    println!(
        "\nran hybrid defragmentation: {} rows copied, {} slots reclaimed, pause {pause}",
        stats.rows_copied, stats.slots_reclaimed
    );
    Ok(())
}
