//! Quickstart: build a PUSHtap instance, run transactions and analytical
//! queries concurrently-in-spirit, and print what the paper's Figure 2(d)
//! promises — workload-specific performance, isolation, and freshness
//! from one single-instance unified-format database.
//!
//! Run with: `cargo run --release --example quickstart`

use pushtap::core::{Pushtap, PushtapConfig};
use pushtap::olap::{Query, QueryResult};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small DIMM-based system (scale ≈ 1/2000 of the paper's 20 GB).
    let mut system = Pushtap::new(PushtapConfig::small())?;
    println!(
        "built PUSHtap on a {} system: {} PIM units, {} tables",
        system.mem().kind().label(),
        system.cfg().system.pim_geometry.pim_units(),
        pushtap::chbench::ALL_TABLES.len(),
    );

    // OLTP: a TPC-C Payment/NewOrder mix.
    let mut txns = system.txn_gen(42);
    let oltp = system.run_txns(&mut txns, 500);
    println!(
        "\ncommitted {} transactions in {} ({} defrag passes costing {})",
        oltp.committed, oltp.txn_time, oltp.defrag_passes, oltp.defrag_time,
    );
    let (compute, alloc, index, chain) = oltp.breakdown.cpu_fractions();
    println!(
        "txn CPU breakdown: compute {:.1}%  alloc {:.1}%  index {:.1}%  chain {:.3}%",
        compute * 100.0,
        alloc * 100.0,
        index * 100.0,
        chain * 100.0
    );

    // OLAP: the three evaluation queries, each on a fresh snapshot.
    println!();
    for q in Query::ALL {
        let report = system.run_query(q);
        let summary = match &report.result {
            QueryResult::Q1(rows) => format!("{} groups", rows.len()),
            QueryResult::Q6 { revenue } => format!("revenue {revenue}"),
            QueryResult::Q9(rows) => format!("{} join groups", rows.len()),
        };
        println!(
            "{}: {:>10}  total {}  (snapshot {}, PIM load {}, PIM compute {}, CPU {})",
            q.name(),
            summary,
            report.total(),
            report.consistency,
            report.timing.pim_load,
            report.timing.pim_compute,
            report.timing.cpu_compute,
        );
    }

    // Freshness check: new transactions change the next Q6 answer.
    let before = system.run_query(Query::Q6).result;
    system.run_txns(&mut txns, 200);
    let after = system.run_query(Query::Q6).result;
    println!(
        "\nfreshness: Q6 answer changed after 200 more txns: {}",
        before != after
    );

    let stats = system.mem().stats();
    println!(
        "\nmemory traffic: CPU eff. bandwidth {:.1}%, PIM eff. bandwidth {:.1}%, energy {:.3} mJ",
        stats.cpu_effective() * 100.0,
        stats.pim_effective() * 100.0,
        stats.energy.total_mj()
    );
    Ok(())
}
