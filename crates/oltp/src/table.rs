//! The HTAP table: one table instance combining functional storage
//! (unified format), MVCC state, a snapshot, and the timing glue that
//! charges every operation's memory traffic to the simulator.
//!
//! The same functional substrate serves three *timing* models
//! ([`AccessModel`]): the unified format (PUSHtap), a traditional
//! row-store, and a traditional column-store — the byte values are
//! identical, only the cache-line traffic differs, which is exactly the
//! comparison Fig. 9(a) makes.

use pushtap_format::{RegionPlan, RowSlot, TableLayout, TableStore};
use pushtap_mvcc::{
    DefragCostModel, DefragStats, DefragStrategy, DeltaAllocator, DeltaFull, Snapshot,
    SnapshotUpdate, Ts, UndoLog, UndoRecord, VersionChains,
};
use pushtap_pim::{BankAddr, MemSystem, Op, Ps, Side};
use pushtap_sanitizer::{Access, AccessKind, AccessSink, NullSanitizer};
use std::sync::Arc;

use crate::cost::{Breakdown, Meter};
use crate::index::HashIndex;

/// Which storage format's traffic pattern the table is timed as.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessModel {
    /// PUSHtap's unified aligned format (parts × devices).
    Unified,
    /// Traditional contiguous row-store (the RS baseline; OLTP-ideal).
    RowStore,
    /// Traditional per-column arrays (the CS baseline).
    ColumnStore,
}

/// Construction parameters of a table instance.
#[derive(Debug, Clone)]
pub struct TableConfig {
    /// Data-region rows.
    pub n_rows: u64,
    /// Delta-region capacity in rows.
    pub delta_rows: u64,
    /// Block-circulant block size.
    pub block_rows: u32,
    /// The banks this table is sharded over.
    pub shards: Vec<BankAddr>,
    /// First DRAM row used in each bank (table placement).
    pub base_dram_row: u32,
    /// Timing model.
    pub model: AccessModel,
    /// Which memory the instance lives in.
    pub side: Side,
    /// Interleave granularity (bytes per device per burst).
    pub granularity: u32,
    /// Device row-buffer bytes (for chunk → DRAM-row mapping).
    pub bank_row_bytes: u32,
    /// Rows per bank (DRAM rows wrap modulo this).
    pub rows_per_bank: u32,
}

/// One timed operation's outcome.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpResult {
    /// Completion time.
    pub end: Ps,
    /// Component breakdown.
    pub breakdown: Breakdown,
}

/// A cache-line access this table needs for an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineRef {
    /// The bank holding the line.
    pub bank: BankAddr,
    /// DRAM row within the bank.
    pub dram_row: u32,
    /// Useful bytes in the 64-byte line.
    pub useful: u32,
}

/// An HTAP table instance.
#[derive(Debug, Clone)]
pub struct HtapTable {
    store: TableStore,
    chains: VersionChains,
    alloc: DeltaAllocator,
    snapshot: Snapshot,
    index: HashIndex,
    cfg: TableConfig,
    insert_cursor: u64,
    undo: UndoLog,
    /// Shadow access tracker ([`NullSanitizer`] by default — one
    /// disabled-branch per timed operation, nothing recorded). Armed
    /// via [`HtapTable::set_access_sink`] with the table's identity so
    /// recorded accesses carry (table discriminant, *global* row).
    san: Arc<dyn AccessSink>,
    /// The executor's table discriminant stamped on recorded accesses.
    san_table: u32,
    /// This instance's first global row (local + base = global).
    san_base: u64,
    /// The engine (shard index) stamped on recorded accesses.
    san_track: u32,
}

impl HtapTable {
    /// Creates a table with the given layout and configuration.
    ///
    /// # Panics
    ///
    /// Panics if the shard list is empty.
    pub fn new(layout: TableLayout, cfg: TableConfig) -> HtapTable {
        assert!(!cfg.shards.is_empty(), "table needs at least one shard");
        let devices = layout.devices();
        let store = TableStore::new(layout, cfg.block_rows, cfg.n_rows, cfg.delta_rows);
        let arena_rows = store.region().arena_rows();
        HtapTable {
            alloc: DeltaAllocator::new(devices, arena_rows),
            snapshot: Snapshot::new(cfg.n_rows, devices, arena_rows),
            chains: VersionChains::new(),
            index: HashIndex::with_capacity(cfg.n_rows),
            store,
            cfg,
            insert_cursor: 0,
            undo: UndoLog::new(),
            san: Arc::new(NullSanitizer),
            san_table: 0,
            san_base: 0,
            san_track: 0,
        }
    }

    /// Installs a shadow access tracker: every timed read, update
    /// (write + chain growth), and insert records into it, stamped
    /// with the engine's `track`, this `table` discriminant, and the
    /// *global* row (`row_base` + local row). The default
    /// [`NullSanitizer`] reports itself disabled, so instrumented
    /// paths cost exactly one branch.
    pub fn set_access_sink(
        &mut self,
        san: Arc<dyn AccessSink>,
        table: u32,
        row_base: u64,
        track: u32,
    ) {
        self.san = san;
        self.san_table = table;
        self.san_base = row_base;
        self.san_track = track;
    }

    /// Records one physical access into the armed sink (callers check
    /// [`AccessSink::enabled`] first).
    fn record_access(&self, kind: AccessKind, local_row: u64, ts: Ts) {
        self.san.record_access(
            self.san_track,
            ts.0,
            Access {
                kind,
                table: self.san_table,
                key: self.san_base + local_row,
            },
        );
    }

    /// Opens a transaction scope: every subsequent mutation (delta-slot
    /// allocation, row-version write, chain growth, index insert,
    /// insert-ring advance) is recorded in the table's [`UndoLog`] until
    /// [`HtapTable::commit_txn`] or [`HtapTable::abort_txn`] closes the
    /// scope. Outside a scope, mutations are unrecorded (statement-level
    /// atomicity only), which is the pre-existing behaviour.
    ///
    /// # Panics
    ///
    /// Panics on nested scopes.
    ///
    /// # Examples
    ///
    /// ```
    /// use pushtap_format::{compact_layout, paper_example_schema};
    /// use pushtap_oltp::{AccessModel, HtapTable, TableConfig};
    /// use pushtap_pim::{BankAddr, Geometry, MemSystem, Ps, Side};
    /// use pushtap_oltp::{CostModel, Meter};
    /// use pushtap_pim::CpuSpec;
    /// use pushtap_mvcc::Ts;
    ///
    /// let layout = compact_layout(&paper_example_schema(), 8, 0.6)?;
    /// let g = Geometry::dimm();
    /// let mut table = HtapTable::new(layout, TableConfig {
    ///     n_rows: 64, delta_rows: 16, block_rows: 16,
    ///     shards: vec![BankAddr::new(0, 0, 0)], base_dram_row: 0,
    ///     model: AccessModel::Unified, side: Side::Pim,
    ///     granularity: g.granularity, bank_row_bytes: g.row_bytes,
    ///     rows_per_bank: g.rows_per_bank,
    /// });
    /// let mut mem = MemSystem::dimm();
    /// let meter = Meter::new(CostModel::default(), CpuSpec::xeon_like());
    /// let values: Vec<Vec<u8>> = vec![
    ///     vec![1, 1], vec![1, 2], vec![1, 3, 3, 3],
    ///     vec![1, 4, 4, 4, 4, 4, 4, 4, 4], vec![1, 5], vec![1, 6],
    /// ];
    ///
    /// // A transaction inserts a row, then aborts: every effect unwinds.
    /// table.begin_txn();
    /// table.timed_insert(&mut mem, &meter, &values, Ts(1), Ps::ZERO)?;
    /// assert_eq!(table.live_delta_rows(), 1);
    /// table.abort_txn();
    /// assert_eq!(table.live_delta_rows(), 0);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn begin_txn(&mut self) {
        self.undo.begin();
    }

    /// Whether an active (recording) transaction scope is open.
    pub fn in_txn(&self) -> bool {
        self.undo.is_active()
    }

    /// Whether any prepared scopes are parked on this table (two-phase
    /// commit participants awaiting their coordinator decisions — a
    /// pipelined coordinator can hold several at once).
    pub fn in_prepared_txn(&self) -> bool {
        self.undo.prepared_scopes() > 0
    }

    /// Parks the active transaction scope in the *prepared* state under
    /// the transaction's pinned commit timestamp `ts`: the undo records
    /// are pinned for the coordinator's decision and every version the
    /// scope wrote is marked prepared-but-uncommitted on the version
    /// chains. The scope resolves through
    /// [`HtapTable::commit_prepared_txn`] or
    /// [`HtapTable::abort_prepared_txn`]; further transactions may open
    /// and even prepare their own scopes meanwhile, as long as they
    /// touch disjoint rows (the coordinator's conflict scheduler
    /// guarantees it).
    ///
    /// # Panics
    ///
    /// Panics unless a scope is active, or if `ts` already has a
    /// prepared scope.
    pub fn prepare_txn(&mut self, ts: Ts) {
        for rec in self.undo.records() {
            if let UndoRecord::VersionLink { row } = rec {
                self.chains.mark_prepared(*row, ts);
            }
        }
        self.undo.prepare(ts);
    }

    /// Versions written by prepared-but-uncommitted scopes (zero when no
    /// two-phase commit is in flight on this table).
    pub fn prepared_versions(&self) -> usize {
        self.chains.prepared_count()
    }

    /// Closes the active transaction scope keeping all effects. Returns
    /// the number of undo records discarded.
    pub fn commit_txn(&mut self) -> usize {
        self.undo.commit()
    }

    /// The coordinator's commit decision for the scope prepared at `ts`:
    /// its effects stay, its prepared version marks resolve as
    /// committed; other pending scopes are untouched. Returns the number
    /// of undo records discarded.
    ///
    /// # Panics
    ///
    /// Panics if no scope is prepared at `ts`.
    pub fn commit_prepared_txn(&mut self, ts: Ts) -> usize {
        self.chains.commit_prepared(ts);
        self.undo.commit_prepared(ts)
    }

    /// The coordinator's abort decision for the scope prepared at `ts`:
    /// that scope's records replay in reverse (other pending scopes are
    /// untouched — their rows are disjoint by conflict scheduling).
    /// Returns the number of records applied.
    ///
    /// # Panics
    ///
    /// Panics if no scope is prepared at `ts`.
    pub fn abort_prepared_txn(&mut self, ts: Ts) -> usize {
        let records = self.undo.abort_prepared(ts);
        self.apply_undo(records)
    }

    /// Rolls back every effect recorded since [`HtapTable::begin_txn`]
    /// and closes the scope: released delta slots return to their
    /// arenas' free lists, version chains and the commit log shrink back,
    /// row bytes are restored, index entries and the insert-ring cursor
    /// revert. Returns the number of records applied.
    ///
    /// Rollback is CPU-side metadata work (like the version chains,
    /// §5.1) and charges no simulated memory traffic; the caller
    /// accounts the retry's cost by re-executing the transaction.
    pub fn abort_txn(&mut self) -> usize {
        let records = self.undo.abort();
        self.apply_undo(records)
    }

    /// Applies rollback records (newest-first) to the table's state.
    fn apply_undo(&mut self, records: Vec<UndoRecord>) -> usize {
        let n = records.len();
        for rec in records {
            match rec {
                UndoRecord::VersionLink { row } => {
                    self.chains.undo_update(row);
                }
                UndoRecord::RowWrite { slot, pre_image } => {
                    self.store.write_row(slot, &pre_image);
                }
                UndoRecord::SlotAlloc { rotation, idx } => {
                    self.alloc.release(rotation, idx);
                }
                UndoRecord::IndexInsert { key, prev } => match prev {
                    Some(row) => {
                        self.index.insert(key, row);
                    }
                    None => {
                        self.index.remove(key);
                    }
                },
                UndoRecord::RingAdvance { prev } => self.insert_cursor = prev,
            }
        }
        n
    }

    /// The table's layout.
    pub fn layout(&self) -> &TableLayout {
        self.store.layout()
    }

    /// The region plan.
    pub fn region(&self) -> &RegionPlan {
        self.store.region()
    }

    /// The functional store.
    pub fn store(&self) -> &TableStore {
        &self.store
    }

    /// The version chains.
    pub fn chains(&self) -> &VersionChains {
        &self.chains
    }

    /// The current snapshot.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// The table configuration.
    pub fn config(&self) -> &TableConfig {
        &self.cfg
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> u64 {
        self.cfg.n_rows
    }

    /// Live delta versions awaiting defragmentation.
    pub fn live_delta_rows(&self) -> u64 {
        self.alloc.live_total()
    }

    /// The bank holding `row` (blocks round-robin across shards).
    pub fn shard_of(&self, row: u64) -> BankAddr {
        self.shard_salted(row, 0)
    }

    /// The bank holding one part (or column array) of `row`: different
    /// parts of a table live on different channels so the CPU reads them
    /// in parallel (§4.1.1: "The two parts are mapped to different memory
    /// channels").
    fn shard_salted(&self, row: u64, salt: u64) -> BankAddr {
        let block = row / self.cfg.block_rows as u64;
        let n = self.cfg.shards.len() as u64;
        self.cfg.shards[((block + salt.wrapping_mul(37)) % n) as usize]
    }

    fn dram_row(&self, dev_offset: u64) -> u32 {
        let r = self.cfg.base_dram_row as u64 + dev_offset / self.cfg.bank_row_bytes as u64;
        (r % self.cfg.rows_per_bank as u64) as u32
    }

    /// Cache lines needed to access a full row version under the current
    /// access model.
    pub fn lines_for(&self, slot: RowSlot) -> Vec<LineRef> {
        let schema = self.store.layout().schema();
        let g = self.cfg.granularity as u64;
        let line_bytes = 64u64;
        let row = match slot {
            RowSlot::Data { row } => row,
            // Delta versions shard with their arena (approximation: the
            // arena index spreads like a row index).
            RowSlot::Delta { rotation, idx } => {
                rotation as u64 * self.store.region().arena_rows() + idx
            }
        };
        let shard_row = row % self.cfg.n_rows.max(1);
        let bank = self.shard_of(shard_row);
        match self.cfg.model {
            AccessModel::Unified => {
                let mut lines = Vec::new();
                for (p, _) in self.store.layout().parts().iter().enumerate() {
                    let bank = self.shard_salted(shard_row, p as u64 + 1);
                    let (start, width) = match slot {
                        RowSlot::Data { row } => (
                            self.store.region().data_offset(p as u32, row),
                            self.store.region().parts()[p].width as u64,
                        ),
                        RowSlot::Delta { rotation, idx } => (
                            self.store.region().delta_offset(p as u32, rotation, idx),
                            self.store.region().parts()[p].width as u64,
                        ),
                    };
                    let c0 = start / g;
                    let c1 = (start + width - 1) / g + 1;
                    let chunks = c1 - c0;
                    let useful_total = self.store.layout().parts()[p].data_bytes() as u64;
                    for c in c0..c1 {
                        lines.push(LineRef {
                            bank,
                            dram_row: self.dram_row(c * g),
                            useful: (useful_total / chunks).min(line_bytes) as u32,
                        });
                    }
                }
                lines
            }
            AccessModel::RowStore => {
                let w = schema.row_width() as u64;
                let offset = row * w;
                let l0 = offset / line_bytes;
                let l1 = (offset + w - 1) / line_bytes + 1;
                (l0..l1)
                    .map(|l| LineRef {
                        bank,
                        dram_row: self.dram_row(l * g),
                        useful: (w / (l1 - l0)).min(line_bytes) as u32,
                    })
                    .collect()
            }
            AccessModel::ColumnStore => {
                let mut lines = Vec::new();
                let mut base = 0u64;
                for (ci, col) in schema.columns().iter().enumerate() {
                    let bank = self.shard_salted(shard_row, ci as u64 + 1);
                    let w = col.width as u64;
                    let offset = base + row * w;
                    let l0 = offset / line_bytes;
                    let l1 = (offset + w - 1) / line_bytes + 1;
                    for l in l0..l1 {
                        lines.push(LineRef {
                            bank,
                            dram_row: self.dram_row(l * g),
                            useful: (w / (l1 - l0)).min(line_bytes) as u32,
                        });
                    }
                    base += w * self.cfg.n_rows;
                }
                lines
            }
        }
    }

    fn issue_lines(&self, mem: &mut MemSystem, lines: &[LineRef], op: Op, at: Ps) -> Ps {
        let mut end = at;
        for l in lines {
            let done = mem
                .access(self.cfg.side, l.bank, l.dram_row, op, l.useful.min(64), at)
                .done;
            end = end.max(done);
        }
        end
    }

    /// Timed read of the row visible at `ts`. Returns the column values
    /// and the operation result.
    pub fn timed_read(
        &mut self,
        mem: &mut MemSystem,
        meter: &Meter,
        row: u64,
        ts: Ts,
        at: Ps,
    ) -> (Vec<Vec<u8>>, OpResult) {
        let mut b = Breakdown::default();
        b.indexing += meter.indexing(1);
        self.index.get(row);
        let (slot, hops) = self.chains.visible_at(row, ts);
        b.chain += meter.chain(hops as u64);
        let cpu_ready = at + b.cpu_total();
        let lines = self.lines_for(slot);
        let issue = meter.line_issue(lines.len() as u64);
        let mem_end = self.issue_lines(mem, &lines, Op::Read, cpu_ready) + issue;
        b.memory += mem_end.saturating_sub(cpu_ready);
        let values = self.store.read_row(slot);
        let compute = meter.compute(values.len() as u64);
        b.compute += compute;
        self.chains.mark_read(slot, ts);
        if self.san.enabled() {
            self.record_access(AccessKind::Read, row, ts);
        }
        (
            values,
            OpResult {
                end: mem_end + compute,
                breakdown: b,
            },
        )
    }

    /// Timed MVCC update: reads the newest version, writes a new version
    /// into the delta region, and chains it.
    ///
    /// # Errors
    ///
    /// Returns [`DeltaFull`] when the row's rotation arena is exhausted —
    /// the engine must defragment.
    pub fn timed_update(
        &mut self,
        mem: &mut MemSystem,
        meter: &Meter,
        row: u64,
        ts: Ts,
        changes: &[(u32, Vec<u8>)],
        at: Ps,
    ) -> Result<OpResult, DeltaFull> {
        let mut b = Breakdown::default();
        b.indexing += meter.indexing(1);
        self.index.get(row);
        let newest = self.chains.newest_slot(row);
        // Read the current version (read-modify-write).
        let read_lines = self.lines_for(newest);
        let cpu_ready = at + b.cpu_total();
        let read_end = self.issue_lines(mem, &read_lines, Op::Read, cpu_ready)
            + meter.line_issue(read_lines.len() as u64);
        b.memory += read_end.saturating_sub(cpu_ready);
        let mut values = self.store.read_row(newest);

        // Allocate the new version in the origin row's rotation arena.
        let rotation = self.store.arena_for_row(row);
        let idx = self.alloc.alloc(rotation)?;
        self.undo.record(UndoRecord::SlotAlloc { rotation, idx });
        b.alloc += meter.alloc(1);

        for (col, v) in changes {
            values[*col as usize] = v.clone();
        }
        b.compute += meter.compute(changes.len() as u64 * 2);
        let new_slot = RowSlot::Delta { rotation, idx };
        if self.undo.is_active() {
            self.undo.record(UndoRecord::RowWrite {
                slot: new_slot,
                pre_image: self.store.read_row(new_slot),
            });
        }
        self.store.write_row(new_slot, &values);
        self.chains.record_update(row, new_slot, ts);
        self.undo.record(UndoRecord::VersionLink { row });
        if self.san.enabled() {
            self.record_access(AccessKind::Write, row, ts);
            self.record_access(AccessKind::ChainGrow, row, ts);
        }

        // Commit write-back: clflush the new version's lines (§6.3).
        let write_lines = self.lines_for(new_slot);
        let write_start = read_end + b.alloc + b.compute;
        let write_end = self.issue_lines(mem, &write_lines, Op::Write, write_start)
            + meter.line_issue(write_lines.len() as u64);
        b.memory += write_end.saturating_sub(write_start);
        b.compute += meter.commit_barrier();
        Ok(OpResult {
            end: write_end + meter.commit_barrier(),
            breakdown: b,
        })
    }

    /// Timed insert: allocates the next row slot of the (pre-sized)
    /// population and writes the new row as a delta *version* of it, so
    /// the insert obeys snapshot isolation exactly like an update: OLAP
    /// sees it only after the next snapshot, and defragmentation folds it
    /// into the data region.
    ///
    /// # Errors
    ///
    /// Returns [`DeltaFull`] when the target rotation arena is exhausted.
    pub fn timed_insert(
        &mut self,
        mem: &mut MemSystem,
        meter: &Meter,
        values: &[Vec<u8>],
        ts: Ts,
        at: Ps,
    ) -> Result<(u64, OpResult), DeltaFull> {
        let row = self.insert_cursor % self.cfg.n_rows;
        // Advance the ring only once the slot allocation succeeded, so a
        // DeltaFull retry (after defragmentation) reuses the same slot.
        let r = self.timed_insert_at(mem, meter, row, values, ts, at)?;
        self.undo.record(UndoRecord::RingAdvance {
            prev: self.insert_cursor,
        });
        self.insert_cursor += 1;
        Ok((row, r))
    }

    /// [`HtapTable::timed_insert`] with an explicitly chosen target row —
    /// used by executors that stripe the insert ring deterministically
    /// (e.g. by home warehouse) so partitioned shards land each insert on
    /// the same global row an unpartitioned instance would.
    ///
    /// # Errors
    ///
    /// Returns [`DeltaFull`] when the target rotation arena is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn timed_insert_at(
        &mut self,
        mem: &mut MemSystem,
        meter: &Meter,
        row: u64,
        values: &[Vec<u8>],
        ts: Ts,
        at: Ps,
    ) -> Result<OpResult, DeltaFull> {
        assert!(row < self.cfg.n_rows, "insert row {row} out of range");
        let mut b = Breakdown::default();
        let rotation = self.store.arena_for_row(row);
        let idx = self.alloc.alloc(rotation)?;
        self.undo.record(UndoRecord::SlotAlloc { rotation, idx });
        b.alloc += meter.alloc(1);
        b.indexing += meter.indexing(1);
        let prev = self.index.insert(row, row);
        self.undo.record(UndoRecord::IndexInsert { key: row, prev });
        let new_slot = RowSlot::Delta { rotation, idx };
        if self.undo.is_active() {
            self.undo.record(UndoRecord::RowWrite {
                slot: new_slot,
                pre_image: self.store.read_row(new_slot),
            });
        }
        self.store.write_row(new_slot, values);
        self.chains.record_update(row, new_slot, ts);
        self.undo.record(UndoRecord::VersionLink { row });
        if self.san.enabled() {
            // One InsertWrite covers the row version *and* its chain
            // growth: the physical row is the ring cursor's pick, so
            // coverage is vouched for by the declared ring, not a row.
            self.record_access(AccessKind::InsertWrite, row, ts);
        }
        b.compute += meter.compute(values.len() as u64);
        let cpu_ready = at + b.cpu_total();
        let lines = self.lines_for(new_slot);
        let end = self.issue_lines(mem, &lines, Op::Write, cpu_ready)
            + meter.line_issue(lines.len() as u64);
        b.memory += end.saturating_sub(cpu_ready);
        Ok(OpResult { end, breakdown: b })
    }

    /// Loads a row functionally (no timing) — used for population.
    pub fn load_row(&mut self, row: u64, values: &[Vec<u8>]) {
        self.store.write_row(RowSlot::Data { row }, values);
        self.index.insert(row, row);
    }

    /// The slot of `row` visible in the current snapshot.
    pub fn snapshot_slot(&self, row: u64) -> RowSlot {
        let mut slot = self.chains.newest_slot(row);
        // Walk back until we find the snapshot-visible version.
        loop {
            if self.snapshot.visible(slot) {
                return slot;
            }
            match self.chains.meta(slot).and_then(|m| m.prev) {
                Some(prev) => slot = prev,
                None => return RowSlot::Data { row },
            }
        }
    }

    /// Reads the version of `row` visible in the current *snapshot* (what
    /// the OLAP engine sees), without timing.
    pub fn snapshot_read(&self, row: u64) -> Vec<Vec<u8>> {
        self.store.read_row(self.snapshot_slot(row))
    }

    /// Reads one column of the snapshot-visible version of `row` — the
    /// per-column access a PIM scan performs.
    pub fn snapshot_read_value(&self, row: u64, col: u32) -> Vec<u8> {
        self.store.read_value(self.snapshot_slot(row), col)
    }

    /// Timed snapshot update (§5.2): folds the commit log into the
    /// bitmaps. CPU reads metadata from host memory and writes bitmap
    /// lines on the PIM side (one aligned write updates all devices).
    pub fn timed_snapshot_update(
        &mut self,
        mem: &mut MemSystem,
        meter: &Meter,
        upto: Ts,
        at: Ps,
    ) -> (SnapshotUpdate, Ps) {
        // A snapshot must never publish a version whose two-phase-commit
        // decision is still pending; coordinators resolve every prepared
        // scope before letting queries in.
        assert_eq!(
            self.chains.prepared_count(),
            0,
            "snapshot with prepared-but-uncommitted versions"
        );
        let stats = self.snapshot.update(self.chains.log(), upto);
        // Metadata reads: 16 B per entry from host DRAM, 4 entries/line.
        let meta_lines = stats.entries_applied.div_ceil(4);
        let host_bank = BankAddr::new(0, 0, 0);
        let mut end = at;
        for i in 0..meta_lines {
            let done = mem
                .access(Side::Host, host_bank, (i / 16) as u32, Op::Read, 64, at)
                .done;
            end = end.max(done);
        }
        // Bitmap writes on the PIM side: data-region flips scatter (one
        // aligned write each, updating every device at once); delta-region
        // flips cluster because delta slots allocate sequentially.
        let bitmap_base_row = self.dram_row(self.store.region().bitmap_base());
        let writes = stats.data_flips + stats.delta_flips.div_ceil(64);
        for i in 0..writes {
            let bank = self.cfg.shards[(i % self.cfg.shards.len() as u64) as usize];
            let done = mem
                .access(self.cfg.side, bank, bitmap_base_row, Op::Write, 8, at)
                .done;
            end = end.max(done);
        }
        // Per-entry processing: read the metadata fields and flip two
        // bits (~12 cycles in a tight scan loop).
        end += meter.cpu.cycles(stats.entries_applied * 12);
        (stats, end)
    }

    /// Defragments the table (§5.3): copies every row's newest version
    /// back to the data region, reclaims delta slots, clears chains and
    /// log, and resets the snapshot. Returns execution stats and the
    /// communication time per the chosen strategy and cost model.
    pub fn defragment(
        &mut self,
        model: &DefragCostModel,
        strategy: DefragStrategy,
        upto: Ts,
    ) -> (DefragStats, f64) {
        let mut stats = DefragStats::default();
        // Sorted for determinism: the reclaim order feeds the delta
        // free-lists, which decides future version placement (and thus
        // timing); HashMap order would vary per process.
        let mut rows: Vec<u64> = self.chains.updated_rows().collect();
        rows.sort_unstable();
        let d = self.store.layout().devices();
        let padded = self.store.layout().padded_row_bytes() as u64;
        for row in rows {
            let (slots, steps) = self.chains.chain_slots(row);
            stats.chain_steps += steps as u64;
            if let Some(&RowSlot::Delta { rotation, idx }) = slots.first() {
                self.store.copy_back(row, rotation, idx);
                stats.rows_copied += 1;
                stats.bytes_copied += padded;
            }
            for slot in &slots {
                if let RowSlot::Delta { rotation, idx } = slot {
                    self.alloc.release(*rotation, *idx);
                    stats.slots_reclaimed += 1;
                }
            }
        }
        stats.meta_bytes = stats.slots_reclaimed * model.meta_bytes as u64;
        // Communication time: metadata once per table, data movement per
        // part (Hybrid picks per part width, §7.4).
        let n = stats.slots_reclaimed.max(1);
        let p = stats.rows_copied as f64 / n as f64;
        let widths: Vec<u32> = self
            .store
            .layout()
            .parts()
            .iter()
            .map(|pt| pt.width())
            .collect();
        let seconds = model.comm_parts(strategy, n, p, d, &widths);
        self.chains.clear_after_defrag();
        self.snapshot.reset_after_defrag(upto);
        (stats, seconds)
    }

    /// Incremental garbage collection below `before` (inclusive): each
    /// row's newest committed version at or below the cut is copied back
    /// into the data region, it and every older version return to the
    /// delta free-lists, and their commit-log entries are trimmed —
    /// without the stop-the-world reset a full
    /// [`HtapTable::defragment`] pays. Versions above the cut, rows with
    /// prepared-but-uncommitted versions, and the snapshot's visible
    /// bytes are untouched (freed slots a snapshot still held visible
    /// are repointed at the data region, which now carries exactly
    /// their bytes).
    ///
    /// Returns per-pass stats and the communication seconds of the
    /// copy-back traffic under the same strategy/cost model as
    /// defragmentation.
    pub fn gc(
        &mut self,
        model: &DefragCostModel,
        strategy: DefragStrategy,
        before: Ts,
    ) -> (TableGcPass, f64) {
        let out = self.chains.gc(before);
        let mut pass = TableGcPass {
            chain_steps: out.traverse_steps as u64,
            log_trimmed: out.log_trimmed.len() as u64,
            ..TableGcPass::default()
        };
        if out.folds.is_empty() {
            return (pass, 0.0);
        }
        let padded = self.store.layout().padded_row_bytes() as u64;
        for fold in &out.folds {
            if let RowSlot::Delta { rotation, idx } = fold.fold_slot {
                self.store.copy_back(fold.row, rotation, idx);
                pass.rows_folded += 1;
                pass.bytes_copied += padded;
            }
            self.snapshot.note_gc_fold(fold.row, &fold.freed);
            if self.san.enabled() {
                self.san.reclaim_version(
                    self.san_track,
                    self.san_table,
                    self.san_base + fold.row,
                    fold.fold_ts.0,
                );
            }
            for &slot in &fold.freed {
                if let RowSlot::Delta { rotation, idx } = slot {
                    self.alloc.release(rotation, idx);
                    pass.slots_recycled += 1;
                }
            }
        }
        self.snapshot.note_log_trimmed(&out.log_trimmed);
        // Copy-back communication: same per-part model as defragmentation,
        // over only the slots this pass actually reclaimed.
        let d = self.store.layout().devices();
        let n = pass.slots_recycled.max(1);
        let p = pass.rows_folded as f64 / n as f64;
        let widths: Vec<u32> = self
            .store
            .layout()
            .parts()
            .iter()
            .map(|pt| pt.width())
            .collect();
        let seconds = model.comm_parts(strategy, n, p, d, &widths);
        (pass, seconds)
    }

    /// Length of the commit log awaiting snapshot consumption — the
    /// gauge the soak benchmark proves plateaus under GC.
    pub fn commit_log_len(&self) -> usize {
        self.chains.log().len()
    }
}

/// Statistics of one [`HtapTable::gc`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableGcPass {
    /// Rows whose newest eligible version was copied back to the data
    /// region.
    pub rows_folded: u64,
    /// Delta slots returned to the free-lists.
    pub slots_recycled: u64,
    /// Commit-log entries trimmed.
    pub log_trimmed: u64,
    /// Chain hops walked planning the pass.
    pub chain_steps: u64,
    /// Bytes moved by the copy-backs.
    pub bytes_copied: u64,
}

impl TableGcPass {
    /// Whether the pass reclaimed anything.
    pub fn reclaimed_any(&self) -> bool {
        self.slots_recycled > 0 || self.log_trimmed > 0
    }

    /// Accumulates another pass's counters (per-table passes merge into
    /// the per-engine total).
    pub fn absorb(&mut self, other: TableGcPass) {
        self.rows_folded += other.rows_folded;
        self.slots_recycled += other.slots_recycled;
        self.log_trimmed += other.log_trimmed;
        self.chain_steps += other.chain_steps;
        self.bytes_copied += other.bytes_copied;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostModel, Meter};
    use pushtap_format::{compact_layout, paper_example_schema};
    use pushtap_pim::{CpuSpec, Geometry};

    fn table(model: AccessModel) -> HtapTable {
        let layout = compact_layout(&paper_example_schema(), 8, 0.6).unwrap();
        let g = Geometry::dimm();
        HtapTable::new(
            layout,
            TableConfig {
                n_rows: 256,
                delta_rows: 64,
                block_rows: 16,
                shards: vec![BankAddr::new(0, 0, 0), BankAddr::new(0, 0, 1)],
                base_dram_row: 0,
                model,
                side: Side::Pim,
                granularity: g.granularity,
                bank_row_bytes: g.row_bytes,
                rows_per_bank: g.rows_per_bank,
            },
        )
    }

    fn meter() -> Meter {
        Meter::new(CostModel::default(), CpuSpec::xeon_like())
    }

    fn values(seed: u8) -> Vec<Vec<u8>> {
        vec![
            vec![seed, 1],
            vec![seed, 2],
            vec![seed, 3, 3, 3],
            vec![seed, 4, 4, 4, 4, 4, 4, 4, 4],
            vec![seed, 5],
            vec![seed, 6],
        ]
    }

    #[test]
    fn read_returns_loaded_values_with_time() {
        let mut t = table(AccessModel::Unified);
        let mut mem = MemSystem::dimm();
        t.load_row(5, &values(9));
        let (vals, r) = t.timed_read(&mut mem, &meter(), 5, Ts(1), Ps::ZERO);
        assert_eq!(vals, values(9));
        assert!(r.end > Ps::ZERO);
        assert!(r.breakdown.memory > Ps::ZERO);
        assert!(r.breakdown.indexing > Ps::ZERO);
    }

    #[test]
    fn update_creates_visible_version() {
        let mut t = table(AccessModel::Unified);
        let mut mem = MemSystem::dimm();
        t.load_row(5, &values(1));
        t.timed_update(&mut mem, &meter(), 5, Ts(2), &[(0, vec![7, 7])], Ps::ZERO)
            .unwrap();
        // Reading at a later ts sees the new value; at an earlier ts the old.
        let (new_vals, _) = t.timed_read(&mut mem, &meter(), 5, Ts(3), Ps::ZERO);
        assert_eq!(new_vals[0], vec![7, 7]);
        let (old_vals, _) = t.timed_read(&mut mem, &meter(), 5, Ts(1), Ps::ZERO);
        assert_eq!(old_vals[0], vec![1, 1]);
        assert_eq!(t.live_delta_rows(), 1);
    }

    #[test]
    fn snapshot_sees_only_snapshotted_versions() {
        let mut t = table(AccessModel::Unified);
        let mut mem = MemSystem::dimm();
        t.load_row(5, &values(1));
        t.timed_update(&mut mem, &meter(), 5, Ts(2), &[(0, vec![7, 7])], Ps::ZERO)
            .unwrap();
        // Before snapshotting, OLAP still sees the origin.
        assert_eq!(t.snapshot_read(5)[0], vec![1, 1]);
        t.timed_snapshot_update(&mut mem, &meter(), Ts(2), Ps::ZERO);
        assert_eq!(t.snapshot_read(5)[0], vec![7, 7]);
        // A later update not yet snapshotted stays invisible.
        t.timed_update(&mut mem, &meter(), 5, Ts(5), &[(0, vec![8, 8])], Ps::ZERO)
            .unwrap();
        assert_eq!(t.snapshot_read(5)[0], vec![7, 7]);
    }

    #[test]
    fn defragment_restores_data_region() {
        let mut t = table(AccessModel::Unified);
        let mut mem = MemSystem::dimm();
        let cost = DefragCostModel::new(16.0, 1e9, 3e9);
        t.load_row(5, &values(1));
        t.timed_update(&mut mem, &meter(), 5, Ts(2), &[(0, vec![7, 7])], Ps::ZERO)
            .unwrap();
        t.timed_update(&mut mem, &meter(), 5, Ts(3), &[(1, vec![9, 9])], Ps::ZERO)
            .unwrap();
        let (stats, secs) = t.defragment(&cost, DefragStrategy::Hybrid, Ts(3));
        assert_eq!(stats.rows_copied, 1);
        assert_eq!(stats.slots_reclaimed, 2);
        assert!(stats.chain_steps >= 2);
        assert!(secs > 0.0);
        assert_eq!(t.live_delta_rows(), 0);
        // Data region now holds the newest version, visible to OLAP.
        assert_eq!(t.snapshot_read(5)[0], vec![7, 7]);
        assert_eq!(t.snapshot_read(5)[1], vec![9, 9]);
    }

    /// GC folds the reclaimable tail back to the data region without the
    /// stop-the-world snapshot reset a full defragmentation pays —
    /// versions above the cut stay on the chain and readable.
    #[test]
    fn gc_folds_below_the_cut_and_keeps_newer_versions() {
        let mut t = table(AccessModel::Unified);
        let mut mem = MemSystem::dimm();
        let cost = DefragCostModel::new(16.0, 1e9, 3e9);
        t.load_row(5, &values(1));
        t.timed_update(&mut mem, &meter(), 5, Ts(2), &[(0, vec![7, 7])], Ps::ZERO)
            .unwrap();
        t.timed_update(&mut mem, &meter(), 5, Ts(3), &[(1, vec![9, 9])], Ps::ZERO)
            .unwrap();
        t.timed_update(&mut mem, &meter(), 5, Ts(8), &[(0, vec![4, 4])], Ps::ZERO)
            .unwrap();
        assert_eq!(t.live_delta_rows(), 3);
        let (pass, secs) = t.gc(&cost, DefragStrategy::Hybrid, Ts(5));
        assert!(pass.reclaimed_any());
        assert_eq!(pass.rows_folded, 1);
        assert_eq!(pass.slots_recycled, 2, "T3 and T2 fold, T8 survives");
        assert_eq!(pass.log_trimmed, 2);
        assert!(secs > 0.0);
        assert_eq!(t.live_delta_rows(), 1);
        assert_eq!(t.commit_log_len(), 1);
        // The data region holds the folded T3 version; the T8 version
        // still reads through the chain.
        let (vals, _) = t.timed_read(&mut mem, &meter(), 5, Ts(5), Ps::ZERO);
        assert_eq!((vals[0].clone(), vals[1].clone()), (vec![7, 7], vec![9, 9]));
        let (vals, _) = t.timed_read(&mut mem, &meter(), 5, Ts(9), Ps::ZERO);
        assert_eq!(vals[0], vec![4, 4]);
        // A second pass at the same cut reclaims nothing.
        let (pass, secs) = t.gc(&cost, DefragStrategy::Hybrid, Ts(5));
        assert!(!pass.reclaimed_any());
        assert_eq!(secs, 0.0);
    }

    /// A snapshot pinned at an old cut reads the same bytes before and
    /// after GC folds its visible version into the data region.
    #[test]
    fn gc_preserves_pinned_snapshot_reads() {
        let mut t = table(AccessModel::Unified);
        let mut mem = MemSystem::dimm();
        let cost = DefragCostModel::new(16.0, 1e9, 3e9);
        t.load_row(5, &values(1));
        t.timed_update(&mut mem, &meter(), 5, Ts(2), &[(0, vec![7, 7])], Ps::ZERO)
            .unwrap();
        t.timed_snapshot_update(&mut mem, &meter(), Ts(2), Ps::ZERO);
        let pinned = t.snapshot_read(5);
        // Later traffic plus GC at the pinned cut.
        t.timed_update(&mut mem, &meter(), 5, Ts(6), &[(0, vec![8, 8])], Ps::ZERO)
            .unwrap();
        let (pass, _) = t.gc(&cost, DefragStrategy::Hybrid, Ts(2));
        assert_eq!(pass.slots_recycled, 1);
        assert_eq!(
            t.snapshot_read(5),
            pinned,
            "the pinned snapshot repointed at the data region byte-for-byte"
        );
        // Advancing the snapshot over the trimmed log still works and
        // picks up the surviving T6 version.
        t.timed_snapshot_update(&mut mem, &meter(), Ts(6), Ps::ZERO);
        assert_eq!(t.snapshot_read(5)[0], vec![8, 8]);
    }

    /// GC skips rows with prepared-but-uncommitted versions entirely.
    #[test]
    fn gc_skips_prepared_rows() {
        let mut t = table(AccessModel::Unified);
        let mut mem = MemSystem::dimm();
        let cost = DefragCostModel::new(16.0, 1e9, 3e9);
        t.load_row(5, &values(1));
        t.begin_txn();
        t.timed_update(&mut mem, &meter(), 5, Ts(2), &[(0, vec![7, 7])], Ps::ZERO)
            .unwrap();
        t.prepare_txn(Ts(2));
        let (pass, _) = t.gc(&cost, DefragStrategy::Hybrid, Ts(3));
        assert!(!pass.reclaimed_any());
        assert_eq!(t.live_delta_rows(), 1);
        // The scope aborts cleanly afterwards — GC never touched it.
        t.abort_prepared_txn(Ts(2));
        assert_eq!(t.live_delta_rows(), 0);
        let (vals, _) = t.timed_read(&mut mem, &meter(), 5, Ts(9), Ps::ZERO);
        assert_eq!(vals[0], vec![1, 1]);
    }

    #[test]
    fn delta_exhaustion_reports_full() {
        let mut t = table(AccessModel::Unified);
        let mut mem = MemSystem::dimm();
        t.load_row(0, &values(1));
        let mut ts = 1u64;
        loop {
            ts += 1;
            match t.timed_update(&mut mem, &meter(), 0, Ts(ts), &[(0, vec![1, 1])], Ps::ZERO) {
                Ok(_) => continue,
                Err(DeltaFull { rotation }) => {
                    assert_eq!(rotation, 0);
                    break;
                }
            }
        }
        assert_eq!(t.live_delta_rows(), t.region().arena_rows());
    }

    #[test]
    fn colstore_reads_more_lines_than_rowstore() {
        let rs = table(AccessModel::RowStore);
        let cs = table(AccessModel::ColumnStore);
        let uni = table(AccessModel::Unified);
        let slot = RowSlot::Data { row: 17 };
        let rs_lines = rs.lines_for(slot).len();
        let cs_lines = cs.lines_for(slot).len();
        let uni_lines = uni.lines_for(slot).len();
        assert!(cs_lines > rs_lines, "cs {cs_lines} rs {rs_lines}");
        assert!(uni_lines >= rs_lines);
        assert!(uni_lines <= cs_lines);
    }

    #[test]
    fn inserts_advance_cursor_and_are_versioned() {
        let mut t = table(AccessModel::Unified);
        let mut mem = MemSystem::dimm();
        let (r0, _) = t
            .timed_insert(&mut mem, &meter(), &values(1), Ts(1), Ps::ZERO)
            .unwrap();
        let (r1, _) = t
            .timed_insert(&mut mem, &meter(), &values(2), Ts(2), Ps::ZERO)
            .unwrap();
        assert_eq!((r0, r1), (0, 1));
        // The insert is a delta version: invisible to the snapshot until
        // the next snapshot update (insert isolation).
        assert_ne!(t.snapshot_read(1), values(2));
        t.timed_snapshot_update(&mut mem, &meter(), Ts(2), Ps::ZERO);
        assert_eq!(t.snapshot_read(1), values(2));
    }

    #[test]
    fn abort_restores_table_byte_for_byte() {
        let mut t = table(AccessModel::Unified);
        let mut mem = MemSystem::dimm();
        t.load_row(5, &values(1));
        // A committed update from an earlier transaction.
        t.begin_txn();
        t.timed_update(&mut mem, &meter(), 5, Ts(2), &[(0, vec![7, 7])], Ps::ZERO)
            .unwrap();
        assert!(t.commit_txn() > 0);
        let live_before = t.live_delta_rows();
        let snap_before = t.snapshot_read(5);
        let log_before = t.chains().log().len();

        // The aborting transaction: an update and two inserts.
        t.begin_txn();
        t.timed_update(&mut mem, &meter(), 5, Ts(3), &[(1, vec![9, 9])], Ps::ZERO)
            .unwrap();
        t.timed_insert(&mut mem, &meter(), &values(3), Ts(3), Ps::ZERO)
            .unwrap();
        t.timed_insert(&mut mem, &meter(), &values(4), Ts(3), Ps::ZERO)
            .unwrap();
        assert_eq!(t.live_delta_rows(), live_before + 3);
        assert!(t.abort_txn() > 0);

        // Every effect is unwound.
        assert!(!t.in_txn());
        assert_eq!(t.live_delta_rows(), live_before);
        assert_eq!(t.chains().log().len(), log_before);
        assert_eq!(t.snapshot_read(5), snap_before);
        let (vals, _) = t.timed_read(&mut mem, &meter(), 5, Ts(9), Ps::ZERO);
        assert_eq!(vals[0], vec![7, 7], "committed update survives");
        assert_ne!(vals[1], vec![9, 9], "aborted update is gone");

        // A retry under the same timestamps reuses the released slots and
        // lands on the same ring rows.
        t.begin_txn();
        t.timed_update(&mut mem, &meter(), 5, Ts(3), &[(1, vec![9, 9])], Ps::ZERO)
            .unwrap();
        let (r0, _) = t
            .timed_insert(&mut mem, &meter(), &values(3), Ts(3), Ps::ZERO)
            .unwrap();
        assert_eq!(r0, 0, "ring cursor was rolled back");
        t.commit_txn();
        let (vals, _) = t.timed_read(&mut mem, &meter(), 5, Ts(9), Ps::ZERO);
        assert_eq!(vals[1], vec![9, 9]);
    }

    #[test]
    fn prepared_scope_resolves_by_commit_or_abort() {
        let mut t = table(AccessModel::Unified);
        let mut mem = MemSystem::dimm();
        t.load_row(5, &values(1));

        // Prepare-then-commit: the version survives and the marks clear.
        t.begin_txn();
        t.timed_update(&mut mem, &meter(), 5, Ts(2), &[(0, vec![7, 7])], Ps::ZERO)
            .unwrap();
        t.prepare_txn(Ts(2));
        assert!(t.in_prepared_txn());
        assert_eq!(t.prepared_versions(), 1);
        t.commit_prepared_txn(Ts(2));
        assert!(!t.in_txn());
        assert_eq!(t.prepared_versions(), 0);
        let (vals, _) = t.timed_read(&mut mem, &meter(), 5, Ts(9), Ps::ZERO);
        assert_eq!(vals[0], vec![7, 7]);

        // Prepare-then-abort: the version unwinds byte-for-byte.
        let live = t.live_delta_rows();
        t.begin_txn();
        t.timed_update(&mut mem, &meter(), 5, Ts(3), &[(1, vec![9, 9])], Ps::ZERO)
            .unwrap();
        t.prepare_txn(Ts(3));
        assert_eq!(t.prepared_versions(), 1);
        t.abort_prepared_txn(Ts(3));
        assert_eq!(t.prepared_versions(), 0);
        assert_eq!(t.live_delta_rows(), live);
        let (vals, _) = t.timed_read(&mut mem, &meter(), 5, Ts(9), Ps::ZERO);
        assert_ne!(vals[1], vec![9, 9], "aborted prepared write is gone");
    }

    /// Two prepared scopes on disjoint rows coexist; the earlier one
    /// aborts *after* the later one prepared, and each resolution
    /// touches only its own scope's state — the pipelined coordinator's
    /// table-level contract.
    #[test]
    fn coexisting_prepared_scopes_abort_and_commit_independently() {
        let mut t = table(AccessModel::Unified);
        let mut mem = MemSystem::dimm();
        t.load_row(3, &values(1));
        t.load_row(4, &values(2));
        let live = t.live_delta_rows();

        t.begin_txn();
        t.timed_update(&mut mem, &meter(), 3, Ts(10), &[(0, vec![7, 7])], Ps::ZERO)
            .unwrap();
        t.prepare_txn(Ts(10));
        t.begin_txn();
        t.timed_update(&mut mem, &meter(), 4, Ts(11), &[(0, vec![8, 8])], Ps::ZERO)
            .unwrap();
        t.prepare_txn(Ts(11));
        assert_eq!(t.prepared_versions(), 2);

        // Abort the earlier scope (its entry is mid-log), commit the
        // later one.
        t.abort_prepared_txn(Ts(10));
        assert_eq!(t.prepared_versions(), 1);
        t.commit_prepared_txn(Ts(11));
        assert_eq!(t.prepared_versions(), 0);
        assert_eq!(t.live_delta_rows(), live + 1);
        let (vals, _) = t.timed_read(&mut mem, &meter(), 3, Ts(20), Ps::ZERO);
        assert_eq!(vals[0], vec![1, 1], "aborted scope left no trace");
        let (vals, _) = t.timed_read(&mut mem, &meter(), 4, Ts(20), Ps::ZERO);
        assert_eq!(vals[0], vec![8, 8], "committed scope survives");

        // The aborted transaction retries at its pinned timestamp.
        t.begin_txn();
        t.timed_update(&mut mem, &meter(), 3, Ts(10), &[(0, vec![7, 7])], Ps::ZERO)
            .unwrap();
        t.prepare_txn(Ts(10));
        t.commit_prepared_txn(Ts(10));
        let (vals, _) = t.timed_read(&mut mem, &meter(), 3, Ts(20), Ps::ZERO);
        assert_eq!(vals[0], vec![7, 7]);
    }

    #[test]
    fn shards_rotate_by_block() {
        let t = table(AccessModel::Unified);
        let s0 = t.shard_of(0);
        let s1 = t.shard_of(16); // next block
        let s2 = t.shard_of(32);
        assert_ne!(s0, s1);
        assert_eq!(s0, s2); // two shards → period 2
    }
}
