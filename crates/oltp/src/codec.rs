//! Compact binary serialization of statement effects for the WAL.
//!
//! An [`EffectRecord`] is the redo unit the sharded service logs: one
//! transaction's effect subset on one engine, pinned to its original
//! timestamp and tagged with the engine's commit role. Because
//! [`TpccDb::decompose`](crate::TpccDb::decompose) is read-only and
//! retry-stable, the record can be re-applied through the ordinary
//! `prepare_effects` / `commit_prepared` pipeline after a crash and
//! reconstruct byte-identical state — the encoding here only has to be
//! lossless, not clever.
//!
//! The format is little-endian and length-prefixed throughout; integrity
//! is the framing layer's job (`pushtap-wal` checksums whole records),
//! so decoding assumes a payload the frame checksum already accepted and
//! reports structural damage as a [`CodecError`] rather than guessing.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! record  := ts:u64 role:u8 cross:u8 count:u32 effect*
//! effect  := warehouse:u64 kind:u8 table:u8 body
//! body    := Read   -> row:u64
//!          | Update -> row:u64 n:u32 (col:u32 write)*
//!          | Insert -> w_id:u64 n:u32 (len:u32 bytes)*
//! write   := 0:u8 len:u32 bytes      (Set)
//!          | 1:u8 amount:u64 width:u32  (Add)
//! ```

use std::fmt;

use pushtap_chbench::{Table, ALL_TABLES};
use pushtap_mvcc::Ts;

use crate::effects::{ColumnWrite, Effect, TaggedEffect};
use crate::tpcc::TxnRole;

/// A structurally damaged record payload.
///
/// Seen only when decoding bytes that never went through
/// [`EffectRecord::encode`] (version skew, a test corrupting payloads
/// on purpose) — the WAL's frame checksum rejects torn or bit-flipped
/// records before they reach this decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended mid-field.
    Truncated,
    /// An enum tag byte held an undefined value.
    BadTag {
        /// Which tag field was damaged.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// Decoding consumed the record but bytes remained.
    TrailingBytes,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "record payload truncated mid-field"),
            CodecError::BadTag { what, tag } => write!(f, "undefined {what} tag {tag:#04x}"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after record payload"),
        }
    }
}

impl std::error::Error for CodecError {}

/// The WAL redo unit: one transaction's effect subset on one engine,
/// pinned to its original timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EffectRecord {
    /// The transaction's pinned timestamp (replay re-commits at it).
    pub ts: Ts,
    /// The logging engine's commit role — replay must preserve it so
    /// recovered per-shard `committed` counters match the original run.
    pub role: TxnRole,
    /// Whether the transaction spanned shards: a cross-shard record
    /// commits only if the coordinator decision log says so (presumed
    /// abort); a local record commits iff it is durable.
    pub cross: bool,
    /// The effects this engine applied, in application order.
    pub effects: Vec<TaggedEffect>,
}

impl EffectRecord {
    /// Serializes the record to its on-log payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        encode_parts(self.ts, self.role, self.cross, &self.effects)
    }
}

/// Serializes a record from borrowed parts — what the coordinator calls
/// on its hot path, so logging never clones an effect list.
#[must_use]
pub fn encode_parts(ts: Ts, role: TxnRole, cross: bool, effects: &[TaggedEffect]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + effects.len() * 24);
    out.extend_from_slice(&ts.0.to_le_bytes());
    out.push(match role {
        TxnRole::Coordinator => 0,
        TxnRole::Participant => 1,
    });
    out.push(u8::from(cross));
    put_count(&mut out, effects.len());
    for e in effects {
        out.extend_from_slice(&e.warehouse.to_le_bytes());
        match &e.effect {
            Effect::Read { table, row } => {
                out.push(0);
                out.push(table_tag(*table));
                out.extend_from_slice(&row.to_le_bytes());
            }
            Effect::Update { table, row, writes } => {
                out.push(1);
                out.push(table_tag(*table));
                out.extend_from_slice(&row.to_le_bytes());
                put_count(&mut out, writes.len());
                for (col, w) in writes {
                    out.extend_from_slice(&col.to_le_bytes());
                    match w {
                        ColumnWrite::Set(bytes) => {
                            out.push(0);
                            put_bytes(&mut out, bytes);
                        }
                        ColumnWrite::Add { amount, width } => {
                            out.push(1);
                            out.extend_from_slice(&amount.to_le_bytes());
                            out.extend_from_slice(&width.to_le_bytes());
                        }
                    }
                }
            }
            Effect::Insert {
                table,
                w_id,
                values,
            } => {
                out.push(2);
                out.push(table_tag(*table));
                out.extend_from_slice(&w_id.to_le_bytes());
                put_count(&mut out, values.len());
                for v in values {
                    put_bytes(&mut out, v);
                }
            }
        }
    }
    out
}

impl EffectRecord {
    /// Deserializes a record payload.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the payload is structurally damaged
    /// (truncated field, undefined tag, trailing bytes).
    pub fn decode(bytes: &[u8]) -> Result<EffectRecord, CodecError> {
        let mut c = Cursor { bytes, at: 0 };
        let ts = Ts(c.u64()?);
        let role = match c.u8()? {
            0 => TxnRole::Coordinator,
            1 => TxnRole::Participant,
            tag => return Err(CodecError::BadTag { what: "role", tag }),
        };
        let cross = match c.u8()? {
            0 => false,
            1 => true,
            tag => {
                return Err(CodecError::BadTag {
                    what: "cross flag",
                    tag,
                })
            }
        };
        let count = c.u32()? as usize;
        let mut effects = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let warehouse = c.u64()?;
            let kind = c.u8()?;
            let table = table_from_tag(c.u8()?)?;
            let effect = match kind {
                0 => Effect::Read {
                    table,
                    row: c.u64()?,
                },
                1 => {
                    let row = c.u64()?;
                    let n = c.u32()? as usize;
                    let mut writes = Vec::with_capacity(n.min(1024));
                    for _ in 0..n {
                        let col = c.u32()?;
                        let write = match c.u8()? {
                            0 => ColumnWrite::Set(c.bytes()?),
                            1 => ColumnWrite::Add {
                                amount: c.u64()?,
                                width: c.u32()?,
                            },
                            tag => {
                                return Err(CodecError::BadTag {
                                    what: "column write",
                                    tag,
                                })
                            }
                        };
                        writes.push((col, write));
                    }
                    Effect::Update { table, row, writes }
                }
                2 => {
                    let w_id = c.u64()?;
                    let n = c.u32()? as usize;
                    let mut values = Vec::with_capacity(n.min(1024));
                    for _ in 0..n {
                        values.push(c.bytes()?);
                    }
                    Effect::Insert {
                        table,
                        w_id,
                        values,
                    }
                }
                tag => {
                    return Err(CodecError::BadTag {
                        what: "effect kind",
                        tag,
                    })
                }
            };
            effects.push(TaggedEffect { effect, warehouse });
        }
        if c.at != bytes.len() {
            return Err(CodecError::TrailingBytes);
        }
        Ok(EffectRecord {
            ts,
            role,
            cross,
            effects,
        })
    }
}

fn put_count(out: &mut Vec<u8>, n: usize) {
    let n = u32::try_from(n).expect("effect record field count exceeds u32::MAX");
    out.extend_from_slice(&n.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_count(out, bytes.len());
    out.extend_from_slice(bytes);
}

/// A table's on-log tag: its position in [`ALL_TABLES`].
fn table_tag(table: Table) -> u8 {
    ALL_TABLES
        .iter()
        .position(|&t| t == table)
        .map(|i| i as u8)
        .expect("every table is in ALL_TABLES")
}

fn table_from_tag(tag: u8) -> Result<Table, CodecError> {
    ALL_TABLES
        .get(tag as usize)
        .copied()
        .ok_or(CodecError::BadTag { what: "table", tag })
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], CodecError> {
        let s = self
            .bytes
            .get(self.at..self.at + n)
            .ok_or(CodecError::Truncated)?;
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EffectRecord {
        EffectRecord {
            ts: Ts(42),
            role: TxnRole::Coordinator,
            cross: true,
            effects: vec![
                TaggedEffect {
                    effect: Effect::Read {
                        table: Table::Item,
                        row: 7,
                    },
                    warehouse: 3,
                },
                TaggedEffect {
                    effect: Effect::Update {
                        table: Table::Warehouse,
                        row: 3,
                        writes: vec![
                            (
                                8,
                                ColumnWrite::Add {
                                    amount: 500,
                                    width: 8,
                                },
                            ),
                            (2, ColumnWrite::Set(vec![0xAA, 0xBB])),
                        ],
                    },
                    warehouse: 3,
                },
                TaggedEffect {
                    effect: Effect::Insert {
                        table: Table::History,
                        w_id: 5,
                        values: vec![vec![1, 2, 3], vec![], vec![9]],
                    },
                    warehouse: 5,
                },
            ],
        }
    }

    #[test]
    fn round_trips_every_effect_kind() {
        let rec = sample();
        assert_eq!(EffectRecord::decode(&rec.encode()), Ok(rec));
    }

    #[test]
    fn round_trips_empty_participant_record() {
        let rec = EffectRecord {
            ts: Ts(u64::MAX),
            role: TxnRole::Participant,
            cross: false,
            effects: vec![],
        };
        assert_eq!(EffectRecord::decode(&rec.encode()), Ok(rec));
    }

    /// The golden byte image of a known record: any change to the wire
    /// format must consciously update this test (and invalidate old
    /// logs), never drift silently.
    #[test]
    fn golden_record_bytes_are_stable() {
        let rec = EffectRecord {
            ts: Ts(0x0102),
            role: TxnRole::Participant,
            cross: true,
            effects: vec![TaggedEffect {
                effect: Effect::Read {
                    table: Table::District,
                    row: 9,
                },
                warehouse: 4,
            }],
        };
        #[rustfmt::skip]
        let golden: &[u8] = &[
            0x02, 0x01, 0, 0, 0, 0, 0, 0, // ts = 0x0102
            1,                            // role = Participant
            1,                            // cross
            1, 0, 0, 0,                   // one effect
            4, 0, 0, 0, 0, 0, 0, 0,       // warehouse 4
            0,                            // kind = Read
            1,                            // table tag 1 = District
            9, 0, 0, 0, 0, 0, 0, 0,       // row 9
        ];
        assert_eq!(rec.encode(), golden);
        assert_eq!(EffectRecord::decode(golden), Ok(rec));
    }

    #[test]
    fn table_tags_cover_all_tables() {
        for (i, &t) in ALL_TABLES.iter().enumerate() {
            assert_eq!(table_tag(t), i as u8);
            assert_eq!(table_from_tag(i as u8), Ok(t));
        }
        assert_eq!(
            table_from_tag(ALL_TABLES.len() as u8),
            Err(CodecError::BadTag {
                what: "table",
                tag: ALL_TABLES.len() as u8
            })
        );
    }

    #[test]
    fn truncation_at_any_byte_is_rejected() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert_eq!(
                EffectRecord::decode(&bytes[..cut]),
                Err(CodecError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn damaged_tags_and_trailers_are_rejected() {
        let mut long = sample().encode();
        long.push(0);
        assert_eq!(EffectRecord::decode(&long), Err(CodecError::TrailingBytes));

        let mut bad_role = sample().encode();
        bad_role[8] = 9;
        assert_eq!(
            EffectRecord::decode(&bad_role),
            Err(CodecError::BadTag {
                what: "role",
                tag: 9
            })
        );

        let mut bad_kind = sample().encode();
        bad_kind[22] = 7; // first effect's kind byte
        assert_eq!(
            EffectRecord::decode(&bad_kind),
            Err(CodecError::BadTag {
                what: "effect kind",
                tag: 7
            })
        );
    }
}
