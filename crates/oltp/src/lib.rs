//! The OLTP engine of PUSHtap: a DBx1000-style transaction executor over
//! the unified data format (§7.1 of the paper).
//!
//! * [`HashIndex`] — chained hash index;
//! * [`CostModel`]/[`Meter`]/[`Breakdown`] — the CPU cost components of a
//!   transaction (Fig. 11(c): computation / allocation / indexing /
//!   version-chain traversal) plus DRAM time;
//! * [`HtapTable`] — one table: functional unified-format storage + MVCC +
//!   snapshot + timing glue, with [`AccessModel`] selecting whether the
//!   traffic is timed as the unified format, a row-store, or a
//!   column-store (the Fig. 9(a) comparison), plus the
//!   begin/commit/abort transaction scope
//!   ([`HtapTable::begin_txn`]/[`HtapTable::abort_txn`]) backing atomic
//!   retry;
//! * [`TpccDb`] — the Payment/NewOrder executor over the CH schema,
//!   built as a *statement-effect pipeline*: [`TpccDb::decompose`] turns
//!   a transaction into ordered row-level effects tagged with their
//!   owning warehouse ([`effects`]), and execution applies them inside a
//!   prepare/commit scope. [`TpccDb::execute`] is *transaction-atomic*:
//!   a mid-transaction [`pushtap_mvcc::DeltaFull`] rolls back every
//!   partial effect (delta slots, chains, row bytes, index entries,
//!   stripe cursors, the timestamp) before the error reaches the caller,
//!   so the defragment-and-retry loop re-executes on pristine state and
//!   committed state never depends on *when* arenas filled up. The
//!   participant API ([`TpccDb::prepare_effects`] /
//!   [`TpccDb::commit_prepared`] / [`TpccDb::abort_prepared`]) lets a
//!   sharded coordinator apply, hold, and roll back *forwarded* effect
//!   sets under a simulated two-phase commit.
//!
//! # Examples
//!
//! ```
//! use pushtap_oltp::{DbConfig, TpccDb};
//! use pushtap_chbench::TxnGen;
//! use pushtap_pim::{MemSystem, Ps};
//!
//! let mut mem = MemSystem::dimm();
//! let mut db = TpccDb::build(&DbConfig::small(), &mem)?;
//! let mut gen = TxnGen::new(1, 1, 3000, 10000, 10000);
//! let txn = gen.next_txn();
//! let result = db.execute(&txn, &mut mem, Ps::ZERO).expect("commit");
//! assert!(result.end > Ps::ZERO);
//! # Ok::<(), pushtap_format::LayoutError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
mod cost;
pub mod effects;
mod index;
mod table;
mod tpcc;

pub use codec::{CodecError, EffectRecord};
pub use cost::{Breakdown, CostModel, Meter};
pub use effects::{ColumnWrite, Effect, Key, KeySet, TaggedEffect};
pub use index::HashIndex;
pub use table::{AccessModel, HtapTable, LineRef, OpResult, TableConfig, TableGcPass};
pub use tpcc::{
    global_rows, stripe_start, warehouse_of_row, DbConfig, DbFormat, Partition, TpccDb, TxnResult,
    TxnRole,
};
