//! TPC-C transaction execution over the HTAP tables (§7.1).
//!
//! The paper simulates Payment and NewOrder, "which account for
//! approximately 90% of the TPC-C workload", on a DBx1000-derived
//! executor with MVCC. [`TpccDb`] owns one [`HtapTable`] per CH table and
//! executes the [`Txn`] stream from [`pushtap_chbench::TxnGen`], charging
//! every memory access and CPU component to the simulator.

use std::collections::BTreeMap;

use pushtap_chbench::{enc_u64, NewOrder, Payment, RowGen, Table, Txn};
use pushtap_format::{compact_layout, naive_layout, LayoutError, TableLayout, TableSchema};
use pushtap_mvcc::{DeltaFull, Ts, TsAllocator};
use pushtap_pim::{BankAddr, Geometry, MemSystem, Ps, Side};

use crate::cost::{Breakdown, CostModel, Meter};
use crate::table::{AccessModel, HtapTable, TableConfig};

/// The outcome of one committed transaction.
#[derive(Debug, Clone, Copy)]
pub struct TxnResult {
    /// Commit timestamp.
    pub commit_ts: Ts,
    /// Completion time.
    pub end: Ps,
    /// Component breakdown.
    pub breakdown: Breakdown,
}

/// Which layout the database instance uses (drives both the generated
/// [`TableLayout`] and the timing [`AccessModel`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DbFormat {
    /// PUSHtap's compact aligned format with threshold `th`.
    Unified {
        /// Bin-packing threshold.
        th: f64,
    },
    /// The naïve aligned format of §4.1.1 (ablation).
    NaiveAligned,
    /// Traditional row-store (the RS baseline).
    RowStore,
    /// Traditional column-store (the CS baseline).
    ColumnStore,
}

/// Build-time parameters of a database instance.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Population scale (1.0 = the paper's 20 GB).
    pub scale: f64,
    /// Storage format.
    pub format: DbFormat,
    /// Which memory the instance lives in.
    pub side: Side,
    /// OLAP query subset defining the key columns (e.g. `1..=22`).
    pub key_queries: Vec<u8>,
    /// Delta capacity as a fraction of each table's rows.
    pub delta_frac: f64,
    /// Minimum delta capacity in rows (hot small tables — WAREHOUSE,
    /// DISTRICT — receive a version per transaction and need headroom
    /// between defragmentation passes).
    pub min_delta_rows: u64,
    /// Block-circulant block size.
    pub block_rows: u32,
    /// CPU cost model.
    pub costs: CostModel,
}

impl DbConfig {
    /// A small default configuration for tests and examples.
    pub fn small() -> DbConfig {
        DbConfig {
            scale: 0.0005,
            format: DbFormat::Unified { th: 0.6 },
            side: Side::Pim,
            key_queries: (1..=22).collect(),
            delta_frac: 0.5,
            min_delta_rows: 4096,
            block_rows: 64,
            costs: CostModel::default(),
        }
    }

    /// Same configuration with a different format.
    pub fn with_format(mut self, format: DbFormat) -> DbConfig {
        self.format = format;
        self
    }
}

/// The transactional database: one HTAP table per CH table.
#[derive(Debug)]
pub struct TpccDb {
    tables: BTreeMap<Table, HtapTable>,
    meter: Meter,
    ts: TsAllocator,
    committed: u64,
}

fn layout_for(schema: &TableSchema, format: DbFormat, devices: u32) -> Result<TableLayout, LayoutError> {
    match format {
        DbFormat::Unified { th } => compact_layout(schema, devices, th),
        // The classic baselines keep a validated (naïve) layout for
        // functional storage; their *timing* uses the RS/CS access models.
        DbFormat::NaiveAligned | DbFormat::RowStore | DbFormat::ColumnStore => {
            naive_layout(&schema.with_all_keys(), devices)
        }
    }
}

fn access_model(format: DbFormat) -> AccessModel {
    match format {
        DbFormat::Unified { .. } | DbFormat::NaiveAligned => AccessModel::Unified,
        DbFormat::RowStore => AccessModel::RowStore,
        DbFormat::ColumnStore => AccessModel::ColumnStore,
    }
}

impl TpccDb {
    /// Builds (and functionally populates) the database on the memory
    /// system's PIM-side geometry.
    ///
    /// # Errors
    ///
    /// Propagates [`LayoutError`] from layout generation.
    pub fn build(cfg: &DbConfig, mem: &MemSystem) -> Result<TpccDb, LayoutError> {
        let geometry: Geometry = match cfg.side {
            Side::Pim => mem.cfg().pim_geometry,
            Side::Host => mem.cfg().cpu_geometry,
        };
        let shards: Vec<BankAddr> = geometry.bank_addrs().collect();
        let key_map = pushtap_chbench::key_columns_of(&cfg.key_queries);
        let mut tables = BTreeMap::new();
        let mut base_dram_row = 0u32;
        for table in pushtap_chbench::ALL_TABLES {
            let keys: Vec<&str> = key_map.get(&table).cloned().unwrap_or_default();
            let schema = pushtap_chbench::schema_with_keys(table, &keys);
            let layout = layout_for(&schema, cfg.format, geometry.devices_per_rank)?;
            let n_rows = table.rows_at_scale(cfg.scale);
            let delta_rows =
                ((n_rows as f64 * cfg.delta_frac) as u64).max(cfg.min_delta_rows);
            let mut t = HtapTable::new(
                layout,
                TableConfig {
                    n_rows,
                    delta_rows,
                    block_rows: cfg.block_rows,
                    shards: shards.clone(),
                    base_dram_row,
                    model: access_model(cfg.format),
                    side: cfg.side,
                    granularity: geometry.granularity,
                    bank_row_bytes: geometry.row_bytes,
                    rows_per_bank: geometry.rows_per_bank,
                },
            );
            // Functional population.
            let gen = RowGen::new(table, n_rows);
            for row in 0..n_rows {
                t.load_row(row, &gen.row(row));
            }
            // Advance the placement cursor: tables get disjoint DRAM rows.
            let rows_used =
                (t.region().bytes_per_device() / geometry.row_bytes as u64) as u32 + 1;
            base_dram_row = (base_dram_row + rows_used) % geometry.rows_per_bank;
            tables.insert(table, t);
        }
        Ok(TpccDb {
            tables,
            meter: Meter::new(cfg.costs, mem.cfg().cpu),
            ts: TsAllocator::new(),
            committed: 0,
        })
    }

    /// The table instance for `table`.
    ///
    /// # Panics
    ///
    /// Panics if the table was not built.
    pub fn table(&self, table: Table) -> &HtapTable {
        &self.tables[&table]
    }

    /// Mutable access to a table instance.
    pub fn table_mut(&mut self, table: Table) -> &mut HtapTable {
        self.tables.get_mut(&table).expect("table not built")
    }

    /// All tables.
    pub fn tables(&self) -> impl Iterator<Item = (&Table, &HtapTable)> {
        self.tables.iter()
    }

    /// The cost meter in effect.
    pub fn meter(&self) -> &Meter {
        &self.meter
    }

    /// Committed transactions so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// The most recent commit timestamp.
    pub fn last_ts(&self) -> Ts {
        self.ts.last()
    }

    /// Total live delta versions across tables.
    pub fn live_delta_rows(&self) -> u64 {
        self.tables.values().map(HtapTable::live_delta_rows).sum()
    }

    /// Executes one transaction, serially dependent on its own operations
    /// (commit at the end, §6.3).
    ///
    /// # Errors
    ///
    /// Returns [`DeltaFull`] if a delta arena filled up mid-transaction;
    /// the caller should defragment and retry.
    pub fn execute(
        &mut self,
        txn: &Txn,
        mem: &mut MemSystem,
        at: Ps,
    ) -> Result<TxnResult, DeltaFull> {
        let ts = self.ts.allocate();
        let meter = self.meter;
        let mut b = Breakdown::default();
        let mut now = at;
        match txn {
            Txn::Payment(p) => self.exec_payment(p, ts, mem, &meter, &mut b, &mut now)?,
            Txn::NewOrder(no) => self.exec_neworder(no, ts, mem, &meter, &mut b, &mut now)?,
        }
        now += meter.commit_barrier();
        b.compute += meter.commit_barrier();
        self.committed += 1;
        Ok(TxnResult {
            commit_ts: ts,
            end: now,
            breakdown: b,
        })
    }

    fn exec_payment(
        &mut self,
        p: &Payment,
        ts: Ts,
        mem: &mut MemSystem,
        meter: &Meter,
        b: &mut Breakdown,
        now: &mut Ps,
    ) -> Result<(), DeltaFull> {
        // Warehouse YTD.
        let w = self.tables.get_mut(&Table::Warehouse).expect("warehouse");
        let w_row = p.w_id % w.n_rows();
        let ytd = w.store().read_row(pushtap_format::RowSlot::Data { row: w_row });
        let w_ytd_col = w.layout().schema().index_of("w_ytd").expect("w_ytd");
        let new_ytd = enc_u64(
            pushtap_chbench::dec_u64(&ytd[w_ytd_col as usize]).wrapping_add(p.amount),
            8,
        );
        let r = w.timed_update(mem, meter, w_row, ts, &[(w_ytd_col, new_ytd)], *now)?;
        b.merge(&r.breakdown);
        *now = r.end;

        // District YTD.
        let d = self.tables.get_mut(&Table::District).expect("district");
        let d_row = (p.w_id * 10 + p.d_id) % d.n_rows();
        let d_ytd_col = d.layout().schema().index_of("d_ytd").expect("d_ytd");
        let r = d.timed_update(mem, meter, d_row, ts, &[(d_ytd_col, enc_u64(p.amount, 8))], *now)?;
        b.merge(&r.breakdown);
        *now = r.end;

        // Customer balance / ytd / payment count.
        let c = self.tables.get_mut(&Table::Customer).expect("customer");
        let c_row = p.c_row % c.n_rows();
        let schema = c.layout().schema();
        let bal = schema.index_of("c_balance").expect("c_balance");
        let ytd_p = schema.index_of("c_ytd_payment").expect("c_ytd_payment");
        let cnt = schema.index_of("c_payment_cnt").expect("c_payment_cnt");
        let changes = vec![
            (bal, enc_u64(p.amount, 8)),
            (ytd_p, enc_u64(p.amount, 8)),
            (cnt, enc_u64(1, 2)),
        ];
        let r = c.timed_update(mem, meter, c_row, ts, &changes, *now)?;
        b.merge(&r.breakdown);
        *now = r.end;

        // History append.
        let h = self.tables.get_mut(&Table::History).expect("history");
        let values = vec![
            enc_u64(p.c_row, 4),
            enc_u64(p.d_id, 1),
            enc_u64(p.w_id, 4),
            enc_u64(p.d_id, 1),
            enc_u64(p.w_id, 4),
            enc_u64(ts.0, 8),
            enc_u64(p.amount, 4),
            pushtap_chbench::enc_text(ts.0, 24),
        ];
        let (_, r) = h.timed_insert(mem, meter, &values, ts, *now)?;
        b.merge(&r.breakdown);
        *now = r.end;
        Ok(())
    }

    fn exec_neworder(
        &mut self,
        no: &NewOrder,
        ts: Ts,
        mem: &mut MemSystem,
        meter: &Meter,
        b: &mut Breakdown,
        now: &mut Ps,
    ) -> Result<(), DeltaFull> {
        // Read customer (discount, credit).
        let c = self.tables.get_mut(&Table::Customer).expect("customer");
        let c_row = no.c_row % c.n_rows();
        let (_, r) = c.timed_read(mem, meter, c_row, ts, *now);
        b.merge(&r.breakdown);
        *now = r.end;

        // District: bump next order id.
        let d = self.tables.get_mut(&Table::District).expect("district");
        let d_row = (no.w_id * 10 + no.d_id) % d.n_rows();
        let next_col = d.layout().schema().index_of("d_next_o_id").expect("d_next_o_id");
        let r = d.timed_update(mem, meter, d_row, ts, &[(next_col, enc_u64(ts.0, 4))], *now)?;
        b.merge(&r.breakdown);
        *now = r.end;

        // Insert ORDER + NEWORDER rows.
        let o = self.tables.get_mut(&Table::Order).expect("order");
        let o_values = vec![
            enc_u64(ts.0, 4),
            enc_u64(no.d_id, 1),
            enc_u64(no.w_id, 4),
            enc_u64(no.c_row, 4),
            enc_u64(ts.0, 8),
            enc_u64(0, 1),
            enc_u64(no.items.len() as u64, 1),
            enc_u64(1, 1),
        ];
        let (o_row, r) = o.timed_insert(mem, meter, &o_values, ts, *now)?;
        b.merge(&r.breakdown);
        *now = r.end;

        let n = self.tables.get_mut(&Table::NewOrder).expect("neworder");
        let n_values = vec![enc_u64(o_row, 4), enc_u64(no.d_id, 1), enc_u64(no.w_id, 4)];
        let (_, r) = n.timed_insert(mem, meter, &n_values, ts, *now)?;
        b.merge(&r.breakdown);
        *now = r.end;

        // Per order line: read item, update stock, insert orderline.
        for (i, (&item, &stock)) in no.items.iter().zip(&no.stock_rows).enumerate() {
            let it = self.tables.get_mut(&Table::Item).expect("item");
            let item_row = item % it.n_rows();
            let (item_vals, r) = it.timed_read(mem, meter, item_row, ts, *now);
            b.merge(&r.breakdown);
            *now = r.end;
            let price = pushtap_chbench::dec_u64(&item_vals[3]);

            let s = self.tables.get_mut(&Table::Stock).expect("stock");
            let s_row = stock % s.n_rows();
            let schema = s.layout().schema();
            let qty = schema.index_of("s_quantity").expect("s_quantity");
            let ytd = schema.index_of("s_ytd").expect("s_ytd");
            let ocnt = schema.index_of("s_order_cnt").expect("s_order_cnt");
            let changes = vec![
                (qty, enc_u64(40, 2)),
                (ytd, enc_u64(price, 8)),
                (ocnt, enc_u64(1, 2)),
            ];
            let r = s.timed_update(mem, meter, s_row, ts, &changes, *now)?;
            b.merge(&r.breakdown);
            *now = r.end;

            let ol = self.tables.get_mut(&Table::OrderLine).expect("orderline");
            let ol_values = vec![
                enc_u64(o_row, 4),
                enc_u64(no.d_id, 1),
                enc_u64(no.w_id, 4),
                enc_u64(i as u64, 1),
                enc_u64(item, 4),
                enc_u64(no.w_id, 4),
                enc_u64(1_167_600_000 + ts.0, 8),
                enc_u64(5, 2),
                enc_u64(price * 5, 8),
                pushtap_chbench::enc_text(ts.0 ^ i as u64, 24),
            ];
            let (_, r) = ol.timed_insert(mem, meter, &ol_values, ts, *now)?;
            b.merge(&r.breakdown);
            *now = r.end;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushtap_chbench::TxnGen;

    fn setup() -> (TpccDb, MemSystem, TxnGen) {
        let mem = MemSystem::dimm();
        let cfg = DbConfig::small();
        let db = TpccDb::build(&cfg, &mem).unwrap();
        let tg = TxnGen::new(
            1,
            db.table(Table::Warehouse).n_rows(),
            db.table(Table::Customer).n_rows(),
            db.table(Table::Item).n_rows(),
            db.table(Table::Stock).n_rows(),
        );
        (db, mem, tg)
    }

    #[test]
    fn transactions_commit_and_advance_time() {
        let (mut db, mut mem, mut tg) = setup();
        let mut now = Ps::ZERO;
        for txn in tg.batch(20) {
            let r = db.execute(&txn, &mut mem, now).expect("commit");
            assert!(r.end > now);
            now = r.end;
        }
        assert_eq!(db.committed(), 20);
        assert!(db.live_delta_rows() > 0, "updates must create versions");
    }

    /// Fig. 11(c): the CPU-side breakdown lands near the paper's shares
    /// (computation 36.65 %, allocation 44.10 %, indexing 19.25 %, chain
    /// < 0.1 %). We accept generous bands — the shape, not the digit.
    #[test]
    fn breakdown_matches_paper_shape() {
        let (mut db, mut mem, mut tg) = setup();
        let mut total = Breakdown::default();
        let mut now = Ps::ZERO;
        for txn in tg.batch(200) {
            let r = db.execute(&txn, &mut mem, now).expect("commit");
            total.merge(&r.breakdown);
            now = r.end;
        }
        let (compute, alloc, index, chain) = total.cpu_fractions();
        assert!((0.25..0.50).contains(&compute), "compute {compute}");
        assert!((0.30..0.60).contains(&alloc), "alloc {alloc}");
        assert!((0.08..0.32).contains(&index), "index {index}");
        assert!(chain < 0.01, "chain {chain}");
    }

    /// Fig. 9(a): RS is the OLTP ideal; CS costs ~28 % more; the unified
    /// format only a few percent more than RS.
    #[test]
    fn format_ordering_on_oltp_time() {
        let mem0 = MemSystem::dimm();
        let mut times = Vec::new();
        for format in [
            DbFormat::RowStore,
            DbFormat::Unified { th: 0.6 },
            DbFormat::ColumnStore,
        ] {
            let cfg = DbConfig::small().with_format(format);
            let mut db = TpccDb::build(&cfg, &mem0).unwrap();
            let mut mem = MemSystem::dimm();
            let mut tg = TxnGen::new(
                1,
                db.table(Table::Warehouse).n_rows(),
                db.table(Table::Customer).n_rows(),
                db.table(Table::Item).n_rows(),
                db.table(Table::Stock).n_rows(),
            );
            let mut now = Ps::ZERO;
            for txn in tg.batch(150) {
                now = db.execute(&txn, &mut mem, now).expect("commit").end;
            }
            times.push(now);
        }
        let (rs, uni, cs) = (times[0], times[1], times[2]);
        assert!(rs <= uni, "RS {rs} should be fastest (unified {uni})");
        assert!(uni < cs, "unified {uni} should beat CS {cs}");
        let uni_overhead = uni.ps() as f64 / rs.ps() as f64 - 1.0;
        let cs_overhead = cs.ps() as f64 / rs.ps() as f64 - 1.0;
        assert!(uni_overhead < 0.20, "unified overhead {uni_overhead}");
        assert!(cs_overhead > 0.10, "CS overhead {cs_overhead}");
    }

    #[test]
    fn payment_updates_functional_state() {
        let (mut db, mut mem, _) = setup();
        let p = Payment {
            w_id: 0,
            d_id: 0,
            c_row: 3,
            amount: 777,
        };
        let before = db.table(Table::Customer).snapshot_read(3);
        db.execute(&Txn::Payment(p), &mut mem, Ps::ZERO).unwrap();
        // Not yet snapshotted: OLAP still sees the old balance.
        assert_eq!(db.table(Table::Customer).snapshot_read(3), before);
        let ts = db.last_ts();
        let meter = *db.meter();
        db.table_mut(Table::Customer)
            .timed_snapshot_update(&mut mem, &meter, ts, Ps::ZERO);
        let after = db.table(Table::Customer).snapshot_read(3);
        let bal_col = 16; // c_balance
        assert_eq!(pushtap_chbench::dec_u64(&after[bal_col]), 777);
    }
}
