//! TPC-C transaction execution over the HTAP tables (§7.1).
//!
//! The paper simulates Payment and NewOrder, "which account for
//! approximately 90% of the TPC-C workload", on a DBx1000-derived
//! executor with MVCC. [`TpccDb`] owns one [`HtapTable`] per CH table and
//! executes the [`Txn`] stream from [`pushtap_chbench::TxnGen`], charging
//! every memory access and CPU component to the simulator.

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::Arc;

use pushtap_chbench::{enc_u64, NewOrder, Partitioning, Payment, RowGen, Table, Txn};
use pushtap_format::{compact_layout, naive_layout, LayoutError, TableLayout, TableSchema};
use pushtap_mvcc::{DeltaFull, Ts, TsAllocator, TsOracle};
use pushtap_pim::{BankAddr, Geometry, MemSystem, Ps, Side};

use crate::cost::{Breakdown, CostModel, Meter};
use crate::table::{AccessModel, HtapTable, TableConfig};

/// The outcome of one committed transaction.
#[derive(Debug, Clone, Copy)]
pub struct TxnResult {
    /// Commit timestamp.
    pub commit_ts: Ts,
    /// Completion time.
    pub end: Ps,
    /// Component breakdown.
    pub breakdown: Breakdown,
}

/// Which layout the database instance uses (drives both the generated
/// [`TableLayout`] and the timing [`AccessModel`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DbFormat {
    /// PUSHtap's compact aligned format with threshold `th`.
    Unified {
        /// Bin-packing threshold.
        th: f64,
    },
    /// The naïve aligned format of §4.1.1 (ablation).
    NaiveAligned,
    /// Traditional row-store (the RS baseline).
    RowStore,
    /// Traditional column-store (the CS baseline).
    ColumnStore,
}

/// One shard's slice of a partitioned deployment: shard `index` of
/// `count`. The single-instance case is `Partition::single()`.
///
/// Warehouse-anchored tables are split into contiguous row ranges
/// ([`Partition::range`], the floor split `[⌊i·n/k⌋, ⌊(i+1)·n/k⌋)`);
/// replicated dimension tables are built in full on every shard. Row
/// *content* is generated from the global row index, so the union of the
/// shards' partitioned tables is byte-identical to the unpartitioned
/// build — the property scatter-gather analytics relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// This shard's index, `0 <= index < count`.
    pub index: u32,
    /// Total number of shards.
    pub count: u32,
}

impl Partition {
    /// The unpartitioned (single-instance) build.
    pub fn single() -> Partition {
        Partition { index: 0, count: 1 }
    }

    /// Shard `index` of `count`.
    ///
    /// # Panics
    ///
    /// Panics unless `index < count`.
    pub fn of(index: u32, count: u32) -> Partition {
        assert!(index < count, "shard {index} out of {count}");
        Partition { index, count }
    }

    /// Whether this is the unpartitioned build.
    pub fn is_single(&self) -> bool {
        self.count == 1
    }

    /// This shard's contiguous slice of `rows` global rows (floor split;
    /// possibly empty when `rows < count`).
    pub fn range(&self, rows: u64) -> Range<u64> {
        let start = (self.index as u64 * rows) / self.count as u64;
        let end = ((self.index as u64 + 1) * rows) / self.count as u64;
        start..end
    }

    /// The shard owning global row `row` of a `rows`-row table under the
    /// floor split (the inverse of [`Partition::range`]).
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    pub fn owner_of(row: u64, rows: u64, count: u32) -> u32 {
        assert!(row < rows, "row {row} out of {rows}");
        (((row + 1) * count as u64 - 1) / rows) as u32
    }
}

/// Build-time parameters of a database instance.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Population scale (1.0 = the paper's 20 GB).
    pub scale: f64,
    /// Floor on the warehouse population, whatever `scale` says. Sharded
    /// deployments need at least one warehouse per shard without paying
    /// for scale-proportional growth of the big fact tables.
    pub min_warehouses: u64,
    /// Storage format.
    pub format: DbFormat,
    /// Which memory the instance lives in.
    pub side: Side,
    /// OLAP query subset defining the key columns (e.g. `1..=22`).
    pub key_queries: Vec<u8>,
    /// Delta capacity as a fraction of each table's rows.
    pub delta_frac: f64,
    /// Minimum delta capacity in rows (hot small tables — WAREHOUSE,
    /// DISTRICT — receive a version per transaction and need headroom
    /// between defragmentation passes).
    pub min_delta_rows: u64,
    /// Block-circulant block size.
    pub block_rows: u32,
    /// CPU cost model.
    pub costs: CostModel,
}

impl DbConfig {
    /// A small default configuration for tests and examples.
    pub fn small() -> DbConfig {
        DbConfig {
            scale: 0.0005,
            min_warehouses: 1,
            format: DbFormat::Unified { th: 0.6 },
            side: Side::Pim,
            key_queries: (1..=22).collect(),
            delta_frac: 0.5,
            min_delta_rows: 4096,
            block_rows: 64,
            costs: CostModel::default(),
        }
    }

    /// Same configuration with a different format.
    pub fn with_format(mut self, format: DbFormat) -> DbConfig {
        self.format = format;
        self
    }
}

/// The transactional database: one HTAP table per CH table.
#[derive(Debug)]
pub struct TpccDb {
    tables: BTreeMap<Table, HtapTable>,
    meter: Meter,
    ts: TsAllocator,
    committed: u64,
    partition: Partition,
    /// Global warehouse population (before partitioning).
    warehouses_global: u64,
    /// The contiguous warehouse range this instance owns.
    wh_range: Range<u64>,
    /// Per-table global row count and this instance's first global row.
    table_global: BTreeMap<Table, (u64, u64)>,
    /// Per-(table, warehouse) insert cursors: inserts cycle inside the
    /// home warehouse's stripe, deterministically across deployments.
    insert_cursors: BTreeMap<(Table, u64), u64>,
    /// Stripe cursors bumped by the in-flight transaction, in order —
    /// the executor-level half of the undo log (the table-level half
    /// lives in each [`HtapTable`]'s [`pushtap_mvcc::UndoLog`]).
    txn_cursor_log: Vec<(Table, u64)>,
    /// Transactions rolled back on [`DeltaFull`] (each is retried by the
    /// caller after defragmentation, so this is also the retry count).
    aborts: u64,
    /// Cumulative simulated time consumed by rolled-back attempts: the
    /// statements a transaction executed before hitting [`DeltaFull`].
    /// The memory traffic of those statements is charged to the simulated
    /// memory system, so their latency belongs in the transaction's
    /// completion time too (see `Pushtap::execute_txn`).
    wasted_retry_time: Ps,
}

/// Global (pre-partitioning) row count of `table` under `cfg`.
///
/// WAREHOUSE is floored at `cfg.min_warehouses`; DISTRICT is *derived*
/// as exactly 10 rows per warehouse (its TPC-C definition). The executor
/// addresses district rows as `w_id * 10 + d_id`, so any other district
/// population would alias districts of different warehouses onto one
/// row — across warehouse-stripe (and therefore shard) boundaries, which
/// breaks the byte identity between a partitioned deployment and the
/// unpartitioned reference. Independent rounding of the two scales used
/// to allow exactly that (at small scales DISTRICT rounded to one row).
pub fn global_rows(cfg: &DbConfig, table: Table) -> u64 {
    match table {
        Table::Warehouse => table.rows_at_scale(cfg.scale).max(cfg.min_warehouses),
        Table::District => global_rows(cfg, Table::Warehouse) * 10,
        _ => table.rows_at_scale(cfg.scale),
    }
}

/// First global row of warehouse `w`'s stripe of a `rows`-row fact table
/// (floor split into `warehouses` stripes). Inserts anchored to a home
/// warehouse cycle inside its stripe, so a partitioned shard and an
/// unpartitioned instance land the same logical insert on the same
/// global row.
pub fn stripe_start(w: u64, rows: u64, warehouses: u64) -> u64 {
    (w * rows) / warehouses
}

/// The warehouse whose stripe holds global fact row `row` — the inverse
/// of [`stripe_start`].
///
/// # Panics
///
/// Panics if `row >= rows`.
pub fn warehouse_of_row(row: u64, rows: u64, warehouses: u64) -> u64 {
    assert!(row < rows, "row {row} out of {rows}");
    ((row + 1) * warehouses - 1) / rows
}

fn layout_for(
    schema: &TableSchema,
    format: DbFormat,
    devices: u32,
) -> Result<TableLayout, LayoutError> {
    match format {
        DbFormat::Unified { th } => compact_layout(schema, devices, th),
        // The classic baselines keep a validated (naïve) layout for
        // functional storage; their *timing* uses the RS/CS access models.
        DbFormat::NaiveAligned | DbFormat::RowStore | DbFormat::ColumnStore => {
            naive_layout(&schema.with_all_keys(), devices)
        }
    }
}

fn access_model(format: DbFormat) -> AccessModel {
    match format {
        DbFormat::Unified { .. } | DbFormat::NaiveAligned => AccessModel::Unified,
        DbFormat::RowStore => AccessModel::RowStore,
        DbFormat::ColumnStore => AccessModel::ColumnStore,
    }
}

impl TpccDb {
    /// Builds (and functionally populates) the database on the memory
    /// system's PIM-side geometry.
    ///
    /// # Errors
    ///
    /// Propagates [`LayoutError`] from layout generation.
    pub fn build(cfg: &DbConfig, mem: &MemSystem) -> Result<TpccDb, LayoutError> {
        TpccDb::build_partitioned(cfg, mem, Partition::single())
    }

    /// Builds one shard of a warehouse-partitioned deployment: fact
    /// tables hold this shard's contiguous slice of the global rows
    /// (byte-identical to the corresponding rows of the unpartitioned
    /// build), dimension tables are replicated in full.
    ///
    /// A shard whose slice of a fact table would be empty (fewer global
    /// rows than shards — only ever the tiny warehouse-anchored tables)
    /// keeps one clamped row so modular row addressing stays defined;
    /// such tables are too small to partition meaningfully and are never
    /// scanned by the analytical queries.
    ///
    /// # Errors
    ///
    /// Propagates [`LayoutError`] from layout generation.
    pub fn build_partitioned(
        cfg: &DbConfig,
        mem: &MemSystem,
        partition: Partition,
    ) -> Result<TpccDb, LayoutError> {
        let geometry: Geometry = match cfg.side {
            Side::Pim => mem.cfg().pim_geometry,
            Side::Host => mem.cfg().cpu_geometry,
        };
        let shards: Vec<BankAddr> = geometry.bank_addrs().collect();
        let key_map = pushtap_chbench::key_columns_of(&cfg.key_queries);
        let warehouses_global = global_rows(cfg, Table::Warehouse);
        let wh_range = partition.range(warehouses_global);
        let mut tables = BTreeMap::new();
        let mut table_global = BTreeMap::new();
        let mut base_dram_row = 0u32;
        for table in pushtap_chbench::ALL_TABLES {
            let keys: Vec<&str> = key_map.get(&table).cloned().unwrap_or_default();
            let schema = pushtap_chbench::schema_with_keys(table, &keys);
            let layout = layout_for(&schema, cfg.format, geometry.devices_per_rank)?;
            let global = global_rows(cfg, table);
            let (row_base, n_rows) = match table.partitioning() {
                Partitioning::Replicated => (0, global),
                Partitioning::ByWarehouse => {
                    // Split along warehouse-stripe boundaries so each
                    // warehouse's rows (and insert stripe) live wholly on
                    // the shard that owns the warehouse.
                    let start = stripe_start(wh_range.start, global, warehouses_global);
                    let end = stripe_start(wh_range.end, global, warehouses_global);
                    if start == end {
                        (start.min(global - 1), 1)
                    } else {
                        (start, end - start)
                    }
                }
            };
            table_global.insert(table, (global, row_base));
            let delta_rows = ((n_rows as f64 * cfg.delta_frac) as u64).max(cfg.min_delta_rows);
            let mut t = HtapTable::new(
                layout,
                TableConfig {
                    n_rows,
                    delta_rows,
                    block_rows: cfg.block_rows,
                    shards: shards.clone(),
                    base_dram_row,
                    model: access_model(cfg.format),
                    side: cfg.side,
                    granularity: geometry.granularity,
                    bank_row_bytes: geometry.row_bytes,
                    rows_per_bank: geometry.rows_per_bank,
                },
            );
            // Functional population from *global* row indices, so every
            // shard's slice matches the unpartitioned build byte for byte.
            let gen = RowGen::new(table, global);
            for row in 0..n_rows {
                t.load_row(row, &gen.row(row_base + row));
            }
            // Advance the placement cursor: tables get disjoint DRAM rows.
            let rows_used = (t.region().bytes_per_device() / geometry.row_bytes as u64) as u32 + 1;
            base_dram_row = (base_dram_row + rows_used) % geometry.rows_per_bank;
            tables.insert(table, t);
        }
        Ok(TpccDb {
            tables,
            meter: Meter::new(cfg.costs, mem.cfg().cpu),
            ts: TsAllocator::new(),
            committed: 0,
            partition,
            warehouses_global,
            wh_range,
            table_global,
            insert_cursors: BTreeMap::new(),
            txn_cursor_log: Vec::new(),
            aborts: 0,
            wasted_retry_time: Ps::ZERO,
        })
    }

    /// Swaps the instance's private timestamp counter for a shared
    /// deployment-wide [`TsOracle`].
    ///
    /// Every engine of a sharded deployment is handed the *same* oracle,
    /// so all of them draw from one global timestamp sequence. Commit
    /// timestamps are encoded into stored bytes, which makes this the
    /// precondition for a sharded deployment's committed state being
    /// byte-identical to a single-instance reference that executed the
    /// same stream (the coordinator additionally assigns the draws in
    /// global stream order — see `pushtap-shard`).
    ///
    /// # Panics
    ///
    /// Panics if the instance has already executed transactions (the two
    /// sequences could no longer be reconciled).
    pub fn share_timestamps(&mut self, oracle: Arc<TsOracle>) {
        assert_eq!(
            self.committed, 0,
            "cannot share timestamps after transactions have committed"
        );
        assert_eq!(self.aborts, 0, "cannot share timestamps mid-retry");
        self.ts = TsAllocator::shared(oracle);
    }

    /// The shared timestamp oracle, if [`TpccDb::share_timestamps`] was
    /// called.
    pub fn ts_oracle(&self) -> Option<&Arc<TsOracle>> {
        self.ts.oracle()
    }

    /// Which slice of the global population this instance holds.
    pub fn partition(&self) -> Partition {
        self.partition
    }

    /// The contiguous warehouse range this instance owns (the full
    /// population for an unpartitioned build).
    pub fn warehouse_range(&self) -> Range<u64> {
        self.wh_range.clone()
    }

    /// Global warehouse population (before partitioning).
    pub fn warehouses_global(&self) -> u64 {
        self.warehouses_global
    }

    /// Global (pre-partitioning) row count of `table`.
    pub fn global_rows_of(&self, table: Table) -> u64 {
        self.table_global[&table].0
    }

    /// Picks the *global* target row for the next insert into `table`
    /// homed at warehouse `w_id` — the current slot of the warehouse's
    /// stripe ring — without consuming it. Foreign warehouses (only
    /// reachable when a caller bypasses the router) are clamped into the
    /// owned range; an empty owned range (more shards than warehouses)
    /// clamps to the nearest owned warehouse.
    fn insert_target(&self, table: Table, w_id: u64) -> (u64, u64) {
        let (global, row_base) = self.table_global[&table];
        let local_rows = self.tables[&table].n_rows();
        let w = if self.wh_range.contains(&w_id) {
            w_id
        } else if self.wh_range.is_empty() {
            self.wh_range.start.min(self.warehouses_global - 1)
        } else {
            self.wh_range.start + w_id % (self.wh_range.end - self.wh_range.start)
        };
        let start = stripe_start(w, global, self.warehouses_global);
        let end = stripe_start(w + 1, global, self.warehouses_global);
        let c = self.insert_cursors.get(&(table, w)).copied().unwrap_or(0);
        let row = if !self.wh_range.is_empty() && end > start {
            start + c % (end - start)
        } else {
            // Degenerate cases (fewer rows than warehouses, or a shard
            // owning no warehouse at all): fall back to a local ring;
            // cross-deployment row identity is moot for configurations
            // this small.
            row_base + c % local_rows
        };
        (row, w)
    }

    /// The local row of `table` backing *global* row `g`: the exact
    /// translation when this instance owns `g`, otherwise a
    /// deterministic local proxy row (remote-owned state is modeled on
    /// local rows until multi-shard writes gain a real forwarding
    /// path — see ROADMAP). On an unpartitioned instance this is the
    /// seed's `g % n_rows` addressing, unchanged.
    fn local_row(&self, table: Table, g: u64) -> u64 {
        let (global, row_base) = self.table_global[&table];
        let n = self.tables[&table].n_rows();
        let g = g % global.max(1);
        if (row_base..row_base + n).contains(&g) {
            g - row_base
        } else {
            g % n
        }
    }

    /// Inserts into `table` at the stripe slot of home warehouse `w_id`,
    /// returning the *global* row index (identical on a partitioned
    /// shard and an unpartitioned instance for the same logical stream).
    /// The stripe cursor advances only on success, so a `DeltaFull`
    /// retry after defragmentation reuses the same slot.
    #[allow(clippy::too_many_arguments)]
    fn timed_insert_for(
        &mut self,
        table: Table,
        w_id: u64,
        values: &[Vec<u8>],
        ts: Ts,
        mem: &mut MemSystem,
        meter: &Meter,
        at: Ps,
    ) -> Result<(u64, crate::table::OpResult), DeltaFull> {
        let (global_row, w) = self.insert_target(table, w_id);
        let (_, row_base) = self.table_global[&table];
        let local = global_row - row_base;
        let t = self.tables.get_mut(&table).expect("table not built");
        let r = t.timed_insert_at(mem, meter, local, values, ts, at)?;
        *self.insert_cursors.entry((table, w)).or_insert(0) += 1;
        self.txn_cursor_log.push((table, w));
        Ok((global_row, r))
    }

    /// The table instance for `table`.
    ///
    /// # Panics
    ///
    /// Panics if the table was not built.
    pub fn table(&self, table: Table) -> &HtapTable {
        &self.tables[&table]
    }

    /// Mutable access to a table instance.
    pub fn table_mut(&mut self, table: Table) -> &mut HtapTable {
        self.tables.get_mut(&table).expect("table not built")
    }

    /// All tables.
    pub fn tables(&self) -> impl Iterator<Item = (&Table, &HtapTable)> {
        self.tables.iter()
    }

    /// The cost meter in effect.
    pub fn meter(&self) -> &Meter {
        &self.meter
    }

    /// Committed transactions so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Transactions rolled back on [`DeltaFull`] so far. Every abort is
    /// followed by a caller-driven defragmentation and a retry of the
    /// whole transaction, so this doubles as the retry count.
    pub fn aborts(&self) -> u64 {
        self.aborts
    }

    /// The current stripe-ring cursor of `table` for home warehouse `w`
    /// (the number of inserts this warehouse has committed into its
    /// stripe). Transaction-atomic: an aborted transaction leaves every
    /// cursor untouched, which is the invariant the cross-deployment
    /// identity tests assert.
    pub fn insert_cursor(&self, table: Table, w: u64) -> u64 {
        self.insert_cursors.get(&(table, w)).copied().unwrap_or(0)
    }

    /// The most recent commit timestamp. With a shared [`TsOracle`]
    /// ([`TpccDb::share_timestamps`]) this is the deployment-wide
    /// watermark — an upper bound on every timestamp committed anywhere,
    /// including on this instance.
    pub fn last_ts(&self) -> Ts {
        self.ts.last()
    }

    /// Cumulative time consumed by attempts that were rolled back on
    /// [`DeltaFull`] (statements executed before the abort). Callers fold
    /// the per-attempt delta into the transaction's completion latency.
    pub fn wasted_retry_time(&self) -> Ps {
        self.wasted_retry_time
    }

    /// Total live delta versions across tables.
    pub fn live_delta_rows(&self) -> u64 {
        self.tables.values().map(HtapTable::live_delta_rows).sum()
    }

    /// Executes one transaction *atomically*, serially dependent on its
    /// own operations (commit at the end, §6.3).
    ///
    /// The transaction runs inside a begin/commit/abort scope: every
    /// statement records its effects in the tables' undo logs, and a
    /// mid-transaction [`DeltaFull`] rolls the whole transaction back —
    /// delta slots, version chains, row bytes, index entries, stripe
    /// cursors, and the allocated timestamp all revert — before the
    /// error is surfaced. The caller defragments and re-executes; the
    /// retry re-runs under the *same* timestamp on the *same* stripe
    /// slots, so committed state is a pure function of the committed
    /// transaction stream, independent of when delta arenas filled up.
    ///
    /// # Errors
    ///
    /// Returns [`DeltaFull`] if a delta arena filled up mid-transaction
    /// (all partial effects already rolled back); the caller should
    /// defragment and retry.
    pub fn execute(
        &mut self,
        txn: &Txn,
        mem: &mut MemSystem,
        at: Ps,
    ) -> Result<TxnResult, DeltaFull> {
        let ts = self.ts.allocate();
        let r = self.run_txn(txn, ts, mem, at);
        if r.is_err() {
            // Keep the committed sequence gapless: the retry re-allocates
            // the same timestamp.
            self.ts.rollback(ts);
        }
        r
    }

    /// Executes one transaction under a caller-assigned (*pinned*) commit
    /// timestamp, with the same atomic begin/commit/abort scope as
    /// [`TpccDb::execute`].
    ///
    /// This is the sharded execution path: a coordinator draws timestamps
    /// from the shared [`TsOracle`] in *global stream order* (the order a
    /// single-instance reference would allocate them in) and pins each
    /// routed transaction to its draw, so concurrent shards commit the
    /// exact timestamps the reference commits. A pinned abort does *not*
    /// return the timestamp to any allocator — the retry simply re-runs
    /// under the same pinned timestamp; on commit the engine's watermark
    /// advances to cover it.
    ///
    /// Pinned timestamps must arrive in increasing order per instance
    /// (MVCC version chains require per-row monotone timestamps), which
    /// stream-order assignment guarantees.
    ///
    /// # Errors
    ///
    /// Returns [`DeltaFull`] if a delta arena filled up mid-transaction
    /// (all partial effects already rolled back); the caller should
    /// defragment and retry under the same timestamp.
    pub fn execute_at(
        &mut self,
        txn: &Txn,
        ts: Ts,
        mem: &mut MemSystem,
        at: Ps,
    ) -> Result<TxnResult, DeltaFull> {
        let r = self.run_txn(txn, ts, mem, at);
        if r.is_ok() {
            self.ts.advance_to(ts);
        }
        r
    }

    /// The shared transaction body: begin, execute, commit-or-abort.
    /// Timestamp bookkeeping (allocation, rollback, watermark advance) is
    /// the caller's job.
    fn run_txn(
        &mut self,
        txn: &Txn,
        ts: Ts,
        mem: &mut MemSystem,
        at: Ps,
    ) -> Result<TxnResult, DeltaFull> {
        self.begin_txn();
        let meter = self.meter;
        let mut b = Breakdown::default();
        let mut now = at;
        let body = match txn {
            Txn::Payment(p) => self.exec_payment(p, ts, mem, &meter, &mut b, &mut now),
            Txn::NewOrder(no) => self.exec_neworder(no, ts, mem, &meter, &mut b, &mut now),
        };
        if let Err(full) = body {
            // The statements up to the failure consumed real simulated
            // time (their memory traffic is already charged to `mem`);
            // account it so callers can fold it into completion latency.
            self.wasted_retry_time += now.saturating_sub(at);
            self.abort_txn();
            return Err(full);
        }
        now += meter.commit_barrier();
        b.compute += meter.commit_barrier();
        self.committed += 1;
        self.commit_txn();
        Ok(TxnResult {
            commit_ts: ts,
            end: now,
            breakdown: b,
        })
    }

    /// Opens the transaction scope on every table and the cursor log.
    fn begin_txn(&mut self) {
        debug_assert!(self.txn_cursor_log.is_empty(), "cursor log leaked");
        for t in self.tables.values_mut() {
            t.begin_txn();
        }
    }

    /// Closes the scope keeping all effects.
    fn commit_txn(&mut self) {
        for t in self.tables.values_mut() {
            t.commit_txn();
        }
        self.txn_cursor_log.clear();
    }

    /// Rolls back the in-flight transaction: every table unwinds its
    /// undo log and stripe cursors step back. Timestamp rollback is the
    /// caller's job ([`TpccDb::execute`] returns the allocation;
    /// [`TpccDb::execute_at`] keeps the pinned timestamp for the retry).
    fn abort_txn(&mut self) {
        for t in self.tables.values_mut() {
            t.abort_txn();
        }
        while let Some((table, w)) = self.txn_cursor_log.pop() {
            let c = self
                .insert_cursors
                .get_mut(&(table, w))
                .expect("cursor bumped by the aborting transaction");
            *c -= 1;
        }
        self.aborts += 1;
    }

    fn exec_payment(
        &mut self,
        p: &Payment,
        ts: Ts,
        mem: &mut MemSystem,
        meter: &Meter,
        b: &mut Breakdown,
        now: &mut Ps,
    ) -> Result<(), DeltaFull> {
        // Warehouse YTD: read-modify-write over the *newest committed
        // version* (not the data-region origin), so the accumulated value
        // is a pure function of the committed stream — independent of
        // when defragmentation folded versions back into the data region.
        let w_row = self.local_row(Table::Warehouse, p.w_id);
        let w = self.tables.get_mut(&Table::Warehouse).expect("warehouse");
        let ytd = w.store().read_row(w.chains().newest_slot(w_row));
        let w_ytd_col = w.layout().schema().index_of("w_ytd").expect("w_ytd");
        let new_ytd = enc_u64(
            pushtap_chbench::dec_u64(&ytd[w_ytd_col as usize]).wrapping_add(p.amount),
            8,
        );
        let r = w.timed_update(mem, meter, w_row, ts, &[(w_ytd_col, new_ytd)], *now)?;
        b.merge(&r.breakdown);
        *now = r.end;

        // District YTD.
        let d_row = self.local_row(Table::District, p.w_id * 10 + p.d_id);
        let d = self.tables.get_mut(&Table::District).expect("district");
        let d_ytd_col = d.layout().schema().index_of("d_ytd").expect("d_ytd");
        let r = d.timed_update(
            mem,
            meter,
            d_row,
            ts,
            &[(d_ytd_col, enc_u64(p.amount, 8))],
            *now,
        )?;
        b.merge(&r.breakdown);
        *now = r.end;

        // Customer balance / ytd / payment count.
        let c_row = self.local_row(Table::Customer, p.c_row);
        let c = self.tables.get_mut(&Table::Customer).expect("customer");
        let schema = c.layout().schema();
        let bal = schema.index_of("c_balance").expect("c_balance");
        let ytd_p = schema.index_of("c_ytd_payment").expect("c_ytd_payment");
        let cnt = schema.index_of("c_payment_cnt").expect("c_payment_cnt");
        let changes = vec![
            (bal, enc_u64(p.amount, 8)),
            (ytd_p, enc_u64(p.amount, 8)),
            (cnt, enc_u64(1, 2)),
        ];
        let r = c.timed_update(mem, meter, c_row, ts, &changes, *now)?;
        b.merge(&r.breakdown);
        *now = r.end;

        // History append (striped by home warehouse).
        let values = vec![
            enc_u64(p.c_row, 4),
            enc_u64(p.d_id, 1),
            enc_u64(p.w_id, 4),
            enc_u64(p.d_id, 1),
            enc_u64(p.w_id, 4),
            enc_u64(ts.0, 8),
            enc_u64(p.amount, 4),
            pushtap_chbench::enc_text(ts.0, 24),
        ];
        let (_, r) =
            self.timed_insert_for(Table::History, p.w_id, &values, ts, mem, meter, *now)?;
        b.merge(&r.breakdown);
        *now = r.end;
        Ok(())
    }

    fn exec_neworder(
        &mut self,
        no: &NewOrder,
        ts: Ts,
        mem: &mut MemSystem,
        meter: &Meter,
        b: &mut Breakdown,
        now: &mut Ps,
    ) -> Result<(), DeltaFull> {
        // Read customer (discount, credit).
        let c_row = self.local_row(Table::Customer, no.c_row);
        let c = self.tables.get_mut(&Table::Customer).expect("customer");
        let (_, r) = c.timed_read(mem, meter, c_row, ts, *now);
        b.merge(&r.breakdown);
        *now = r.end;

        // District: bump next order id.
        let d_row = self.local_row(Table::District, no.w_id * 10 + no.d_id);
        let d = self.tables.get_mut(&Table::District).expect("district");
        let next_col = d
            .layout()
            .schema()
            .index_of("d_next_o_id")
            .expect("d_next_o_id");
        let r = d.timed_update(mem, meter, d_row, ts, &[(next_col, enc_u64(ts.0, 4))], *now)?;
        b.merge(&r.breakdown);
        *now = r.end;

        // Insert ORDER + NEWORDER rows (striped by home warehouse; the
        // returned order row is the *global* index, so downstream values
        // match across partitioned and unpartitioned deployments).
        let o_values = vec![
            enc_u64(ts.0, 4),
            enc_u64(no.d_id, 1),
            enc_u64(no.w_id, 4),
            enc_u64(no.c_row, 4),
            enc_u64(ts.0, 8),
            enc_u64(0, 1),
            enc_u64(no.items.len() as u64, 1),
            enc_u64(1, 1),
        ];
        let (o_row, r) =
            self.timed_insert_for(Table::Order, no.w_id, &o_values, ts, mem, meter, *now)?;
        b.merge(&r.breakdown);
        *now = r.end;

        let n_values = vec![enc_u64(o_row, 4), enc_u64(no.d_id, 1), enc_u64(no.w_id, 4)];
        let (_, r) =
            self.timed_insert_for(Table::NewOrder, no.w_id, &n_values, ts, mem, meter, *now)?;
        b.merge(&r.breakdown);
        *now = r.end;

        // Per order line: read item, update stock, insert orderline.
        // Stock rows are distinct in the *global* population, but on a
        // partitioned shard two global rows can alias the same local row
        // under the modulo; MVCC forbids two same-timestamp updates of
        // one row, so an aliased line skips its (already applied) stock
        // update.
        let mut touched_stock: Vec<u64> = Vec::with_capacity(no.stock_rows.len());
        for (i, (&item, &stock)) in no.items.iter().zip(&no.stock_rows).enumerate() {
            let item_row = self.local_row(Table::Item, item);
            let it = self.tables.get_mut(&Table::Item).expect("item");
            let (item_vals, r) = it.timed_read(mem, meter, item_row, ts, *now);
            b.merge(&r.breakdown);
            *now = r.end;
            let price = pushtap_chbench::dec_u64(&item_vals[3]);

            let s_row = self.local_row(Table::Stock, stock);
            let s = self.tables.get_mut(&Table::Stock).expect("stock");
            if !touched_stock.contains(&s_row) {
                touched_stock.push(s_row);
                let schema = s.layout().schema();
                let qty = schema.index_of("s_quantity").expect("s_quantity");
                let ytd = schema.index_of("s_ytd").expect("s_ytd");
                let ocnt = schema.index_of("s_order_cnt").expect("s_order_cnt");
                let changes = vec![
                    (qty, enc_u64(40, 2)),
                    (ytd, enc_u64(price, 8)),
                    (ocnt, enc_u64(1, 2)),
                ];
                let r = s.timed_update(mem, meter, s_row, ts, &changes, *now)?;
                b.merge(&r.breakdown);
                *now = r.end;
            }

            let ol_values = vec![
                enc_u64(o_row, 4),
                enc_u64(no.d_id, 1),
                enc_u64(no.w_id, 4),
                enc_u64(i as u64, 1),
                enc_u64(item, 4),
                enc_u64(no.w_id, 4),
                enc_u64(1_167_600_000 + ts.0, 8),
                enc_u64(5, 2),
                enc_u64(price * 5, 8),
                pushtap_chbench::enc_text(ts.0 ^ i as u64, 24),
            ];
            let (_, r) =
                self.timed_insert_for(Table::OrderLine, no.w_id, &ol_values, ts, mem, meter, *now)?;
            b.merge(&r.breakdown);
            *now = r.end;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushtap_chbench::TxnGen;

    fn setup() -> (TpccDb, MemSystem, TxnGen) {
        let mem = MemSystem::dimm();
        let cfg = DbConfig::small();
        let db = TpccDb::build(&cfg, &mem).unwrap();
        let tg = TxnGen::new(
            1,
            db.table(Table::Warehouse).n_rows(),
            db.table(Table::Customer).n_rows(),
            db.table(Table::Item).n_rows(),
            db.table(Table::Stock).n_rows(),
        );
        (db, mem, tg)
    }

    #[test]
    fn transactions_commit_and_advance_time() {
        let (mut db, mut mem, mut tg) = setup();
        let mut now = Ps::ZERO;
        for txn in tg.batch(20) {
            let r = db.execute(&txn, &mut mem, now).expect("commit");
            assert!(r.end > now);
            now = r.end;
        }
        assert_eq!(db.committed(), 20);
        assert!(db.live_delta_rows() > 0, "updates must create versions");
    }

    /// Fig. 11(c): the CPU-side breakdown lands near the paper's shares
    /// (computation 36.65 %, allocation 44.10 %, indexing 19.25 %, chain
    /// < 0.1 %). We accept generous bands — the shape, not the digit.
    #[test]
    fn breakdown_matches_paper_shape() {
        let (mut db, mut mem, mut tg) = setup();
        let mut total = Breakdown::default();
        let mut now = Ps::ZERO;
        for txn in tg.batch(200) {
            let r = db.execute(&txn, &mut mem, now).expect("commit");
            total.merge(&r.breakdown);
            now = r.end;
        }
        let (compute, alloc, index, chain) = total.cpu_fractions();
        assert!((0.25..0.50).contains(&compute), "compute {compute}");
        assert!((0.30..0.60).contains(&alloc), "alloc {alloc}");
        assert!((0.08..0.32).contains(&index), "index {index}");
        assert!(chain < 0.01, "chain {chain}");
    }

    /// Fig. 9(a): RS is the OLTP ideal; CS costs ~28 % more; the unified
    /// format only a few percent more than RS.
    #[test]
    fn format_ordering_on_oltp_time() {
        let mem0 = MemSystem::dimm();
        let mut times = Vec::new();
        for format in [
            DbFormat::RowStore,
            DbFormat::Unified { th: 0.6 },
            DbFormat::ColumnStore,
        ] {
            let cfg = DbConfig::small().with_format(format);
            let mut db = TpccDb::build(&cfg, &mem0).unwrap();
            let mut mem = MemSystem::dimm();
            let mut tg = TxnGen::new(
                1,
                db.table(Table::Warehouse).n_rows(),
                db.table(Table::Customer).n_rows(),
                db.table(Table::Item).n_rows(),
                db.table(Table::Stock).n_rows(),
            );
            let mut now = Ps::ZERO;
            for txn in tg.batch(150) {
                now = db.execute(&txn, &mut mem, now).expect("commit").end;
            }
            times.push(now);
        }
        let (rs, uni, cs) = (times[0], times[1], times[2]);
        assert!(rs <= uni, "RS {rs} should be fastest (unified {uni})");
        assert!(uni < cs, "unified {uni} should beat CS {cs}");
        let uni_overhead = uni.ps() as f64 / rs.ps() as f64 - 1.0;
        let cs_overhead = cs.ps() as f64 / rs.ps() as f64 - 1.0;
        assert!(uni_overhead < 0.20, "unified overhead {uni_overhead}");
        assert!(cs_overhead > 0.10, "CS overhead {cs_overhead}");
    }

    /// With delta arenas undersized to a handful of slots, transactions
    /// hit `DeltaFull` mid-execution; the abort must leave no trace and
    /// the post-defragmentation retry must commit under the same
    /// timestamp.
    #[test]
    fn delta_full_abort_is_atomic_and_retry_commits() {
        use pushtap_mvcc::{DefragCostModel, DefragStrategy};
        let mem = MemSystem::dimm();
        let mut cfg = DbConfig::small();
        cfg.min_delta_rows = 16; // two slots per rotation arena
        let mut db = TpccDb::build(&cfg, &mem).unwrap();
        let mut mem = MemSystem::dimm();
        let mut tg = TxnGen::new(
            1,
            db.table(Table::Warehouse).n_rows(),
            db.table(Table::Customer).n_rows(),
            db.table(Table::Item).n_rows(),
            db.table(Table::Stock).n_rows(),
        );
        let cost = DefragCostModel::new(16.0, 1e9, 3e9);
        let mut saw_abort = false;
        for _ in 0..40 {
            let txn = tg.next_txn();
            let live = db.live_delta_rows();
            let ts = db.last_ts();
            let committed = db.committed();
            let cursors: Vec<u64> = (0..db.warehouses_global())
                .map(|w| db.insert_cursor(Table::OrderLine, w))
                .collect();
            match db.execute(&txn, &mut mem, Ps::ZERO) {
                Ok(r) => assert_eq!(r.commit_ts.0, ts.0 + 1, "gapless commit timestamps"),
                Err(_full) => {
                    saw_abort = true;
                    // The abort left no trace.
                    assert_eq!(db.live_delta_rows(), live, "leaked delta slots");
                    assert_eq!(db.last_ts(), ts, "timestamp not rolled back");
                    assert_eq!(db.committed(), committed);
                    let after: Vec<u64> = (0..db.warehouses_global())
                        .map(|w| db.insert_cursor(Table::OrderLine, w))
                        .collect();
                    assert_eq!(after, cursors, "stripe cursors moved");
                    // Defragment and retry: same txn, same timestamp.
                    let upto = db.last_ts();
                    for table in pushtap_chbench::ALL_TABLES {
                        if db.table(table).chains().updated_row_count() > 0 {
                            db.table_mut(table)
                                .defragment(&cost, DefragStrategy::Hybrid, upto);
                        }
                    }
                    let r = db
                        .execute(&txn, &mut mem, Ps::ZERO)
                        .expect("retry after defrag");
                    assert_eq!(r.commit_ts.0, ts.0 + 1, "retry reuses the timestamp");
                }
            }
        }
        assert!(saw_abort, "arenas this small must trigger DeltaFull");
        assert!(db.aborts() > 0);
    }

    #[test]
    fn pinned_execution_commits_at_the_given_timestamp() {
        let (mut db, mut mem, mut tg) = setup();
        let txn = tg.next_txn();
        let r = db
            .execute_at(&txn, Ts(5), &mut mem, Ps::ZERO)
            .expect("commit");
        assert_eq!(r.commit_ts, Ts(5));
        // The watermark covers the pinned commit without handing out the
        // intermediate timestamps.
        assert_eq!(db.last_ts(), Ts(5));
        let txn = tg.next_txn();
        let r = db
            .execute_at(&txn, Ts(9), &mut mem, Ps::ZERO)
            .expect("commit");
        assert_eq!(r.commit_ts, Ts(9));
        assert_eq!(db.last_ts(), Ts(9));
        assert_eq!(db.committed(), 2);
    }

    #[test]
    fn shared_oracle_drives_two_instances_through_one_sequence() {
        use std::sync::Arc;
        let mem0 = MemSystem::dimm();
        let cfg = DbConfig::small();
        let oracle = Arc::new(TsOracle::new());
        let mut a = TpccDb::build(&cfg, &mem0).unwrap();
        let mut b = TpccDb::build(&cfg, &mem0).unwrap();
        a.share_timestamps(oracle.clone());
        b.share_timestamps(oracle.clone());
        let mut mem = MemSystem::dimm();
        let mut tg = TxnGen::new(
            1,
            a.table(Table::Warehouse).n_rows(),
            a.table(Table::Customer).n_rows(),
            a.table(Table::Item).n_rows(),
            a.table(Table::Stock).n_rows(),
        );
        let t1 = a
            .execute(&tg.next_txn(), &mut mem, Ps::ZERO)
            .expect("commit");
        let t2 = b
            .execute(&tg.next_txn(), &mut mem, Ps::ZERO)
            .expect("commit");
        assert_eq!((t1.commit_ts, t2.commit_ts), (Ts(1), Ts(2)));
        assert_eq!(a.last_ts(), Ts(2), "both see the global watermark");
        assert_eq!(b.last_ts(), Ts(2));
        assert_eq!(oracle.watermark(), Ts(2));
    }

    /// The latency a failed attempt consumed is tracked so callers can
    /// charge it to the transaction's completion time (its memory traffic
    /// already hit the simulated memory system).
    #[test]
    fn failed_attempts_accumulate_wasted_time() {
        use pushtap_mvcc::{DefragCostModel, DefragStrategy};
        let mem = MemSystem::dimm();
        let mut cfg = DbConfig::small();
        cfg.min_delta_rows = 16;
        let mut db = TpccDb::build(&cfg, &mem).unwrap();
        let mut mem = MemSystem::dimm();
        let mut tg = TxnGen::new(
            1,
            db.table(Table::Warehouse).n_rows(),
            db.table(Table::Customer).n_rows(),
            db.table(Table::Item).n_rows(),
            db.table(Table::Stock).n_rows(),
        );
        assert_eq!(db.wasted_retry_time(), Ps::ZERO);
        let cost = DefragCostModel::new(16.0, 1e9, 3e9);
        let mut last_wasted = Ps::ZERO;
        let mut saw_abort = false;
        for _ in 0..40 {
            let txn = tg.next_txn();
            match db.execute(&txn, &mut mem, Ps::ZERO) {
                Ok(_) => assert_eq!(
                    db.wasted_retry_time(),
                    last_wasted,
                    "a clean commit must not add wasted time"
                ),
                Err(_full) => {
                    saw_abort = true;
                    // Monotone: aborts only ever add wasted time (zero is
                    // possible when the very first statement hits the
                    // full arena before any time is charged).
                    assert!(db.wasted_retry_time() >= last_wasted);
                    last_wasted = db.wasted_retry_time();
                    let upto = db.last_ts();
                    for table in pushtap_chbench::ALL_TABLES {
                        if db.table(table).chains().updated_row_count() > 0 {
                            db.table_mut(table)
                                .defragment(&cost, DefragStrategy::Hybrid, upto);
                        }
                    }
                    db.execute(&txn, &mut mem, Ps::ZERO)
                        .expect("retry after defrag");
                }
            }
        }
        assert!(saw_abort, "arenas this small must trigger DeltaFull");
        assert!(
            db.wasted_retry_time() > Ps::ZERO,
            "mid-transaction aborts must have consumed time"
        );
    }

    #[test]
    fn payment_updates_functional_state() {
        let (mut db, mut mem, _) = setup();
        let p = Payment {
            w_id: 0,
            d_id: 0,
            c_row: 3,
            amount: 777,
        };
        let before = db.table(Table::Customer).snapshot_read(3);
        db.execute(&Txn::Payment(p), &mut mem, Ps::ZERO).unwrap();
        // Not yet snapshotted: OLAP still sees the old balance.
        assert_eq!(db.table(Table::Customer).snapshot_read(3), before);
        let ts = db.last_ts();
        let meter = *db.meter();
        db.table_mut(Table::Customer)
            .timed_snapshot_update(&mut mem, &meter, ts, Ps::ZERO);
        let after = db.table(Table::Customer).snapshot_read(3);
        let bal_col = 16; // c_balance
        assert_eq!(pushtap_chbench::dec_u64(&after[bal_col]), 777);
    }
}
