//! TPC-C transaction execution over the HTAP tables (§7.1).
//!
//! The paper simulates Payment and NewOrder, "which account for
//! approximately 90% of the TPC-C workload", on a DBx1000-derived
//! executor with MVCC. [`TpccDb`] owns one [`HtapTable`] per CH table and
//! executes the [`Txn`] stream from [`pushtap_chbench::TxnGen`], charging
//! every memory access and CPU component to the simulator.
//!
//! Execution is a *statement-effect pipeline*: [`TpccDb::decompose`]
//! turns a transaction into its ordered row-level effects (each tagged
//! with the owning warehouse — see [`crate::effects`]), and the engine
//! applies them inside a prepare/commit scope. The single-instance path
//! ([`TpccDb::execute`]) is a one-phase specialisation — prepare the
//! whole effect set locally, commit immediately — while a sharded
//! deployment splits the same effect set across owning engines through
//! the participant API ([`TpccDb::prepare_effects`] /
//! [`TpccDb::commit_prepared`] / [`TpccDb::abort_prepared`]) under a
//! simulated two-phase commit (`pushtap-shard`'s coordinator). Both
//! paths apply identical effects at identical pinned timestamps, which
//! is what makes sharded committed bytes equal the unpartitioned
//! reference's for *every* table, remote-owned rows included.

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::Arc;

use pushtap_chbench::{dec_u64, enc_u64, NewOrder, Partitioning, Payment, RowGen, Table, Txn};
use pushtap_format::{
    compact_layout, naive_layout, LayoutError, RowSlot, TableLayout, TableSchema,
};
use pushtap_mvcc::{DefragCostModel, DefragStrategy, DeltaFull, Ts, TsAllocator, TsOracle};
use pushtap_pim::{BankAddr, Geometry, MemSystem, Ps, Side};
use pushtap_sanitizer::{Access, AccessKind, AccessSink, NullSanitizer, SanKey};
use pushtap_trace::{NullSink, Phase, Span, TraceSink};

use crate::cost::{Breakdown, CostModel, Meter};
use crate::effects::{ColumnWrite, Effect, Key, KeySet, TaggedEffect};
use crate::table::{AccessModel, HtapTable, TableConfig, TableGcPass};

/// The outcome of one committed transaction.
#[derive(Debug, Clone, Copy)]
pub struct TxnResult {
    /// Commit timestamp.
    pub commit_ts: Ts,
    /// Completion time.
    pub end: Ps,
    /// Component breakdown.
    pub breakdown: Breakdown,
}

/// Which role an engine plays when a prepared scope commits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnRole {
    /// The engine executing the transaction's home half: committing
    /// counts the *transaction* as committed on this engine.
    Coordinator,
    /// A remote participant committing a forwarded effect set: the
    /// transaction is counted at its home engine, not here.
    Participant,
}

/// A prepared-but-undecided transaction scope held by the engine,
/// keyed by its pinned commit timestamp. Several scopes coexist under a
/// pipelined coordinator — one per in-flight non-conflicting
/// transaction.
#[derive(Debug, Clone)]
struct PreparedScope {
    /// Simulated time the prepare consumed (charged to
    /// `wasted_retry_time` if the coordinator aborts).
    elapsed: Ps,
    /// Stripe cursors this scope advanced, in order — undone in reverse
    /// if the coordinator aborts. Scopes never share a cursor (their
    /// ring keys are disjoint by conflict scheduling), so out-of-order
    /// resolution is exact.
    cursors: Vec<(Table, u64)>,
}

/// Which layout the database instance uses (drives both the generated
/// [`TableLayout`] and the timing [`AccessModel`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DbFormat {
    /// PUSHtap's compact aligned format with threshold `th`.
    Unified {
        /// Bin-packing threshold.
        th: f64,
    },
    /// The naïve aligned format of §4.1.1 (ablation).
    NaiveAligned,
    /// Traditional row-store (the RS baseline).
    RowStore,
    /// Traditional column-store (the CS baseline).
    ColumnStore,
}

/// One shard's slice of a partitioned deployment: shard `index` of
/// `count`. The single-instance case is `Partition::single()`.
///
/// Warehouse-anchored tables are split into contiguous row ranges
/// ([`Partition::range`], the floor split `[⌊i·n/k⌋, ⌊(i+1)·n/k⌋)`);
/// replicated dimension tables are built in full on every shard. Row
/// *content* is generated from the global row index, so the union of the
/// shards' partitioned tables is byte-identical to the unpartitioned
/// build — the property scatter-gather analytics relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// This shard's index, `0 <= index < count`.
    pub index: u32,
    /// Total number of shards.
    pub count: u32,
}

impl Partition {
    /// The unpartitioned (single-instance) build.
    pub fn single() -> Partition {
        Partition { index: 0, count: 1 }
    }

    /// Shard `index` of `count`.
    ///
    /// # Panics
    ///
    /// Panics unless `index < count`.
    pub fn of(index: u32, count: u32) -> Partition {
        assert!(index < count, "shard {index} out of {count}");
        Partition { index, count }
    }

    /// Whether this is the unpartitioned build.
    pub fn is_single(&self) -> bool {
        self.count == 1
    }

    /// This shard's contiguous slice of `rows` global rows (floor split;
    /// possibly empty when `rows < count`).
    pub fn range(&self, rows: u64) -> Range<u64> {
        let start = (self.index as u64 * rows) / self.count as u64;
        let end = ((self.index as u64 + 1) * rows) / self.count as u64;
        start..end
    }

    /// The shard owning global row `row` of a `rows`-row table under the
    /// floor split (the inverse of [`Partition::range`]).
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    pub fn owner_of(row: u64, rows: u64, count: u32) -> u32 {
        assert!(row < rows, "row {row} out of {rows}");
        (((row + 1) * count as u64 - 1) / rows) as u32
    }
}

/// Build-time parameters of a database instance.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Population scale (1.0 = the paper's 20 GB).
    pub scale: f64,
    /// Floor on the warehouse population, whatever `scale` says. Sharded
    /// deployments need at least one warehouse per shard without paying
    /// for scale-proportional growth of the big fact tables.
    pub min_warehouses: u64,
    /// Storage format.
    pub format: DbFormat,
    /// Which memory the instance lives in.
    pub side: Side,
    /// OLAP query subset defining the key columns (e.g. `1..=22`).
    pub key_queries: Vec<u8>,
    /// Delta capacity as a fraction of each table's rows.
    pub delta_frac: f64,
    /// Minimum delta capacity in rows (hot small tables — WAREHOUSE,
    /// DISTRICT — receive a version per transaction and need headroom
    /// between defragmentation passes).
    pub min_delta_rows: u64,
    /// Block-circulant block size.
    pub block_rows: u32,
    /// CPU cost model.
    pub costs: CostModel,
}

impl DbConfig {
    /// A small default configuration for tests and examples.
    pub fn small() -> DbConfig {
        DbConfig {
            scale: 0.0005,
            min_warehouses: 1,
            format: DbFormat::Unified { th: 0.6 },
            side: Side::Pim,
            key_queries: (1..=22).collect(),
            delta_frac: 0.5,
            min_delta_rows: 4096,
            block_rows: 64,
            costs: CostModel::default(),
        }
    }

    /// Same configuration with a different format.
    pub fn with_format(mut self, format: DbFormat) -> DbConfig {
        self.format = format;
        self
    }
}

/// The transactional database: one HTAP table per CH table.
#[derive(Debug)]
pub struct TpccDb {
    tables: BTreeMap<Table, HtapTable>,
    meter: Meter,
    ts: TsAllocator,
    committed: u64,
    partition: Partition,
    /// Global warehouse population (before partitioning).
    warehouses_global: u64,
    /// The contiguous warehouse range this instance owns.
    wh_range: Range<u64>,
    /// Per-table global row count and this instance's first global row.
    table_global: BTreeMap<Table, (u64, u64)>,
    /// Per-(table, warehouse) insert cursors: inserts cycle inside the
    /// home warehouse's stripe, deterministically across deployments.
    insert_cursors: BTreeMap<(Table, u64), u64>,
    /// Stripe cursors bumped by the in-flight transaction, in order —
    /// the executor-level half of the undo log (the table-level half
    /// lives in each [`HtapTable`]'s [`pushtap_mvcc::UndoLog`]).
    txn_cursor_log: Vec<(Table, u64)>,
    /// Transactions rolled back on [`DeltaFull`] (each is retried by the
    /// caller after defragmentation, so this is also the retry count).
    aborts: u64,
    /// Prepared-but-undecided scopes keyed by pinned commit timestamp —
    /// the two-phase commits in flight on this engine. A serial
    /// coordinator holds at most one; a pipelined coordinator holds one
    /// per overlapped non-conflicting transaction.
    prepared: BTreeMap<Ts, PreparedScope>,
    /// Cumulative simulated time consumed by rolled-back attempts: the
    /// statements a transaction executed before hitting [`DeltaFull`].
    /// The memory traffic of those statements is charged to the simulated
    /// memory system, so their latency belongs in the transaction's
    /// completion time too (see `Pushtap::execute_txn`).
    wasted_retry_time: Ps,
    /// Lifecycle-span sink ([`pushtap_trace::NullSink`] by default —
    /// one disabled-branch per emission site, nothing recorded).
    sink: Arc<dyn TraceSink>,
    /// The shard index stamped on emitted spans (0 standalone).
    track: u32,
    /// Keyset-soundness shadow tracker
    /// ([`pushtap_sanitizer::NullSanitizer`] by default — one
    /// disabled-branch per hook, nothing recorded).
    san: Arc<dyn AccessSink>,
    /// The shard index stamped on sanitizer scopes (0 standalone).
    san_track: u32,
}

/// Lowers a scheduler [`Key`] to the sanitizer's engine-agnostic
/// [`SanKey`] (the sanitizer crate is dependency-free, so it cannot
/// name [`Table`] — the discriminant carries the identity).
fn san_key(k: &Key) -> SanKey {
    match *k {
        Key::Row(t, row) => SanKey::Row(t as u32, row),
        Key::Ring(t, w) => SanKey::Ring(t as u32, w),
    }
}

/// Global (pre-partitioning) row count of `table` under `cfg`.
///
/// WAREHOUSE is floored at `cfg.min_warehouses`; DISTRICT is *derived*
/// as exactly 10 rows per warehouse (its TPC-C definition). The executor
/// addresses district rows as `w_id * 10 + d_id`, so any other district
/// population would alias districts of different warehouses onto one
/// row — across warehouse-stripe (and therefore shard) boundaries, which
/// breaks the byte identity between a partitioned deployment and the
/// unpartitioned reference. Independent rounding of the two scales used
/// to allow exactly that (at small scales DISTRICT rounded to one row).
pub fn global_rows(cfg: &DbConfig, table: Table) -> u64 {
    match table {
        Table::Warehouse => table.rows_at_scale(cfg.scale).max(cfg.min_warehouses),
        Table::District => global_rows(cfg, Table::Warehouse) * 10,
        _ => table.rows_at_scale(cfg.scale),
    }
}

/// First global row of warehouse `w`'s stripe of a `rows`-row fact table
/// (floor split into `warehouses` stripes). Inserts anchored to a home
/// warehouse cycle inside its stripe, so a partitioned shard and an
/// unpartitioned instance land the same logical insert on the same
/// global row.
pub fn stripe_start(w: u64, rows: u64, warehouses: u64) -> u64 {
    (w * rows) / warehouses
}

/// The warehouse whose stripe holds global fact row `row` — the inverse
/// of [`stripe_start`].
///
/// # Panics
///
/// Panics if `row >= rows`.
pub fn warehouse_of_row(row: u64, rows: u64, warehouses: u64) -> u64 {
    assert!(row < rows, "row {row} out of {rows}");
    ((row + 1) * warehouses - 1) / rows
}

fn layout_for(
    schema: &TableSchema,
    format: DbFormat,
    devices: u32,
) -> Result<TableLayout, LayoutError> {
    match format {
        DbFormat::Unified { th } => compact_layout(schema, devices, th),
        // The classic baselines keep a validated (naïve) layout for
        // functional storage; their *timing* uses the RS/CS access models.
        DbFormat::NaiveAligned | DbFormat::RowStore | DbFormat::ColumnStore => {
            naive_layout(&schema.with_all_keys(), devices)
        }
    }
}

fn access_model(format: DbFormat) -> AccessModel {
    match format {
        DbFormat::Unified { .. } | DbFormat::NaiveAligned => AccessModel::Unified,
        DbFormat::RowStore => AccessModel::RowStore,
        DbFormat::ColumnStore => AccessModel::ColumnStore,
    }
}

impl TpccDb {
    /// Builds (and functionally populates) the database on the memory
    /// system's PIM-side geometry.
    ///
    /// # Errors
    ///
    /// Propagates [`LayoutError`] from layout generation.
    pub fn build(cfg: &DbConfig, mem: &MemSystem) -> Result<TpccDb, LayoutError> {
        TpccDb::build_partitioned(cfg, mem, Partition::single())
    }

    /// Builds one shard of a warehouse-partitioned deployment: fact
    /// tables hold this shard's contiguous slice of the global rows
    /// (byte-identical to the corresponding rows of the unpartitioned
    /// build), dimension tables are replicated in full.
    ///
    /// A shard whose slice of a fact table would be empty (fewer global
    /// rows than shards — only ever the tiny warehouse-anchored tables)
    /// keeps one clamped row so modular row addressing stays defined;
    /// such tables are too small to partition meaningfully and are never
    /// scanned by the analytical queries.
    ///
    /// # Errors
    ///
    /// Propagates [`LayoutError`] from layout generation.
    pub fn build_partitioned(
        cfg: &DbConfig,
        mem: &MemSystem,
        partition: Partition,
    ) -> Result<TpccDb, LayoutError> {
        let geometry: Geometry = match cfg.side {
            Side::Pim => mem.cfg().pim_geometry,
            Side::Host => mem.cfg().cpu_geometry,
        };
        let shards: Vec<BankAddr> = geometry.bank_addrs().collect();
        let key_map = pushtap_chbench::key_columns_of(&cfg.key_queries);
        let warehouses_global = global_rows(cfg, Table::Warehouse);
        let wh_range = partition.range(warehouses_global);
        let mut tables = BTreeMap::new();
        let mut table_global = BTreeMap::new();
        let mut base_dram_row = 0u32;
        for table in pushtap_chbench::ALL_TABLES {
            let keys: Vec<&str> = key_map.get(&table).cloned().unwrap_or_default();
            let schema = pushtap_chbench::schema_with_keys(table, &keys);
            let layout = layout_for(&schema, cfg.format, geometry.devices_per_rank)?;
            let global = global_rows(cfg, table);
            let (row_base, n_rows) = match table.partitioning() {
                Partitioning::Replicated => (0, global),
                Partitioning::ByWarehouse => {
                    // Split along warehouse-stripe boundaries so each
                    // warehouse's rows (and insert stripe) live wholly on
                    // the shard that owns the warehouse.
                    let start = stripe_start(wh_range.start, global, warehouses_global);
                    let end = stripe_start(wh_range.end, global, warehouses_global);
                    if start == end {
                        (start.min(global - 1), 1)
                    } else {
                        (start, end - start)
                    }
                }
            };
            table_global.insert(table, (global, row_base));
            let delta_rows = ((n_rows as f64 * cfg.delta_frac) as u64).max(cfg.min_delta_rows);
            let mut t = HtapTable::new(
                layout,
                TableConfig {
                    n_rows,
                    delta_rows,
                    block_rows: cfg.block_rows,
                    shards: shards.clone(),
                    base_dram_row,
                    model: access_model(cfg.format),
                    side: cfg.side,
                    granularity: geometry.granularity,
                    bank_row_bytes: geometry.row_bytes,
                    rows_per_bank: geometry.rows_per_bank,
                },
            );
            // Functional population from *global* row indices, so every
            // shard's slice matches the unpartitioned build byte for byte.
            let gen = RowGen::new(table, global);
            for row in 0..n_rows {
                t.load_row(row, &gen.row(row_base + row));
            }
            // Advance the placement cursor: tables get disjoint DRAM rows.
            let rows_used = (t.region().bytes_per_device() / geometry.row_bytes as u64) as u32 + 1;
            base_dram_row = (base_dram_row + rows_used) % geometry.rows_per_bank;
            tables.insert(table, t);
        }
        Ok(TpccDb {
            tables,
            meter: Meter::new(cfg.costs, mem.cfg().cpu),
            ts: TsAllocator::new(),
            committed: 0,
            partition,
            warehouses_global,
            wh_range,
            table_global,
            insert_cursors: BTreeMap::new(),
            txn_cursor_log: Vec::new(),
            aborts: 0,
            prepared: BTreeMap::new(),
            wasted_retry_time: Ps::ZERO,
            sink: Arc::new(NullSink),
            track: 0,
            san: Arc::new(NullSanitizer),
            san_track: 0,
        })
    }

    /// Installs a lifecycle-span sink; every engine-level prepare
    /// attempt (success or `DeltaFull` rollback) and one-phase commit
    /// emits a span stamped with `track` (the shard index). The default
    /// [`NullSink`] reports itself disabled, so instrumented paths skip
    /// span construction entirely.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>, track: u32) {
        self.sink = sink;
        self.track = track;
    }

    /// Installs a keyset-soundness shadow tracker
    /// ([`pushtap_sanitizer::AccessSink`]); every row read/write, chain
    /// growth and insert-ring cursor advance is mirrored to it, stamped
    /// with `track` (the shard index) and the owning transaction's
    /// pinned timestamp, and each prepare/commit/abort opens, seals or
    /// discards the matching shadow scope. The default
    /// [`NullSanitizer`] reports itself disabled, so instrumented paths
    /// cost one branch and record nothing. Hooks charge zero simulated
    /// time, so an armed tracker never perturbs byte identity.
    pub fn set_sanitizer(&mut self, san: Arc<dyn AccessSink>, track: u32) {
        for (table, t) in self.tables.iter_mut() {
            let (_, row_base) = self.table_global[table];
            t.set_access_sink(Arc::clone(&san), *table as u32, row_base, track);
        }
        self.san = san;
        self.san_track = track;
    }

    /// The installed keyset-soundness tracker (the [`NullSanitizer`]
    /// unless [`TpccDb::set_sanitizer`] swapped it).
    pub fn sanitizer(&self) -> &Arc<dyn AccessSink> {
        &self.san
    }

    /// Swaps the instance's private timestamp counter for a shared
    /// deployment-wide [`TsOracle`].
    ///
    /// Every engine of a sharded deployment is handed the *same* oracle,
    /// so all of them draw from one global timestamp sequence. Commit
    /// timestamps are encoded into stored bytes, which makes this the
    /// precondition for a sharded deployment's committed state being
    /// byte-identical to a single-instance reference that executed the
    /// same stream (the coordinator additionally assigns the draws in
    /// global stream order — see `pushtap-shard`).
    ///
    /// # Panics
    ///
    /// Panics if the instance has already executed transactions (the two
    /// sequences could no longer be reconciled).
    pub fn share_timestamps(&mut self, oracle: Arc<TsOracle>) {
        assert_eq!(
            self.committed, 0,
            "cannot share timestamps after transactions have committed"
        );
        assert_eq!(self.aborts, 0, "cannot share timestamps mid-retry");
        self.ts = TsAllocator::shared(oracle);
    }

    /// The shared timestamp oracle, if [`TpccDb::share_timestamps`] was
    /// called.
    pub fn ts_oracle(&self) -> Option<&Arc<TsOracle>> {
        self.ts.oracle()
    }

    /// Which slice of the global population this instance holds.
    pub fn partition(&self) -> Partition {
        self.partition
    }

    /// The contiguous warehouse range this instance owns (the full
    /// population for an unpartitioned build).
    pub fn warehouse_range(&self) -> Range<u64> {
        self.wh_range.clone()
    }

    /// Global warehouse population (before partitioning).
    pub fn warehouses_global(&self) -> u64 {
        self.warehouses_global
    }

    /// Global (pre-partitioning) row count of `table`.
    pub fn global_rows_of(&self, table: Table) -> u64 {
        self.table_global[&table].0
    }

    /// Picks the *global* target row for the next insert into `table`
    /// homed at warehouse `w_id` — the current slot of the warehouse's
    /// stripe ring — without consuming it. Inserts are always anchored to
    /// the transaction's home warehouse, which this engine must own (the
    /// router guarantees it; a foreign warehouse here is a routing bug).
    /// A degenerate shard with an empty owned range (more shards than
    /// warehouses) clamps to its single kept row.
    fn insert_target(&self, table: Table, w_id: u64) -> (u64, u64) {
        let (global, row_base) = self.table_global[&table];
        let local_rows = self.tables[&table].n_rows();
        let w = if self.wh_range.contains(&w_id) {
            w_id
        } else if self.wh_range.is_empty() {
            self.wh_range.start.min(self.warehouses_global - 1)
        } else {
            panic!(
                "insert homed at foreign warehouse {w_id} (this engine owns {:?})",
                self.wh_range
            );
        };
        let start = stripe_start(w, global, self.warehouses_global);
        let end = stripe_start(w + 1, global, self.warehouses_global);
        let c = self.insert_cursors.get(&(table, w)).copied().unwrap_or(0);
        let row = if !self.wh_range.is_empty() && end > start {
            start + c % (end - start)
        } else {
            // Degenerate cases (fewer rows than warehouses, or a shard
            // owning no warehouse at all): fall back to a local ring;
            // cross-deployment row identity is moot for configurations
            // this small.
            row_base + c % local_rows
        };
        (row, w)
    }

    /// The local row of `table` backing *global* row `g`.
    ///
    /// Replicated tables hold the full population, so the translation is
    /// the identity. Partitioned tables must *own* the row: remote-owned
    /// effects are forwarded to and applied at their owning shard, so an
    /// unowned row here is a routing bug and panics — there is no
    /// fallback addressing of any kind.
    fn own_row(&self, table: Table, g: u64) -> u64 {
        let (global, row_base) = self.table_global[&table];
        let n = self.tables[&table].n_rows();
        assert!(
            g < global,
            "{table:?} row {g} out of the {global} global rows"
        );
        assert!(
            (row_base..row_base + n).contains(&g),
            "effect on {table:?} global row {g} reached a non-owning shard \
             (owns {row_base}..{})",
            row_base + n
        );
        g - row_base
    }

    /// Inserts into `table` at the stripe slot of home warehouse `w_id`,
    /// returning the *global* row index (identical on a partitioned
    /// shard and an unpartitioned instance for the same logical stream).
    /// The stripe cursor advances only on success, so a `DeltaFull`
    /// retry after defragmentation reuses the same slot.
    #[allow(clippy::too_many_arguments)]
    fn timed_insert_for(
        &mut self,
        table: Table,
        w_id: u64,
        values: &[Vec<u8>],
        ts: Ts,
        mem: &mut MemSystem,
        meter: &Meter,
        at: Ps,
    ) -> Result<(u64, crate::table::OpResult), DeltaFull> {
        let (global_row, w) = self.insert_target(table, w_id);
        let (_, row_base) = self.table_global[&table];
        let local = global_row - row_base;
        let t = self.tables.get_mut(&table).expect("table not built");
        let r = t.timed_insert_at(mem, meter, local, values, ts, at)?;
        *self.insert_cursors.entry((table, w)).or_insert(0) += 1;
        self.txn_cursor_log.push((table, w));
        if self.san.enabled() {
            // The cursor advance is the ring-key side of the insert: the
            // physical row write was already mirrored by the table hook.
            self.san.record_access(
                self.san_track,
                ts.0,
                Access {
                    kind: AccessKind::RingAdvance,
                    table: table as u32,
                    key: w,
                },
            );
        }
        Ok((global_row, r))
    }

    /// The table instance for `table`.
    ///
    /// # Panics
    ///
    /// Panics if the table was not built.
    pub fn table(&self, table: Table) -> &HtapTable {
        &self.tables[&table]
    }

    /// Mutable access to a table instance.
    pub fn table_mut(&mut self, table: Table) -> &mut HtapTable {
        self.tables.get_mut(&table).expect("table not built")
    }

    /// All tables.
    pub fn tables(&self) -> impl Iterator<Item = (&Table, &HtapTable)> {
        self.tables.iter()
    }

    /// The newest committed bytes of one column of a *global* row — the
    /// value the row's last committed writer left behind. A WAL
    /// checkpoint folds each surviving [`ColumnWrite::Add`] into a
    /// [`ColumnWrite::Set`] of exactly these bytes, so the compacted
    /// record replays to the same committed state the full log would.
    ///
    /// # Panics
    ///
    /// Panics if this engine does not own the row (same ownership
    /// discipline as effect application) or the table was not built.
    pub fn committed_column(&self, table: Table, row: u64, col: u32) -> Vec<u8> {
        let local = self.own_row(table, row);
        let t = &self.tables[&table];
        t.store().read_row(t.chains().newest_slot(local))[col as usize].clone()
    }

    /// The cost meter in effect.
    pub fn meter(&self) -> &Meter {
        &self.meter
    }

    /// Committed transactions so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Transactions rolled back on [`DeltaFull`] so far. Every abort is
    /// followed by a caller-driven defragmentation and a retry of the
    /// whole transaction, so this doubles as the retry count.
    pub fn aborts(&self) -> u64 {
        self.aborts
    }

    /// The current stripe-ring cursor of `table` for home warehouse `w`
    /// (the number of inserts this warehouse has committed into its
    /// stripe). Transaction-atomic: an aborted transaction leaves every
    /// cursor untouched, which is the invariant the cross-deployment
    /// identity tests assert.
    pub fn insert_cursor(&self, table: Table, w: u64) -> u64 {
        self.insert_cursors.get(&(table, w)).copied().unwrap_or(0)
    }

    /// The most recent commit timestamp. With a shared [`TsOracle`]
    /// ([`TpccDb::share_timestamps`]) this is the deployment-wide
    /// watermark — an upper bound on every timestamp committed anywhere,
    /// including on this instance.
    pub fn last_ts(&self) -> Ts {
        self.ts.last()
    }

    /// Cumulative time consumed by attempts that were rolled back on
    /// [`DeltaFull`] (statements executed before the abort). Callers fold
    /// the per-attempt delta into the transaction's completion latency.
    pub fn wasted_retry_time(&self) -> Ps {
        self.wasted_retry_time
    }

    /// Total live delta versions across tables.
    pub fn live_delta_rows(&self) -> u64 {
        self.tables.values().map(HtapTable::live_delta_rows).sum()
    }

    /// Total commit-log entries awaiting snapshot consumption across
    /// tables — with [`TpccDb::live_delta_rows`], the gauge garbage
    /// collection keeps bounded under sustained traffic.
    pub fn commit_log_entries(&self) -> u64 {
        self.tables
            .values()
            .map(|t| t.commit_log_len() as u64)
            .sum()
    }

    /// Whether any snapshot pin is standing on the shared oracle
    /// (always false standalone — a private allocator has no pinning
    /// readers). Proactive defragmentation must hold off while this is
    /// true: it folds newest versions and frees whole chains, which a
    /// pinned historical reader cannot survive.
    pub fn snapshot_pinned(&self) -> bool {
        self.ts.oracle().is_some_and(|o| o.active_pins() > 0)
    }

    /// The garbage-collection cut this engine may reclaim below: the
    /// shared oracle's pin-floored eligible cut
    /// ([`TsOracle::gc_eligible_before`]) in a deployment, or the local
    /// watermark stand-alone (nothing pins a private allocator).
    pub fn gc_eligible_before(&self) -> Ts {
        match self.ts.oracle() {
            Some(oracle) => oracle.gc_eligible_before(),
            None => self.ts.last(),
        }
    }

    /// One incremental garbage-collection pass over every table (see
    /// [`HtapTable::gc`]): folds each row's newest committed version at
    /// or below `before` into the data region, recycles the freed delta
    /// slots, and trims the consumed commit-log entries. Returns the
    /// merged per-table stats and the total copy-back communication
    /// seconds.
    pub fn gc(
        &mut self,
        model: &DefragCostModel,
        strategy: DefragStrategy,
        before: Ts,
    ) -> (TableGcPass, f64) {
        let mut total = TableGcPass::default();
        let mut seconds = 0.0;
        for table in self.tables.values_mut() {
            let (pass, secs) = table.gc(model, strategy, before);
            total.absorb(pass);
            seconds += secs;
        }
        (total, seconds)
    }

    /// Executes one transaction *atomically*, serially dependent on its
    /// own operations (commit at the end, §6.3).
    ///
    /// The transaction runs inside a begin/commit/abort scope: every
    /// statement records its effects in the tables' undo logs, and a
    /// mid-transaction [`DeltaFull`] rolls the whole transaction back —
    /// delta slots, version chains, row bytes, index entries, stripe
    /// cursors, and the allocated timestamp all revert — before the
    /// error is surfaced. The caller defragments and re-executes; the
    /// retry re-runs under the *same* timestamp on the *same* stripe
    /// slots, so committed state is a pure function of the committed
    /// transaction stream, independent of when delta arenas filled up.
    ///
    /// # Errors
    ///
    /// Returns [`DeltaFull`] if a delta arena filled up mid-transaction
    /// (all partial effects already rolled back); the caller should
    /// defragment and retry.
    pub fn execute(
        &mut self,
        txn: &Txn,
        mem: &mut MemSystem,
        at: Ps,
    ) -> Result<TxnResult, DeltaFull> {
        let ts = self.ts.allocate();
        let r = self.run_txn(txn, ts, mem, at);
        if r.is_err() {
            // Keep the committed sequence gapless: the retry re-allocates
            // the same timestamp.
            self.ts.rollback(ts);
        }
        r
    }

    /// Executes one transaction under a caller-assigned (*pinned*) commit
    /// timestamp, with the same atomic begin/commit/abort scope as
    /// [`TpccDb::execute`].
    ///
    /// This is the sharded execution path: a coordinator draws timestamps
    /// from the shared [`TsOracle`] in *global stream order* (the order a
    /// single-instance reference would allocate them in) and pins each
    /// routed transaction to its draw, so concurrent shards commit the
    /// exact timestamps the reference commits. A pinned abort does *not*
    /// return the timestamp to any allocator — the retry simply re-runs
    /// under the same pinned timestamp; on commit the engine's watermark
    /// advances to cover it.
    ///
    /// Pinned timestamps must arrive in increasing order per instance
    /// (MVCC version chains require per-row monotone timestamps), which
    /// stream-order assignment guarantees.
    ///
    /// # Errors
    ///
    /// Returns [`DeltaFull`] if a delta arena filled up mid-transaction
    /// (all partial effects already rolled back); the caller should
    /// defragment and retry under the same timestamp.
    pub fn execute_at(
        &mut self,
        txn: &Txn,
        ts: Ts,
        mem: &mut MemSystem,
        at: Ps,
    ) -> Result<TxnResult, DeltaFull> {
        self.run_txn(txn, ts, mem, at)
    }

    /// The shared transaction body — the one-phase specialisation of the
    /// effect pipeline: decompose, prepare the whole effect set locally,
    /// commit immediately. Timestamp bookkeeping (allocation, rollback)
    /// is the caller's job; the commit advances the watermark to `ts`.
    fn run_txn(
        &mut self,
        txn: &Txn,
        ts: Ts,
        mem: &mut MemSystem,
        at: Ps,
    ) -> Result<TxnResult, DeltaFull> {
        let effects = self.decompose(txn, ts);
        let r = self.prepare_effects(&effects, ts, mem, at)?;
        self.commit_prepared(ts, TxnRole::Coordinator);
        if self.sink.enabled() {
            self.sink
                .record(Span::instant(self.track, Phase::Commit, ts.0, r.end.ps()));
        }
        Ok(r)
    }

    /// Opens the transaction scope on every table and the cursor log.
    fn begin_txn(&mut self) {
        debug_assert!(self.txn_cursor_log.is_empty(), "cursor log leaked");
        for t in self.tables.values_mut() {
            t.begin_txn();
        }
    }

    /// Rolls back the in-flight transaction: every table unwinds its
    /// undo log and stripe cursors step back. Timestamp rollback is the
    /// caller's job ([`TpccDb::execute`] returns the allocation;
    /// [`TpccDb::execute_at`] keeps the pinned timestamp for the retry).
    fn abort_txn(&mut self) {
        for t in self.tables.values_mut() {
            t.abort_txn();
        }
        while let Some((table, w)) = self.txn_cursor_log.pop() {
            let c = self
                .insert_cursors
                .get_mut(&(table, w))
                .expect("cursor bumped by the aborting transaction");
            *c -= 1;
        }
        self.aborts += 1;
    }

    /// Decomposes `txn` into its ordered row-level effects, each tagged
    /// with the owning warehouse (see [`crate::effects`]). The effect
    /// order is exactly the statement order the executor applies, so
    /// applying the decomposition reproduces monolithic execution —
    /// values, timing, and bytes.
    ///
    /// Decomposition is read-only: stripe cursors and version chains are
    /// untouched, so a transaction retried after a [`DeltaFull`] abort
    /// decomposes to the identical effect set.
    pub fn decompose(&self, txn: &Txn, ts: Ts) -> Vec<TaggedEffect> {
        match txn {
            Txn::Payment(p) => self.decompose_payment(p, ts),
            Txn::NewOrder(no) => self.decompose_neworder(no, ts),
        }
    }

    /// The canonical conflict keyset of `txn` — the rows it reads, the
    /// rows it writes, and the insert rings it consumes — derived from
    /// its effect decomposition ([`TpccDb::decompose`]). Decomposition
    /// is read-only and retry-stable, so the keyset is known *before*
    /// execution: it never depends on cursor positions or delta
    /// occupancy, only on the transaction's parameters. A scheduler uses
    /// [`KeySet::conflicts`](crate::effects::KeySet::conflicts) to order
    /// conflicting transactions by timestamp and run the rest
    /// concurrently.
    pub fn keyset(&self, txn: &Txn, ts: Ts) -> crate::effects::KeySet {
        crate::effects::KeySet::from_effects(&self.decompose(txn, ts))
    }

    /// The warehouse whose stripe owns global `row` of partitioned
    /// `table` — the ownership tag of a forwarded effect.
    fn warehouse_of(&self, table: Table, row: u64) -> u64 {
        let (global, _) = self.table_global[&table];
        warehouse_of_row(row, global, self.warehouses_global)
    }

    /// Column index of `name` in `table`'s schema.
    fn col(&self, table: Table, name: &str) -> u32 {
        self.tables[&table]
            .layout()
            .schema()
            .index_of(name)
            .unwrap_or_else(|| panic!("{table:?} has no column {name}"))
    }

    fn decompose_payment(&self, p: &Payment, ts: Ts) -> Vec<TaggedEffect> {
        vec![
            // Warehouse YTD: a read-modify-write accumulation over the
            // newest committed version, resolved at apply time by the
            // owning engine (always the home shard).
            TaggedEffect {
                warehouse: p.w_id,
                effect: Effect::Update {
                    table: Table::Warehouse,
                    row: p.w_id,
                    writes: vec![(
                        self.col(Table::Warehouse, "w_ytd"),
                        ColumnWrite::Add {
                            amount: p.amount,
                            width: 8,
                        },
                    )],
                },
            },
            // District YTD.
            TaggedEffect {
                warehouse: p.w_id,
                effect: Effect::Update {
                    table: Table::District,
                    row: p.w_id * 10 + p.d_id,
                    writes: vec![(
                        self.col(Table::District, "d_ytd"),
                        ColumnWrite::Set(enc_u64(p.amount, 8)),
                    )],
                },
            },
            // Customer balance / ytd / payment count — the one Payment
            // effect that can be owned by a *remote* warehouse (TPC-C's
            // 15 % remote-customer rate).
            TaggedEffect {
                warehouse: self.warehouse_of(Table::Customer, p.c_row),
                effect: Effect::Update {
                    table: Table::Customer,
                    row: p.c_row,
                    writes: vec![
                        (
                            self.col(Table::Customer, "c_balance"),
                            ColumnWrite::Set(enc_u64(p.amount, 8)),
                        ),
                        (
                            self.col(Table::Customer, "c_ytd_payment"),
                            ColumnWrite::Set(enc_u64(p.amount, 8)),
                        ),
                        (
                            self.col(Table::Customer, "c_payment_cnt"),
                            ColumnWrite::Set(enc_u64(1, 2)),
                        ),
                    ],
                },
            },
            // History append (striped by home warehouse).
            TaggedEffect {
                warehouse: p.w_id,
                effect: Effect::Insert {
                    table: Table::History,
                    w_id: p.w_id,
                    values: vec![
                        enc_u64(p.c_row, 4),
                        enc_u64(p.d_id, 1),
                        enc_u64(p.w_id, 4),
                        enc_u64(p.d_id, 1),
                        enc_u64(p.w_id, 4),
                        enc_u64(ts.0, 8),
                        enc_u64(p.amount, 4),
                        pushtap_chbench::enc_text(ts.0, 24),
                    ],
                },
            },
        ]
    }

    fn decompose_neworder(&self, no: &NewOrder, ts: Ts) -> Vec<TaggedEffect> {
        let mut effects = Vec::with_capacity(4 + 3 * no.items.len());
        // Read customer (discount, credit) at its owning warehouse.
        effects.push(TaggedEffect {
            warehouse: self.warehouse_of(Table::Customer, no.c_row),
            effect: Effect::Read {
                table: Table::Customer,
                row: no.c_row,
            },
        });
        // District: bump next order id.
        effects.push(TaggedEffect {
            warehouse: no.w_id,
            effect: Effect::Update {
                table: Table::District,
                row: no.w_id * 10 + no.d_id,
                writes: vec![(
                    self.col(Table::District, "d_next_o_id"),
                    ColumnWrite::Set(enc_u64(ts.0, 4)),
                )],
            },
        });
        // Insert ORDER + NEWORDER rows (striped by home warehouse). The
        // order's global row is the warehouse's current stripe slot —
        // peeked here without consuming it; applying the insert advances
        // the cursor to exactly this slot.
        let (o_row, _) = self.insert_target(Table::Order, no.w_id);
        effects.push(TaggedEffect {
            warehouse: no.w_id,
            effect: Effect::Insert {
                table: Table::Order,
                w_id: no.w_id,
                values: vec![
                    enc_u64(ts.0, 4),
                    enc_u64(no.d_id, 1),
                    enc_u64(no.w_id, 4),
                    enc_u64(no.c_row, 4),
                    enc_u64(ts.0, 8),
                    enc_u64(0, 1),
                    enc_u64(no.items.len() as u64, 1),
                    enc_u64(1, 1),
                ],
            },
        });
        effects.push(TaggedEffect {
            warehouse: no.w_id,
            effect: Effect::Insert {
                table: Table::NewOrder,
                w_id: no.w_id,
                values: vec![enc_u64(o_row, 4), enc_u64(no.d_id, 1), enc_u64(no.w_id, 4)],
            },
        });
        // Per order line: read item (replicated — always home), update
        // stock at its owning warehouse, insert the order line at home.
        // Stock rows are distinct within one order (TxnGen draws them
        // so), and the dedup below keeps that a hard guarantee — MVCC
        // forbids two same-timestamp updates of one row.
        let mut touched_stock: Vec<u64> = Vec::with_capacity(no.stock_rows.len());
        let item_table = &self.tables[&Table::Item];
        for (i, (&item, &stock)) in no.items.iter().zip(&no.stock_rows).enumerate() {
            effects.push(TaggedEffect {
                warehouse: no.w_id,
                effect: Effect::Read {
                    table: Table::Item,
                    row: item,
                },
            });
            // ITEM is read-only after population, so its data region is
            // the newest version everywhere — the price the timed read
            // will observe at apply time.
            let price = dec_u64(
                &item_table
                    .store()
                    .read_value(RowSlot::Data { row: item }, 3),
            );
            if !touched_stock.contains(&stock) {
                touched_stock.push(stock);
                effects.push(TaggedEffect {
                    warehouse: self.warehouse_of(Table::Stock, stock),
                    effect: Effect::Update {
                        table: Table::Stock,
                        row: stock,
                        writes: vec![
                            (
                                self.col(Table::Stock, "s_quantity"),
                                ColumnWrite::Set(enc_u64(40, 2)),
                            ),
                            (
                                self.col(Table::Stock, "s_ytd"),
                                ColumnWrite::Set(enc_u64(price, 8)),
                            ),
                            (
                                self.col(Table::Stock, "s_order_cnt"),
                                ColumnWrite::Set(enc_u64(1, 2)),
                            ),
                        ],
                    },
                });
            }
            effects.push(TaggedEffect {
                warehouse: no.w_id,
                effect: Effect::Insert {
                    table: Table::OrderLine,
                    w_id: no.w_id,
                    values: vec![
                        enc_u64(o_row, 4),
                        enc_u64(no.d_id, 1),
                        enc_u64(no.w_id, 4),
                        enc_u64(i as u64, 1),
                        enc_u64(item, 4),
                        enc_u64(no.w_id, 4),
                        enc_u64(1_167_600_000 + ts.0, 8),
                        enc_u64(5, 2),
                        enc_u64(price * 5, 8),
                        pushtap_chbench::enc_text(ts.0 ^ i as u64, 24),
                    ],
                },
            });
        }
        effects
    }

    /// Applies one effect at pinned timestamp `ts`, charging its memory
    /// traffic and CPU components. Global rows translate through
    /// ownership-asserting addressing — this engine must own (or
    /// replicate) every row it is handed.
    fn apply_effect(
        &mut self,
        effect: &Effect,
        ts: Ts,
        mem: &mut MemSystem,
        meter: &Meter,
        b: &mut Breakdown,
        now: &mut Ps,
    ) -> Result<(), DeltaFull> {
        match effect {
            Effect::Read { table, row } => {
                let local = self.own_row(*table, *row);
                let t = self.tables.get_mut(table).expect("table not built");
                let (_, r) = t.timed_read(mem, meter, local, ts, *now);
                b.merge(&r.breakdown);
                *now = r.end;
                Ok(())
            }
            Effect::Update { table, row, writes } => {
                let local = self.own_row(*table, *row);
                let t = self.tables.get_mut(table).expect("table not built");
                let changes: Vec<(u32, Vec<u8>)> = writes
                    .iter()
                    .map(|(col, w)| match w {
                        ColumnWrite::Set(v) => (*col, v.clone()),
                        // Read-modify-write over the newest committed
                        // version (not the data-region origin), so the
                        // accumulated value is a pure function of the
                        // committed stream, independent of when
                        // defragmentation folded versions back.
                        ColumnWrite::Add { amount, width } => {
                            let cur = t.store().read_row(t.chains().newest_slot(local));
                            (
                                *col,
                                enc_u64(dec_u64(&cur[*col as usize]).wrapping_add(*amount), *width),
                            )
                        }
                    })
                    .collect();
                let r = t.timed_update(mem, meter, local, ts, &changes, *now)?;
                b.merge(&r.breakdown);
                *now = r.end;
                Ok(())
            }
            Effect::Insert {
                table,
                w_id,
                values,
            } => {
                let (_, r) = self.timed_insert_for(*table, *w_id, values, ts, mem, meter, *now)?;
                b.merge(&r.breakdown);
                *now = r.end;
                Ok(())
            }
        }
    }

    /// Applies an effect set at pinned timestamp `ts` and parks the
    /// engine's transaction scope in the *prepared* state — the
    /// participant half of a simulated two-phase commit. The undo
    /// records stay pinned (no further mutations are accepted) until the
    /// coordinator's decision arrives via [`TpccDb::commit_prepared`] or
    /// [`TpccDb::abort_prepared`].
    ///
    /// The returned [`TxnResult`] carries the prepare's completion time
    /// and component breakdown; its end includes the §6.3 commit barrier
    /// (prepare is the force phase — the write set is flushed so the
    /// commit decision is pure metadata).
    ///
    /// Several transactions may be prepared at once (one scope per
    /// pinned timestamp): a pipelined coordinator overlaps the
    /// prepare/vote/decide rounds of non-conflicting transactions, so an
    /// engine can hold many undecided write sets, each resolving
    /// independently through [`TpccDb::commit_prepared`] /
    /// [`TpccDb::abort_prepared`]. Coexisting scopes must touch disjoint
    /// rows and rings — the wave scheduler's conflict predicate
    /// ([`crate::effects::KeySet::conflicts`]) guarantees it.
    ///
    /// # Errors
    ///
    /// Returns [`DeltaFull`] if a delta arena filled mid-prepare. All
    /// partial effects are already rolled back (this engine votes "no"
    /// with no state held) and the attempt's latency is accounted to
    /// [`TpccDb::wasted_retry_time`].
    ///
    /// # Panics
    ///
    /// Panics if a scope is already prepared at `ts` (timestamps are
    /// unique per transaction).
    ///
    /// # Examples
    ///
    /// A Payment whose customer is owned by a *remote* warehouse: the
    /// home engine prepares its local effects, the remote owner prepares
    /// the forwarded customer effect, and both commit at the
    /// coordinator's pinned timestamp:
    ///
    /// ```
    /// use pushtap_chbench::{Payment, Txn};
    /// use pushtap_mvcc::Ts;
    /// use pushtap_oltp::{DbConfig, Partition, TpccDb, TxnRole};
    /// use pushtap_pim::{MemSystem, Ps};
    ///
    /// // Two shards over 8 warehouses: shard 0 owns warehouses 0..4,
    /// // shard 1 owns 4..8.
    /// let mut cfg = DbConfig::small();
    /// cfg.min_warehouses = 8;
    /// let mem0 = MemSystem::dimm();
    /// let mut home = TpccDb::build_partitioned(&cfg, &mem0, Partition::of(0, 2))?;
    /// let mut owner = TpccDb::build_partitioned(&cfg, &mem0, Partition::of(1, 2))?;
    /// let mut mem = MemSystem::dimm();
    ///
    /// // A payment homed at warehouse 0 paying a customer in warehouse
    /// // 7's stripe (owned by the other shard).
    /// let customers = home.global_rows_of(pushtap_chbench::Table::Customer);
    /// let txn = Txn::Payment(Payment { w_id: 0, d_id: 3, c_row: customers - 1, amount: 500 });
    /// let ts = Ts(1); // the coordinator's pinned global timestamp
    ///
    /// let effects = home.decompose(&txn, ts);
    /// let (local, forwarded): (Vec<_>, Vec<_>) =
    ///     effects.into_iter().partition(|e| e.warehouse < 4);
    /// assert_eq!(forwarded.len(), 1, "the remote customer update");
    ///
    /// // Phase 1: both participants prepare and vote yes.
    /// home.prepare_effects(&local, ts, &mut mem, Ps::ZERO)?;
    /// owner.prepare_effects(&forwarded, ts, &mut mem, Ps::ZERO)?;
    ///
    /// // Phase 2: the coordinator commits everywhere at the pinned ts.
    /// home.commit_prepared(ts, TxnRole::Coordinator);
    /// owner.commit_prepared(ts, TxnRole::Participant);
    /// assert_eq!(home.committed(), 1);
    /// assert_eq!((home.last_ts(), owner.last_ts()), (ts, ts));
    /// assert_eq!(owner.prepared_versions(), 0);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn prepare_effects(
        &mut self,
        effects: &[TaggedEffect],
        ts: Ts,
        mem: &mut MemSystem,
        at: Ps,
    ) -> Result<TxnResult, DeltaFull> {
        assert!(
            !self.prepared.contains_key(&ts),
            "a scope is already prepared at {ts:?}"
        );
        self.begin_txn();
        if self.san.enabled() {
            // Declare the scope's keyset before any access lands: every
            // mirrored access must then fall under these keys, or the
            // tracker reports the scheduler unsound.
            let keys = KeySet::from_effects(effects);
            let reads: Vec<SanKey> = keys.reads().iter().map(san_key).collect();
            let writes: Vec<SanKey> = keys.writes().iter().map(san_key).collect();
            self.san.begin_scope(self.san_track, ts.0, &reads, &writes);
        }
        let meter = self.meter;
        let mut b = Breakdown::default();
        let mut now = at;
        for e in effects {
            if let Err(full) = self.apply_effect(&e.effect, ts, mem, &meter, &mut b, &mut now) {
                // The statements up to the failure consumed real
                // simulated time (their memory traffic is already
                // charged to `mem`); account it so callers can fold it
                // into completion latency.
                self.wasted_retry_time += now.saturating_sub(at);
                self.abort_txn();
                if self.san.enabled() {
                    self.san.abort_active(self.san_track, ts.0);
                }
                if self.sink.enabled() {
                    self.sink.record(Span::new(
                        self.track,
                        Phase::PrepareAbort,
                        ts.0,
                        at.ps(),
                        now.ps(),
                    ));
                }
                return Err(full);
            }
        }
        // The force phase: flush the write set (§6.3 commit barrier) so
        // the coordinator's decision is pure metadata.
        now += meter.commit_barrier();
        b.compute += meter.commit_barrier();
        for t in self.tables.values_mut() {
            t.prepare_txn(ts);
        }
        let cursors = std::mem::take(&mut self.txn_cursor_log);
        debug_assert!(
            {
                let mut keys: Vec<_> = cursors.clone();
                keys.sort_unstable();
                keys.dedup();
                self.prepared
                    .values()
                    .all(|s| s.cursors.iter().all(|c| keys.binary_search(c).is_err()))
            },
            "coexisting prepared scopes share an insert ring — a conflict-scheduling bug"
        );
        self.prepared.insert(
            ts,
            PreparedScope {
                elapsed: now.saturating_sub(at),
                cursors,
            },
        );
        if self.san.enabled() {
            self.san.prepare_scope(self.san_track, ts.0);
        }
        if self.sink.enabled() {
            self.sink.record(Span::new(
                self.track,
                Phase::Prepare,
                ts.0,
                at.ps(),
                now.ps(),
            ));
        }
        Ok(TxnResult {
            commit_ts: ts,
            end: now,
            breakdown: b,
        })
    }

    /// The coordinator's commit decision for the scope prepared at `ts`:
    /// every table keeps that scope's effects, its prepared version
    /// marks resolve, and the engine's watermark advances to cover the
    /// pinned `ts`. Other pending scopes are untouched and resolve
    /// independently — decisions may arrive out of preparation order
    /// under a pipelined coordinator.
    ///
    /// `role` says whether this engine executed the transaction's home
    /// half ([`TxnRole::Coordinator`] — the transaction counts as
    /// committed here) or a forwarded effect set
    /// ([`TxnRole::Participant`] — the home engine counts it).
    ///
    /// # Panics
    ///
    /// Panics if no transaction is prepared at `ts`.
    pub fn commit_prepared(&mut self, ts: Ts, role: TxnRole) {
        self.prepared
            .remove(&ts)
            .unwrap_or_else(|| panic!("commit decision for unprepared {ts:?}"));
        for t in self.tables.values_mut() {
            t.commit_prepared_txn(ts);
        }
        if role == TxnRole::Coordinator {
            self.committed += 1;
        }
        self.ts.advance_to(ts);
        if self.san.enabled() {
            self.san.commit_scope(self.san_track, ts.0);
        }
    }

    /// The coordinator's abort decision for the scope prepared at `ts`:
    /// that scope's pinned undo records replay in reverse (delta slots,
    /// chains, row bytes, index entries, stripe cursors all revert) and
    /// the prepare's latency is charged to
    /// [`TpccDb::wasted_retry_time`] — the work was done and rolled
    /// back, exactly like a local [`DeltaFull`] abort. Other pending
    /// scopes are untouched (their rows and rings are disjoint by
    /// conflict scheduling).
    ///
    /// # Panics
    ///
    /// Panics if no transaction is prepared at `ts`.
    pub fn abort_prepared(&mut self, ts: Ts) {
        let p = self
            .prepared
            .remove(&ts)
            .unwrap_or_else(|| panic!("abort decision for unprepared {ts:?}"));
        self.wasted_retry_time += p.elapsed;
        for t in self.tables.values_mut() {
            t.abort_prepared_txn(ts);
        }
        for (table, w) in p.cursors.into_iter().rev() {
            let c = self
                .insert_cursors
                .get_mut(&(table, w))
                .expect("cursor bumped by the aborting scope");
            *c -= 1;
        }
        self.aborts += 1;
        if self.san.enabled() {
            self.san.abort_scope(self.san_track, ts.0);
        }
    }

    /// Whether any prepared transactions are awaiting their coordinator
    /// decisions on this engine.
    pub fn in_prepared_txn(&self) -> bool {
        !self.prepared.is_empty()
    }

    /// Number of prepared transactions awaiting their coordinator
    /// decisions on this engine.
    pub fn prepared_scopes(&self) -> usize {
        self.prepared.len()
    }

    /// Prepared-but-uncommitted versions across all tables — zero
    /// whenever no two-phase commit is in flight (the invariant the
    /// participant-abort tests assert).
    pub fn prepared_versions(&self) -> u64 {
        self.tables
            .values()
            .map(|t| t.prepared_versions() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushtap_chbench::TxnGen;

    fn setup() -> (TpccDb, MemSystem, TxnGen) {
        let mem = MemSystem::dimm();
        let cfg = DbConfig::small();
        let db = TpccDb::build(&cfg, &mem).unwrap();
        let tg = TxnGen::new(
            1,
            db.table(Table::Warehouse).n_rows(),
            db.table(Table::Customer).n_rows(),
            db.table(Table::Item).n_rows(),
            db.table(Table::Stock).n_rows(),
        );
        (db, mem, tg)
    }

    #[test]
    fn transactions_commit_and_advance_time() {
        let (mut db, mut mem, mut tg) = setup();
        let mut now = Ps::ZERO;
        for txn in tg.batch(20) {
            let r = db.execute(&txn, &mut mem, now).expect("commit");
            assert!(r.end > now);
            now = r.end;
        }
        assert_eq!(db.committed(), 20);
        assert!(db.live_delta_rows() > 0, "updates must create versions");
    }

    /// Fig. 11(c): the CPU-side breakdown lands near the paper's shares
    /// (computation 36.65 %, allocation 44.10 %, indexing 19.25 %, chain
    /// < 0.1 %). We accept generous bands — the shape, not the digit.
    #[test]
    fn breakdown_matches_paper_shape() {
        let (mut db, mut mem, mut tg) = setup();
        let mut total = Breakdown::default();
        let mut now = Ps::ZERO;
        for txn in tg.batch(200) {
            let r = db.execute(&txn, &mut mem, now).expect("commit");
            total.merge(&r.breakdown);
            now = r.end;
        }
        let (compute, alloc, index, chain) = total.cpu_fractions();
        assert!((0.25..0.50).contains(&compute), "compute {compute}");
        assert!((0.30..0.60).contains(&alloc), "alloc {alloc}");
        assert!((0.08..0.32).contains(&index), "index {index}");
        assert!(chain < 0.01, "chain {chain}");
    }

    /// Fig. 9(a): RS is the OLTP ideal; CS costs ~28 % more; the unified
    /// format only a few percent more than RS.
    #[test]
    fn format_ordering_on_oltp_time() {
        let mem0 = MemSystem::dimm();
        let mut times = Vec::new();
        for format in [
            DbFormat::RowStore,
            DbFormat::Unified { th: 0.6 },
            DbFormat::ColumnStore,
        ] {
            let cfg = DbConfig::small().with_format(format);
            let mut db = TpccDb::build(&cfg, &mem0).unwrap();
            let mut mem = MemSystem::dimm();
            let mut tg = TxnGen::new(
                1,
                db.table(Table::Warehouse).n_rows(),
                db.table(Table::Customer).n_rows(),
                db.table(Table::Item).n_rows(),
                db.table(Table::Stock).n_rows(),
            );
            let mut now = Ps::ZERO;
            for txn in tg.batch(150) {
                now = db.execute(&txn, &mut mem, now).expect("commit").end;
            }
            times.push(now);
        }
        let (rs, uni, cs) = (times[0], times[1], times[2]);
        assert!(rs <= uni, "RS {rs} should be fastest (unified {uni})");
        assert!(uni < cs, "unified {uni} should beat CS {cs}");
        let uni_overhead = uni.ps() as f64 / rs.ps() as f64 - 1.0;
        let cs_overhead = cs.ps() as f64 / rs.ps() as f64 - 1.0;
        assert!(uni_overhead < 0.20, "unified overhead {uni_overhead}");
        assert!(cs_overhead > 0.10, "CS overhead {cs_overhead}");
    }

    /// With delta arenas undersized to a handful of slots, transactions
    /// hit `DeltaFull` mid-execution; the abort must leave no trace and
    /// the post-defragmentation retry must commit under the same
    /// timestamp.
    #[test]
    fn delta_full_abort_is_atomic_and_retry_commits() {
        use pushtap_mvcc::{DefragCostModel, DefragStrategy};
        let mem = MemSystem::dimm();
        let mut cfg = DbConfig::small();
        cfg.min_delta_rows = 16; // two slots per rotation arena
        let mut db = TpccDb::build(&cfg, &mem).unwrap();
        let mut mem = MemSystem::dimm();
        let mut tg = TxnGen::new(
            1,
            db.table(Table::Warehouse).n_rows(),
            db.table(Table::Customer).n_rows(),
            db.table(Table::Item).n_rows(),
            db.table(Table::Stock).n_rows(),
        );
        let cost = DefragCostModel::new(16.0, 1e9, 3e9);
        let mut saw_abort = false;
        for _ in 0..40 {
            let txn = tg.next_txn();
            let live = db.live_delta_rows();
            let ts = db.last_ts();
            let committed = db.committed();
            let cursors: Vec<u64> = (0..db.warehouses_global())
                .map(|w| db.insert_cursor(Table::OrderLine, w))
                .collect();
            match db.execute(&txn, &mut mem, Ps::ZERO) {
                Ok(r) => assert_eq!(r.commit_ts.0, ts.0 + 1, "gapless commit timestamps"),
                Err(_full) => {
                    saw_abort = true;
                    // The abort left no trace.
                    assert_eq!(db.live_delta_rows(), live, "leaked delta slots");
                    assert_eq!(db.last_ts(), ts, "timestamp not rolled back");
                    assert_eq!(db.committed(), committed);
                    let after: Vec<u64> = (0..db.warehouses_global())
                        .map(|w| db.insert_cursor(Table::OrderLine, w))
                        .collect();
                    assert_eq!(after, cursors, "stripe cursors moved");
                    // Defragment and retry: same txn, same timestamp.
                    let upto = db.last_ts();
                    for table in pushtap_chbench::ALL_TABLES {
                        if db.table(table).chains().updated_row_count() > 0 {
                            db.table_mut(table)
                                .defragment(&cost, DefragStrategy::Hybrid, upto);
                        }
                    }
                    let r = db
                        .execute(&txn, &mut mem, Ps::ZERO)
                        .expect("retry after defrag");
                    assert_eq!(r.commit_ts.0, ts.0 + 1, "retry reuses the timestamp");
                }
            }
        }
        assert!(saw_abort, "arenas this small must trigger DeltaFull");
        assert!(db.aborts() > 0);
    }

    #[test]
    fn pinned_execution_commits_at_the_given_timestamp() {
        let (mut db, mut mem, mut tg) = setup();
        let txn = tg.next_txn();
        let r = db
            .execute_at(&txn, Ts(5), &mut mem, Ps::ZERO)
            .expect("commit");
        assert_eq!(r.commit_ts, Ts(5));
        // The watermark covers the pinned commit without handing out the
        // intermediate timestamps.
        assert_eq!(db.last_ts(), Ts(5));
        let txn = tg.next_txn();
        let r = db
            .execute_at(&txn, Ts(9), &mut mem, Ps::ZERO)
            .expect("commit");
        assert_eq!(r.commit_ts, Ts(9));
        assert_eq!(db.last_ts(), Ts(9));
        assert_eq!(db.committed(), 2);
    }

    #[test]
    fn shared_oracle_drives_two_instances_through_one_sequence() {
        use std::sync::Arc;
        let mem0 = MemSystem::dimm();
        let cfg = DbConfig::small();
        let oracle = Arc::new(TsOracle::new());
        let mut a = TpccDb::build(&cfg, &mem0).unwrap();
        let mut b = TpccDb::build(&cfg, &mem0).unwrap();
        a.share_timestamps(oracle.clone());
        b.share_timestamps(oracle.clone());
        let mut mem = MemSystem::dimm();
        let mut tg = TxnGen::new(
            1,
            a.table(Table::Warehouse).n_rows(),
            a.table(Table::Customer).n_rows(),
            a.table(Table::Item).n_rows(),
            a.table(Table::Stock).n_rows(),
        );
        let t1 = a
            .execute(&tg.next_txn(), &mut mem, Ps::ZERO)
            .expect("commit");
        let t2 = b
            .execute(&tg.next_txn(), &mut mem, Ps::ZERO)
            .expect("commit");
        assert_eq!((t1.commit_ts, t2.commit_ts), (Ts(1), Ts(2)));
        assert_eq!(a.last_ts(), Ts(2), "both see the global watermark");
        assert_eq!(b.last_ts(), Ts(2));
        assert_eq!(oracle.watermark(), Ts(2));
    }

    /// The latency a failed attempt consumed is tracked so callers can
    /// charge it to the transaction's completion time (its memory traffic
    /// already hit the simulated memory system).
    #[test]
    fn failed_attempts_accumulate_wasted_time() {
        use pushtap_mvcc::{DefragCostModel, DefragStrategy};
        let mem = MemSystem::dimm();
        let mut cfg = DbConfig::small();
        cfg.min_delta_rows = 16;
        let mut db = TpccDb::build(&cfg, &mem).unwrap();
        let mut mem = MemSystem::dimm();
        let mut tg = TxnGen::new(
            1,
            db.table(Table::Warehouse).n_rows(),
            db.table(Table::Customer).n_rows(),
            db.table(Table::Item).n_rows(),
            db.table(Table::Stock).n_rows(),
        );
        assert_eq!(db.wasted_retry_time(), Ps::ZERO);
        let cost = DefragCostModel::new(16.0, 1e9, 3e9);
        let mut last_wasted = Ps::ZERO;
        let mut saw_abort = false;
        for _ in 0..40 {
            let txn = tg.next_txn();
            match db.execute(&txn, &mut mem, Ps::ZERO) {
                Ok(_) => assert_eq!(
                    db.wasted_retry_time(),
                    last_wasted,
                    "a clean commit must not add wasted time"
                ),
                Err(_full) => {
                    saw_abort = true;
                    // Monotone: aborts only ever add wasted time (zero is
                    // possible when the very first statement hits the
                    // full arena before any time is charged).
                    assert!(db.wasted_retry_time() >= last_wasted);
                    last_wasted = db.wasted_retry_time();
                    let upto = db.last_ts();
                    for table in pushtap_chbench::ALL_TABLES {
                        if db.table(table).chains().updated_row_count() > 0 {
                            db.table_mut(table)
                                .defragment(&cost, DefragStrategy::Hybrid, upto);
                        }
                    }
                    db.execute(&txn, &mut mem, Ps::ZERO)
                        .expect("retry after defrag");
                }
            }
        }
        assert!(saw_abort, "arenas this small must trigger DeltaFull");
        assert!(
            db.wasted_retry_time() > Ps::ZERO,
            "mid-transaction aborts must have consumed time"
        );
    }

    #[test]
    fn payment_updates_functional_state() {
        let (mut db, mut mem, _) = setup();
        let p = Payment {
            w_id: 0,
            d_id: 0,
            c_row: 3,
            amount: 777,
        };
        let before = db.table(Table::Customer).snapshot_read(3);
        db.execute(&Txn::Payment(p), &mut mem, Ps::ZERO).unwrap();
        // Not yet snapshotted: OLAP still sees the old balance.
        assert_eq!(db.table(Table::Customer).snapshot_read(3), before);
        let ts = db.last_ts();
        let meter = *db.meter();
        db.table_mut(Table::Customer)
            .timed_snapshot_update(&mut mem, &meter, ts, Ps::ZERO);
        let after = db.table(Table::Customer).snapshot_read(3);
        let bal_col = 16; // c_balance
        assert_eq!(pushtap_chbench::dec_u64(&after[bal_col]), 777);
    }
}
