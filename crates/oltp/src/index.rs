//! A chained hash index (DBx1000-style).
//!
//! Functionally a key → row map; structurally a fixed bucket array with
//! chains, so probe lengths (and thus indexing cost) behave like the
//! original's. §7.1: "We use the hash index in DBX1000 to speed up the
//! transaction and snapshotting during analytical queries."

/// A hash index over `u64` keys.
#[derive(Debug, Clone)]
pub struct HashIndex {
    buckets: Vec<Vec<(u64, u64)>>,
    len: u64,
    probes: u64,
}

impl HashIndex {
    /// Creates an index sized for roughly `capacity` entries.
    pub fn with_capacity(capacity: u64) -> HashIndex {
        let nbuckets = (capacity.max(16)).next_power_of_two() as usize;
        HashIndex {
            buckets: vec![Vec::new(); nbuckets],
            len: 0,
            probes: 0,
        }
    }

    fn bucket_of(&self, key: u64) -> usize {
        // Fibonacci hashing.
        (key.wrapping_mul(0x9E3779B97F4A7C15) >> 32) as usize & (self.buckets.len() - 1)
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts or updates `key → row`. Returns the previous row, if any.
    pub fn insert(&mut self, key: u64, row: u64) -> Option<u64> {
        let b = self.bucket_of(key);
        for entry in &mut self.buckets[b] {
            if entry.0 == key {
                return Some(std::mem::replace(&mut entry.1, row));
            }
        }
        self.buckets[b].push((key, row));
        self.len += 1;
        None
    }

    /// Removes `key`, returning the row it mapped to. Preserves the
    /// insertion order of the surviving chain entries, so probe counts
    /// stay deterministic across an insert/remove/insert cycle —
    /// transaction rollback depends on this to leave the index exactly
    /// as it was before the aborted transaction.
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        let b = self.bucket_of(key);
        let pos = self.buckets[b].iter().position(|e| e.0 == key)?;
        self.len -= 1;
        Some(self.buckets[b].remove(pos).1)
    }

    /// Looks up `key`, counting chain probes.
    pub fn get(&mut self, key: u64) -> Option<u64> {
        let b = self.bucket_of(key);
        for (i, entry) in self.buckets[b].iter().enumerate() {
            self.probes += i as u64 + 1;
            if entry.0 == key {
                return Some(entry.1);
            }
        }
        self.probes += self.buckets[b].len() as u64;
        None
    }

    /// Total chain probes performed by lookups.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Average chain length (load factor proxy).
    pub fn avg_chain(&self) -> f64 {
        self.len as f64 / self.buckets.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_round_trip() {
        let mut ix = HashIndex::with_capacity(100);
        assert!(ix.is_empty());
        for k in 0..100u64 {
            assert_eq!(ix.insert(k, k * 10), None);
        }
        assert_eq!(ix.len(), 100);
        for k in 0..100u64 {
            assert_eq!(ix.get(k), Some(k * 10));
        }
        assert_eq!(ix.get(1000), None);
    }

    #[test]
    fn insert_replaces() {
        let mut ix = HashIndex::with_capacity(10);
        ix.insert(5, 1);
        assert_eq!(ix.insert(5, 2), Some(1));
        assert_eq!(ix.len(), 1);
        assert_eq!(ix.get(5), Some(2));
    }

    #[test]
    fn remove_undoes_insert() {
        let mut ix = HashIndex::with_capacity(10);
        ix.insert(5, 1);
        assert_eq!(ix.remove(5), Some(1));
        assert_eq!(ix.len(), 0);
        assert_eq!(ix.get(5), None);
        assert_eq!(ix.remove(5), None);
    }

    #[test]
    fn probes_accumulate() {
        let mut ix = HashIndex::with_capacity(16);
        ix.insert(1, 1);
        let before = ix.probes();
        ix.get(1);
        assert!(ix.probes() > before);
    }

    #[test]
    fn load_factor_stays_reasonable() {
        let mut ix = HashIndex::with_capacity(1024);
        for k in 0..1024u64 {
            ix.insert(k, k);
        }
        assert!(ix.avg_chain() <= 1.0 + 1e-9);
    }
}
