//! Statement-effect decomposition of TPC-C transactions.
//!
//! A [`Txn`](pushtap_chbench::Txn) is a *logical* transaction; executing
//! it means applying a fixed sequence of row-level effects — reads,
//! column updates, stripe-ring inserts. [`TpccDb::decompose`] makes that
//! sequence explicit: every effect is materialised as an [`Effect`] and
//! tagged ([`TaggedEffect`]) with the warehouse that *owns* the touched
//! row under the deployment's warehouse-stripe partitioning.
//!
//! The decomposition is what lets a sharded deployment execute one
//! transaction across several engines: the home shard applies the
//! effects it owns, forwards the rest to the owning shards, and a
//! simulated two-phase commit (`pushtap-shard`'s coordinator) makes the
//! split atomic. The unpartitioned engine runs the *same* pipeline —
//! decompose, apply in order, commit — so a sharded deployment's
//! committed bytes equal the single-instance reference's by
//! construction: same effects, same values, same pinned timestamps.
//!
//! Effects reference rows by their **global** index; the applying engine
//! translates to its local slice and asserts ownership — an effect
//! handed to a non-owning engine is a routing bug, not a fallback path.
//!
//! [`TpccDb::decompose`]: crate::TpccDb::decompose

use pushtap_chbench::Table;

/// How one column of an updated row changes.
///
/// Most TPC-C column updates in the simulated mix are *blind* writes of
/// values the decomposition can compute up front ([`ColumnWrite::Set`]);
/// the warehouse year-to-date accumulation is a read-modify-write over
/// the newest committed version and must be resolved by the engine that
/// owns the row at apply time ([`ColumnWrite::Add`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnWrite {
    /// Replace the column with these bytes.
    Set(Vec<u8>),
    /// Add `amount` to the column's current u64 value (read from the
    /// newest committed version at apply time), re-encoded at `width`
    /// bytes.
    Add {
        /// The addend.
        amount: u64,
        /// Encoded width of the result in bytes.
        width: u32,
    },
}

/// One row-level effect of a transaction, in global row indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect {
    /// A timed read of the version visible at the transaction timestamp
    /// (no bytes change; it costs memory traffic and advances the
    /// version's read timestamp).
    Read {
        /// The table read.
        table: Table,
        /// Global row index.
        row: u64,
    },
    /// An MVCC column update: read the newest version, apply the writes,
    /// chain a new version at the transaction timestamp.
    Update {
        /// The table updated.
        table: Table,
        /// Global row index.
        row: u64,
        /// Per-column changes.
        writes: Vec<(u32, ColumnWrite)>,
    },
    /// A stripe-ring insert homed at warehouse `w_id`: the applying
    /// engine picks the warehouse's current stripe slot (identical on a
    /// partitioned shard and the unpartitioned reference) and writes the
    /// row as a delta version.
    Insert {
        /// The table inserted into.
        table: Table,
        /// Home warehouse anchoring the stripe ring.
        w_id: u64,
        /// Column values of the new row.
        values: Vec<Vec<u8>>,
    },
}

/// An [`Effect`] tagged with the warehouse owning the touched row — the
/// routing key a sharded deployment maps to the owning shard. Effects on
/// replicated tables (ITEM) are tagged with the transaction's home
/// warehouse: every shard holds the full replica, so they execute at
/// home.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaggedEffect {
    /// The effect itself.
    pub effect: Effect,
    /// The owning warehouse (home warehouse for replicated tables).
    pub warehouse: u64,
}

/// The conflict key of one row-level effect: the unit at which two
/// transactions can collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Key {
    /// A data row, by table and *global* row index.
    Row(Table, u64),
    /// A warehouse's stripe insert ring, by table and home warehouse:
    /// every insert homed at the warehouse consumes the ring's next
    /// slot, so two inserting transactions order each other even though
    /// they land on different rows.
    Ring(Table, u64),
}

/// The canonical read/write keyset of one transaction, derived from its
/// effect decomposition ([`TpccDb::decompose`]) — the input the sharded
/// coordinator's wave scheduler orders transactions by.
///
/// Decomposition is read-only and retry-stable, so a transaction's
/// keyset is known *before* it executes: reads are [`Effect::Read`]
/// rows, writes are [`Effect::Update`] rows plus the insert rings
/// ([`Key::Ring`]) its [`Effect::Insert`]s consume. Two transactions
/// conflict exactly when one's writes intersect the other's reads or
/// writes — read/read sharing (e.g. the replicated, read-only ITEM
/// table) never orders anything.
///
/// [`TpccDb::decompose`]: crate::TpccDb::decompose
///
/// # Examples
///
/// ```
/// use pushtap_chbench::Table;
/// use pushtap_oltp::{Key, KeySet};
///
/// // Two Payments homed at warehouse 0 both accumulate its YTD — a
/// // write/write conflict that forces timestamp order between them.
/// let a = KeySet::new(vec![], vec![Key::Row(Table::Warehouse, 0)]);
/// let b = KeySet::new(
///     vec![Key::Row(Table::Customer, 7)],
///     vec![Key::Row(Table::Warehouse, 0)],
/// );
/// assert!(a.conflicts(&b) && b.conflicts(&a));
///
/// // A reader of a row conflicts with its writer (it must observe the
/// // reference's version), but two readers never conflict.
/// let w = KeySet::new(vec![], vec![Key::Row(Table::Customer, 7)]);
/// let r = KeySet::new(vec![Key::Row(Table::Customer, 7)], vec![]);
/// assert!(w.conflicts(&r) && r.conflicts(&w));
/// assert!(!r.conflicts(&r.clone()));
///
/// // Disjoint warehouses: no shared row, no shared ring — concurrent.
/// let c = KeySet::new(vec![], vec![Key::Ring(Table::History, 1)]);
/// let d = KeySet::new(vec![], vec![Key::Ring(Table::History, 2)]);
/// assert!(!c.conflicts(&d));
///
/// // `Row` and `Ring` are different key *kinds*: HISTORY's insert
/// // ring at warehouse 1 and HISTORY's data row 1 share a table and
/// // an index but never a key — a ring orders inserts, not reads or
/// // updates of any particular row. (In the TPC-C mix this is sound
/// // because insert-only tables are never updated in place.)
/// let ring = KeySet::new(vec![], vec![Key::Ring(Table::History, 1)]);
/// let row_w = KeySet::new(vec![], vec![Key::Row(Table::History, 1)]);
/// let row_r = KeySet::new(vec![Key::Row(Table::History, 1)], vec![]);
/// assert!(!ring.conflicts(&row_w) && !row_w.conflicts(&ring));
/// assert!(!ring.conflicts(&row_r) && !row_r.conflicts(&ring));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KeySet {
    /// Rows the transaction reads (sorted, deduplicated).
    reads: Vec<Key>,
    /// Rows it writes and rings it consumes (sorted, deduplicated).
    writes: Vec<Key>,
}

impl KeySet {
    /// A keyset from explicit read and write keys (sorted and
    /// deduplicated internally).
    pub fn new(mut reads: Vec<Key>, mut writes: Vec<Key>) -> KeySet {
        reads.sort_unstable();
        reads.dedup();
        writes.sort_unstable();
        writes.dedup();
        KeySet { reads, writes }
    }

    /// Derives the keyset of a decomposed transaction: one [`Key::Row`]
    /// per read or updated row, one [`Key::Ring`] per insert's
    /// (table, home-warehouse) stripe ring.
    pub fn from_effects(effects: &[TaggedEffect]) -> KeySet {
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        for e in effects {
            match &e.effect {
                Effect::Read { table, row } => reads.push(Key::Row(*table, *row)),
                Effect::Update { table, row, .. } => writes.push(Key::Row(*table, *row)),
                Effect::Insert { table, w_id, .. } => writes.push(Key::Ring(*table, *w_id)),
            }
        }
        KeySet::new(reads, writes)
    }

    /// The read keys, sorted.
    pub fn reads(&self) -> &[Key] {
        &self.reads
    }

    /// The write keys (rows and rings), sorted.
    pub fn writes(&self) -> &[Key] {
        &self.writes
    }

    /// Whether the keyset touches nothing (an unstamped placeholder).
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }

    /// Whether two transactions must execute in timestamp order: one's
    /// writes intersect the other's reads or writes (write/write,
    /// write/read, or read/write on any key). Symmetric.
    pub fn conflicts(&self, other: &KeySet) -> bool {
        sorted_intersect(&self.writes, &other.writes)
            || sorted_intersect(&self.writes, &other.reads)
            || sorted_intersect(&self.reads, &other.writes)
    }
}

/// Whether two sorted key slices share an element (linear merge walk).
fn sorted_intersect(a: &[Key], b: &[Key]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(t: Table, r: u64) -> Key {
        Key::Row(t, r)
    }

    #[test]
    fn keyset_sorts_and_dedups() {
        let k = KeySet::new(
            vec![
                row(Table::Stock, 9),
                row(Table::Stock, 2),
                row(Table::Stock, 9),
            ],
            vec![],
        );
        assert_eq!(k.reads(), &[row(Table::Stock, 2), row(Table::Stock, 9)]);
    }

    #[test]
    fn read_read_never_conflicts() {
        let a = KeySet::new(vec![row(Table::Item, 5)], vec![]);
        let b = KeySet::new(vec![row(Table::Item, 5)], vec![]);
        assert!(!a.conflicts(&b));
    }

    #[test]
    fn write_conflicts_are_symmetric() {
        let w = KeySet::new(vec![], vec![row(Table::Customer, 3)]);
        let r = KeySet::new(vec![row(Table::Customer, 3)], vec![]);
        let ww = KeySet::new(vec![], vec![row(Table::Customer, 3)]);
        assert!(w.conflicts(&r) && r.conflicts(&w));
        assert!(w.conflicts(&ww));
    }

    #[test]
    fn rings_and_rows_are_distinct_keys() {
        // Writing CUSTOMER row 1 does not collide with HISTORY's ring at
        // warehouse 1 — different key kinds, different tables.
        let a = KeySet::new(vec![], vec![row(Table::Customer, 1)]);
        let b = KeySet::new(vec![], vec![Key::Ring(Table::History, 1)]);
        assert!(!a.conflicts(&b));
        // Same ring does collide.
        let c = KeySet::new(vec![], vec![Key::Ring(Table::History, 1)]);
        assert!(b.conflicts(&c));
    }

    #[test]
    fn ring_never_conflicts_with_same_table_row() {
        // The sharpest cross-variant case: same table, same index,
        // different key kind. A ring key orders the *inserts* of a
        // (table, warehouse) stripe; it says nothing about reads or
        // updates of the row that happens to carry the same number.
        let ring = KeySet::new(vec![], vec![Key::Ring(Table::Order, 3)]);
        let row_w = KeySet::new(vec![], vec![row(Table::Order, 3)]);
        let row_r = KeySet::new(vec![row(Table::Order, 3)], vec![]);
        assert!(!ring.conflicts(&row_w) && !row_w.conflicts(&ring));
        assert!(!ring.conflicts(&row_r) && !row_r.conflicts(&ring));
        // And the kinds stay distinct inside one keyset too: a set
        // holding the ring does not cover the row, so both keys
        // survive dedup side by side.
        let both = KeySet::new(
            vec![],
            vec![Key::Ring(Table::Order, 3), row(Table::Order, 3)],
        );
        assert_eq!(both.writes().len(), 2);
        assert!(both.conflicts(&ring) && both.conflicts(&row_w));
    }

    #[test]
    fn cross_variant_order_is_total_and_consistent() {
        // `sorted_intersect` relies on `Key`'s derived order being
        // total across variants; a Ring and a Row never compare equal.
        let mut keys = vec![
            Key::Ring(Table::Order, 3),
            row(Table::Order, 3),
            Key::Ring(Table::Order, 2),
            row(Table::NewOrder, 9),
        ];
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 4, "no cross-variant key collapses");
        assert!(!sorted_intersect(
            &[row(Table::Order, 3)],
            &[Key::Ring(Table::Order, 3)]
        ));
    }
}
