//! Statement-effect decomposition of TPC-C transactions.
//!
//! A [`Txn`](pushtap_chbench::Txn) is a *logical* transaction; executing
//! it means applying a fixed sequence of row-level effects — reads,
//! column updates, stripe-ring inserts. [`TpccDb::decompose`] makes that
//! sequence explicit: every effect is materialised as an [`Effect`] and
//! tagged ([`TaggedEffect`]) with the warehouse that *owns* the touched
//! row under the deployment's warehouse-stripe partitioning.
//!
//! The decomposition is what lets a sharded deployment execute one
//! transaction across several engines: the home shard applies the
//! effects it owns, forwards the rest to the owning shards, and a
//! simulated two-phase commit (`pushtap-shard`'s coordinator) makes the
//! split atomic. The unpartitioned engine runs the *same* pipeline —
//! decompose, apply in order, commit — so a sharded deployment's
//! committed bytes equal the single-instance reference's by
//! construction: same effects, same values, same pinned timestamps.
//!
//! Effects reference rows by their **global** index; the applying engine
//! translates to its local slice and asserts ownership — an effect
//! handed to a non-owning engine is a routing bug, not a fallback path.
//!
//! [`TpccDb::decompose`]: crate::TpccDb::decompose

use pushtap_chbench::Table;

/// How one column of an updated row changes.
///
/// Most TPC-C column updates in the simulated mix are *blind* writes of
/// values the decomposition can compute up front ([`ColumnWrite::Set`]);
/// the warehouse year-to-date accumulation is a read-modify-write over
/// the newest committed version and must be resolved by the engine that
/// owns the row at apply time ([`ColumnWrite::Add`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnWrite {
    /// Replace the column with these bytes.
    Set(Vec<u8>),
    /// Add `amount` to the column's current u64 value (read from the
    /// newest committed version at apply time), re-encoded at `width`
    /// bytes.
    Add {
        /// The addend.
        amount: u64,
        /// Encoded width of the result in bytes.
        width: u32,
    },
}

/// One row-level effect of a transaction, in global row indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect {
    /// A timed read of the version visible at the transaction timestamp
    /// (no bytes change; it costs memory traffic and advances the
    /// version's read timestamp).
    Read {
        /// The table read.
        table: Table,
        /// Global row index.
        row: u64,
    },
    /// An MVCC column update: read the newest version, apply the writes,
    /// chain a new version at the transaction timestamp.
    Update {
        /// The table updated.
        table: Table,
        /// Global row index.
        row: u64,
        /// Per-column changes.
        writes: Vec<(u32, ColumnWrite)>,
    },
    /// A stripe-ring insert homed at warehouse `w_id`: the applying
    /// engine picks the warehouse's current stripe slot (identical on a
    /// partitioned shard and the unpartitioned reference) and writes the
    /// row as a delta version.
    Insert {
        /// The table inserted into.
        table: Table,
        /// Home warehouse anchoring the stripe ring.
        w_id: u64,
        /// Column values of the new row.
        values: Vec<Vec<u8>>,
    },
}

/// An [`Effect`] tagged with the warehouse owning the touched row — the
/// routing key a sharded deployment maps to the owning shard. Effects on
/// replicated tables (ITEM) are tagged with the transaction's home
/// warehouse: every shard holds the full replica, so they execute at
/// home.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaggedEffect {
    /// The effect itself.
    pub effect: Effect,
    /// The owning warehouse (home warehouse for replicated tables).
    pub warehouse: u64,
}
