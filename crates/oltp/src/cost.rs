//! CPU cost model and per-transaction time breakdown (Fig. 11(c)).
//!
//! The paper's DBx1000-based executor spends transaction time on four
//! components besides raw memory access: computation, memory allocation
//! (MVCC allocates a delta slot per updated row), hash indexing, and
//! version-chain traversal. The cycle constants below are calibrated so
//! the Payment/NewOrder mix reproduces the paper's measured shares
//! (computation 36.65 %, allocation 44.10 %, indexing 19.25 %, chain
//! traversal < 0.1 %).

use serde::{Deserialize, Serialize};

use pushtap_pim::{CpuSpec, Ps};

/// Per-operation CPU cycle costs.
///
/// Defaults are calibrated so the Payment/NewOrder mix (≈21 index ops,
/// ≈15 allocations, ≈37 row operations per average transaction)
/// reproduces the paper's component shares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Hash-index probe or insert.
    pub index_cycles: u64,
    /// Allocating (and version-chaining) one delta slot or insert row.
    pub alloc_cycles: u64,
    /// Fixed computation per row operation (validation, dispatch).
    pub op_base_cycles: u64,
    /// Computation per column value read or written.
    pub per_value_cycles: u64,
    /// One version-chain hop.
    pub chain_step_cycles: u64,
    /// Commit-time memory barrier after the clflush train (§6.3).
    pub commit_barrier_cycles: u64,
    /// Issue/reform overhead per cache line touched (load issue, line-fill
    /// stall shadow, and byte re-layout into the row buffer). Charged to
    /// the *memory* component, so formats needing more lines per row pay
    /// proportionally (Fig. 9(a)) without skewing the Fig. 11(c) CPU pie.
    pub per_line_cycles: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            index_cycles: 200,
            alloc_cycles: 650,
            op_base_cycles: 150,
            per_value_cycles: 33,
            chain_step_cycles: 10,
            commit_barrier_cycles: 80,
            per_line_cycles: 40,
        }
    }
}

/// Where a transaction's CPU time went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Hash-index probes and inserts.
    pub indexing: Ps,
    /// Delta-slot / insert-row allocation.
    pub alloc: Ps,
    /// Computation (validation, arithmetic, commit barriers).
    pub compute: Ps,
    /// Version-chain traversal.
    pub chain: Ps,
    /// DRAM access time (row reads/writes through the memory system).
    pub memory: Ps,
}

impl Breakdown {
    /// Total time across all components.
    pub fn total(&self) -> Ps {
        self.indexing + self.alloc + self.compute + self.chain + self.memory
    }

    /// CPU-side time (everything but DRAM).
    pub fn cpu_total(&self) -> Ps {
        self.indexing + self.alloc + self.compute + self.chain
    }

    /// Fractions of the CPU-side components, in the paper's Fig. 11(c)
    /// order: (computation, allocation, indexing, chain).
    pub fn cpu_fractions(&self) -> (f64, f64, f64, f64) {
        let t = self.cpu_total().ps() as f64;
        if t == 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (
            self.compute.ps() as f64 / t,
            self.alloc.ps() as f64 / t,
            self.indexing.ps() as f64 / t,
            self.chain.ps() as f64 / t,
        )
    }

    /// Accumulates another breakdown.
    pub fn merge(&mut self, other: &Breakdown) {
        self.indexing += other.indexing;
        self.alloc += other.alloc;
        self.compute += other.compute;
        self.chain += other.chain;
        self.memory += other.memory;
    }
}

/// Charges cycle costs into a breakdown using a CPU spec.
#[derive(Debug, Clone, Copy)]
pub struct Meter {
    /// The cost model in effect.
    pub costs: CostModel,
    /// The CPU converting cycles to time.
    pub cpu: CpuSpec,
}

impl Meter {
    /// Creates a meter.
    pub fn new(costs: CostModel, cpu: CpuSpec) -> Meter {
        Meter { costs, cpu }
    }

    /// Time of `n` index operations.
    pub fn indexing(&self, n: u64) -> Ps {
        self.cpu.cycles(self.costs.index_cycles * n)
    }

    /// Time of `n` allocations.
    pub fn alloc(&self, n: u64) -> Ps {
        self.cpu.cycles(self.costs.alloc_cycles * n)
    }

    /// Base computation plus `values` column-value operations.
    pub fn compute(&self, values: u64) -> Ps {
        self.cpu
            .cycles(self.costs.op_base_cycles + self.costs.per_value_cycles * values)
    }

    /// Time of `hops` version-chain hops.
    pub fn chain(&self, hops: u64) -> Ps {
        self.cpu.cycles(self.costs.chain_step_cycles * hops)
    }

    /// Commit barrier time.
    pub fn commit_barrier(&self) -> Ps {
        self.cpu.cycles(self.costs.commit_barrier_cycles)
    }

    /// Issue/reform time for touching `lines` cache lines.
    pub fn line_issue(&self, lines: u64) -> Ps {
        self.cpu.cycles(self.costs.per_line_cycles * lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meter() -> Meter {
        Meter::new(CostModel::default(), CpuSpec::xeon_like())
    }

    #[test]
    fn cycles_convert_to_time() {
        let m = meter();
        // 200 cycles at 3.2 GHz = 62.5 ns.
        assert_eq!(m.indexing(1), Ps::new(62_500));
        assert_eq!(m.indexing(2), Ps::new(125_000));
        assert!(m.alloc(1) > m.indexing(1));
    }

    #[test]
    fn breakdown_accumulates_and_fractions_sum() {
        let m = meter();
        let mut b = Breakdown::default();
        b.indexing += m.indexing(4);
        b.alloc += m.alloc(4);
        b.compute += m.compute(30);
        b.chain += m.chain(1);
        let (c, a, i, ch) = b.cpu_fractions();
        assert!((c + a + i + ch - 1.0).abs() < 1e-9);
        assert!(ch < 0.01, "chain share {ch}");
        let mut total = Breakdown::default();
        total.merge(&b);
        total.merge(&b);
        assert_eq!(total.cpu_total(), b.cpu_total() * 2);
    }

    #[test]
    fn zero_breakdown_has_zero_fractions() {
        let b = Breakdown::default();
        assert_eq!(b.cpu_fractions(), (0.0, 0.0, 0.0, 0.0));
        assert_eq!(b.total(), Ps::ZERO);
    }
}
