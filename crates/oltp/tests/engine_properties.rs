//! Property tests of the OLTP engine: arbitrary committed transaction
//! streams preserve the engine's structural invariants — version
//! accounting, snapshot isolation, timestamp monotonicity, and functional
//! read-your-writes.

use proptest::prelude::*;
use pushtap_chbench::{dec_u64, enc_u64, Table};
use pushtap_format::RowSlot;
use pushtap_mvcc::Ts;
use pushtap_oltp::{DbConfig, TpccDb};
use pushtap_pim::{MemSystem, Ps};

/// Scripted operations against the CUSTOMER table.
#[derive(Debug, Clone)]
enum Op {
    UpdateBalance { row: u64, amount: u64 },
    Read { row: u64 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..64, 1u64..1_000_000).prop_map(|(row, amount)| Op::UpdateBalance { row, amount }),
            (0u64..64).prop_map(|row| Op::Read { row }),
        ],
        1..80,
    )
}

fn build() -> (TpccDb, MemSystem) {
    let mem = MemSystem::dimm();
    let db = TpccDb::build(&DbConfig::small(), &mem).expect("build");
    (db, mem)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Read-your-writes at the engine level: after updating a customer's
    /// balance, a read at a later timestamp returns it; a read at an
    /// earlier timestamp returns the previous value.
    #[test]
    fn mvcc_read_your_writes(ops in arb_ops()) {
        let (mut db, mut mem) = build();
        let meter = *db.meter();
        let bal = Table::Customer
            .schema()
            .index_of("c_balance")
            .expect("c_balance");
        // Shadow model: row → (ts, balance) history.
        let mut shadow: std::collections::HashMap<u64, Vec<(u64, u64)>> = Default::default();
        let mut ts = 0u64;
        for op in &ops {
            match op {
                Op::UpdateBalance { row, amount } => {
                    ts += 1;
                    let t = db.table_mut(Table::Customer);
                    t.timed_update(
                        &mut mem,
                        &meter,
                        *row,
                        Ts(ts),
                        &[(bal, enc_u64(*amount, 8))],
                        Ps::ZERO,
                    )
                    .expect("arena headroom");
                    shadow.entry(*row).or_default().push((ts, *amount));
                }
                Op::Read { row } => {
                    let t = db.table_mut(Table::Customer);
                    let (values, _) = t.timed_read(&mut mem, &meter, *row, Ts(ts), Ps::ZERO);
                    let got = dec_u64(&values[bal as usize]);
                    match shadow.get(row).and_then(|h| h.iter().rev().find(|(w, _)| *w <= ts)) {
                        Some((_, expect)) => prop_assert_eq!(got, *expect),
                        None => {
                            // Untouched: must equal the generator's value.
                            let gen = pushtap_chbench::RowGen::new(
                                Table::Customer,
                                t.n_rows(),
                            );
                            prop_assert_eq!(got, dec_u64(&gen.value(*row, bal)));
                        }
                    }
                }
            }
        }
    }

    /// Version accounting: live delta slots equal the number of updates,
    /// and a full defragmentation returns the count to zero while folding
    /// the newest values into the data region.
    #[test]
    fn version_accounting_and_defrag(ops in arb_ops()) {
        let (mut db, mut mem) = build();
        let meter = *db.meter();
        let bal = Table::Customer.schema().index_of("c_balance").expect("col");
        let mut updates = 0u64;
        let mut newest: std::collections::HashMap<u64, u64> = Default::default();
        let mut ts = 0u64;
        for op in &ops {
            if let Op::UpdateBalance { row, amount } = op {
                ts += 1;
                db.table_mut(Table::Customer)
                    .timed_update(
                        &mut mem,
                        &meter,
                        *row,
                        Ts(ts),
                        &[(bal, enc_u64(*amount, 8))],
                        Ps::ZERO,
                    )
                    .expect("arena headroom");
                updates += 1;
                newest.insert(*row, *amount);
            }
        }
        let t = db.table_mut(Table::Customer);
        prop_assert_eq!(t.live_delta_rows(), updates);
        let model = pushtap_mvcc::DefragCostModel::new(16.0, 1e9, 3e9);
        let (stats, _) = t.defragment(&model, pushtap_mvcc::DefragStrategy::Hybrid, Ts(ts));
        prop_assert_eq!(stats.slots_reclaimed, updates);
        prop_assert_eq!(stats.rows_copied as usize, newest.len());
        prop_assert_eq!(t.live_delta_rows(), 0);
        for (row, amount) in newest {
            let values = t.store().read_row(RowSlot::Data { row });
            prop_assert_eq!(dec_u64(&values[bal as usize]), amount);
        }
    }

    /// Snapshot isolation across arbitrary interleavings: whatever the
    /// update stream, OLAP reads only move when a snapshot is taken.
    #[test]
    fn snapshot_isolation(ops in arb_ops()) {
        let (mut db, mut mem) = build();
        let meter = *db.meter();
        let bal = Table::Customer.schema().index_of("c_balance").expect("col");
        let observed: Vec<u64> = (0..8)
            .map(|row| dec_u64(&db.table(Table::Customer).snapshot_read(row)[bal as usize]))
            .collect();
        let mut ts = 0u64;
        for op in &ops {
            if let Op::UpdateBalance { row, amount } = op {
                ts += 1;
                db.table_mut(Table::Customer)
                    .timed_update(
                        &mut mem,
                        &meter,
                        *row,
                        Ts(ts),
                        &[(bal, enc_u64(*amount, 8))],
                        Ps::ZERO,
                    )
                    .expect("arena headroom");
            }
            // Without snapshotting, OLAP-visible values never change.
            for (row, before) in observed.iter().enumerate() {
                let now = dec_u64(
                    &db.table(Table::Customer).snapshot_read(row as u64)[bal as usize],
                );
                prop_assert_eq!(now, *before, "row {} moved without a snapshot", row);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Decomposition is a pure function of `(txn, ts)`: repeated calls
    /// at the same pinned timestamp yield identical effect lists and
    /// therefore identical scheduler keysets. This is the property the
    /// wave scheduler (and the sanitizer's declared-keyset check) rests
    /// on — a keyset computed before execution must still describe the
    /// transaction when it retries after a `DeltaFull` abort.
    #[test]
    fn decomposition_keysets_are_deterministic(seed in 0u64..1024, n in 1usize..16, ts in 1u64..1_000) {
        let (db, _mem) = build();
        let mut tg = pushtap_chbench::TxnGen::new(
            seed,
            db.table(Table::Warehouse).n_rows(),
            db.table(Table::Customer).n_rows(),
            db.table(Table::Item).n_rows(),
            db.table(Table::Stock).n_rows(),
        );
        for txn in tg.batch(n) {
            let first = db.decompose(&txn, Ts(ts));
            let keys = pushtap_oltp::KeySet::from_effects(&first);
            prop_assert!(!keys.is_empty(), "every txn touches something");
            for _ in 0..3 {
                let again = db.decompose(&txn, Ts(ts));
                prop_assert_eq!(&first, &again, "decomposition drifted across calls");
                prop_assert_eq!(
                    &keys,
                    &pushtap_oltp::KeySet::from_effects(&again),
                    "keyset drifted across calls"
                );
            }
        }
    }
}
