//! Golden-layout regression tests: the exact part structure the
//! generator produces for key CH tables at the paper's operating point
//! (`th = 0.6`, 8 devices). These pin the bin-packing behaviour — any
//! change to the algorithm that alters a layout shows up here, with the
//! effective-bandwidth consequences asserted alongside.

use pushtap_format::{compact_layout, Column, TableSchema};

fn orderline_keys() -> TableSchema {
    // ORDERLINE with the full 22-query key set (ol_dist_info is the only
    // normal column).
    TableSchema::new(
        "orderline",
        vec![
            Column::key("ol_o_id", 4),
            Column::key("ol_d_id", 1),
            Column::key("ol_w_id", 4),
            Column::key("ol_number", 1),
            Column::key("ol_i_id", 4),
            Column::key("ol_supply_w_id", 4),
            Column::key("ol_delivery_d", 8),
            Column::key("ol_quantity", 2),
            Column::key("ol_amount", 8),
            Column::normal("ol_dist_info", 24),
        ],
    )
}

#[test]
fn orderline_golden_at_th06() {
    let s = orderline_keys();
    let l = compact_layout(&s, 8, 0.6).unwrap();
    // Part structure: w=8 (delivery_d, amount lead), w=4 (the four ids),
    // w=2 (quantity), w=1 (number, d_id).
    let widths: Vec<u32> = l.parts().iter().map(|p| p.width()).collect();
    assert_eq!(widths, vec![8, 4, 2, 1]);
    // Every key column scans at full PIM effectiveness.
    for c in s.key_indices() {
        assert_eq!(
            l.pim_scan_effectiveness(c),
            Some(1.0),
            "{}",
            s.column(c).name
        );
    }
    // The 24 normal bytes fill part 0's free devices completely.
    assert_eq!(l.parts()[0].data_bytes(), 8 + 8 + 24);
    // Intra-device padding is zero: ORDERLINE stores compactly.
    assert_eq!(l.intra_device_padding_per_row(), 0);
}

#[test]
fn paper_example_golden_at_th075() {
    // The Fig. 3(c)/Fig. 4 worked example, 4 devices, th = 3/4.
    let s = pushtap_format::paper_example_schema();
    let l = compact_layout(&s, 4, 0.75).unwrap();
    let widths: Vec<u32> = l.parts().iter().map(|p| p.width()).collect();
    assert_eq!(widths, vec![4, 2]);
    // Device assignments within part 0: w_id leads, normals fill.
    let w_id = s.index_of("w_id").unwrap();
    assert_eq!(l.key_location(w_id), Some((0, 0)));
    // Fragment count: zip (9 B normal) splits across the free devices.
    let zip = s.index_of("zip").unwrap();
    assert!(l.fragments(zip).len() >= 2);
    // Total storage: 16 B part 0 + 8 B part 1 per row.
    assert_eq!(l.padded_row_bytes(), 24);
}

#[test]
fn customer_wide_text_stays_normal_and_splits() {
    // CUSTOMER-like: c_data 152 B must byte-split across devices even
    // when every narrow column is a key.
    let s = TableSchema::new(
        "customer",
        vec![
            Column::key("c_id", 4),
            Column::key("c_w_id", 4),
            Column::key("c_balance", 8),
            Column::normal("c_data", 152),
        ],
    );
    let l = compact_layout(&s, 8, 0.6).unwrap();
    let c_data = s.index_of("c_data").unwrap();
    // Spread over several devices (fragments), not device-local.
    assert!(
        l.fragments(c_data).len() >= 8,
        "{}",
        l.fragments(c_data).len()
    );
    assert_eq!(l.key_location(c_data), None);
    // Key columns unharmed.
    for c in s.key_indices() {
        assert_eq!(l.pim_scan_effectiveness(c), Some(1.0));
    }
}

#[test]
fn single_device_degenerates_gracefully() {
    // HBM geometry (1 device): every key column leads its own part.
    let s = orderline_keys();
    let l = compact_layout(&s, 1, 0.6).unwrap();
    assert_eq!(l.parts().len(), 9 + 1); // 9 keys + trailing normals
    for c in s.key_indices() {
        assert_eq!(l.pim_scan_effectiveness(c), Some(1.0));
    }
    // One device ⇒ padded bytes = data bytes (no cross-device padding).
    assert_eq!(l.padded_row_bytes(), s.row_width());
}

#[test]
fn threshold_zero_packs_orderline_into_two_parts() {
    let s = orderline_keys();
    let l = compact_layout(&s, 8, 0.0).unwrap();
    // 9 keys over 8 devices: part 0 holds 8, part 1 the last + normals.
    assert_eq!(l.parts().len(), 2);
    assert_eq!(l.parts()[0].width(), 8);
    // Narrow keys in the w=8 part scan at reduced effectiveness.
    let d_id = s.index_of("ol_d_id").unwrap();
    let eff = l.pim_scan_effectiveness(d_id).unwrap();
    assert!(eff <= 0.5, "d_id effectiveness {eff}");
}
