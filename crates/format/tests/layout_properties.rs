//! Property-based tests for the unified data format.
//!
//! The layout generator must uphold, for *any* schema, device count, and
//! threshold:
//!
//! 1. every column byte is mapped exactly once (validated by
//!    `TableLayout::new`, so generation succeeding is itself the property);
//! 2. key columns are single device-local fragments;
//! 3. key columns admitted to a part pass the threshold test;
//! 4. rows written through the store read back identically, for data rows
//!    and delta versions alike;
//! 5. circulant placement is a bijection and balances devices.

use proptest::prelude::*;
use pushtap_format::{
    compact_layout, cpu_effective, naive_layout, pim_effective, Column, Placement, RowSlot,
    TableSchema, TableStore,
};

fn arb_schema() -> impl Strategy<Value = TableSchema> {
    // 1..12 columns, widths 1..32, ~half keys.
    prop::collection::vec((1u32..32, any::<bool>()), 1..12).prop_map(|cols| {
        let columns = cols
            .into_iter()
            .enumerate()
            .map(|(i, (w, key))| {
                let name = format!("c{i}");
                if key {
                    Column::key(name, w)
                } else {
                    Column::normal(name, w)
                }
            })
            .collect();
        TableSchema::new("prop", columns)
    })
}

proptest! {
    /// Generation always yields a *validated* layout: total coverage, no
    /// duplicates, no split keys (TableLayout::new re-checks all of it).
    #[test]
    fn compact_layout_always_valid(
        schema in arb_schema(),
        devices in 1u32..10,
        th in 0.0f64..=1.0,
    ) {
        let layout = compact_layout(&schema, devices, th).unwrap();
        // Conservation: data bytes across parts equal the schema width.
        let data: u32 = layout.parts().iter().map(|p| p.data_bytes()).sum();
        prop_assert_eq!(data, schema.row_width());
        // Key columns are device-local.
        for c in schema.key_indices() {
            prop_assert_eq!(layout.fragments(c).len(), 1);
        }
    }

    /// Threshold admission: every key column in a part has width ≥ th·w
    /// (the lead column trivially satisfies it with width = w).
    #[test]
    fn threshold_admission_respected(
        schema in arb_schema(),
        devices in 2u32..9,
        th in 0.0f64..=1.0,
    ) {
        let layout = compact_layout(&schema, devices, th).unwrap();
        for c in schema.key_indices() {
            let (part, _) = layout.key_location(c).unwrap();
            let w = layout.parts()[part as usize].width();
            let cw = schema.column(c).width;
            prop_assert!(
                cw as f64 + 1e-6 >= th * w as f64,
                "column {} width {} in part of width {} violates th={}",
                c, cw, w, th
            );
        }
    }

    /// PIM effectiveness of every key column is width/part-width ∈ (0, 1].
    #[test]
    fn pim_effectiveness_in_unit_interval(
        schema in arb_schema(),
        devices in 1u32..9,
        th in 0.0f64..=1.0,
    ) {
        let layout = compact_layout(&schema, devices, th).unwrap();
        for c in schema.key_indices() {
            let e = layout.pim_scan_effectiveness(c).unwrap();
            prop_assert!(e > 0.0 && e <= 1.0);
        }
        let agg = pim_effective(&layout, |_| 1.0);
        prop_assert!(agg > 0.0 && agg <= 1.0);
    }

    /// At th = 0 (greedy packing) the compact format never uses more
    /// storage than the naïve format: sorted widest-first grouping plus
    /// byte-splitting normal columns can only reduce padding. (At high
    /// thresholds compact deliberately trades storage for PIM bandwidth,
    /// so the inequality is restricted to th = 0.)
    #[test]
    fn compact_at_zero_threshold_never_pads_more_than_naive(
        schema in arb_schema(),
        devices in 1u32..9,
    ) {
        let compact = compact_layout(&schema, devices, 0.0).unwrap();
        let naive = naive_layout(&schema, devices).unwrap();
        prop_assert!(
            compact.padding_per_row() <= naive.padding_per_row(),
            "compact {} > naive {}",
            compact.padding_per_row(),
            naive.padding_per_row()
        );
    }

    /// Structural sanity across the threshold sweep: accounting conserves
    /// bytes, effectiveness stays in (0, 1], and raising th from 0 to 1
    /// cannot reduce the number of parts by more than the optional
    /// trailing normal-byte part.
    #[test]
    fn threshold_sweep_structural_invariants(
        schema in arb_schema(),
        devices in 2u32..9,
    ) {
        let lo = compact_layout(&schema, devices, 0.0).unwrap();
        let hi = compact_layout(&schema, devices, 1.0).unwrap();
        prop_assert!(hi.parts().len() + 1 >= lo.parts().len());
        for l in [&lo, &hi] {
            let e = cpu_effective(l, 8);
            prop_assert!(e > 0.0 && e <= 1.0, "effectiveness {e}");
            let data: u32 = l.parts().iter().map(|p| p.data_bytes()).sum();
            prop_assert_eq!(data + l.padding_per_row(), l.padded_row_bytes());
        }
    }

    /// Functional round-trip: random row contents survive write/read via
    /// the store, under rotation, for data rows and delta versions.
    #[test]
    fn store_round_trip(
        schema in arb_schema(),
        devices in 1u32..9,
        th in 0.0f64..=1.0,
        row in 0u64..64,
        seed in any::<u64>(),
    ) {
        let layout = compact_layout(&schema, devices, th).unwrap();
        let mut store = TableStore::new(layout, 8, 64, 16);
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u8
        };
        let values: Vec<Vec<u8>> = schema
            .columns()
            .iter()
            .map(|c| (0..c.width).map(|_| next()).collect())
            .collect();
        store.write_row(RowSlot::Data { row }, &values);
        prop_assert_eq!(store.read_row(RowSlot::Data { row }), values.clone());

        let rotation = store.arena_for_row(row);
        let slot = RowSlot::Delta { rotation, idx: 1 };
        store.write_row(slot, &values);
        prop_assert_eq!(store.read_row(slot), values);
    }

    /// Placement bijection and balance.
    #[test]
    fn placement_bijection(devices in 1u32..12, block in 1u32..64, row in 0u64..100_000) {
        let p = Placement::new(devices, block);
        let mut seen = vec![false; devices as usize];
        for slot in 0..devices {
            let d = p.device_of(slot, row);
            prop_assert_eq!(p.slot_of(d, row), slot);
            prop_assert!(!seen[d as usize], "device {} hit twice", d);
            seen[d as usize] = true;
        }
    }
}
