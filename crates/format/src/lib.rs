//! The unified data storage format of PUSHtap (§4 of the paper).
//!
//! HTAP pulls the data format in two directions: OLTP wants whole rows in
//! few cache lines; OLAP wants whole columns contiguous per device. The
//! unified format reconciles them by aligning rows to the ADE dimension
//! (across the lockstep devices of a rank, readable by one interleaved CPU
//! access) and columns to the IDE dimension (contiguous inside a device,
//! scannable by that device's PIM unit).
//!
//! The pieces:
//!
//! * [`TableSchema`]/[`Column`] — fixed-width columns classified
//!   [`ColumnKind::Key`] (OLAP-scanned, indivisible) or
//!   [`ColumnKind::Normal`] (byte-divisible);
//! * [`compact_layout`] — the threshold-driven bin-packing generator of
//!   §4.1.2 (Fig. 4); [`naive_layout`] — the strawman of §4.1.1;
//! * [`TableLayout`] — a validated byte-exact mapping with per-column
//!   [`Fragment`]s;
//! * [`Placement`] — block-circulant rotation for PIM load balance (§4.2);
//! * [`RegionPlan`] — data/delta/bitmap regions per device (§5.1);
//! * [`TableStore`] — functional storage: real bytes in [`pushtap_pim`]
//!   device memories;
//! * [`cpu_effective`]/[`pim_effective`]/[`storage_breakdown`] — the
//!   effective-bandwidth analyses behind Fig. 8.
//!
//! # Examples
//!
//! ```
//! use pushtap_format::{compact_layout, cpu_effective, paper_example_schema, pim_effective};
//!
//! let schema = paper_example_schema();
//! let layout = compact_layout(&schema, 4, 0.75)?;
//! // Key columns scan at full PIM bandwidth at this threshold…
//! assert_eq!(pim_effective(&layout, |_| 1.0), 1.0);
//! // …while the CPU still reads rows efficiently.
//! assert!(cpu_effective(&layout, 8) > 0.3);
//! # Ok::<(), pushtap_format::LayoutError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bandwidth;
mod binpack;
mod circulant;
mod classic;
mod layout;
mod region;
mod schema;
mod store;

pub use bandwidth::{
    avg_chunks_per_row, cpu_effective, cpu_lines_per_row, pim_effective, storage_breakdown,
    StorageBreakdown,
};
pub use binpack::{compact_layout, naive_layout};
pub use circulant::{Placement, DEFAULT_BLOCK_ROWS};
pub use classic::{
    colstore_cpu_effective, colstore_lines_per_row, rowstore_cpu_effective, rowstore_lines_per_row,
};
pub use layout::{ByteSource, Fragment, LayoutError, PartLayout, Slot, TableLayout};
pub use region::{PartRegion, RegionPlan};
pub use schema::{paper_example_schema, Column, ColumnKind, TableSchema};
pub use store::{RowSlot, TableStore};
