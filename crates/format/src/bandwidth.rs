//! Effective-bandwidth and storage analysis of a layout (§4.1, Fig. 8).
//!
//! *CPU effective bandwidth* asks: of all the bytes the CPU fetches to
//! reconstruct one full row (whole cache lines, across every part), how
//! many are that row's live data? More parts and wider padding mean more
//! lines per row.
//!
//! *PIM effective bandwidth* asks: when a PIM unit streams a key column,
//! what fraction of the bytes its DMA moves belong to the column? A key
//! column of width `c` in a part of width `w` yields `c / w`.

use serde::{Deserialize, Serialize};

use crate::layout::TableLayout;

/// Average number of aligned `granularity`-byte chunks that a `w`-byte
/// window starting at `r * w` overlaps, over all row indices `r`.
///
/// This is the per-device burst count for reading one row's slice of a
/// width-`w` part; exact by periodicity with period `lcm(w, g) / w`.
///
/// # Panics
///
/// Panics if `w` or `granularity` is zero.
pub fn avg_chunks_per_row(w: u32, granularity: u32) -> f64 {
    assert!(w > 0 && granularity > 0, "degenerate widths");
    let g = granularity as u64;
    let w = w as u64;
    let period = lcm(w, g) / w;
    let total: u64 = (0..period)
        .map(|r| {
            let start = r * w;
            let end = start + w - 1;
            end / g - start / g + 1
        })
        .sum();
    total as f64 / period as f64
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

/// Average cache lines the CPU fetches to reconstruct one full row
/// (summed over parts; one line = all devices × granularity).
pub fn cpu_lines_per_row(layout: &TableLayout, granularity: u32) -> f64 {
    layout
        .parts()
        .iter()
        .map(|p| avg_chunks_per_row(p.width(), granularity))
        .sum()
}

/// CPU effective bandwidth for full-row accesses: live data bytes per
/// fetched byte.
pub fn cpu_effective(layout: &TableLayout, granularity: u32) -> f64 {
    let useful = layout.schema().row_width() as f64;
    let fetched = cpu_lines_per_row(layout, granularity) * (layout.devices() * granularity) as f64;
    useful / fetched
}

/// Weighted PIM effective bandwidth over the scanned (key) columns.
/// `weight(col)` should reflect scan frequency (e.g. the number of queries
/// touching the column); columns with zero weight are ignored, as are
/// normal columns (scanned through the CPU instead, §4.1.2 discussion).
///
/// Returns 1.0 when nothing is scanned.
pub fn pim_effective<F: Fn(u32) -> f64>(layout: &TableLayout, weight: F) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for col in 0..layout.schema().len() as u32 {
        let w = weight(col);
        if w <= 0.0 || !layout.schema().column(col).is_key() {
            continue;
        }
        if let Some(eff) = layout.pim_scan_effectiveness(col) {
            num += w * eff;
            den += w;
        }
    }
    if den == 0.0 {
        1.0
    } else {
        num / den
    }
}

/// Storage-space breakdown of a table instance (Fig. 8(b)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StorageBreakdown {
    /// Fraction of storage holding live data.
    pub data: f64,
    /// Fraction lost to alignment padding.
    pub padding: f64,
    /// Fraction holding the per-device snapshot bitmaps (§5.2).
    pub snapshot: f64,
}

impl StorageBreakdown {
    /// The fractions sum to 1 by construction; exposed for sanity checks.
    pub fn total(&self) -> f64 {
        self.data + self.padding + self.snapshot
    }
}

/// Computes the storage breakdown for a layout.
///
/// `delta_frac` is the delta-region capacity as a fraction of the data
/// region (rows awaiting defragmentation). Each row costs one bitmap bit
/// per region, and the bitmap is replicated on every device of the bank
/// (§5.2), hence `devices × (1 + delta_frac) / 8` bitmap bytes per row.
///
/// Padding counts only intra-device zero bytes
/// ([`TableLayout::intra_device_padding_per_row`]); fully-empty device
/// slots are reusable address space, not consumed storage.
pub fn storage_breakdown(layout: &TableLayout, delta_frac: f64) -> StorageBreakdown {
    assert!(delta_frac >= 0.0, "negative delta fraction");
    let data = layout.schema().row_width() as f64 * (1.0 + delta_frac);
    let padding = layout.intra_device_padding_per_row() as f64 * (1.0 + delta_frac);
    let snapshot = layout.devices() as f64 * (1.0 + delta_frac) / 8.0;
    let total = data + padding + snapshot;
    StorageBreakdown {
        data: data / total,
        padding: padding / total,
        snapshot: snapshot / total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binpack::{compact_layout, naive_layout};
    use crate::schema::paper_example_schema;

    #[test]
    fn chunk_average_exact_cases() {
        // w = g: always exactly one aligned chunk.
        assert_eq!(avg_chunks_per_row(8, 8), 1.0);
        // w = 2g: always exactly two chunks.
        assert_eq!(avg_chunks_per_row(16, 8), 2.0);
        // w = 4, g = 8: every row fits one chunk.
        assert_eq!(avg_chunks_per_row(4, 8), 1.0);
        // w = 9, g = 8: window of 9 overlaps 2 chunks except when aligned
        // spanning exactly... period 8; rows starting at 0,9,...: count
        // manually = (2,2,2,2,2,2,2,2)/8 — always 2.
        assert_eq!(avg_chunks_per_row(9, 8), 2.0);
        // w = 12, g = 8: period 2; r0 [0,12) → 2 chunks, r1 [12,24) → 2.
        assert_eq!(avg_chunks_per_row(12, 8), 2.0);
        // w = 5, g = 8: period 8; starts 0,5,...,35: chunk counts
        // 1,2,1,2,2,1,2,1 → 12/8.
        assert!((avg_chunks_per_row(5, 8) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn cpu_effectiveness_decreases_with_threshold() {
        let s = paper_example_schema();
        let lo = compact_layout(&s, 4, 0.0).unwrap();
        let hi = compact_layout(&s, 4, 1.0).unwrap();
        assert!(cpu_effective(&lo, 8) >= cpu_effective(&hi, 8));
    }

    #[test]
    fn pim_effectiveness_increases_with_threshold() {
        let s = paper_example_schema();
        let lo = compact_layout(&s, 4, 0.0).unwrap();
        let hi = compact_layout(&s, 4, 1.0).unwrap();
        let w = |_c| 1.0;
        assert!(pim_effective(&lo, w) < pim_effective(&hi, w));
        assert_eq!(pim_effective(&hi, w), 1.0);
    }

    #[test]
    fn naive_wastes_both_sides() {
        let s = paper_example_schema();
        let naive = naive_layout(&s, 4).unwrap();
        let compact = compact_layout(&s, 4, 0.75).unwrap();
        assert!(cpu_effective(&compact, 8) > cpu_effective(&naive, 8));
        let w = |_c| 1.0;
        assert!(pim_effective(&compact, w) > pim_effective(&naive, w));
    }

    #[test]
    fn weights_matter() {
        let s = paper_example_schema();
        let l = compact_layout(&s, 4, 0.0).unwrap();
        let id = s.index_of("id").unwrap();
        let w_id = s.index_of("w_id").unwrap();
        // id is half-effective at th=0; w_id fully effective.
        let only_id = pim_effective(&l, |c| if c == id { 1.0 } else { 0.0 });
        let only_wid = pim_effective(&l, |c| if c == w_id { 1.0 } else { 0.0 });
        assert!((only_id - 0.5).abs() < 1e-12);
        assert!((only_wid - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_defaults_to_unity() {
        let s = paper_example_schema();
        let l = compact_layout(&s, 4, 0.5).unwrap();
        assert_eq!(pim_effective(&l, |_| 0.0), 1.0);
    }

    #[test]
    fn breakdown_sums_to_one_and_snapshot_is_small() {
        let s = paper_example_schema();
        let l = compact_layout(&s, 4, 0.6).unwrap();
        let b = storage_breakdown(&l, 0.5);
        assert!((b.total() - 1.0).abs() < 1e-12);
        assert!(b.data > 0.8);
        assert!(b.snapshot < 0.05, "snapshot fraction {}", b.snapshot);
        assert!(b.padding < 0.2);
    }

    #[test]
    fn lines_per_row_counts_all_parts() {
        let s = paper_example_schema();
        let l = compact_layout(&s, 4, 0.75).unwrap();
        // Parts of width 4 and 2 → 1 line each on average.
        assert!((cpu_lines_per_row(&l, 8) - 2.0).abs() < 1e-12);
    }
}
