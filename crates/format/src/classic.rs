//! Traditional row-store / column-store access metrics (Fig. 3(a)).
//!
//! The RS and CS baselines of §7.3 are not ADE/IDE aligned; what matters
//! for the comparison is how many cache lines a transaction touches to
//! read or write one row, and how effective a column scan is.

use crate::bandwidth::avg_chunks_per_row;
use crate::schema::TableSchema;

/// Average cache lines fetched to read one full row from a contiguous
/// row-store of rows `row_width` bytes wide.
pub fn rowstore_lines_per_row(row_width: u32, line_bytes: u32) -> f64 {
    avg_chunks_per_row(row_width, line_bytes)
}

/// Average cache lines fetched to read one full row from a column-store:
/// every column lives in its own array, so each column contributes its own
/// line(s) — the paper's "CS requires accessing data from every column to
/// reconstruct the rows".
pub fn colstore_lines_per_row(schema: &TableSchema, line_bytes: u32) -> f64 {
    schema
        .columns()
        .iter()
        .map(|c| avg_chunks_per_row(c.width, line_bytes))
        .sum()
}

/// CPU effective bandwidth of a full-row read on a row-store.
pub fn rowstore_cpu_effective(schema: &TableSchema, line_bytes: u32) -> f64 {
    schema.row_width() as f64
        / (rowstore_lines_per_row(schema.row_width(), line_bytes) * line_bytes as f64)
}

/// CPU effective bandwidth of a full-row read on a column-store.
pub fn colstore_cpu_effective(schema: &TableSchema, line_bytes: u32) -> f64 {
    schema.row_width() as f64 / (colstore_lines_per_row(schema, line_bytes) * line_bytes as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::paper_example_schema;

    #[test]
    fn rowstore_beats_colstore_for_row_reads() {
        let s = paper_example_schema();
        let rs = rowstore_lines_per_row(s.row_width(), 64);
        let cs = colstore_lines_per_row(&s, 64);
        assert!(rs < cs, "rs {rs} vs cs {cs}");
        assert!(rowstore_cpu_effective(&s, 64) > colstore_cpu_effective(&s, 64));
    }

    #[test]
    fn colstore_pays_one_line_per_column() {
        let s = paper_example_schema();
        // Six columns; the 9-byte zip straddles a line boundary for 8 of
        // every 64 rows: 5 + 1.125 lines on average.
        assert!((colstore_lines_per_row(&s, 64) - 6.125).abs() < 1e-12);
    }

    #[test]
    fn rowstore_21_bytes_fits_mostly_one_line() {
        let s = paper_example_schema();
        let lines = rowstore_lines_per_row(s.row_width(), 64);
        assert!((1.0..1.5).contains(&lines), "{lines}");
    }

    #[test]
    fn effectiveness_bounded_by_one() {
        let s = paper_example_schema();
        assert!(rowstore_cpu_effective(&s, 64) <= 1.0);
        assert!(colstore_cpu_effective(&s, 64) <= 1.0);
    }
}
