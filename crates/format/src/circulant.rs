//! Block-circulant data placement (§4.2, Fig. 5(b)).
//!
//! With plain IDE alignment, each column lives on one device forever; a
//! "hotspot" column then loads only one PIM unit per bank. Block-circulant
//! placement divides the table into blocks of `B` rows and rotates the
//! slot→device assignment by one device per block, so every column is
//! spread evenly over all devices (and thus all PIM units).

use serde::{Deserialize, Serialize};

/// The paper's default block size: large enough to cover a DRAM row buffer
/// and keep row hits high (§4.2).
pub const DEFAULT_BLOCK_ROWS: u32 = 1024;

/// Block-circulant slot→device mapping.
///
/// # Examples
///
/// ```
/// use pushtap_format::Placement;
///
/// let p = Placement::new(4, 1024);
/// // Block 0: identity. Block 1: rotated by one.
/// assert_eq!(p.device_of(0, 0), 0);
/// assert_eq!(p.device_of(0, 1024), 1);
/// assert_eq!(p.device_of(3, 1024), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    devices: u32,
    block_rows: u32,
}

impl Placement {
    /// Creates a placement over `devices` devices with `block_rows`-row
    /// blocks.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(devices: u32, block_rows: u32) -> Placement {
        assert!(devices > 0, "need at least one device");
        assert!(block_rows > 0, "need at least one row per block");
        Placement {
            devices,
            block_rows,
        }
    }

    /// Placement with the paper's default block size.
    pub fn with_default_block(devices: u32) -> Placement {
        Placement::new(devices, DEFAULT_BLOCK_ROWS)
    }

    /// Number of devices.
    pub fn devices(&self) -> u32 {
        self.devices
    }

    /// Rows per block.
    pub fn block_rows(&self) -> u32 {
        self.block_rows
    }

    /// The block index of `row`.
    pub fn block_of(&self, row: u64) -> u64 {
        row / self.block_rows as u64
    }

    /// The rotation applied within `row`'s block.
    pub fn rotation_of(&self, row: u64) -> u32 {
        (self.block_of(row) % self.devices as u64) as u32
    }

    /// The physical device holding layout slot `slot` for `row`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn device_of(&self, slot: u32, row: u64) -> u32 {
        assert!(slot < self.devices, "slot {slot} out of range");
        (slot + self.rotation_of(row)) % self.devices
    }

    /// The layout slot that `device` holds for `row` (inverse of
    /// [`Placement::device_of`]).
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn slot_of(&self, device: u32, row: u64) -> u32 {
        assert!(device < self.devices, "device {device} out of range");
        (device + self.devices - self.rotation_of(row)) % self.devices
    }

    /// Rows of the half-open row range `[start, end)` whose slot `slot`
    /// maps to `device` — the shard a single PIM unit scans. Returned as
    /// block-aligned sub-ranges.
    pub fn ranges_on_device(
        &self,
        slot: u32,
        device: u32,
        start: u64,
        end: u64,
    ) -> Vec<(u64, u64)> {
        let b = self.block_rows as u64;
        let mut out = Vec::new();
        let mut block = start / b;
        while block * b < end {
            let rot = (block % self.devices as u64) as u32;
            if (slot + rot) % self.devices == device {
                let lo = (block * b).max(start);
                let hi = ((block + 1) * b).min(end);
                out.push((lo, hi));
            }
            block += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_in_first_block() {
        let p = Placement::new(4, 1024);
        for slot in 0..4 {
            assert_eq!(p.device_of(slot, 0), slot);
            assert_eq!(p.device_of(slot, 1023), slot);
        }
    }

    #[test]
    fn rotation_advances_per_block() {
        let p = Placement::new(4, 1024);
        assert_eq!(p.rotation_of(0), 0);
        assert_eq!(p.rotation_of(1024), 1);
        assert_eq!(p.rotation_of(2048), 2);
        assert_eq!(p.rotation_of(4096), 0); // wraps after d blocks
    }

    #[test]
    fn slot_of_inverts_device_of() {
        let p = Placement::new(8, 16);
        for row in [0u64, 15, 16, 100, 1000, 12345] {
            for slot in 0..8 {
                let dev = p.device_of(slot, row);
                assert_eq!(p.slot_of(dev, row), slot);
            }
        }
    }

    /// Every column is spread evenly: over d consecutive blocks, slot s
    /// visits every device exactly once (the load-balance property that
    /// Fig. 5(b) exploits).
    #[test]
    fn perfect_balance_over_d_blocks() {
        let p = Placement::new(4, 8);
        for slot in 0..4 {
            let mut devices: Vec<u32> = (0..4u64).map(|blk| p.device_of(slot, blk * 8)).collect();
            devices.sort_unstable();
            assert_eq!(devices, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn ranges_on_device_cover_the_shard() {
        let p = Placement::new(4, 8);
        // Slot 0 on device 1 ⇒ blocks with rotation 1: blocks 1, 5, 9, ...
        let r = p.ranges_on_device(0, 1, 0, 64);
        assert_eq!(r, vec![(8, 16), (40, 48)]);
        // Shards over all devices partition the range.
        let total: u64 = (0..4)
            .flat_map(|dev| p.ranges_on_device(0, dev, 0, 64))
            .map(|(lo, hi)| hi - lo)
            .sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn ranges_respect_partial_blocks() {
        let p = Placement::new(4, 8);
        let r = p.ranges_on_device(0, 0, 3, 7);
        assert_eq!(r, vec![(3, 7)]);
        let r = p.ranges_on_device(0, 1, 3, 7);
        assert!(r.is_empty());
    }

    #[test]
    fn default_block_is_1024() {
        assert_eq!(DEFAULT_BLOCK_ROWS, 1024);
        let p = Placement::with_default_block(8);
        assert_eq!(p.block_rows(), 1024);
    }
}
