//! Compact aligned format generation (§4.1.2, Fig. 4).
//!
//! The generator is an iterative bin-packing strategy driven by the
//! threshold hyper-parameter `th`:
//!
//! 1. Start a new part with the widest remaining key column; its width
//!    becomes the part's row width `w`.
//! 2. Admit further key columns into the part (one per device, at offset 0)
//!    only while their width is at least `th · w` — narrower keys would
//!    waste PIM bandwidth when scanned and are deferred to a later part.
//! 3. Fill every remaining byte slot with normal-column bytes, which are
//!    freely byte-divisible.
//!
//! Leftover normal bytes after all key columns are placed are packed into a
//! final part of width `ceil(remaining / devices)` (optimal for the CPU;
//! PIM never scans them).

use std::collections::VecDeque;

use crate::layout::{ByteSource, LayoutError, PartLayout, TableLayout};
use crate::schema::TableSchema;

/// Generates the compact aligned format for `schema` on `devices` devices
/// with threshold `th ∈ [0, 1]`.
///
/// # Errors
///
/// Propagates [`LayoutError`] from layout validation (cannot occur for a
/// well-formed schema; kept in the signature because the function promises
/// a *validated* layout).
///
/// # Panics
///
/// Panics if `th` is outside `[0, 1]` or `devices` is zero.
///
/// # Examples
///
/// ```
/// use pushtap_format::{compact_layout, paper_example_schema};
///
/// // The paper's running example: th = 3/4 over 4 devices yields a
/// // 4-byte part led by w_id and a 2-byte part with id, d_id, state.
/// let layout = compact_layout(&paper_example_schema(), 4, 0.75).unwrap();
/// assert_eq!(layout.parts().len(), 2);
/// assert_eq!(layout.parts()[0].width(), 4);
/// assert_eq!(layout.parts()[1].width(), 2);
/// ```
pub fn compact_layout(
    schema: &TableSchema,
    devices: u32,
    th: f64,
) -> Result<TableLayout, LayoutError> {
    assert!((0.0..=1.0).contains(&th), "threshold {th} outside [0, 1]");
    assert!(devices > 0, "need at least one device");

    // Key columns sorted widest-first (stable on declaration order).
    let mut keys: VecDeque<u32> = {
        let mut k = schema.key_indices();
        k.sort_by_key(|&i| std::cmp::Reverse(schema.column(i).width));
        k.into()
    };
    // Normal column bytes, in declaration order.
    let mut normal: VecDeque<ByteSource> = schema
        .normal_indices()
        .into_iter()
        .flat_map(|col| (0..schema.column(col).width).map(move |byte| ByteSource { col, byte }))
        .collect();

    let mut parts: Vec<PartLayout> = Vec::new();

    while let Some(&lead) = keys.front() {
        let w = schema.column(lead).width;
        let mut part = PartLayout::empty(w, devices);
        let mut dev = 0u32;
        // Step 1 & 2: admit key columns while they pass the threshold test.
        while dev < devices {
            let Some(&cand) = keys.front() else { break };
            let cw = schema.column(cand).width;
            let admit = if dev == 0 {
                true // the widest key defines the part
            } else {
                cw as f64 + 1e-9 >= th * w as f64
            };
            if !admit {
                break;
            }
            keys.pop_front();
            for b in 0..cw {
                *part.slot_mut(dev, b) = Some(ByteSource { col: cand, byte: b });
            }
            dev += 1;
        }
        // Step 3: fill free slots with normal bytes.
        fill_with_normals(&mut part, devices, &mut normal);
        parts.push(part);
    }

    // Trailing part(s) for leftover normal bytes.
    if !normal.is_empty() {
        let w = (normal.len() as u32).div_ceil(devices);
        let mut part = PartLayout::empty(w, devices);
        fill_with_normals(&mut part, devices, &mut normal);
        parts.push(part);
    }
    debug_assert!(normal.is_empty());

    TableLayout::new(schema.clone(), devices, parts)
}

fn fill_with_normals(part: &mut PartLayout, devices: u32, normal: &mut VecDeque<ByteSource>) {
    for dev in 0..devices {
        for off in 0..part.width() {
            if normal.is_empty() {
                return;
            }
            let slot = part.slot_mut(dev, off);
            if slot.is_none() {
                *slot = normal.pop_front();
            }
        }
    }
}

/// Generates the naïve aligned format (§4.1.1, Fig. 3(b)): every column is
/// treated as indivisible; columns are chunked into groups of `devices` in
/// declaration order, one column per device, all padded to the widest
/// column of the group.
///
/// # Errors
///
/// Propagates [`LayoutError`] from layout validation.
///
/// # Panics
///
/// Panics if `devices` is zero.
pub fn naive_layout(schema: &TableSchema, devices: u32) -> Result<TableLayout, LayoutError> {
    assert!(devices > 0, "need at least one device");
    let mut parts = Vec::new();
    let cols: Vec<u32> = (0..schema.len() as u32).collect();
    for group in cols.chunks(devices as usize) {
        let w = group
            .iter()
            .map(|&c| schema.column(c).width)
            .max()
            .expect("non-empty group");
        let mut part = PartLayout::empty(w, devices);
        for (dev, &col) in group.iter().enumerate() {
            for b in 0..schema.column(col).width {
                *part.slot_mut(dev as u32, b) = Some(ByteSource { col, byte: b });
            }
        }
        parts.push(part);
    }
    TableLayout::new(schema.clone(), devices, parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{paper_example_schema, Column, TableSchema};

    /// The worked example of Fig. 4 (`th = 3/4`, 4 devices):
    /// iteration 0 builds a part of width 4 led by `w_id`, rejecting `d_id`
    /// (2 < 3); iteration 1 builds a width-2 part holding `id`, `d_id`,
    /// `state`; normal columns `zip` (9 B) and `credit` (2 B) fill the gaps.
    #[test]
    fn paper_running_example() {
        let s = paper_example_schema();
        let l = compact_layout(&s, 4, 0.75).unwrap();
        assert_eq!(l.parts().len(), 2);

        let p0 = &l.parts()[0];
        assert_eq!(p0.width(), 4);
        // w_id is the only key in part 0 (on device 0).
        let w_id = s.index_of("w_id").unwrap();
        assert_eq!(l.key_location(w_id), Some((0, 0)));
        // All 11 normal bytes (zip 9 + credit 2) fit in part 0's 12 free
        // bytes: exactly 1 padding byte in part 0.
        assert_eq!(p0.data_bytes(), 15);
        assert_eq!(p0.padding_bytes(), 1);

        let p1 = &l.parts()[1];
        assert_eq!(p1.width(), 2);
        for name in ["id", "d_id", "state"] {
            let c = s.index_of(name).unwrap();
            let (part, _) = l.key_location(c).unwrap();
            assert_eq!(part, 1, "{name} should be in part 1");
            assert_eq!(l.pim_scan_effectiveness(c), Some(1.0));
        }
        // One device of part 1 is all padding.
        assert_eq!(p1.padding_bytes(), 2);

        // CPU bandwidth of the paper's toy accounting: 15/16 in part 0.
        assert_eq!(p0.total_bytes(), 16);
    }

    /// With `th = 0` every key is admitted immediately: fewest parts.
    #[test]
    fn zero_threshold_packs_greedily() {
        let s = paper_example_schema();
        let l = compact_layout(&s, 4, 0.0).unwrap();
        // 4 keys fit the 4 devices of one part (w = 4 from w_id).
        assert_eq!(l.parts().len(), 2); // keys part + leftover normals
        let p0 = &l.parts()[0];
        assert_eq!(p0.width(), 4);
        // id (2 B) in a 4-wide part wastes half the PIM bandwidth.
        let id = s.index_of("id").unwrap();
        assert_eq!(l.pim_scan_effectiveness(id), Some(0.5));
    }

    /// With `th = 1` only equal-width keys share a part: best PIM
    /// bandwidth, most parts.
    #[test]
    fn unit_threshold_gives_full_pim_bandwidth() {
        let s = paper_example_schema();
        let l = compact_layout(&s, 4, 1.0).unwrap();
        for c in s.key_indices() {
            assert_eq!(l.pim_scan_effectiveness(c), Some(1.0));
        }
        // w_id alone, then id+d_id+state (all width 2) share one part.
        assert_eq!(l.parts()[0].width(), 4);
        assert_eq!(l.parts()[1].width(), 2);
    }

    #[test]
    fn threshold_monotonicity_of_parts() {
        let s = paper_example_schema();
        let p0 = compact_layout(&s, 4, 0.0).unwrap().parts().len();
        let p1 = compact_layout(&s, 4, 1.0).unwrap().parts().len();
        assert!(p1 >= p0);
    }

    #[test]
    fn all_normal_schema_packs_compactly() {
        let s = TableSchema::new(
            "n",
            vec![
                Column::normal("a", 5),
                Column::normal("b", 6),
                Column::normal("c", 2),
            ],
        );
        let l = compact_layout(&s, 4, 0.6).unwrap();
        assert_eq!(l.parts().len(), 1);
        // 13 bytes over 4 devices: w = 4, padding = 3.
        assert_eq!(l.parts()[0].width(), 4);
        assert_eq!(l.padding_per_row(), 3);
    }

    #[test]
    fn all_key_schema_never_splits() {
        let s = TableSchema::new(
            "k",
            vec![
                Column::key("a", 3),
                Column::key("b", 3),
                Column::key("c", 3),
            ],
        );
        let l = compact_layout(&s, 2, 0.5).unwrap();
        for c in 0..3 {
            assert_eq!(l.fragments(c).len(), 1);
        }
        // 2 devices: part 0 holds a+b, part 1 holds c.
        assert_eq!(l.parts().len(), 2);
    }

    #[test]
    fn naive_format_matches_figure_3b() {
        let s = paper_example_schema();
        let l = naive_layout(&s, 4).unwrap();
        assert_eq!(l.parts().len(), 2);
        // Part 1: id, d_id, w_id, zip padded to 9.
        assert_eq!(l.parts()[0].width(), 9);
        // Part 2: state, credit padded to 2.
        assert_eq!(l.parts()[1].width(), 2);
        // id's PIM effectiveness degrades to 2/9 (the paper's "PIM BDW 2/9").
        let id = s.index_of("id").unwrap();
        assert!((l.pim_scan_effectiveness(id).unwrap() - 2.0 / 9.0).abs() < 1e-12);
        // CPU reads 17 useful of 36+8 padded bytes per row.
        assert_eq!(l.padded_row_bytes(), 44);
        assert_eq!(s.row_width(), 21);
    }

    #[test]
    fn compact_beats_naive_on_padding() {
        let s = paper_example_schema();
        let compact = compact_layout(&s, 4, 0.75).unwrap();
        let naive = naive_layout(&s, 4).unwrap();
        assert!(compact.padding_per_row() < naive.padding_per_row());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_threshold_panics() {
        let _ = compact_layout(&paper_example_schema(), 4, 1.5);
    }
}
