//! Device-local address-space planning: data region, delta region, and the
//! snapshot-bitmap region (§5.1, Fig. 6(a)).
//!
//! Every device of the rank uses the *same* local offsets (ADE alignment),
//! so one plan serves all devices. The delta region is organised into
//! rotation arenas: a new version of a row whose block has rotation `g` is
//! allocated in arena `g`, so the version's column→device assignment
//! matches its origin row and PIM units can copy versions back locally
//! during defragmentation.

use serde::{Deserialize, Serialize};

use crate::layout::TableLayout;

/// Per-part region bases in device-local byte offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartRegion {
    /// Part row width (bytes per device per row).
    pub width: u32,
    /// Base offset of the data region.
    pub data_base: u64,
    /// Base offset of the delta region.
    pub delta_base: u64,
}

/// The device-local address plan of one table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionPlan {
    n_rows: u64,
    arena_rows: u64,
    arenas: u32,
    parts: Vec<PartRegion>,
    bitmap_base: u64,
    total_bytes: u64,
}

impl RegionPlan {
    /// Plans regions for `n_rows` data rows and at least `delta_rows` of
    /// delta capacity (rounded up to a multiple of the rotation count).
    ///
    /// # Panics
    ///
    /// Panics if `n_rows` is zero.
    pub fn new(layout: &TableLayout, n_rows: u64, delta_rows: u64) -> RegionPlan {
        assert!(n_rows > 0, "table needs at least one row");
        let arenas = layout.devices();
        let arena_rows = delta_rows.div_ceil(arenas as u64);
        let delta_total = arena_rows * arenas as u64;
        let mut base = 0u64;
        let mut parts = Vec::with_capacity(layout.parts().len());
        for p in layout.parts() {
            let w = p.width() as u64;
            let data_base = base;
            base += n_rows * w;
            let delta_base = base;
            base += delta_total * w;
            parts.push(PartRegion {
                width: p.width(),
                data_base,
                delta_base,
            });
        }
        let bitmap_base = base;
        base += n_rows.div_ceil(8) + delta_total.div_ceil(8);
        RegionPlan {
            n_rows,
            arena_rows,
            arenas,
            parts,
            bitmap_base,
            total_bytes: base,
        }
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> u64 {
        self.n_rows
    }

    /// Delta capacity per rotation arena, in rows.
    pub fn arena_rows(&self) -> u64 {
        self.arena_rows
    }

    /// Total delta capacity in rows (all arenas).
    pub fn delta_rows(&self) -> u64 {
        self.arena_rows * self.arenas as u64
    }

    /// Number of rotation arenas (= devices).
    pub fn arenas(&self) -> u32 {
        self.arenas
    }

    /// The per-part region bases.
    pub fn parts(&self) -> &[PartRegion] {
        &self.parts
    }

    /// Device-local offset of `row`'s slice in `part`'s data region.
    ///
    /// # Panics
    ///
    /// Panics if the row or part is out of range.
    pub fn data_offset(&self, part: u32, row: u64) -> u64 {
        assert!(row < self.n_rows, "row {row} out of range");
        let p = &self.parts[part as usize];
        p.data_base + row * p.width as u64
    }

    /// Device-local offset of delta slot `idx` of rotation arena
    /// `rotation` in `part`'s delta region.
    ///
    /// # Panics
    ///
    /// Panics if the arena or index is out of range.
    pub fn delta_offset(&self, part: u32, rotation: u32, idx: u64) -> u64 {
        assert!(rotation < self.arenas, "rotation {rotation} out of range");
        assert!(idx < self.arena_rows, "delta index {idx} out of range");
        let p = &self.parts[part as usize];
        p.delta_base + (rotation as u64 * self.arena_rows + idx) * p.width as u64
    }

    /// Base offset of the snapshot-bitmap region (replicated per device).
    pub fn bitmap_base(&self) -> u64 {
        self.bitmap_base
    }

    /// Bytes of bitmap per device (data bitmap + delta bitmap).
    pub fn bitmap_bytes(&self) -> u64 {
        self.n_rows.div_ceil(8) + self.delta_rows().div_ceil(8)
    }

    /// Total bytes consumed per device.
    pub fn bytes_per_device(&self) -> u64 {
        self.total_bytes
    }

    /// The half-open range of `granularity`-aligned chunk indices covering
    /// `row`'s slice of `part`'s data region — the bursts a CPU access to
    /// this part of the row must fetch.
    pub fn data_chunks(&self, part: u32, row: u64, granularity: u32) -> (u64, u64) {
        let p = &self.parts[part as usize];
        let start = self.data_offset(part, row);
        let end = start + p.width as u64;
        (
            start / granularity as u64,
            (end - 1) / granularity as u64 + 1,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binpack::compact_layout;
    use crate::schema::paper_example_schema;

    fn plan() -> (crate::layout::TableLayout, RegionPlan) {
        let l = compact_layout(&paper_example_schema(), 4, 0.75).unwrap();
        let r = RegionPlan::new(&l, 100, 40);
        (l, r)
    }

    #[test]
    fn regions_do_not_overlap() {
        let (_, r) = plan();
        // Part 0: width 4, data [0, 400), delta [400, 400+40*4).
        assert_eq!(r.parts()[0].data_base, 0);
        assert_eq!(r.parts()[0].delta_base, 400);
        let delta_total = r.delta_rows();
        assert_eq!(delta_total, 40);
        let p1 = &r.parts()[1];
        assert_eq!(p1.data_base, 400 + 40 * 4);
        assert_eq!(p1.delta_base, p1.data_base + 100 * 2);
        assert_eq!(r.bitmap_base(), p1.delta_base + 40 * 2);
        assert_eq!(r.bytes_per_device(), r.bitmap_base() + r.bitmap_bytes());
    }

    #[test]
    fn arena_rounding() {
        let (l, _) = plan();
        let r = RegionPlan::new(&l, 10, 10); // 10 over 4 arenas → 3 each
        assert_eq!(r.arena_rows(), 3);
        assert_eq!(r.delta_rows(), 12);
        assert_eq!(r.arenas(), 4);
    }

    #[test]
    fn offsets_are_strided_by_width() {
        let (_, r) = plan();
        assert_eq!(r.data_offset(0, 0), 0);
        assert_eq!(r.data_offset(0, 3), 12);
        assert_eq!(r.data_offset(1, 3), r.parts()[1].data_base + 6);
        let d0 = r.delta_offset(0, 0, 0);
        let d1 = r.delta_offset(0, 0, 1);
        assert_eq!(d1 - d0, 4);
        // Different arenas are arena_rows apart.
        let a1 = r.delta_offset(0, 1, 0);
        assert_eq!(a1 - d0, r.arena_rows() * 4);
    }

    #[test]
    fn bitmap_sizing() {
        let (_, r) = plan();
        assert_eq!(r.bitmap_bytes(), 100u64.div_ceil(8) + 40u64.div_ceil(8));
    }

    #[test]
    fn chunk_ranges_cover_width() {
        let (_, r) = plan();
        // Part 0, width 4, g=8: row 0 → chunk [0,1); row 1 (bytes 4..8) →
        // chunk [0,1); row 2 (bytes 8..12) → [1,2).
        assert_eq!(r.data_chunks(0, 0, 8), (0, 1));
        assert_eq!(r.data_chunks(0, 1, 8), (0, 1));
        assert_eq!(r.data_chunks(0, 2, 8), (1, 2));
    }

    #[test]
    #[should_panic(expected = "row 100 out of range")]
    fn row_bounds_checked() {
        let (_, r) = plan();
        let _ = r.data_offset(0, 100);
    }

    #[test]
    #[should_panic(expected = "delta index")]
    fn delta_bounds_checked() {
        let (_, r) = plan();
        let _ = r.delta_offset(0, 0, r.arena_rows());
    }
}
