//! Table schemas: fixed-width columns classified as key or normal.
//!
//! A *key column* is scanned by a frequent analytical query and must stay
//! whole within one device so its PIM unit can scan it locally (§4.1.2).
//! *Normal columns* may be split byte-wise across devices.

use serde::{Deserialize, Serialize};

/// Whether a column is scanned by frequent analytical queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnKind {
    /// Scanned by OLAP; must be mapped whole to a single device.
    Key,
    /// Not OLAP-scanned; may be byte-split across devices.
    Normal,
}

/// A fixed-width column.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Width in bytes.
    pub width: u32,
    /// Key/normal classification.
    pub kind: ColumnKind,
}

impl Column {
    /// Creates a key column.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn key(name: impl Into<String>, width: u32) -> Column {
        assert!(width > 0, "zero-width column");
        Column {
            name: name.into(),
            width,
            kind: ColumnKind::Key,
        }
    }

    /// Creates a normal column.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn normal(name: impl Into<String>, width: u32) -> Column {
        assert!(width > 0, "zero-width column");
        Column {
            name: name.into(),
            width,
            kind: ColumnKind::Normal,
        }
    }

    /// Whether this is a key column.
    pub fn is_key(&self) -> bool {
        self.kind == ColumnKind::Key
    }
}

/// A table schema: an ordered list of fixed-width columns.
///
/// # Examples
///
/// ```
/// use pushtap_format::{Column, TableSchema};
///
/// // The CUSTOMER excerpt from Fig. 3 of the paper.
/// let schema = TableSchema::new(
///     "customer",
///     vec![
///         Column::key("id", 2),
///         Column::key("d_id", 2),
///         Column::key("w_id", 4),
///         Column::normal("zip", 9),
///         Column::key("state", 2),
///         Column::normal("credit", 2),
///     ],
/// );
/// assert_eq!(schema.row_width(), 21);
/// assert_eq!(schema.key_indices().len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    name: String,
    columns: Vec<Column>,
}

impl TableSchema {
    /// Creates a schema.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty or contains duplicate names.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> TableSchema {
        assert!(!columns.is_empty(), "schema needs at least one column");
        let mut names: Vec<&str> = columns.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), columns.len(), "duplicate column names");
        TableSchema {
            name: name.into(),
            columns,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The columns, in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns (never true for a valid schema).
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Column by index.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn column(&self, idx: u32) -> &Column {
        &self.columns[idx as usize]
    }

    /// Index of the column named `name`, if any.
    pub fn index_of(&self, name: &str) -> Option<u32> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .map(|i| i as u32)
    }

    /// Total data bytes per row.
    pub fn row_width(&self) -> u32 {
        self.columns.iter().map(|c| c.width).sum()
    }

    /// Indices of key columns, in declaration order.
    pub fn key_indices(&self) -> Vec<u32> {
        (0..self.columns.len() as u32)
            .filter(|&i| self.columns[i as usize].is_key())
            .collect()
    }

    /// Indices of normal columns, in declaration order.
    pub fn normal_indices(&self) -> Vec<u32> {
        (0..self.columns.len() as u32)
            .filter(|&i| !self.columns[i as usize].is_key())
            .collect()
    }

    /// Returns a copy where exactly the named columns are key columns.
    /// Used by the Fig. 8(c,d) experiment, where the key set derives from
    /// an OLAP query subset.
    ///
    /// # Panics
    ///
    /// Panics if a name does not exist in the schema.
    pub fn with_keys(&self, key_names: &[&str]) -> TableSchema {
        for n in key_names {
            assert!(self.index_of(n).is_some(), "unknown column {n}");
        }
        let columns = self
            .columns
            .iter()
            .map(|c| Column {
                name: c.name.clone(),
                width: c.width,
                kind: if key_names.contains(&c.name.as_str()) {
                    ColumnKind::Key
                } else {
                    ColumnKind::Normal
                },
            })
            .collect();
        TableSchema::new(self.name.clone(), columns)
    }

    /// Returns a copy where every column is a key column (degrades the
    /// compact format to the naïve aligned format — "ALL" in Fig. 8(c,d)).
    pub fn with_all_keys(&self) -> TableSchema {
        let names: Vec<&str> = self.columns.iter().map(|c| c.name.as_str()).collect();
        self.with_keys(&names)
    }
}

/// The CUSTOMER excerpt used in the paper's running example (Fig. 3/4).
pub fn paper_example_schema() -> TableSchema {
    TableSchema::new(
        "customer_example",
        vec![
            Column::key("id", 2),
            Column::key("d_id", 2),
            Column::key("w_id", 4),
            Column::normal("zip", 9),
            Column::key("state", 2),
            Column::normal("credit", 2),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_classification() {
        let s = paper_example_schema();
        assert_eq!(s.row_width(), 21);
        assert_eq!(s.key_indices(), vec![0, 1, 2, 4]);
        assert_eq!(s.normal_indices(), vec![3, 5]);
        assert_eq!(s.index_of("zip"), Some(3));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.name(), "customer_example");
        assert_eq!(s.len(), 6);
        assert!(!s.is_empty());
    }

    #[test]
    fn with_keys_reclassifies() {
        let s = paper_example_schema().with_keys(&["zip"]);
        assert_eq!(s.key_indices(), vec![3]);
        assert_eq!(s.normal_indices().len(), 5);
        // Widths unchanged.
        assert_eq!(s.row_width(), 21);
    }

    #[test]
    fn with_all_keys_marks_everything() {
        let s = paper_example_schema().with_all_keys();
        assert_eq!(s.key_indices().len(), 6);
    }

    #[test]
    #[should_panic(expected = "duplicate column names")]
    fn duplicate_names_panic() {
        let _ = TableSchema::new("t", vec![Column::key("a", 1), Column::normal("a", 2)]);
    }

    #[test]
    #[should_panic(expected = "unknown column")]
    fn with_keys_unknown_panics() {
        let _ = paper_example_schema().with_keys(&["ghost"]);
    }

    #[test]
    #[should_panic(expected = "zero-width")]
    fn zero_width_panics() {
        let _ = Column::key("x", 0);
    }
}
