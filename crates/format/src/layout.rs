//! Aligned layouts: how each byte of a row maps onto the ADE dimension.
//!
//! A [`TableLayout`] splits a table into *parts* (Fig. 3(c)). Each part
//! assigns `width` bytes per device per row; every byte slot either carries
//! a specific source byte of a specific column or is zero padding. Key
//! columns must occupy one contiguous run inside a single device so that
//! the device's PIM unit can scan them locally (IDE alignment).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::schema::TableSchema;

/// Identifies one source byte of one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ByteSource {
    /// Column index in the schema.
    pub col: u32,
    /// Byte index within the column.
    pub byte: u32,
}

/// One byte slot of a part: a source byte or padding.
pub type Slot = Option<ByteSource>;

/// A contiguous run of one column's bytes within one device of one part.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fragment {
    /// Part index.
    pub part: u32,
    /// Device slot within the part (before block-circulant rotation).
    pub device: u32,
    /// Byte offset within the part's per-device row slice.
    pub offset: u32,
    /// First column byte covered.
    pub col_byte: u32,
    /// Number of bytes covered.
    pub len: u32,
}

/// One part of a table layout: `devices × width` byte slots per row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartLayout {
    width: u32,
    slots: Vec<Vec<Slot>>, // [device][width]
}

impl PartLayout {
    /// Creates a part from explicit slots.
    ///
    /// # Panics
    ///
    /// Panics if devices is zero or any device has a slot row of the wrong
    /// length.
    pub fn new(width: u32, slots: Vec<Vec<Slot>>) -> PartLayout {
        assert!(!slots.is_empty(), "part needs at least one device");
        assert!(width > 0, "part width must be positive");
        for s in &slots {
            assert_eq!(s.len() as u32, width, "slot row length != width");
        }
        PartLayout { width, slots }
    }

    /// Creates an all-padding part.
    pub fn empty(width: u32, devices: u32) -> PartLayout {
        PartLayout::new(width, vec![vec![None; width as usize]; devices as usize])
    }

    /// Bytes per device per row.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of device slots.
    pub fn devices(&self) -> u32 {
        self.slots.len() as u32
    }

    /// The slot at `(device, offset)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn slot(&self, device: u32, offset: u32) -> Slot {
        self.slots[device as usize][offset as usize]
    }

    /// Mutable access used by layout generators.
    pub(crate) fn slot_mut(&mut self, device: u32, offset: u32) -> &mut Slot {
        &mut self.slots[device as usize][offset as usize]
    }

    /// Total non-padding bytes per row in this part.
    pub fn data_bytes(&self) -> u32 {
        self.slots
            .iter()
            .map(|d| d.iter().filter(|s| s.is_some()).count() as u32)
            .sum()
    }

    /// Total padding bytes per row in this part.
    pub fn padding_bytes(&self) -> u32 {
        self.devices() * self.width - self.data_bytes()
    }

    /// Total bytes (data + padding) per row in this part.
    pub fn total_bytes(&self) -> u32 {
        self.devices() * self.width
    }
}

/// Errors detected while validating a layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// A column byte appears in no slot.
    MissingByte {
        /// Column index.
        col: u32,
        /// Byte index within the column.
        byte: u32,
    },
    /// A column byte appears in more than one slot.
    DuplicateByte {
        /// Column index.
        col: u32,
        /// Byte index within the column.
        byte: u32,
    },
    /// A key column is split across devices/parts or non-contiguous.
    SplitKeyColumn {
        /// Column index.
        col: u32,
    },
    /// A slot references a column or byte outside the schema.
    BadReference {
        /// Column index referenced.
        col: u32,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::MissingByte { col, byte } => {
                write!(f, "column {col} byte {byte} not mapped by any slot")
            }
            LayoutError::DuplicateByte { col, byte } => {
                write!(f, "column {col} byte {byte} mapped more than once")
            }
            LayoutError::SplitKeyColumn { col } => {
                write!(f, "key column {col} split across devices or non-contiguous")
            }
            LayoutError::BadReference { col } => {
                write!(f, "slot references invalid column {col}")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// A complete aligned layout of a table across the ADE dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableLayout {
    schema: TableSchema,
    devices: u32,
    parts: Vec<PartLayout>,
    /// Per column: ordered fragments covering `[0, width)`.
    frags: Vec<Vec<Fragment>>,
}

impl TableLayout {
    /// Builds and validates a layout.
    ///
    /// # Errors
    ///
    /// Returns a [`LayoutError`] if any column byte is unmapped or mapped
    /// twice, or a key column is not a single contiguous run within one
    /// device of one part.
    pub fn new(
        schema: TableSchema,
        devices: u32,
        parts: Vec<PartLayout>,
    ) -> Result<TableLayout, LayoutError> {
        assert!(devices > 0, "layout needs at least one device");
        for p in &parts {
            assert_eq!(p.devices(), devices, "part device count mismatch");
        }
        // Coverage map: per column, which bytes we have seen, where.
        let ncols = schema.len();
        let mut seen: Vec<Vec<Option<(u32, u32, u32)>>> = schema
            .columns()
            .iter()
            .map(|c| vec![None; c.width as usize])
            .collect();
        for (pi, part) in parts.iter().enumerate() {
            for dev in 0..devices {
                for off in 0..part.width() {
                    if let Some(src) = part.slot(dev, off) {
                        if src.col as usize >= ncols {
                            return Err(LayoutError::BadReference { col: src.col });
                        }
                        let width = schema.column(src.col).width;
                        if src.byte >= width {
                            return Err(LayoutError::BadReference { col: src.col });
                        }
                        let cell = &mut seen[src.col as usize][src.byte as usize];
                        if cell.is_some() {
                            return Err(LayoutError::DuplicateByte {
                                col: src.col,
                                byte: src.byte,
                            });
                        }
                        *cell = Some((pi as u32, dev, off));
                    }
                }
            }
        }
        // Completeness + fragment extraction.
        let mut frags: Vec<Vec<Fragment>> = Vec::with_capacity(ncols);
        for (ci, col) in schema.columns().iter().enumerate() {
            let mut col_frags: Vec<Fragment> = Vec::new();
            for b in 0..col.width {
                let (part, device, offset) =
                    seen[ci][b as usize].ok_or(LayoutError::MissingByte {
                        col: ci as u32,
                        byte: b,
                    })?;
                match col_frags.last_mut() {
                    Some(f)
                        if f.part == part
                            && f.device == device
                            && f.offset + f.len == offset
                            && f.col_byte + f.len == b =>
                    {
                        f.len += 1;
                    }
                    _ => col_frags.push(Fragment {
                        part,
                        device,
                        offset,
                        col_byte: b,
                        len: 1,
                    }),
                }
            }
            if col.is_key() && col_frags.len() != 1 {
                return Err(LayoutError::SplitKeyColumn { col: ci as u32 });
            }
            frags.push(col_frags);
        }
        Ok(TableLayout {
            schema,
            devices,
            parts,
            frags,
        })
    }

    /// The schema this layout maps.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Width of the ADE dimension (devices per rank).
    pub fn devices(&self) -> u32 {
        self.devices
    }

    /// The parts of the layout.
    pub fn parts(&self) -> &[PartLayout] {
        &self.parts
    }

    /// Fragments of column `col`, ordered by column byte.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn fragments(&self, col: u32) -> &[Fragment] {
        &self.frags[col as usize]
    }

    /// The part and device holding key column `col`, if it is a key column
    /// mapped as one fragment.
    pub fn key_location(&self, col: u32) -> Option<(u32, u32)> {
        let f = &self.frags[col as usize];
        if self.schema.column(col).is_key() && f.len() == 1 {
            Some((f[0].part, f[0].device))
        } else {
            None
        }
    }

    /// Total stored bytes per row (data + padding) across all parts.
    pub fn padded_row_bytes(&self) -> u32 {
        self.parts.iter().map(PartLayout::total_bytes).sum()
    }

    /// Total padding bytes per row.
    pub fn padding_per_row(&self) -> u32 {
        self.parts.iter().map(PartLayout::padding_bytes).sum()
    }

    /// Padding bytes per row counting only *partially filled* devices.
    ///
    /// A device slot that carries no data at all for a part is not dead
    /// storage — its address range is reusable (e.g. for delta arenas), so
    /// the storage breakdown of Fig. 8(b) counts only the zero bytes
    /// wedged between live data. The CPU-bandwidth metric
    /// ([`crate::cpu_effective`]) still charges whole lines, because a
    /// lockstep burst fetches every device regardless.
    pub fn intra_device_padding_per_row(&self) -> u32 {
        self.parts
            .iter()
            .map(|p| {
                (0..p.devices())
                    .map(|dev| {
                        let used = (0..p.width())
                            .filter(|&off| p.slot(dev, off).is_some())
                            .count() as u32;
                        if used == 0 {
                            0
                        } else {
                            p.width() - used
                        }
                    })
                    .sum::<u32>()
            })
            .sum()
    }

    /// PIM effective bandwidth for scanning column `col`: useful bytes per
    /// loaded byte (§4.1). Returns `None` for columns that are not a single
    /// device-local fragment (normal columns scanned via the CPU instead).
    pub fn pim_scan_effectiveness(&self, col: u32) -> Option<f64> {
        let f = &self.frags[col as usize];
        if f.len() != 1 {
            return None;
        }
        let part = &self.parts[f[0].part as usize];
        Some(self.schema.column(col).width as f64 / part.width() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, TableSchema};

    fn two_col_schema() -> TableSchema {
        TableSchema::new("t", vec![Column::key("a", 2), Column::normal("b", 3)])
    }

    fn src(col: u32, byte: u32) -> Slot {
        Some(ByteSource { col, byte })
    }

    #[test]
    fn valid_layout_round_trips() {
        // 2 devices, width 3: dev0 = a0 a1 b2, dev1 = b0 b1 pad.
        let part = PartLayout::new(
            3,
            vec![
                vec![src(0, 0), src(0, 1), src(1, 2)],
                vec![src(1, 0), src(1, 1), None],
            ],
        );
        let l = TableLayout::new(two_col_schema(), 2, vec![part]).unwrap();
        assert_eq!(l.padded_row_bytes(), 6);
        assert_eq!(l.padding_per_row(), 1);
        assert_eq!(l.fragments(0).len(), 1);
        assert_eq!(l.fragments(1).len(), 2); // b0-b1 then b2
        assert_eq!(l.key_location(0), Some((0, 0)));
        assert_eq!(l.key_location(1), None);
        assert!((l.pim_scan_effectiveness(0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn missing_byte_is_rejected() {
        let part = PartLayout::new(
            3,
            vec![
                vec![src(0, 0), src(0, 1), None],
                vec![src(1, 0), src(1, 1), None],
            ],
        );
        let err = TableLayout::new(two_col_schema(), 2, vec![part]).unwrap_err();
        assert_eq!(err, LayoutError::MissingByte { col: 1, byte: 2 });
    }

    #[test]
    fn duplicate_byte_is_rejected() {
        let part = PartLayout::new(
            3,
            vec![
                vec![src(0, 0), src(0, 1), src(1, 0)],
                vec![src(1, 0), src(1, 1), src(1, 2)],
            ],
        );
        let err = TableLayout::new(two_col_schema(), 2, vec![part]).unwrap_err();
        assert_eq!(err, LayoutError::DuplicateByte { col: 1, byte: 0 });
    }

    #[test]
    fn split_key_column_is_rejected() {
        // Key column a split across the two devices.
        let part = PartLayout::new(
            3,
            vec![
                vec![src(0, 0), src(1, 0), src(1, 1)],
                vec![src(0, 1), src(1, 2), None],
            ],
        );
        let err = TableLayout::new(two_col_schema(), 2, vec![part]).unwrap_err();
        assert_eq!(err, LayoutError::SplitKeyColumn { col: 0 });
    }

    #[test]
    fn bad_reference_is_rejected() {
        let part = PartLayout::new(1, vec![vec![src(9, 0)], vec![None]]);
        let err = TableLayout::new(two_col_schema(), 2, vec![part]).unwrap_err();
        assert_eq!(err, LayoutError::BadReference { col: 9 });
        // Byte beyond the column width is also a bad reference.
        let part = PartLayout::new(1, vec![vec![src(0, 7)], vec![None]]);
        let err = TableLayout::new(two_col_schema(), 2, vec![part]).unwrap_err();
        assert_eq!(err, LayoutError::BadReference { col: 0 });
    }

    #[test]
    fn error_display_is_nonempty() {
        let e = LayoutError::SplitKeyColumn { col: 3 };
        assert!(e.to_string().contains("key column 3"));
    }

    #[test]
    fn part_accounting() {
        let p = PartLayout::empty(4, 2);
        assert_eq!(p.data_bytes(), 0);
        assert_eq!(p.padding_bytes(), 8);
        assert_eq!(p.total_bytes(), 8);
    }
}
