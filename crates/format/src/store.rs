//! Functional table storage: real bytes in per-device memories, addressed
//! through a layout + block-circulant placement + region plan.
//!
//! This is the value-carrying half of the unified format: the engines read
//! and write actual row bytes here, while accounting the corresponding
//! memory traffic against the timing simulator separately.

use pushtap_pim::DeviceArray;

use crate::circulant::Placement;
use crate::layout::TableLayout;
use crate::region::RegionPlan;

/// Identifies a stored row version: the original in the data region or a
/// version in a delta arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowSlot {
    /// Row `row` of the data region.
    Data {
        /// Row index.
        row: u64,
    },
    /// Delta slot `idx` of rotation arena `rotation`.
    Delta {
        /// Rotation arena (must equal the origin row's rotation).
        rotation: u32,
        /// Index within the arena.
        idx: u64,
    },
}

/// A table instance stored in the unified format.
#[derive(Debug, Clone)]
pub struct TableStore {
    layout: TableLayout,
    placement: Placement,
    region: RegionPlan,
    mem: DeviceArray,
}

impl TableStore {
    /// Creates storage for `n_rows` data rows plus `delta_rows` of delta
    /// capacity, with `block_rows`-row circulant blocks.
    pub fn new(layout: TableLayout, block_rows: u32, n_rows: u64, delta_rows: u64) -> TableStore {
        let devices = layout.devices();
        let region = RegionPlan::new(&layout, n_rows, delta_rows);
        TableStore {
            placement: Placement::new(devices, block_rows),
            region,
            mem: DeviceArray::new(devices),
            layout,
        }
    }

    /// The layout.
    pub fn layout(&self) -> &TableLayout {
        &self.layout
    }

    /// The circulant placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The region plan.
    pub fn region(&self) -> &RegionPlan {
        &self.region
    }

    /// The backing device memories.
    pub fn mem(&self) -> &DeviceArray {
        &self.mem
    }

    /// Rotation of a slot: data rows rotate with their block; delta slots
    /// carry their arena's rotation (§5.1).
    fn rotation(&self, slot: RowSlot) -> u32 {
        match slot {
            RowSlot::Data { row } => self.placement.rotation_of(row),
            RowSlot::Delta { rotation, .. } => rotation,
        }
    }

    fn base_offset(&self, part: u32, slot: RowSlot) -> u64 {
        match slot {
            RowSlot::Data { row } => self.region.data_offset(part, row),
            RowSlot::Delta { rotation, idx } => self.region.delta_offset(part, rotation, idx),
        }
    }

    /// The rotation arena a new version of data row `row` must use.
    pub fn arena_for_row(&self, row: u64) -> u32 {
        self.placement.rotation_of(row)
    }

    /// Writes all column values of a row version.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the schema (count or widths).
    pub fn write_row(&mut self, slot: RowSlot, values: &[Vec<u8>]) {
        let schema = self.layout.schema();
        assert_eq!(values.len(), schema.len(), "column count mismatch");
        for (col, v) in values.iter().enumerate() {
            assert_eq!(
                v.len() as u32,
                schema.column(col as u32).width,
                "width mismatch for column {col}"
            );
        }
        for col in 0..schema.len() as u32 {
            self.write_value(slot, col, &values[col as usize]);
        }
    }

    /// Reads all column values of a row version.
    pub fn read_row(&self, slot: RowSlot) -> Vec<Vec<u8>> {
        (0..self.layout.schema().len() as u32)
            .map(|col| self.read_value(slot, col))
            .collect()
    }

    /// Writes one column value of a row version.
    ///
    /// # Panics
    ///
    /// Panics if the value width does not match the column.
    pub fn write_value(&mut self, slot: RowSlot, col: u32, value: &[u8]) {
        let width = self.layout.schema().column(col).width;
        assert_eq!(value.len() as u32, width, "width mismatch for column {col}");
        let rotation = self.rotation(slot);
        let devices = self.layout.devices();
        // Borrow the fragments by value to avoid aliasing `self.mem`.
        let frags: Vec<_> = self.layout.fragments(col).to_vec();
        for f in frags {
            let device = (f.device + rotation) % devices;
            let off = self.base_offset(f.part, slot) + f.offset as u64;
            self.mem.device_mut(device).write(
                off as usize,
                &value[f.col_byte as usize..(f.col_byte + f.len) as usize],
            );
        }
    }

    /// Reads one column value of a row version.
    pub fn read_value(&self, slot: RowSlot, col: u32) -> Vec<u8> {
        let width = self.layout.schema().column(col).width as usize;
        let rotation = self.rotation(slot);
        let devices = self.layout.devices();
        let mut out = vec![0u8; width];
        for f in self.layout.fragments(col) {
            let device = (f.device + rotation) % devices;
            let off = self.base_offset(f.part, slot) + f.offset as u64;
            let bytes = self.mem.device(device).read(off as usize, f.len as usize);
            out[f.col_byte as usize..(f.col_byte + f.len) as usize].copy_from_slice(&bytes);
        }
        out
    }

    /// Copies a delta version back over its origin data row (the
    /// defragmentation data movement, §5.3). The copy is device-local on
    /// every device because the version shares its origin's rotation.
    ///
    /// # Panics
    ///
    /// Panics if the delta slot's rotation differs from the origin row's.
    pub fn copy_back(&mut self, origin_row: u64, rotation: u32, idx: u64) {
        assert_eq!(
            self.placement.rotation_of(origin_row),
            rotation,
            "delta rotation must match origin row rotation"
        );
        for (part, pr) in self.region.parts().to_vec().into_iter().enumerate() {
            let src = self.region.delta_offset(part as u32, rotation, idx);
            let dst = self.region.data_offset(part as u32, origin_row);
            for dev in 0..self.layout.devices() {
                self.mem
                    .device_mut(dev)
                    .copy_within(src as usize, dst as usize, pr.width as usize);
            }
        }
    }

    /// Raw bytes of key column `col` for data row `row` as stored on its
    /// device — what the owning PIM unit sees during a scan.
    ///
    /// # Panics
    ///
    /// Panics if `col` is not a single-fragment (key) column.
    pub fn key_bytes_on_device(&self, col: u32, row: u64) -> (u32, Vec<u8>) {
        let (part, slot) = self
            .layout
            .key_location(col)
            .expect("column is not device-local");
        let device = self.placement.device_of(slot, row);
        let f = self.layout.fragments(col)[0];
        let off = self.region.data_offset(part, row) + f.offset as u64;
        (
            device,
            self.mem.device(device).read(off as usize, f.len as usize),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binpack::compact_layout;
    use crate::schema::paper_example_schema;

    fn store() -> TableStore {
        let layout = compact_layout(&paper_example_schema(), 4, 0.75).unwrap();
        TableStore::new(layout, 8, 64, 16)
    }

    fn row_values(seed: u8) -> Vec<Vec<u8>> {
        // id(2), d_id(2), w_id(4), zip(9), state(2), credit(2)
        vec![
            vec![seed, 1],
            vec![seed, 2],
            vec![seed, 3, 3, 3],
            vec![seed, 4, 4, 4, 4, 4, 4, 4, 4],
            vec![seed, 5],
            vec![seed, 6],
        ]
    }

    #[test]
    fn row_round_trip_across_blocks() {
        let mut s = store();
        for row in [0u64, 7, 8, 15, 16, 63] {
            let vals = row_values(row as u8);
            s.write_row(RowSlot::Data { row }, &vals);
            assert_eq!(s.read_row(RowSlot::Data { row }), vals, "row {row}");
        }
    }

    #[test]
    fn single_value_update() {
        let mut s = store();
        s.write_row(RowSlot::Data { row: 3 }, &row_values(9));
        s.write_value(RowSlot::Data { row: 3 }, 2, &[7, 7, 7, 7]);
        let vals = s.read_row(RowSlot::Data { row: 3 });
        assert_eq!(vals[2], vec![7, 7, 7, 7]);
        assert_eq!(vals[0], vec![9, 1]); // untouched
    }

    #[test]
    fn delta_version_round_trip() {
        let mut s = store();
        let row = 10u64; // block 1 → rotation 1
        let rot = s.arena_for_row(row);
        assert_eq!(rot, 1);
        let slot = RowSlot::Delta {
            rotation: rot,
            idx: 2,
        };
        let vals = row_values(42);
        s.write_row(slot, &vals);
        assert_eq!(s.read_row(slot), vals);
    }

    #[test]
    fn copy_back_applies_new_version() {
        let mut s = store();
        let row = 10u64;
        let rot = s.arena_for_row(row);
        s.write_row(RowSlot::Data { row }, &row_values(1));
        let slot = RowSlot::Delta {
            rotation: rot,
            idx: 0,
        };
        s.write_row(slot, &row_values(2));
        s.copy_back(row, rot, 0);
        assert_eq!(s.read_row(RowSlot::Data { row }), row_values(2));
    }

    #[test]
    #[should_panic(expected = "rotation must match")]
    fn copy_back_rejects_wrong_rotation() {
        let mut s = store();
        s.copy_back(10, 0, 0); // row 10 has rotation 1
    }

    #[test]
    fn rotation_moves_key_column_across_devices() {
        let mut s = store();
        let id = s.layout().schema().index_of("id").unwrap();
        s.write_row(RowSlot::Data { row: 0 }, &row_values(1));
        s.write_row(RowSlot::Data { row: 8 }, &row_values(2)); // next block
        let (dev0, _) = s.key_bytes_on_device(id, 0);
        let (dev8, _) = s.key_bytes_on_device(id, 8);
        assert_ne!(dev0, dev8, "circulant placement must rotate devices");
    }

    #[test]
    fn key_bytes_match_written_value() {
        let mut s = store();
        let w_id = s.layout().schema().index_of("w_id").unwrap();
        s.write_row(RowSlot::Data { row: 5 }, &row_values(7));
        let (_, bytes) = s.key_bytes_on_device(w_id, 5);
        assert_eq!(bytes, vec![7, 3, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_rejected() {
        let mut s = store();
        s.write_value(RowSlot::Data { row: 0 }, 0, &[1, 2, 3]);
    }
}
