//! Property-based tests of the DRAM controller timing model: for
//! arbitrary request streams, completions respect the protocol's
//! fundamental invariants.

use proptest::prelude::*;
use pushtap_pim::{ChannelController, Op, Ps, TimingParams};

#[derive(Debug, Clone)]
struct Req {
    rank: u32,
    bank: u32,
    row: u32,
    write: bool,
    gap_ps: u64,
}

fn arb_stream() -> impl Strategy<Value = Vec<Req>> {
    prop::collection::vec(
        (0u32..4, 0u32..8, 0u32..64, any::<bool>(), 0u64..20_000).prop_map(
            |(rank, bank, row, write, gap_ps)| Req {
                rank,
                bank,
                row,
                write,
                gap_ps,
            },
        ),
        1..300,
    )
}

proptest! {
    /// Data never starts before the command issues; a burst always lasts
    /// exactly tBURST; the shared bus never overlaps two bursts.
    #[test]
    fn protocol_invariants(stream in arb_stream()) {
        let t = TimingParams::ddr5_3200();
        let mut ctrl = ChannelController::new(t, 4, 8);
        let mut at = Ps::ZERO;
        let mut last_data_end = Ps::ZERO;
        for r in &stream {
            at += Ps::new(r.gap_ps);
            let op = if r.write { Op::Write } else { Op::Read };
            let c = ctrl.access(r.rank, r.bank, r.row, op, at);
            prop_assert!(c.issue >= at, "issued before arrival");
            prop_assert!(c.data_start >= c.issue + t.t_cl, "CAS latency violated");
            prop_assert_eq!(c.done - c.data_start, t.t_burst);
            prop_assert!(c.data_start >= last_data_end, "bus overlap");
            last_data_end = c.done;
        }
    }

    /// Latency ordering: an isolated hit is never slower than an isolated
    /// miss, which is never slower than an isolated conflict.
    #[test]
    fn outcome_latency_ordering(rank in 0u32..4, bank in 0u32..8, row in 0u32..1000) {
        let t = TimingParams::ddr5_3200();
        // Far enough apart that no constraint couples the accesses.
        let gap = Ps::from_us(1.0);
        let mut ctrl = ChannelController::new(t, 4, 8);
        let miss = ctrl.access(rank, bank, row, Op::Read, gap);
        let hit = ctrl.access(rank, bank, row, Op::Read, gap * 2);
        let conflict = ctrl.access(rank, bank, row + 1, Op::Read, gap * 3);
        let lat = |c: pushtap_pim::Completion, at: Ps| c.done - at;
        prop_assert!(lat(hit, gap * 2) <= lat(miss, gap));
        prop_assert!(lat(miss, gap) <= lat(conflict, gap * 3));
    }

    /// Aggregate bounds: a stream of n bursts takes at least n×tBURST and
    /// at most n×(conflict + refresh slack) when issued open-loop.
    #[test]
    fn stream_time_bounds(stream in arb_stream()) {
        let t = TimingParams::ddr5_3200();
        let mut ctrl = ChannelController::new(t, 4, 8);
        let mut last = Ps::ZERO;
        for r in &stream {
            let op = if r.write { Op::Write } else { Op::Read };
            last = last.max(ctrl.access(r.rank, r.bank, r.row, op, Ps::ZERO).done);
        }
        let n = stream.len() as u64;
        prop_assert!(last >= t.t_burst * n);
        // Worst case per burst: write-recovery + conflict + turnarounds,
        // plus refresh interruptions (bounded by one tRFC per tREFI of
        // elapsed time).
        let per = t.conflict_latency() + t.t_wr + t.t_wtr + t.t_cs;
        let refresh_slack = Ps::new(
            (last.ps() / t.t_refi.ps() + 1) * t.t_rfc.ps(),
        );
        prop_assert!(
            last <= per * n + refresh_slack + t.miss_latency(),
            "stream of {} took {}",
            n,
            last
        );
    }

    /// Determinism: replaying the same stream gives identical timings.
    #[test]
    fn deterministic_replay(stream in arb_stream()) {
        let t = TimingParams::ddr5_3200();
        let run = || {
            let mut ctrl = ChannelController::new(t, 4, 8);
            let mut at = Ps::ZERO;
            let mut out = Vec::new();
            for r in &stream {
                at += Ps::new(r.gap_ps);
                let op = if r.write { Op::Write } else { Op::Read };
                out.push(ctrl.access(r.rank, r.bank, r.row, op, at).done);
            }
            out
        };
        prop_assert_eq!(run(), run());
    }

    /// Row-buffer accounting: hits + misses + conflicts equals requests,
    /// and a single-row stream has exactly one non-hit.
    #[test]
    fn outcome_accounting(rows in prop::collection::vec(0u32..4, 1..100)) {
        let t = TimingParams::ddr5_3200();
        let mut ctrl = ChannelController::new(t, 1, 1);
        for &row in &rows {
            ctrl.access(0, 0, row, Op::Read, Ps::ZERO);
        }
        let s = ctrl.stats();
        prop_assert_eq!(s.accesses(), rows.len() as u64);
        // Row transitions lower-bound the non-hit count (refresh may close
        // rows and add misses, never hits).
        let transitions = rows.windows(2).filter(|w| w[0] != w[1]).count() as u64 + 1;
        prop_assert!(s.misses + s.conflicts >= transitions.min(rows.len() as u64));
    }
}
