//! Simulation time, kept in integer picoseconds for determinism.
//!
//! All latencies in the simulator are [`Ps`] values. Using an integer unit
//! (rather than `f64` nanoseconds) makes event ordering exact and keeps the
//! simulator reproducible across platforms.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A duration or point in simulated time, in picoseconds.
///
/// # Examples
///
/// ```
/// use pushtap_pim::Ps;
///
/// let t = Ps::from_ns(2.5) + Ps::from_us(0.2);
/// assert_eq!(t, Ps::new(202_500));
/// assert!((t.as_us() - 0.2025).abs() < 1e-12);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Ps(u64);

impl Ps {
    /// Zero duration.
    pub const ZERO: Ps = Ps(0);

    /// Creates a duration from raw picoseconds.
    pub const fn new(ps: u64) -> Ps {
        Ps(ps)
    }

    /// Creates a duration from nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    pub fn from_ns(ns: f64) -> Ps {
        assert!(ns.is_finite() && ns >= 0.0, "invalid duration: {ns} ns");
        Ps((ns * 1e3).round() as u64)
    }

    /// Creates a duration from microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    pub fn from_us(us: f64) -> Ps {
        assert!(us.is_finite() && us >= 0.0, "invalid duration: {us} us");
        Ps((us * 1e6).round() as u64)
    }

    /// Creates a duration from milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn from_ms(ms: f64) -> Ps {
        assert!(ms.is_finite() && ms >= 0.0, "invalid duration: {ms} ms");
        Ps((ms * 1e9).round() as u64)
    }

    /// Raw picosecond count.
    pub const fn ps(self) -> u64 {
        self.0
    }

    /// This duration expressed in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This duration expressed in microseconds.
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This duration expressed in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This duration expressed in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction; clamps at zero instead of underflowing.
    pub fn saturating_sub(self, rhs: Ps) -> Ps {
        Ps(self.0.saturating_sub(rhs.0))
    }

    /// The larger of `self` and `other`.
    pub fn max(self, other: Ps) -> Ps {
        Ps(self.0.max(other.0))
    }

    /// The smaller of `self` and `other`.
    pub fn min(self, other: Ps) -> Ps {
        Ps(self.0.min(other.0))
    }

    /// Multiplies by a floating-point scale factor, rounding to the nearest
    /// picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale(self, factor: f64) -> Ps {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid scale factor: {factor}"
        );
        Ps((self.0 as f64 * factor).round() as u64)
    }
}

impl fmt::Display for Ps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_ms())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ns", self.as_ns())
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

impl Add for Ps {
    type Output = Ps;
    fn add(self, rhs: Ps) -> Ps {
        Ps(self.0 + rhs.0)
    }
}

impl AddAssign for Ps {
    fn add_assign(&mut self, rhs: Ps) {
        self.0 += rhs.0;
    }
}

impl Sub for Ps {
    type Output = Ps;
    fn sub(self, rhs: Ps) -> Ps {
        Ps(self.0 - rhs.0)
    }
}

impl SubAssign for Ps {
    fn sub_assign(&mut self, rhs: Ps) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Ps {
    type Output = Ps;
    fn mul(self, rhs: u64) -> Ps {
        Ps(self.0 * rhs)
    }
}

impl Mul<Ps> for u64 {
    type Output = Ps;
    fn mul(self, rhs: Ps) -> Ps {
        Ps(self * rhs.0)
    }
}

impl Div<u64> for Ps {
    type Output = Ps;
    fn div(self, rhs: u64) -> Ps {
        Ps(self.0 / rhs)
    }
}

impl Sum for Ps {
    fn sum<I: Iterator<Item = Ps>>(iter: I) -> Ps {
        Ps(iter.map(|p| p.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(Ps::from_ns(2.5).ps(), 2_500);
        assert_eq!(Ps::from_us(0.2).ps(), 200_000);
        assert_eq!(Ps::from_ms(1.0).ps(), 1_000_000_000);
        assert_eq!(Ps::new(7).ps(), 7);
    }

    #[test]
    fn unit_conversions() {
        let t = Ps::from_us(3.9);
        assert!((t.as_ns() - 3_900.0).abs() < 1e-9);
        assert!((t.as_us() - 3.9).abs() < 1e-12);
        assert!((t.as_ms() - 0.0039).abs() < 1e-15);
        assert!((t.as_secs() - 3.9e-6).abs() < 1e-18);
    }

    #[test]
    fn arithmetic() {
        let a = Ps::new(100);
        let b = Ps::new(40);
        assert_eq!(a + b, Ps::new(140));
        assert_eq!(a - b, Ps::new(60));
        assert_eq!(a * 3, Ps::new(300));
        assert_eq!(3 * a, Ps::new(300));
        assert_eq!(a / 4, Ps::new(25));
        assert_eq!(b.saturating_sub(a), Ps::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn scale_rounds() {
        assert_eq!(Ps::new(100).scale(1.5), Ps::new(150));
        assert_eq!(Ps::new(3).scale(0.5), Ps::new(2)); // banker's-free round
    }

    #[test]
    fn sum_of_iter() {
        let total: Ps = (1..=4).map(Ps::new).sum();
        assert_eq!(total, Ps::new(10));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Ps::new(500).to_string(), "500ps");
        assert_eq!(Ps::from_ns(2.5).to_string(), "2.500ns");
        assert_eq!(Ps::from_us(12.0).to_string(), "12.000us");
        assert_eq!(Ps::from_ms(3.0).to_string(), "3.000ms");
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        let _ = Ps::from_ns(-1.0);
    }
}
