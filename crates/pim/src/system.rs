//! Whole-memory-system facade: the timing front door for the engine crates.
//!
//! A [`MemSystem`] owns one controller per channel on both the PIM side and
//! the host (conventional DRAM) side, accumulates traffic/energy statistics,
//! and offers streaming helpers used by scans.

use crate::config::{MemKind, SystemConfig};
use crate::controller::{ChannelController, Completion, Op};
use crate::energy::EnergyStats;
use crate::geometry::BankAddr;
use crate::time::Ps;

/// Which memory a request targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The PIM-attached memory (holds the unified-format instance).
    Pim,
    /// The host's conventional DRAM (holds metadata; the MI baseline's
    /// row-store instance lives here).
    Host,
}

/// Traffic statistics, the basis of effective-bandwidth measurements.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SysStats {
    /// Bytes fetched over the CPU bus (whole cache lines).
    pub cpu_fetched: u64,
    /// Bytes of those that carried live data.
    pub cpu_useful: u64,
    /// Bytes DMAed by PIM units from their banks.
    pub pim_loaded: u64,
    /// Bytes of those that carried live data.
    pub pim_useful: u64,
    /// Energy accounting.
    pub energy: EnergyStats,
}

impl SysStats {
    /// CPU effective bandwidth: useful / fetched.
    pub fn cpu_effective(&self) -> f64 {
        if self.cpu_fetched == 0 {
            1.0
        } else {
            self.cpu_useful as f64 / self.cpu_fetched as f64
        }
    }

    /// PIM effective bandwidth: useful / loaded.
    pub fn pim_effective(&self) -> f64 {
        if self.pim_loaded == 0 {
            1.0
        } else {
            self.pim_useful as f64 / self.pim_loaded as f64
        }
    }
}

/// The memory system: timing controllers plus traffic accounting.
#[derive(Debug, Clone)]
pub struct MemSystem {
    cfg: SystemConfig,
    pim_ctrl: Vec<ChannelController>,
    host_ctrl: Vec<ChannelController>,
    stats: SysStats,
}

impl MemSystem {
    /// Builds the system described by `cfg`.
    pub fn new(cfg: SystemConfig) -> MemSystem {
        let pg = &cfg.pim_geometry;
        let hg = &cfg.cpu_geometry;
        MemSystem {
            pim_ctrl: (0..pg.channels)
                .map(|_| {
                    ChannelController::new(
                        cfg.pim_timing,
                        pg.ranks_per_channel,
                        pg.banks_per_device,
                    )
                })
                .collect(),
            host_ctrl: (0..hg.channels)
                .map(|_| {
                    ChannelController::new(
                        cfg.cpu_timing,
                        hg.ranks_per_channel,
                        hg.banks_per_device,
                    )
                })
                .collect(),
            cfg,
            stats: SysStats::default(),
        }
    }

    /// Convenience constructor for the paper's default DIMM system.
    pub fn dimm() -> MemSystem {
        MemSystem::new(SystemConfig::dimm())
    }

    /// Convenience constructor for the HBM comparison system.
    pub fn hbm() -> MemSystem {
        MemSystem::new(SystemConfig::hbm())
    }

    /// The system configuration.
    pub fn cfg(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Memory technology label of the PIM side.
    pub fn kind(&self) -> MemKind {
        self.cfg.kind
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SysStats {
        &self.stats
    }

    /// Clears accumulated statistics (controllers keep their timing state).
    pub fn reset_stats(&mut self) {
        self.stats = SysStats::default();
    }

    /// Cache-line bytes delivered per CPU access on `side`.
    pub fn line_bytes(&self, side: Side) -> u32 {
        match side {
            Side::Pim => self.cfg.pim_geometry.cpu_line_bytes(),
            Side::Host => self.cfg.cpu_geometry.cpu_line_bytes(),
        }
    }

    fn ctrl_mut(&mut self, side: Side, channel: u32) -> &mut ChannelController {
        let ctrls = match side {
            Side::Pim => &mut self.pim_ctrl,
            Side::Host => &mut self.host_ctrl,
        };
        &mut ctrls[channel as usize]
    }

    /// One CPU cache-line access. `useful` is how many of the line's bytes
    /// carry live data (for effective-bandwidth accounting).
    ///
    /// # Panics
    ///
    /// Panics if the bank address is outside the configured geometry or
    /// `useful` exceeds the line size.
    pub fn access(
        &mut self,
        side: Side,
        bank: BankAddr,
        row: u32,
        op: Op,
        useful: u32,
        at: Ps,
    ) -> Completion {
        let line = self.line_bytes(side) as u64;
        assert!(
            useful as u64 <= line,
            "useful bytes {useful} exceed line size {line}"
        );
        let c = self.ctrl_mut(side, bank.channel);
        let completion = c.access(bank.rank, bank.bank, row, op, at);
        self.stats.cpu_fetched += line;
        self.stats.cpu_useful += useful as u64;
        self.stats.energy.add_cpu_bytes(line);
        completion
    }

    /// Streams `bursts` sequential cache-line accesses starting at
    /// `(bank, row0)`, `bursts_per_row` to each row before moving to the
    /// next. Returns the completion time of the last burst.
    ///
    /// Bursts are issued *open-loop* (all arrive at `at`): independent scan
    /// accesses pipeline through the bank/bus constraints, matching a
    /// prefetching streamer rather than pointer chasing. Use
    /// [`MemSystem::access`] with dependent arrival times for the latter.
    #[allow(clippy::too_many_arguments)]
    pub fn stream(
        &mut self,
        side: Side,
        bank: BankAddr,
        row0: u32,
        bursts: u64,
        bursts_per_row: u32,
        op: Op,
        useful_per_burst: u32,
        at: Ps,
    ) -> Ps {
        assert!(bursts_per_row > 0, "bursts_per_row must be positive");
        let mut t = at;
        for i in 0..bursts {
            let row = row0 + (i / bursts_per_row as u64) as u32;
            t = self.access(side, bank, row, op, useful_per_burst, at).done;
        }
        t.max(at)
    }

    /// Like [`MemSystem::stream`], but simulates only a sample window and
    /// linearly extrapolates for very long streams. Statistics are scaled to
    /// the full stream. Use for sweeps whose burst counts reach the
    /// hundreds of millions; the result matches `stream` asymptotically
    /// because warm sequential streams reach a steady rate.
    #[allow(clippy::too_many_arguments)]
    pub fn stream_sampled(
        &mut self,
        side: Side,
        bank: BankAddr,
        row0: u32,
        bursts: u64,
        bursts_per_row: u32,
        op: Op,
        useful_per_burst: u32,
        at: Ps,
    ) -> Ps {
        const SAMPLE: u64 = 1 << 16;
        if bursts <= 2 * SAMPLE {
            return self.stream(
                side,
                bank,
                row0,
                bursts,
                bursts_per_row,
                op,
                useful_per_burst,
                at,
            );
        }
        // Warm up (excluded from the measured rate), then measure.
        let warm = self.stream(
            side,
            bank,
            row0,
            SAMPLE,
            bursts_per_row,
            op,
            useful_per_burst,
            at,
        );
        let row1 = row0 + (SAMPLE / bursts_per_row as u64) as u32;
        let measured = self.stream(
            side,
            bank,
            row1,
            SAMPLE,
            bursts_per_row,
            op,
            useful_per_burst,
            warm,
        );
        let rate = (measured - warm) / SAMPLE; // per burst
        let remaining = bursts - 2 * SAMPLE;
        let line = self.line_bytes(side) as u64;
        self.stats.cpu_fetched += line * remaining;
        self.stats.cpu_useful += useful_per_burst as u64 * remaining;
        self.stats.energy.add_cpu_bytes(line * remaining);
        measured + rate * remaining
    }

    /// Records a PIM-side DMA of `loaded` bytes (of which `useful` carry
    /// live data) without timing it — the caller owns the phase timing via
    /// [`crate::PimUnit`].
    ///
    /// # Panics
    ///
    /// Panics if `useful > loaded`.
    pub fn charge_pim_dma(&mut self, loaded: u64, useful: u64) {
        assert!(useful <= loaded, "useful {useful} > loaded {loaded}");
        self.stats.pim_loaded += loaded;
        self.stats.pim_useful += useful;
        self.stats.energy.add_pim_bytes(loaded);
    }

    /// Locks one PIM-side bank against CPU access until `until`.
    pub fn lock_bank(&mut self, bank: BankAddr, until: Ps) {
        self.ctrl_mut(Side::Pim, bank.channel)
            .lock_bank(bank.rank, bank.bank, until);
    }

    /// Locks every bank of every PIM-side rank until `until` (whole-memory
    /// handover, as in the original architecture's offload).
    pub fn lock_all_pim(&mut self, until: Ps) {
        let g = self.cfg.pim_geometry;
        for ch in 0..g.channels {
            for rk in 0..g.ranks_per_channel {
                self.pim_ctrl[ch as usize].lock_rank(rk, until);
            }
        }
    }

    /// Read-only controller statistics for a PIM-side channel.
    pub fn pim_channel_stats(&self, channel: u32) -> &crate::controller::CtrlStats {
        self.pim_ctrl[channel as usize].stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_bandwidth_tracks_useful_bytes() {
        let mut m = MemSystem::dimm();
        let bank = BankAddr::new(0, 0, 0);
        m.access(Side::Pim, bank, 0, Op::Read, 17, Ps::ZERO);
        // 17 useful of a 64-byte line.
        assert!((m.stats().cpu_effective() - 17.0 / 64.0).abs() < 1e-12);
        m.charge_pim_dma(8, 2);
        assert!((m.stats().pim_effective() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sides_are_independent() {
        let mut m = MemSystem::dimm();
        let bank = BankAddr::new(0, 0, 0);
        let a = m.access(Side::Pim, bank, 0, Op::Read, 64, Ps::ZERO);
        // The same bank address on the host side is a distinct bank: it
        // also sees a cold miss.
        let b = m.access(Side::Host, bank, 0, Op::Read, 64, Ps::ZERO);
        assert_eq!(a.outcome, b.outcome);
    }

    #[test]
    fn stream_matches_manual_loop() {
        let mut a = MemSystem::dimm();
        let mut b = MemSystem::dimm();
        let bank = BankAddr::new(1, 2, 3);
        let end = a.stream(Side::Pim, bank, 0, 512, 128, Op::Read, 64, Ps::ZERO);
        let mut t = Ps::ZERO;
        for i in 0..512u64 {
            t = b
                .access(Side::Pim, bank, (i / 128) as u32, Op::Read, 64, Ps::ZERO)
                .done;
        }
        assert_eq!(end, t);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn sampled_stream_approximates_exact() {
        let mut exact = MemSystem::dimm();
        let mut sampled = MemSystem::dimm();
        let bank = BankAddr::new(0, 0, 0);
        let bursts = 300_000u64;
        let t_exact = exact.stream(Side::Pim, bank, 0, bursts, 128, Op::Read, 64, Ps::ZERO);
        let t_sampled =
            sampled.stream_sampled(Side::Pim, bank, 0, bursts, 128, Op::Read, 64, Ps::ZERO);
        let err = (t_exact.as_us() - t_sampled.as_us()).abs() / t_exact.as_us();
        assert!(err < 0.02, "extrapolation error {err}");
        assert_eq!(exact.stats().cpu_fetched, sampled.stats().cpu_fetched);
    }

    #[test]
    fn lock_all_pim_blocks_every_bank() {
        let mut m = MemSystem::dimm();
        m.lock_all_pim(Ps::from_us(3.0));
        let r = m.access(Side::Pim, BankAddr::new(3, 3, 7), 0, Op::Read, 64, Ps::ZERO);
        assert!(r.issue >= Ps::from_us(3.0));
        // Host side is never locked by PIM handover.
        let h = m.access(
            Side::Host,
            BankAddr::new(0, 0, 0),
            0,
            Op::Read,
            64,
            Ps::ZERO,
        );
        assert!(h.issue < Ps::from_us(1.0));
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut m = MemSystem::dimm();
        m.access(Side::Pim, BankAddr::new(0, 0, 0), 0, Op::Read, 64, Ps::ZERO);
        m.reset_stats();
        assert_eq!(m.stats().cpu_fetched, 0);
    }

    #[test]
    #[should_panic(expected = "exceed line size")]
    fn oversized_useful_panics() {
        let mut m = MemSystem::dimm();
        m.access(Side::Pim, BankAddr::new(0, 0, 0), 0, Op::Read, 65, Ps::ZERO);
    }
}
