//! First-order energy accounting.
//!
//! The commercial PIM architecture claims roughly 10× lower access energy
//! for PIM-local accesses than CPU accesses over the memory bus (\[11\],
//! §1). We carry that ratio as per-byte constants so experiments can report
//! an energy column alongside time.

use serde::{Deserialize, Serialize};

/// Energy per byte moved over the CPU memory bus (I/O + DRAM core), pJ.
pub const CPU_PJ_PER_BYTE: f64 = 120.0;
/// Energy per byte moved over the PIM-internal wire (10× reduction, \[11\]).
pub const PIM_PJ_PER_BYTE: f64 = 12.0;

/// Accumulated energy, split by access path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyStats {
    /// Energy spent on CPU bus transfers, picojoules.
    pub cpu_pj: f64,
    /// Energy spent on PIM-internal transfers, picojoules.
    pub pim_pj: f64,
}

impl EnergyStats {
    /// Records `bytes` moved over the CPU bus.
    pub fn add_cpu_bytes(&mut self, bytes: u64) {
        self.cpu_pj += bytes as f64 * CPU_PJ_PER_BYTE;
    }

    /// Records `bytes` moved PIM-internally.
    pub fn add_pim_bytes(&mut self, bytes: u64) {
        self.pim_pj += bytes as f64 * PIM_PJ_PER_BYTE;
    }

    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        (self.cpu_pj + self.pim_pj) / 1e9
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &EnergyStats) {
        self.cpu_pj += other.cpu_pj;
        self.pim_pj += other.pim_pj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_is_10x() {
        assert!((CPU_PJ_PER_BYTE / PIM_PJ_PER_BYTE - 10.0).abs() < 1e-12);
    }

    #[test]
    fn accumulation() {
        let mut e = EnergyStats::default();
        e.add_cpu_bytes(1000);
        e.add_pim_bytes(1000);
        assert!((e.cpu_pj - 120_000.0).abs() < 1e-9);
        assert!((e.pim_pj - 12_000.0).abs() < 1e-9);
        assert!((e.total_mj() - 132e3 / 1e9).abs() < 1e-15);
    }

    #[test]
    fn merge_adds() {
        let mut a = EnergyStats::default();
        a.add_cpu_bytes(10);
        let mut b = EnergyStats::default();
        b.add_pim_bytes(10);
        a.merge(&b);
        assert!(a.cpu_pj > 0.0 && a.pim_pj > 0.0);
    }
}
