//! Whole-system configuration (Table 1).

use serde::{Deserialize, Serialize};

use crate::geometry::Geometry;
use crate::time::Ps;
use crate::timing::TimingParams;

/// Which memory technology backs the PIM side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemKind {
    /// DDR5 DIMM-based PIM (the paper's default system).
    Dimm,
    /// HBM3-based PIM (the paper's comparison system, §7.3).
    Hbm,
}

impl MemKind {
    /// Short human-readable label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            MemKind::Dimm => "DIMM",
            MemKind::Hbm => "HBM",
        }
    }
}

/// UPMEM-like PIM unit parameters (Table 1, "PIM Units").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PimUnitSpec {
    /// Core frequency in Hz (500 MHz).
    pub freq_hz: u64,
    /// Hardware threads; ≥11 tasklets saturate the pipeline on UPMEM.
    pub tasklets: u32,
    /// Working RAM (operand scratchpad) in bytes; the paper uses half of it
    /// as the load-phase data buffer (§6.2).
    pub wram_bytes: u32,
    /// Instruction RAM in bytes.
    pub iram_bytes: u32,
    /// DRAM↔WRAM DMA bandwidth in bytes/second (1 GB/s per unit, \[11\]).
    pub dma_bytes_per_sec: u64,
    /// Width of the PIM-to-DRAM data wire in bytes (64-bit in \[11\]); also
    /// the minimum access granularity of a PIM unit.
    pub wire_bytes: u32,
}

impl PimUnitSpec {
    /// The commercial general-purpose PIM unit of Table 1.
    pub fn upmem_like() -> PimUnitSpec {
        PimUnitSpec {
            freq_hz: 500_000_000,
            tasklets: 16,
            wram_bytes: 64 * 1024,
            iram_bytes: 24 * 1024,
            dma_bytes_per_sec: 1_000_000_000,
            wire_bytes: 8,
        }
    }

    /// Returns a copy with a different WRAM size (Fig. 12(b) sweep).
    pub fn with_wram(mut self, wram_bytes: u32) -> PimUnitSpec {
        self.wram_bytes = wram_bytes;
        self
    }

    /// The usable load-phase data buffer: half of WRAM (§6.2).
    pub fn data_buffer_bytes(&self) -> u32 {
        self.wram_bytes / 2
    }

    /// Time for this unit to DMA `bytes` between its DRAM bank and WRAM.
    pub fn dma_time(&self, bytes: u64) -> Ps {
        // 1 GB/s ⇒ 1000 ps per byte; computed generically from the spec.
        Ps::new(bytes * 1_000_000_000_000 / self.dma_bytes_per_sec)
    }

    /// Duration of `cycles` PIM cycles.
    pub fn cycles(&self, cycles: u64) -> Ps {
        Ps::new(cycles * 1_000_000_000_000 / self.freq_hz)
    }
}

/// Host CPU parameters (Table 1, "Host CPU").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Out-of-order cores.
    pub cores: u32,
    /// Core frequency in Hz.
    pub freq_hz: u64,
    /// Cache line size in bytes.
    pub cache_line: u32,
}

impl CpuSpec {
    /// 16 O3 cores at 3.2 GHz, 64 B lines.
    pub fn xeon_like() -> CpuSpec {
        CpuSpec {
            cores: 16,
            freq_hz: 3_200_000_000,
            cache_line: 64,
        }
    }

    /// Duration of `cycles` CPU cycles.
    pub fn cycles(&self, cycles: u64) -> Ps {
        Ps::new(cycles * 1_000_000_000_000 / self.freq_hz)
    }
}

/// Complete system configuration: host CPU, PIM memory, and the CPU-side
/// conventional memory (Table 1 "System Configuration": 4 channels × 4 ranks
/// normal DRAM + 4 channels × 4 ranks with PIM units).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Memory technology of the PIM side.
    pub kind: MemKind,
    /// Geometry of the PIM-attached memory.
    pub pim_geometry: Geometry,
    /// Timing of the PIM-attached memory.
    pub pim_timing: TimingParams,
    /// Geometry of the CPU-side conventional memory.
    pub cpu_geometry: Geometry,
    /// Timing of the CPU-side conventional memory.
    pub cpu_timing: TimingParams,
    /// PIM unit parameters.
    pub pim_unit: PimUnitSpec,
    /// Host CPU parameters.
    pub cpu: CpuSpec,
    /// Latency of handing over bank access control between CPU and PIM,
    /// per rank (0.2 µs, measured on a real UPMEM server — §7.1).
    pub mode_switch: Ps,
}

impl SystemConfig {
    /// The paper's default DIMM-based system.
    pub fn dimm() -> SystemConfig {
        SystemConfig {
            kind: MemKind::Dimm,
            pim_geometry: Geometry::dimm(),
            pim_timing: TimingParams::ddr5_3200(),
            cpu_geometry: Geometry::dimm(),
            cpu_timing: TimingParams::ddr5_3200(),
            pim_unit: PimUnitSpec::upmem_like(),
            cpu: CpuSpec::xeon_like(),
            mode_switch: Ps::from_us(0.2),
        }
    }

    /// The paper's HBM-based comparison system: PIM DRAM replaced with HBM;
    /// "The PIM units and CPU-side configuration are kept the same" (§7.1).
    pub fn hbm() -> SystemConfig {
        SystemConfig {
            kind: MemKind::Hbm,
            pim_geometry: Geometry::hbm(),
            pim_timing: TimingParams::hbm3_2gbps(),
            ..SystemConfig::dimm()
        }
    }

    /// Returns a copy with a different PIM WRAM size (Fig. 12(b)).
    pub fn with_wram(mut self, wram_bytes: u32) -> SystemConfig {
        self.pim_unit = self.pim_unit.with_wram(wram_bytes);
        self
    }

    /// Peak CPU-visible bus bandwidth of the PIM memory, bytes/second.
    pub fn cpu_peak_bw(&self) -> f64 {
        let line = self.pim_geometry.cpu_line_bytes() as f64;
        let per_line = self.pim_timing.t_burst.as_secs();
        self.pim_geometry.channels as f64 * line / per_line
    }

    /// Aggregate internal PIM bandwidth, bytes/second (units × DMA rate).
    pub fn pim_peak_bw(&self) -> f64 {
        self.pim_geometry.pim_units() as f64 * self.pim_unit.dma_bytes_per_sec as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_pim_unit() {
        let p = PimUnitSpec::upmem_like();
        assert_eq!(p.freq_hz, 500_000_000);
        assert_eq!(p.tasklets, 16);
        assert_eq!(p.wram_bytes, 64 * 1024);
        assert_eq!(p.dma_bytes_per_sec, 1_000_000_000);
        assert_eq!(p.data_buffer_bytes(), 32 * 1024);
    }

    #[test]
    fn dma_time_is_1000ps_per_byte() {
        let p = PimUnitSpec::upmem_like();
        assert_eq!(p.dma_time(1), Ps::new(1000));
        // 32 kB load-phase buffer loads in ~32.8 µs.
        let t = p.dma_time(p.data_buffer_bytes() as u64);
        assert!((t.as_us() - 32.768).abs() < 1e-9);
    }

    #[test]
    fn pim_cycles_at_500mhz() {
        let p = PimUnitSpec::upmem_like();
        assert_eq!(p.cycles(1), Ps::new(2000)); // 2 ns per cycle
    }

    #[test]
    fn cpu_cycles_at_3_2ghz() {
        let c = CpuSpec::xeon_like();
        assert_eq!(c.cycles(16), Ps::new(5000)); // 16 cycles = 5 ns
    }

    #[test]
    fn mode_switch_is_200ns() {
        assert_eq!(SystemConfig::dimm().mode_switch, Ps::from_us(0.2));
    }

    /// The PIM-internal : CPU-bus bandwidth ratio motivates PIM offload;
    /// the paper cites >3.3× for the commercial architecture. With Table 1
    /// numbers the aggregate ratio is far larger; assert the sign and
    /// magnitude ordering rather than an exact value.
    #[test]
    fn pim_bandwidth_exceeds_cpu_bus() {
        let cfg = SystemConfig::dimm();
        assert!(cfg.pim_peak_bw() > 3.3 * cfg.cpu_peak_bw());
    }

    #[test]
    fn hbm_config_swaps_memory_only() {
        let d = SystemConfig::dimm();
        let h = SystemConfig::hbm();
        assert_eq!(h.pim_unit, d.pim_unit);
        assert_eq!(h.cpu, d.cpu);
        assert_eq!(h.cpu_geometry, d.cpu_geometry);
        assert_ne!(h.pim_geometry, d.pim_geometry);
        assert_eq!(h.kind.label(), "HBM");
    }
}
