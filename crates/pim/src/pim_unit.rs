//! PIM unit (UPMEM DPU-like) execution cost model.
//!
//! A PIM unit sits next to one DRAM bank of one device. It moves data
//! between the bank and its WRAM scratchpad over a 64-bit internal wire
//! (DMA, 1 GB/s) and executes a simple in-order pipeline at 500 MHz that
//! dispatches one instruction per cycle when at least ~11 of its 16
//! tasklets are runnable (the UPMEM pipeline model from [11]).

use serde::{Deserialize, Serialize};

use crate::config::PimUnitSpec;
use crate::time::Ps;

/// Instructions the pipeline must saturate before reaching one
/// instruction/cycle throughput (UPMEM's 14-stage pipeline needs ≥11
/// runnable tasklets).
pub const PIPELINE_SATURATION_TASKLETS: u32 = 11;

/// The single-column operations a PIM unit executes (Fig. 7(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PimOpKind {
    /// Load/store phase: DMA between DRAM bank and WRAM (no compute).
    Ls,
    /// Predicate evaluation over a column slice, emitting a bitmap.
    Filter,
    /// Group-index computation (dictionary lookup) for `GROUP BY`.
    Group,
    /// Indexed accumulation (`SUM(col) GROUP BY ...`).
    Aggregate,
    /// Hash-value computation for join keys.
    Hash,
    /// Bucket-local hash-join probe.
    Join,
    /// Version copy-back during defragmentation (DMA-dominated).
    Defragment,
    /// Raw WRAM-to-WRAM copy.
    Copy,
}

impl PimOpKind {
    /// Pipeline instructions needed per 8-byte element in WRAM.
    ///
    /// These constants are the per-element inner-loop lengths of the
    /// corresponding UPMEM kernels (load, compare/branch, bookkeeping);
    /// they set the compute:DMA balance that the two-phase execution model
    /// of §6.2 exploits.
    pub fn instructions_per_elem(self) -> u64 {
        match self {
            PimOpKind::Ls => 0,
            PimOpKind::Filter => 6,
            PimOpKind::Group => 8,
            PimOpKind::Aggregate => 6,
            PimOpKind::Hash => 12,
            PimOpKind::Join => 16,
            PimOpKind::Defragment => 0,
            PimOpKind::Copy => 2,
        }
    }

    /// Whether executing this operation requires the DRAM bank (and thus a
    /// CPU↔PIM bank-control handover). Compute ops run from WRAM only
    /// (§6.1: "the scheduler only hands over the DRAM bank control to PIM
    /// units when the operation type is LS and Defragment").
    pub fn needs_bank(self) -> bool {
        matches!(self, PimOpKind::Ls | PimOpKind::Defragment)
    }
}

/// Cost model for one PIM unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PimUnit {
    spec: PimUnitSpec,
}

impl PimUnit {
    /// Creates the cost model from a hardware spec.
    pub fn new(spec: PimUnitSpec) -> PimUnit {
        PimUnit { spec }
    }

    /// The underlying hardware spec.
    pub fn spec(&self) -> &PimUnitSpec {
        &self.spec
    }

    /// Effective instruction issue rate in instructions/second, accounting
    /// for pipeline bubbles when fewer than
    /// [`PIPELINE_SATURATION_TASKLETS`] tasklets are available.
    pub fn issue_rate(&self) -> f64 {
        let sat = (self.spec.tasklets as f64 / PIPELINE_SATURATION_TASKLETS as f64).min(1.0);
        self.spec.freq_hz as f64 * sat
    }

    /// Time to execute `op` over `elems` 8-byte elements resident in WRAM.
    pub fn compute_time(&self, op: PimOpKind, elems: u64) -> Ps {
        let instrs = op.instructions_per_elem() * elems;
        if instrs == 0 {
            return Ps::ZERO;
        }
        Ps::new((instrs as f64 / self.issue_rate() * 1e12).round() as u64)
    }

    /// Time to DMA `bytes` between the local DRAM bank and WRAM.
    pub fn dma_time(&self, bytes: u64) -> Ps {
        self.spec.dma_time(bytes)
    }

    /// Number of 8-byte elements that fit in the load-phase data buffer
    /// (half of WRAM, §6.2).
    pub fn buffer_elems(&self) -> u64 {
        (self.spec.data_buffer_bytes() / self.spec.wire_bytes) as u64
    }

    /// Rounds a byte count up to the unit's minimum access granularity
    /// (the 8 B wire width): bytes the DMA actually moves.
    pub fn round_to_wire(&self, bytes: u64) -> u64 {
        let w = self.spec.wire_bytes as u64;
        bytes.div_ceil(w) * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> PimUnit {
        PimUnit::new(PimUnitSpec::upmem_like())
    }

    #[test]
    fn saturated_pipeline_issues_at_clock() {
        let u = unit();
        assert!((u.issue_rate() - 500e6).abs() < 1.0);
    }

    #[test]
    fn starved_pipeline_scales_down() {
        let mut spec = PimUnitSpec::upmem_like();
        spec.tasklets = 4;
        let u = PimUnit::new(spec);
        assert!((u.issue_rate() - 500e6 * 4.0 / 11.0).abs() < 1.0);
    }

    #[test]
    fn compute_time_scales_with_op_weight() {
        let u = unit();
        let filter = u.compute_time(PimOpKind::Filter, 1000);
        let join = u.compute_time(PimOpKind::Join, 1000);
        assert!(join > filter);
        // Filter: 6 instr × 1000 / 500 MHz = 12 µs.
        assert!((filter.as_us() - 12.0).abs() < 1e-6);
    }

    #[test]
    fn ls_and_defrag_are_pure_dma() {
        let u = unit();
        assert_eq!(u.compute_time(PimOpKind::Ls, 1 << 20), Ps::ZERO);
        assert_eq!(u.compute_time(PimOpKind::Defragment, 1 << 20), Ps::ZERO);
        assert!(PimOpKind::Ls.needs_bank());
        assert!(PimOpKind::Defragment.needs_bank());
        assert!(!PimOpKind::Filter.needs_bank());
        assert!(!PimOpKind::Join.needs_bank());
    }

    #[test]
    fn buffer_holds_half_wram() {
        let u = unit();
        assert_eq!(u.buffer_elems(), 4096); // 32 kB / 8 B
    }

    #[test]
    fn wire_rounding() {
        let u = unit();
        assert_eq!(u.round_to_wire(0), 0);
        assert_eq!(u.round_to_wire(1), 8);
        assert_eq!(u.round_to_wire(8), 8);
        assert_eq!(u.round_to_wire(9), 16);
    }

    #[test]
    fn loading_buffer_takes_about_32us() {
        let u = unit();
        let t = u.dma_time(u.spec().data_buffer_bytes() as u64);
        assert!(t > Ps::from_us(30.0) && t < Ps::from_us(35.0));
    }
}
