//! DRAM timing parameters (Table 1 of the paper).

use serde::{Deserialize, Serialize};

use crate::time::Ps;

/// The set of DRAM timing constraints used by the bank/controller model.
///
/// Field names follow the JEDEC-style parameters listed in Table 1 of the
/// paper. All values are durations ([`Ps`]).
///
/// # Examples
///
/// ```
/// use pushtap_pim::TimingParams;
///
/// let t = TimingParams::ddr5_3200();
/// assert_eq!(t.t_burst, pushtap_pim::Ps::from_ns(2.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Data burst duration on the bus for one access.
    pub t_burst: Ps,
    /// Activate-to-read/write delay.
    pub t_rcd: Ps,
    /// Column access (CAS) latency.
    pub t_cl: Ps,
    /// Precharge latency.
    pub t_rp: Ps,
    /// Minimum activate-to-precharge interval.
    pub t_ras: Ps,
    /// Activate-to-activate delay between banks of the same rank.
    pub t_rrd: Ps,
    /// Refresh cycle duration (all banks busy).
    pub t_rfc: Ps,
    /// Write recovery time (write data end to precharge).
    pub t_wr: Ps,
    /// Write-to-read turnaround.
    pub t_wtr: Ps,
    /// Read-to-precharge delay.
    pub t_rtp: Ps,
    /// Read-to-write turnaround.
    pub t_rtw: Ps,
    /// Rank-to-rank switch penalty.
    pub t_cs: Ps,
    /// Average refresh interval (one refresh command per `t_refi`).
    pub t_refi: Ps,
}

impl TimingParams {
    /// DDR5-3200 DIMM timing from Table 1 of the paper.
    pub fn ddr5_3200() -> TimingParams {
        TimingParams {
            t_burst: Ps::from_ns(2.5),
            t_rcd: Ps::from_ns(7.5),
            t_cl: Ps::from_ns(7.5),
            t_rp: Ps::from_ns(7.5),
            t_ras: Ps::from_ns(16.3),
            t_rrd: Ps::from_ns(2.5),
            t_rfc: Ps::from_ns(121.9),
            t_wr: Ps::from_ns(15.0),
            t_wtr: Ps::from_ns(11.2),
            t_rtp: Ps::from_ns(3.75),
            t_rtw: Ps::from_ns(4.4),
            t_cs: Ps::from_ns(4.4),
            t_refi: Ps::from_us(3.9),
        }
    }

    /// HBM3-2Gbps timing from Table 1 of the paper.
    pub fn hbm3_2gbps() -> TimingParams {
        TimingParams {
            t_burst: Ps::from_ns(2.0),
            t_rcd: Ps::from_ns(3.5),
            t_cl: Ps::from_ns(3.5),
            t_rp: Ps::from_ns(3.5),
            t_ras: Ps::from_ns(8.5),
            t_rrd: Ps::from_ns(2.0),
            t_rfc: Ps::from_ns(175.0),
            t_wr: Ps::from_ns(4.0),
            t_wtr: Ps::from_ns(1.5),
            t_rtp: Ps::from_ns(1.0),
            t_rtw: Ps::from_ns(1.5),
            t_cs: Ps::from_ns(1.5),
            t_refi: Ps::from_us(2.0),
        }
    }

    /// Row cycle time: minimum interval between activates to the same bank.
    pub fn t_rc(&self) -> Ps {
        self.t_ras + self.t_rp
    }

    /// Latency of an isolated row-buffer hit read (CAS + burst).
    pub fn hit_latency(&self) -> Ps {
        self.t_cl + self.t_burst
    }

    /// Latency of an isolated read to a closed bank (ACT + CAS + burst).
    pub fn miss_latency(&self) -> Ps {
        self.t_rcd + self.t_cl + self.t_burst
    }

    /// Latency of an isolated row-buffer conflict read (PRE + ACT + CAS + burst).
    pub fn conflict_latency(&self) -> Ps {
        self.t_rp + self.t_rcd + self.t_cl + self.t_burst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1 constants, asserted verbatim (experiment index entry "Table 1").
    #[test]
    fn table1_dimm_constants() {
        let t = TimingParams::ddr5_3200();
        assert_eq!(t.t_burst, Ps::from_ns(2.5));
        assert_eq!(t.t_rcd, Ps::from_ns(7.5));
        assert_eq!(t.t_cl, Ps::from_ns(7.5));
        assert_eq!(t.t_rp, Ps::from_ns(7.5));
        assert_eq!(t.t_ras, Ps::from_ns(16.3));
        assert_eq!(t.t_rrd, Ps::from_ns(2.5));
        assert_eq!(t.t_rfc, Ps::from_ns(121.9));
        assert_eq!(t.t_wr, Ps::from_ns(15.0));
        assert_eq!(t.t_wtr, Ps::from_ns(11.2));
        assert_eq!(t.t_rtp, Ps::from_ns(3.75));
        assert_eq!(t.t_rtw, Ps::from_ns(4.4));
        assert_eq!(t.t_cs, Ps::from_ns(4.4));
        assert_eq!(t.t_refi, Ps::from_us(3.9));
    }

    /// Table 1 constants for the HBM-based configuration.
    #[test]
    fn table1_hbm_constants() {
        let t = TimingParams::hbm3_2gbps();
        assert_eq!(t.t_burst, Ps::from_ns(2.0));
        assert_eq!(t.t_rcd, Ps::from_ns(3.5));
        assert_eq!(t.t_rfc, Ps::from_ns(175.0));
        assert_eq!(t.t_refi, Ps::from_us(2.0));
    }

    #[test]
    fn derived_latencies() {
        let t = TimingParams::ddr5_3200();
        assert_eq!(t.t_rc(), Ps::from_ns(16.3) + Ps::from_ns(7.5));
        assert_eq!(t.hit_latency(), Ps::from_ns(10.0));
        assert_eq!(t.miss_latency(), Ps::from_ns(17.5));
        assert_eq!(t.conflict_latency(), Ps::from_ns(25.0));
        assert!(t.hit_latency() < t.miss_latency());
        assert!(t.miss_latency() < t.conflict_latency());
    }

    #[test]
    fn hbm_is_faster_per_access() {
        let dimm = TimingParams::ddr5_3200();
        let hbm = TimingParams::hbm3_2gbps();
        assert!(hbm.conflict_latency() < dimm.conflict_latency());
        assert!(hbm.t_burst < dimm.t_burst);
    }
}
