//! Physical memory organisation (channels / ranks / devices / banks).
//!
//! The two presets mirror Table 1 of the paper. The key quantity for the
//! unified data format is the *interleave granularity*: the number of bytes
//! one device contributes to each bus burst (8 B on DIMMs, 64 B on HBM —
//! paper §8 "PIM Technique Selection").

use serde::{Deserialize, Serialize};

/// Identifies one physical bank set as seen by the CPU.
///
/// On a DIMM, the devices (chips) of a rank operate in lockstep: one
/// activate opens the same row in every device of the rank, so CPU-visible
/// bank state is per `(channel, rank, bank)`. PIM units, in contrast, live
/// per `(channel, rank, device, bank)` — see [`Geometry::pim_units`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BankAddr {
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
    /// Bank index within the rank (lockstep across devices).
    pub bank: u32,
}

impl BankAddr {
    /// Creates a bank address.
    pub fn new(channel: u32, rank: u32, bank: u32) -> BankAddr {
        BankAddr {
            channel,
            rank,
            bank,
        }
    }
}

/// Memory module organisation.
///
/// # Examples
///
/// ```
/// use pushtap_pim::Geometry;
///
/// let g = Geometry::dimm();
/// assert_eq!(g.granularity, 8);
/// assert_eq!(g.cpu_line_bytes(), 64);
/// assert_eq!(g.pim_units(), 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Geometry {
    /// Number of memory channels.
    pub channels: u32,
    /// Ranks per channel.
    pub ranks_per_channel: u32,
    /// Devices (chips) per rank that operate in lockstep for CPU accesses.
    /// This is the width of the ADE (across-device) dimension.
    pub devices_per_rank: u32,
    /// Banks per device (equals banks per rank as seen by the CPU).
    pub banks_per_device: u32,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Row-buffer size per device, in bytes.
    pub row_bytes: u32,
    /// Interleave granularity: bytes one device contributes per burst.
    pub granularity: u32,
}

impl Geometry {
    /// The DIMM-based PIM configuration of Table 1:
    /// 4 channels × 4 ranks, 8 × 8 devices/banks, 131072 rows × 1024 B rows,
    /// 8 B interleave granularity, 8 GB per rank.
    pub fn dimm() -> Geometry {
        Geometry {
            channels: 4,
            ranks_per_channel: 4,
            devices_per_rank: 8,
            banks_per_device: 8,
            rows_per_bank: 131_072,
            row_bytes: 1024,
            granularity: 8,
        }
    }

    /// The HBM-based configuration of Table 1: 32 channels with PIM units,
    /// 2 pseudo-channels × 4 bank groups × 4 banks (modelled as 32 lockstep
    /// banks per channel, a single device per "rank"), 64 B granularity.
    ///
    /// The total bank count (1024) matches the DIMM system, as required for
    /// the paper's HBM comparison (§7.1: "The bank number of the HBM-based
    /// system is the same as the DIMM-based system").
    pub fn hbm() -> Geometry {
        Geometry {
            channels: 32,
            ranks_per_channel: 1,
            devices_per_rank: 1,
            banks_per_device: 32,
            rows_per_bank: 32_768,
            row_bytes: 4096,
            granularity: 64,
        }
    }

    /// Bytes the CPU receives per access: one burst across all lockstep
    /// devices (64 B cache line on both presets).
    pub fn cpu_line_bytes(&self) -> u32 {
        self.devices_per_rank * self.granularity
    }

    /// Total number of PIM units (one per bank per device).
    pub fn pim_units(&self) -> u32 {
        self.channels * self.ranks_per_channel * self.devices_per_rank * self.banks_per_device
    }

    /// PIM units per rank (64 on the DIMM preset, matching Table 1).
    pub fn pim_units_per_rank(&self) -> u32 {
        self.devices_per_rank * self.banks_per_device
    }

    /// CPU-visible lockstep bank sets in the whole system.
    pub fn cpu_banks(&self) -> u32 {
        self.channels * self.ranks_per_channel * self.banks_per_device
    }

    /// Bytes per bank per device.
    pub fn bank_bytes(&self) -> u64 {
        self.rows_per_bank as u64 * self.row_bytes as u64
    }

    /// Bytes per device (all banks).
    pub fn device_bytes(&self) -> u64 {
        self.bank_bytes() * self.banks_per_device as u64
    }

    /// Bytes per rank (all devices).
    pub fn rank_bytes(&self) -> u64 {
        self.device_bytes() * self.devices_per_rank as u64
    }

    /// Total capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.rank_bytes() * self.ranks_per_channel as u64 * self.channels as u64
    }

    /// Iterates over every CPU-visible bank address.
    pub fn bank_addrs(&self) -> impl Iterator<Item = BankAddr> + '_ {
        let (c, r, b) = (self.channels, self.ranks_per_channel, self.banks_per_device);
        (0..c).flat_map(move |ch| {
            (0..r).flat_map(move |rk| (0..b).map(move |ba| BankAddr::new(ch, rk, ba)))
        })
    }

    /// Maps a device-local byte offset within a bank to `(row, column byte)`.
    ///
    /// # Panics
    ///
    /// Panics if the offset lies beyond the bank.
    pub fn locate(&self, dev_offset: u64) -> (u32, u32) {
        assert!(
            dev_offset < self.bank_bytes(),
            "offset {dev_offset} beyond bank ({} bytes)",
            self.bank_bytes()
        );
        (
            (dev_offset / self.row_bytes as u64) as u32,
            (dev_offset % self.row_bytes as u64) as u32,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1: "Ba / De / Ro / Co = 8 / 8 / 131072 / 1024", 8 GB/rank,
    /// "Num 64 per Rank" PIM units.
    #[test]
    fn table1_dimm_geometry() {
        let g = Geometry::dimm();
        assert_eq!(g.banks_per_device, 8);
        assert_eq!(g.devices_per_rank, 8);
        assert_eq!(g.rows_per_bank, 131_072);
        assert_eq!(g.granularity, 8);
        assert_eq!(g.rank_bytes(), 8 << 30); // 8 GB per rank
        assert_eq!(g.pim_units_per_rank(), 64);
        assert_eq!(g.pim_units(), 1024);
        assert_eq!(g.cpu_line_bytes(), 64);
        assert_eq!(g.total_bytes(), 128 << 30);
    }

    /// The HBM system must expose the same number of banks/PIM units as the
    /// DIMM system but a 64 B interleave granularity.
    #[test]
    fn hbm_matches_dimm_bank_count() {
        let d = Geometry::dimm();
        let h = Geometry::hbm();
        assert_eq!(h.pim_units(), d.pim_units());
        assert_eq!(h.granularity, 64);
        assert_eq!(h.cpu_line_bytes(), 64);
    }

    #[test]
    fn bank_addr_iteration_covers_all() {
        let g = Geometry::dimm();
        let addrs: Vec<_> = g.bank_addrs().collect();
        assert_eq!(addrs.len(), g.cpu_banks() as usize);
        // All distinct.
        let mut sorted = addrs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), addrs.len());
    }

    #[test]
    fn locate_splits_rows() {
        let g = Geometry::dimm();
        assert_eq!(g.locate(0), (0, 0));
        assert_eq!(g.locate(1023), (0, 1023));
        assert_eq!(g.locate(1024), (1, 0));
        assert_eq!(g.locate(5000), (4, 904));
    }

    #[test]
    #[should_panic(expected = "beyond bank")]
    fn locate_out_of_range_panics() {
        let g = Geometry::dimm();
        let _ = g.locate(g.bank_bytes());
    }
}
