//! Per-bank DRAM state tracking.

use crate::time::Ps;

/// Row-buffer outcome of an access, for statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowOutcome {
    /// The target row was already open.
    Hit,
    /// The bank was idle; an activate was required.
    Miss,
    /// Another row was open; precharge + activate were required.
    Conflict,
}

/// Timing state of one CPU-visible bank (lockstep across the devices of a
/// rank).
///
/// The controller mutates this as it schedules commands; all fields are
/// earliest-allowed command times derived from the JEDEC-style constraints
/// in [`crate::TimingParams`].
#[derive(Debug, Clone, Copy)]
pub struct BankState {
    /// Currently open row, if any.
    pub open_row: Option<u32>,
    /// Time of the most recent ACT.
    pub act_time: Ps,
    /// Earliest time the next column command (RD/WR) may issue.
    pub ready_rw: Ps,
    /// Earliest time a PRE may issue.
    pub ready_pre: Ps,
    /// Earliest time the next ACT may issue.
    pub ready_act: Ps,
    /// CPU accesses are stalled until this time while the bank is handed to
    /// its PIM unit (PIM mode, §2.1 / §6.2 load phases).
    pub locked_until: Ps,
}

impl Default for BankState {
    fn default() -> BankState {
        BankState {
            open_row: None,
            act_time: Ps::ZERO,
            ready_rw: Ps::ZERO,
            ready_pre: Ps::ZERO,
            ready_act: Ps::ZERO,
            locked_until: Ps::ZERO,
        }
    }
}

impl BankState {
    /// Classifies what servicing `row` requires right now.
    pub fn outcome(&self, row: u32) -> RowOutcome {
        match self.open_row {
            Some(r) if r == row => RowOutcome::Hit,
            Some(_) => RowOutcome::Conflict,
            None => RowOutcome::Miss,
        }
    }

    /// Pushes every readiness horizon to at least `t` (used for refresh
    /// stalls, which occupy the whole rank).
    pub fn stall_until(&mut self, t: Ps) {
        self.ready_rw = self.ready_rw.max(t);
        self.ready_pre = self.ready_pre.max(t);
        self.ready_act = self.ready_act.max(t);
    }

    /// Locks the bank for PIM-mode access until `t`.
    pub fn lock_until(&mut self, t: Ps) {
        self.locked_until = self.locked_until.max(t);
        // Handing the bank to the PIM unit closes the CPU-visible row.
        self.open_row = None;
        self.stall_until(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_classification() {
        let mut b = BankState::default();
        assert_eq!(b.outcome(5), RowOutcome::Miss);
        b.open_row = Some(5);
        assert_eq!(b.outcome(5), RowOutcome::Hit);
        assert_eq!(b.outcome(6), RowOutcome::Conflict);
    }

    #[test]
    fn stall_is_monotone() {
        let mut b = BankState {
            ready_rw: Ps::new(100),
            ..BankState::default()
        };
        b.stall_until(Ps::new(50));
        assert_eq!(b.ready_rw, Ps::new(100));
        b.stall_until(Ps::new(200));
        assert_eq!(b.ready_rw, Ps::new(200));
        assert_eq!(b.ready_act, Ps::new(200));
    }

    #[test]
    fn locking_closes_row() {
        let mut b = BankState {
            open_row: Some(3),
            ..BankState::default()
        };
        b.lock_until(Ps::new(1000));
        assert_eq!(b.open_row, None);
        assert_eq!(b.locked_until, Ps::new(1000));
        // Locks never shrink.
        b.lock_until(Ps::new(500));
        assert_eq!(b.locked_until, Ps::new(1000));
    }
}
