//! Per-channel memory controller timing model.
//!
//! This is the "ramulator-lite" substrate: an open-page controller that
//! schedules ACT/PRE/RD/WR commands against per-bank state under the
//! constraints of [`TimingParams`], tracks shared data-bus occupancy,
//! read/write turnaround, rank-switch penalties, and periodic all-bank
//! refresh. It is request-stream driven (each call schedules one burst) and
//! O(1) per access.

use crate::bank::{BankState, RowOutcome};
use crate::time::Ps;
use crate::timing::TimingParams;

/// Access direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// A read burst.
    Read,
    /// A write burst.
    Write,
}

/// Scheduling result for one burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// When the column command issued.
    pub issue: Ps,
    /// When data started on the bus.
    pub data_start: Ps,
    /// When the burst finished (data fully transferred).
    pub done: Ps,
    /// Row-buffer outcome.
    pub outcome: RowOutcome,
}

/// Aggregate controller statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CtrlStats {
    /// Bursts that hit an open row.
    pub hits: u64,
    /// Bursts to an idle bank.
    pub misses: u64,
    /// Bursts that required closing another row.
    pub conflicts: u64,
    /// Read bursts.
    pub reads: u64,
    /// Write bursts.
    pub writes: u64,
    /// All-bank refresh operations performed.
    pub refreshes: u64,
}

impl CtrlStats {
    /// Total bursts served.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses + self.conflicts
    }

    /// Fraction of bursts that hit the row buffer.
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One channel's controller: bank states, bus, refresh bookkeeping.
#[derive(Debug, Clone)]
pub struct ChannelController {
    timing: TimingParams,
    banks: Vec<BankState>,
    banks_per_rank: u32,
    rank_last_act: Vec<Option<Ps>>,
    bus_free: Ps,
    last_rank: Option<u32>,
    last_op: Option<Op>,
    last_data_end: Ps,
    next_refresh: Ps,
    stats: CtrlStats,
}

impl ChannelController {
    /// Creates a controller for `ranks` ranks of `banks_per_rank` lockstep
    /// banks each.
    ///
    /// # Panics
    ///
    /// Panics if `ranks` or `banks_per_rank` is zero.
    pub fn new(timing: TimingParams, ranks: u32, banks_per_rank: u32) -> ChannelController {
        assert!(ranks > 0 && banks_per_rank > 0, "degenerate geometry");
        ChannelController {
            timing,
            banks: vec![BankState::default(); (ranks * banks_per_rank) as usize],
            banks_per_rank,
            rank_last_act: vec![None; ranks as usize],
            bus_free: Ps::ZERO,
            last_rank: None,
            last_op: None,
            last_data_end: Ps::ZERO,
            next_refresh: timing.t_refi,
            stats: CtrlStats::default(),
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CtrlStats {
        &self.stats
    }

    /// The timing parameters this controller models.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    fn bank_index(&self, rank: u32, bank: u32) -> usize {
        let idx = (rank * self.banks_per_rank + bank) as usize;
        assert!(
            idx < self.banks.len(),
            "rank {rank}/bank {bank} out of range"
        );
        idx
    }

    /// Applies pending all-bank refreshes up to time `at`. If the channel
    /// was idle for many refresh intervals, the missed refreshes are
    /// fast-forwarded without accumulating stall (the banks were idle).
    fn catch_up_refresh(&mut self, at: Ps) {
        if at < self.next_refresh {
            return;
        }
        let gap = at - self.next_refresh;
        let periods = gap.ps() / self.timing.t_refi.ps();
        if periods > 8 {
            // Long-idle fast-forward: refreshes happened while no requests
            // were outstanding, so they stall nothing.
            self.next_refresh += self.timing.t_refi * periods;
            self.stats.refreshes += periods;
        }
        while at >= self.next_refresh {
            let stall_end = self.next_refresh + self.timing.t_rfc;
            for b in &mut self.banks {
                // Refresh closes all rows.
                b.open_row = None;
                b.stall_until(stall_end);
            }
            self.bus_free = self.bus_free.max(stall_end);
            self.next_refresh += self.timing.t_refi;
            self.stats.refreshes += 1;
        }
    }

    /// Schedules one burst to `(rank, bank, row)` arriving at time `at`.
    ///
    /// Returns the command issue time, the data-bus start time, and the
    /// completion time. Bank-state, bus, turnaround, rank-switch, refresh,
    /// and PIM-lock constraints are all applied.
    pub fn access(&mut self, rank: u32, bank: u32, row: u32, op: Op, at: Ps) -> Completion {
        let t = &self.timing;
        let (t_rcd, t_cl, t_rp, t_ras, t_rrd, t_burst) =
            (t.t_rcd, t.t_cl, t.t_rp, t.t_ras, t.t_rrd, t.t_burst);
        let (t_rtp, t_wr, t_wtr, t_rtw, t_cs) = (t.t_rtp, t.t_wr, t.t_wtr, t.t_rtw, t.t_cs);
        let t_rc = t.t_rc();
        // Streams issue open-loop (constant arrival time), so advance the
        // refresh bookkeeping with actual bus progress, not just `at`.
        self.catch_up_refresh(at.max(self.last_data_end));

        let idx = self.bank_index(rank, bank);
        let arrive = at.max(self.banks[idx].locked_until);
        let outcome = self.banks[idx].outcome(row);

        // Row-command path: when can the column command earliest issue?
        let mut issue = match outcome {
            RowOutcome::Hit => arrive.max(self.banks[idx].ready_rw),
            RowOutcome::Conflict => {
                let pre = arrive.max(self.banks[idx].ready_pre);
                let mut act = (pre + t_rp).max(self.banks[idx].ready_act);
                if let Some(last) = self.rank_last_act[rank as usize] {
                    act = act.max(last + t_rrd);
                }
                self.banks[idx].act_time = act;
                self.banks[idx].ready_act = act + t_rc;
                self.rank_last_act[rank as usize] = Some(act);
                act + t_rcd
            }
            RowOutcome::Miss => {
                let mut act = arrive.max(self.banks[idx].ready_act);
                if let Some(last) = self.rank_last_act[rank as usize] {
                    act = act.max(last + t_rrd);
                }
                self.banks[idx].act_time = act;
                self.banks[idx].ready_act = act + t_rc;
                self.rank_last_act[rank as usize] = Some(act);
                act + t_rcd
            }
        };

        // Bus-turnaround constraints relative to the previous burst.
        match (self.last_op, op) {
            (Some(Op::Write), Op::Read) => issue = issue.max(self.last_data_end + t_wtr),
            (Some(Op::Read), Op::Write) => issue = issue.max(self.last_data_end + t_rtw),
            _ => {}
        }
        if self.last_rank.is_some() && self.last_rank != Some(rank) {
            issue = issue.max(self.last_data_end + t_cs);
        }

        // Shared data bus.
        let mut data_start = issue + t_cl;
        if data_start < self.bus_free {
            let delay = self.bus_free - data_start;
            issue += delay;
            data_start = self.bus_free;
        }
        let done = data_start + t_burst;

        // Commit bank state.
        let bank_state = &mut self.banks[idx];
        bank_state.open_row = Some(row);
        bank_state.ready_rw = issue + t_burst; // CAS-to-CAS ≈ burst
        bank_state.ready_pre = match op {
            Op::Read => (bank_state.act_time + t_ras).max(issue + t_rtp),
            Op::Write => (bank_state.act_time + t_ras).max(done + t_wr),
        };

        self.bus_free = done;
        self.last_rank = Some(rank);
        self.last_op = Some(op);
        self.last_data_end = done;

        match outcome {
            RowOutcome::Hit => self.stats.hits += 1,
            RowOutcome::Miss => self.stats.misses += 1,
            RowOutcome::Conflict => self.stats.conflicts += 1,
        }
        match op {
            Op::Read => self.stats.reads += 1,
            Op::Write => self.stats.writes += 1,
        }

        Completion {
            issue,
            data_start,
            done,
            outcome,
        }
    }

    /// Locks `(rank, bank)` against CPU access until `until` (bank handed to
    /// its PIM units during an LS/Defragment phase).
    pub fn lock_bank(&mut self, rank: u32, bank: u32, until: Ps) {
        let idx = self.bank_index(rank, bank);
        self.banks[idx].lock_until(until);
    }

    /// Locks every bank of `rank` until `until`.
    pub fn lock_rank(&mut self, rank: u32, until: Ps) {
        for bank in 0..self.banks_per_rank {
            self.lock_bank(rank, bank, until);
        }
    }

    /// Earliest time the CPU can next touch `(rank, bank)`.
    pub fn bank_available(&self, rank: u32, bank: u32) -> Ps {
        self.banks[self.bank_index(rank, bank)].locked_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl() -> ChannelController {
        ChannelController::new(TimingParams::ddr5_3200(), 4, 8)
    }

    #[test]
    fn first_access_is_a_miss_with_act_latency() {
        let mut c = ctrl();
        let t = TimingParams::ddr5_3200();
        let r = c.access(0, 0, 10, Op::Read, Ps::ZERO);
        assert_eq!(r.outcome, RowOutcome::Miss);
        assert_eq!(r.done, t.t_rcd + t.t_cl + t.t_burst);
    }

    #[test]
    fn second_access_same_row_hits_and_pipelines() {
        let mut c = ctrl();
        let t = TimingParams::ddr5_3200();
        let a = c.access(0, 0, 10, Op::Read, Ps::ZERO);
        let b = c.access(0, 0, 10, Op::Read, Ps::ZERO);
        assert_eq!(b.outcome, RowOutcome::Hit);
        // Streams at one burst per tBURST once warm.
        assert_eq!(b.done - a.done, t.t_burst);
    }

    #[test]
    fn conflict_pays_precharge() {
        let mut c = ctrl();
        let t = TimingParams::ddr5_3200();
        c.access(0, 0, 10, Op::Read, Ps::ZERO);
        let r = c.access(0, 0, 11, Op::Read, Ps::from_us(1.0));
        assert_eq!(r.outcome, RowOutcome::Conflict);
        // Idle bank, so latency = PRE + ACT + CAS + burst from arrival.
        assert_eq!(r.done - Ps::from_us(1.0), t.conflict_latency());
    }

    #[test]
    fn ras_limits_early_precharge() {
        let mut c = ctrl();
        let t = TimingParams::ddr5_3200();
        // Access row 10 then immediately conflict on row 11: the PRE must
        // wait for tRAS after the ACT.
        c.access(0, 0, 10, Op::Read, Ps::ZERO);
        let r = c.access(0, 0, 11, Op::Read, Ps::ZERO);
        // ACT(10) at 0; PRE ≥ tRAS; ACT(11) ≥ tRAS+tRP; done ≥ +tRCD+tCL+tBURST.
        let lower = t.t_ras + t.t_rp + t.t_rcd + t.t_cl + t.t_burst;
        assert!(r.done >= lower, "{} < {}", r.done, lower);
    }

    #[test]
    fn bank_parallelism_overlaps_activates() {
        let mut serial = ctrl();
        let mut parallel = ctrl();
        // 4 conflicting accesses to one bank vs 4 accesses to 4 banks.
        let mut done_serial = Ps::ZERO;
        for row in 0..4 {
            done_serial = serial.access(0, 0, row * 2, Op::Read, Ps::ZERO).done;
        }
        let mut done_parallel = Ps::ZERO;
        for bank in 0..4 {
            done_parallel = parallel.access(0, bank, 0, Op::Read, Ps::ZERO).done;
        }
        assert!(done_parallel < done_serial);
    }

    #[test]
    fn write_to_read_turnaround() {
        let mut c = ctrl();
        let t = TimingParams::ddr5_3200();
        let w = c.access(0, 0, 5, Op::Write, Ps::ZERO);
        let r = c.access(0, 0, 5, Op::Read, Ps::ZERO);
        assert!(r.issue >= w.done + t.t_wtr);
    }

    #[test]
    fn rank_switch_penalty() {
        let mut c = ctrl();
        let t = TimingParams::ddr5_3200();
        let a = c.access(0, 0, 5, Op::Read, Ps::ZERO);
        let b = c.access(1, 0, 5, Op::Read, Ps::ZERO);
        assert!(b.issue >= a.done + t.t_cs);
    }

    #[test]
    fn refresh_stalls_periodically() {
        let mut c = ctrl();
        let t = TimingParams::ddr5_3200();
        // Park an access right after the first tREFI boundary: it must see
        // the tRFC stall.
        let at = t.t_refi + Ps::new(1);
        let r = c.access(0, 0, 3, Op::Read, at);
        assert!(r.issue >= t.t_refi + t.t_rfc);
        assert_eq!(c.stats().refreshes, 1);
    }

    #[test]
    fn long_idle_fast_forwards_refresh() {
        let mut c = ctrl();
        // Jump 1 second ahead: must not loop 256k times nor stall.
        let at = Ps::from_ms(1000.0);
        let r = c.access(0, 0, 3, Op::Read, at);
        assert!(r.done < at + Ps::from_us(1.0));
        assert!(c.stats().refreshes > 200_000);
    }

    #[test]
    fn pim_lock_blocks_cpu() {
        let mut c = ctrl();
        c.lock_bank(0, 0, Ps::from_us(5.0));
        // Other banks are unaffected (served first, in arrival order).
        let r2 = c.access(0, 1, 3, Op::Read, Ps::ZERO);
        assert!(r2.issue < Ps::from_us(5.0));
        let r = c.access(0, 0, 3, Op::Read, Ps::ZERO);
        assert!(r.issue >= Ps::from_us(5.0));
    }

    #[test]
    fn lock_rank_locks_all_banks() {
        let mut c = ctrl();
        c.lock_rank(2, Ps::from_us(1.0));
        for bank in 0..8 {
            assert_eq!(c.bank_available(2, bank), Ps::from_us(1.0));
        }
        assert_eq!(c.bank_available(0, 0), Ps::ZERO);
    }

    #[test]
    fn stats_track_outcomes() {
        let mut c = ctrl();
        c.access(0, 0, 1, Op::Read, Ps::ZERO); // miss
        c.access(0, 0, 1, Op::Read, Ps::ZERO); // hit
        c.access(0, 0, 2, Op::Write, Ps::ZERO); // conflict
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.conflicts), (1, 1, 1));
        assert_eq!((s.reads, s.writes), (2, 1));
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sequential_stream_is_mostly_hits() {
        let mut c = ctrl();
        let t = TimingParams::ddr5_3200();
        let mut at = Ps::ZERO;
        // 128 bursts per 1 kB row × 16 rows, issued open-loop.
        for row in 0..16u32 {
            for _ in 0..128 {
                at = c.access(0, 0, row, Op::Read, Ps::ZERO).done;
            }
        }
        let s = c.stats();
        assert!(s.hit_rate() > 0.98, "hit rate {}", s.hit_rate());
        // Warm stream throughput ≈ one burst per tBURST.
        let bursts = s.accesses();
        let ideal = t.t_burst * bursts;
        assert!(at < ideal.scale(1.10), "stream time {at} vs ideal {ideal}");
    }
}
