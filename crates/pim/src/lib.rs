//! DRAM + PIM hardware simulator substrate for the PUSHtap HTAP system.
//!
//! This crate reproduces the evaluation substrate of *PUSHtap: PIM-based
//! In-Memory HTAP with Unified Data Storage Format* (ASPLOS'25): a
//! commercial general-purpose PIM architecture (UPMEM-like DIMMs, plus an
//! HBM3 variant) with the paper's memory-controller extensions.
//!
//! It provides:
//!
//! * [`TimingParams`] / [`Geometry`] / [`SystemConfig`] — Table 1 presets;
//! * [`ChannelController`] — a bank-state open-page DRAM timing model
//!   (ACT/PRE/RD/WR constraints, bus occupancy, turnaround, refresh);
//! * [`PimUnit`] — the DPU cost model (WRAM, tasklet pipeline, DMA);
//! * [`ControlModel`] — PUSHtap's scheduler + polling-module control path
//!   vs the original per-unit control path (§6.1);
//! * [`MemSystem`] — the facade the database engine drives, with
//!   effective-bandwidth and energy accounting;
//! * [`DeviceMem`]/[`DeviceArray`] — functional byte storage so the
//!   database on top is value-correct, not just timed.
//!
//! # Examples
//!
//! ```
//! use pushtap_pim::{BankAddr, MemSystem, Op, Ps, Side};
//!
//! let mut mem = MemSystem::dimm();
//! let done = mem.stream(
//!     Side::Pim,
//!     BankAddr::new(0, 0, 0),
//!     0,    // first row
//!     1024, // bursts
//!     128,  // bursts per 1 kB row
//!     Op::Read,
//!     64, // all bytes useful
//!     Ps::ZERO,
//! );
//! assert!(done > Ps::ZERO);
//! assert_eq!(mem.stats().cpu_effective(), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bank;
mod config;
mod controller;
mod energy;
mod geometry;
mod mem;
mod pim_unit;
mod scheduler;
mod system;
mod time;
mod timing;

pub use bank::{BankState, RowOutcome};
pub use config::{CpuSpec, MemKind, PimUnitSpec, SystemConfig};
pub use controller::{ChannelController, Completion, CtrlStats, Op};
pub use energy::{EnergyStats, CPU_PJ_PER_BYTE, PIM_PJ_PER_BYTE};
pub use geometry::{BankAddr, Geometry};
pub use mem::{DeviceArray, DeviceMem};
pub use pim_unit::{PimOpKind, PimUnit, PIPELINE_SATURATION_TASKLETS};
pub use scheduler::{
    ControlArch, ControlModel, LaunchPayload, AREA_MEMCTRL_MM2, AREA_POLLING_MM2,
    AREA_SCHEDULER_MM2, AREA_TOTAL_MM2, PER_UNIT_MESSAGE, POLL_RETURN, SCHED_DECODE,
};
pub use system::{MemSystem, Side, SysStats};
pub use time::Ps;
pub use timing::TimingParams;
