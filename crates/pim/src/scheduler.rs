//! PIM control-path models: PUSHtap's memory-controller extension vs the
//! original general-purpose PIM architecture (§6.1, Fig. 7).
//!
//! PUSHtap adds two modules to each memory controller:
//!
//! * a **scheduler** that recognises launch/poll requests disguised as
//!   ordinary memory accesses to a reserved physical address, broadcasts the
//!   operation descriptor to the channel's PIM units, and hands over bank
//!   control only for `LS`/`Defragment` operations;
//! * a **polling module** that polls PIM units autonomously and answers the
//!   CPU's poll read when all units report done.
//!
//! Under the original architecture the CPU instead messages every PIM unit
//! individually over the memory bus, which costs tens of microseconds per
//! offload for a server-scale unit count (§2.1).

use serde::{Deserialize, Serialize};

use crate::config::SystemConfig;
use crate::pim_unit::PimOpKind;
use crate::time::Ps;

/// Area of the added scheduler module (§7.6, Synopsys DC @ TSMC 90 nm),
/// in mm² for an 8-channel memory controller.
pub const AREA_SCHEDULER_MM2: f64 = 0.112;
/// Area of the added polling module, mm².
pub const AREA_POLLING_MM2: f64 = 0.003;
/// Total added area, mm².
pub const AREA_TOTAL_MM2: f64 = AREA_SCHEDULER_MM2 + AREA_POLLING_MM2;
/// Reference total memory-controller area (Sapphire Rapids class), mm².
pub const AREA_MEMCTRL_MM2: f64 = 13.0;

/// Cost of one CPU→PIM-unit control message on the original architecture
/// (one small bus transaction per unit, serialised per channel).
pub const PER_UNIT_MESSAGE: Ps = Ps::new(60_000); // 60 ns

/// Fixed decode latency of the scheduler when it recognises a disguised
/// launch/poll request.
pub const SCHED_DECODE: Ps = Ps::new(50_000); // 50 ns

/// Latency for the polling module to forward the aggregated finish signal
/// back to the CPU through the DRAM read protocol.
pub const POLL_RETURN: Ps = Ps::new(100_000); // 100 ns

/// Which control architecture drives the PIM units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ControlArch {
    /// PUSHtap's extended memory controller (scheduler + polling module).
    Pushtap,
    /// The unmodified commercial architecture: CPU messages each unit.
    Original,
}

/// A 64-byte launch-request payload: 1 type byte + 63 parameter bytes
/// (Fig. 7(b)). The encoding of the parameter fields is owned by the OLAP
/// crate; the scheduler transports the payload opaquely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchPayload {
    bytes: [u8; 64],
}

impl LaunchPayload {
    /// Builds a payload from a type byte and up to 63 parameter bytes.
    ///
    /// # Panics
    ///
    /// Panics if `params` exceeds 63 bytes.
    pub fn new(op_type: u8, params: &[u8]) -> LaunchPayload {
        assert!(params.len() <= 63, "launch parameters exceed 63 bytes");
        let mut bytes = [0u8; 64];
        bytes[0] = op_type;
        bytes[1..1 + params.len()].copy_from_slice(params);
        LaunchPayload { bytes }
    }

    /// The operation type byte.
    pub fn op_type(&self) -> u8 {
        self.bytes[0]
    }

    /// The 63 parameter bytes.
    pub fn params(&self) -> &[u8] {
        &self.bytes[1..]
    }

    /// The raw 64-byte wire image.
    pub fn as_bytes(&self) -> &[u8; 64] {
        &self.bytes
    }
}

/// Control-path cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlModel {
    arch: ControlArch,
    units_per_channel: u32,
    ranks_per_channel: u32,
    mode_switch: Ps,
    t_burst: Ps,
}

impl ControlModel {
    /// Builds the model for a system configuration.
    pub fn new(arch: ControlArch, cfg: &SystemConfig) -> ControlModel {
        let g = &cfg.pim_geometry;
        ControlModel {
            arch,
            units_per_channel: g.ranks_per_channel * g.devices_per_rank * g.banks_per_device,
            ranks_per_channel: g.ranks_per_channel,
            mode_switch: cfg.mode_switch,
            t_burst: cfg.pim_timing.t_burst,
        }
    }

    /// Which architecture this models.
    pub fn arch(&self) -> ControlArch {
        self.arch
    }

    /// Time from the CPU issuing a launch until every PIM unit of the
    /// channel is running `op`. Channels operate in parallel, so this is
    /// also the system-wide launch latency.
    ///
    /// With PUSHtap, bank handover (mode switch) is paid only for
    /// operations that need the DRAM bank; the scheduler triggers all ranks
    /// concurrently. With the original architecture the CPU hands over
    /// every rank serially and then messages every unit, and the handover
    /// happens for *every* launch because the whole offload owns the banks.
    pub fn launch(&self, op: PimOpKind) -> Ps {
        match self.arch {
            ControlArch::Pushtap => {
                let base = self.t_burst + SCHED_DECODE;
                if op.needs_bank() {
                    base + self.mode_switch
                } else {
                    base
                }
            }
            ControlArch::Original => {
                self.mode_switch * self.ranks_per_channel as u64
                    + PER_UNIT_MESSAGE * self.units_per_channel as u64
            }
        }
    }

    /// Time from the last PIM unit finishing until the CPU observes
    /// completion.
    pub fn poll(&self) -> Ps {
        match self.arch {
            ControlArch::Pushtap => POLL_RETURN,
            ControlArch::Original => PER_UNIT_MESSAGE * self.units_per_channel as u64,
        }
    }

    /// Returning bank control to the CPU after a bank-owning phase.
    pub fn release(&self, op: PimOpKind) -> Ps {
        match self.arch {
            ControlArch::Pushtap => {
                if op.needs_bank() {
                    self.mode_switch
                } else {
                    Ps::ZERO
                }
            }
            // The original architecture releases all ranks serially.
            ControlArch::Original => self.mode_switch * self.ranks_per_channel as u64,
        }
    }

    /// Whether CPU accesses to the participating banks are blocked while
    /// `op` executes. Under the original architecture the banks are owned
    /// by PIM for the whole offload regardless of op type (§6.2).
    pub fn blocks_cpu(&self, op: PimOpKind) -> bool {
        match self.arch {
            ControlArch::Pushtap => op.needs_bank(),
            ControlArch::Original => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models() -> (ControlModel, ControlModel) {
        let cfg = SystemConfig::dimm();
        (
            ControlModel::new(ControlArch::Pushtap, &cfg),
            ControlModel::new(ControlArch::Original, &cfg),
        )
    }

    /// §7.6: 0.115 mm² total, scheduler 0.112, polling 0.003; negligible vs
    /// a ~13 mm² memory controller.
    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn area_constants() {
        assert!((AREA_TOTAL_MM2 - 0.115).abs() < 1e-12);
        assert!(AREA_TOTAL_MM2 / AREA_MEMCTRL_MM2 < 0.01);
    }

    /// §2.1: invoking and polling thousands of units takes tens of µs on
    /// the original architecture; PUSHtap reduces it to sub-µs (+0.2 µs
    /// handover when the op needs the bank).
    #[test]
    fn original_launch_costs_tens_of_us() {
        let (push, orig) = models();
        let o = orig.launch(PimOpKind::Filter) + orig.poll();
        assert!(o > Ps::from_us(10.0) && o < Ps::from_us(100.0), "{o}");
        let p = push.launch(PimOpKind::Filter) + push.poll();
        assert!(p < Ps::from_us(1.0), "{p}");
    }

    #[test]
    fn pushtap_pays_mode_switch_only_for_bank_ops() {
        let (push, _) = models();
        let ls = push.launch(PimOpKind::Ls);
        let filter = push.launch(PimOpKind::Filter);
        assert_eq!(ls - filter, Ps::from_us(0.2));
        assert_eq!(push.release(PimOpKind::Filter), Ps::ZERO);
        assert_eq!(push.release(PimOpKind::Ls), Ps::from_us(0.2));
    }

    #[test]
    fn original_blocks_cpu_for_everything() {
        let (push, orig) = models();
        assert!(orig.blocks_cpu(PimOpKind::Filter));
        assert!(orig.blocks_cpu(PimOpKind::Ls));
        assert!(!push.blocks_cpu(PimOpKind::Filter));
        assert!(push.blocks_cpu(PimOpKind::Ls));
    }

    #[test]
    fn payload_layout() {
        let p = LaunchPayload::new(3, &[1, 2, 3]);
        assert_eq!(p.op_type(), 3);
        assert_eq!(p.params()[..3], [1, 2, 3]);
        assert_eq!(p.params().len(), 63);
        assert_eq!(p.as_bytes().len(), 64);
    }

    #[test]
    #[should_panic(expected = "exceed 63")]
    fn oversized_payload_panics() {
        let _ = LaunchPayload::new(0, &[0u8; 64]);
    }
}
