//! Functional (value-carrying) device memory.
//!
//! The timing simulator models *when* data moves; these buffers hold the
//! bytes themselves so the database built on top is value-correct. One
//! [`DeviceMem`] is the byte stream of one device's share of a table
//! region; a [`DeviceArray`] groups the lockstep devices of a rank (the
//! ADE dimension of the unified format).

use std::fmt;

/// A growable device-local byte store.
#[derive(Clone, Default)]
pub struct DeviceMem {
    bytes: Vec<u8>,
}

impl fmt::Debug for DeviceMem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeviceMem")
            .field("len", &self.bytes.len())
            .finish()
    }
}

impl DeviceMem {
    /// Creates an empty device memory.
    pub fn new() -> DeviceMem {
        DeviceMem::default()
    }

    /// Current allocated length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether nothing has been allocated yet.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Grows (zero-filled) so that `end` bytes are addressable.
    pub fn ensure(&mut self, end: usize) {
        if self.bytes.len() < end {
            self.bytes.resize(end, 0);
        }
    }

    /// Reads `len` bytes at `offset`. Bytes beyond the written extent read
    /// as zero, like fresh DRAM.
    pub fn read(&self, offset: usize, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        if offset < self.bytes.len() {
            let n = len.min(self.bytes.len() - offset);
            out[..n].copy_from_slice(&self.bytes[offset..offset + n]);
        }
        out
    }

    /// Writes `data` at `offset`, growing the store as needed.
    pub fn write(&mut self, offset: usize, data: &[u8]) {
        self.ensure(offset + data.len());
        self.bytes[offset..offset + data.len()].copy_from_slice(data);
    }

    /// Reads a single byte (zero beyond the written extent).
    pub fn byte(&self, offset: usize) -> u8 {
        self.bytes.get(offset).copied().unwrap_or(0)
    }

    /// Writes a single byte, growing the store as needed.
    pub fn set_byte(&mut self, offset: usize, value: u8) {
        self.ensure(offset + 1);
        self.bytes[offset] = value;
    }

    /// Copies `len` bytes from `src` to `dst` within this device (used by
    /// PIM-side defragmentation: the copy never crosses devices because new
    /// versions share their origin row's rotation, §5.1).
    pub fn copy_within(&mut self, src: usize, dst: usize, len: usize) {
        self.ensure(src + len);
        self.ensure(dst + len);
        self.bytes.copy_within(src..src + len, dst);
    }
}

/// The lockstep devices of one rank (the ADE dimension).
#[derive(Debug, Clone)]
pub struct DeviceArray {
    devices: Vec<DeviceMem>,
}

impl DeviceArray {
    /// Creates an array of `n` empty devices.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u32) -> DeviceArray {
        assert!(n > 0, "device array needs at least one device");
        DeviceArray {
            devices: (0..n).map(|_| DeviceMem::new()).collect(),
        }
    }

    /// Number of devices.
    pub fn width(&self) -> u32 {
        self.devices.len() as u32
    }

    /// Immutable access to device `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn device(&self, i: u32) -> &DeviceMem {
        &self.devices[i as usize]
    }

    /// Mutable access to device `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn device_mut(&mut self, i: u32) -> &mut DeviceMem {
        &mut self.devices[i as usize]
    }

    /// Iterates over all devices.
    pub fn iter(&self) -> impl Iterator<Item = &DeviceMem> {
        self.devices.iter()
    }

    /// Largest allocated length across devices.
    pub fn max_len(&self) -> usize {
        self.devices.iter().map(DeviceMem::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let mut m = DeviceMem::new();
        m.write(10, &[1, 2, 3]);
        assert_eq!(m.read(10, 3), vec![1, 2, 3]);
        assert_eq!(m.len(), 13);
        // Unwritten bytes are zero, even past the extent.
        assert_eq!(m.read(0, 10), vec![0u8; 10]);
        assert_eq!(m.read(1000, 4), vec![0u8; 4]);
    }

    #[test]
    fn byte_accessors() {
        let mut m = DeviceMem::new();
        m.set_byte(5, 0xAB);
        assert_eq!(m.byte(5), 0xAB);
        assert!(!m.is_empty());
    }

    #[test]
    fn copy_within_moves_versions() {
        let mut m = DeviceMem::new();
        m.write(0, &[9, 9, 9, 9]);
        m.write(100, &[1, 2, 3, 4]);
        m.copy_within(100, 0, 4);
        assert_eq!(m.read(0, 4), &[1, 2, 3, 4]);
    }

    #[test]
    fn device_array_is_independent() {
        let mut a = DeviceArray::new(4);
        a.device_mut(0).write(0, &[7]);
        a.device_mut(3).write(0, &[8]);
        assert_eq!(a.device(0).byte(0), 7);
        assert_eq!(a.device(3).byte(0), 8);
        assert_eq!(a.device(1).len(), 0);
        assert_eq!(a.width(), 4);
        assert_eq!(a.max_len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_array_panics() {
        let _ = DeviceArray::new(0);
    }
}
