//! Keyset-soundness race detector for PUSHtap's wave scheduler
//! (`pushtap-sanitizer`).
//!
//! Every byte-identity proof in the workspace rests on one unchecked
//! assumption: the conflict keyset a transaction *declares* before
//! execution ([`pushtap_oltp::KeySet`]) is a sound over-approximation
//! of the rows and insert rings it actually touches *during*
//! execution. If decompose and execute ever disagree, the wave
//! scheduler silently overlaps conflicting two-phase commits and the
//! only symptom is a byte divergence far downstream.
//!
//! This crate closes that gap in the style of ThreadSanitizer: a
//! shadow tracker ([`AccessSink`]) that the engine feeds with every
//! physical row read, row write, chain growth, and insert-ring cursor
//! advance — each stamped with its owning transaction timestamp — and
//! that checks four families of invariants:
//!
//! * **declared-footprint soundness** — every physical access of a
//!   prepared scope must be covered by the keyset it declared
//!   ([`ViolationKind::UndeclaredAccess`]);
//! * **wave isolation** — no two transactions the coordinator
//!   overlapped in one wave may touch conflicting keys, a
//!   lockset-style check keyed by the wave id the coordinator assigns
//!   ([`ViolationKind::WaveConflict`]);
//! * **prepared-scope discipline** — no access outside an open scope,
//!   every prepare balanced by exactly one commit or abort decision,
//!   zero prepared versions left at a batch boundary
//!   ([`ViolationKind::AccessOutsideScope`],
//!   [`ViolationKind::UnbalancedPrepare`],
//!   [`ViolationKind::PreparedAtBatchEnd`]);
//! * **front-end causality** — under the open-loop front-end, no
//!   transaction begins execution before its stamped arrival time, and
//!   no home-shard inbox ever exceeds its configured admission bound
//!   ([`ViolationKind::ExecutedBeforeArrival`],
//!   [`ViolationKind::InboxOverflow`]).
//!
//! The crate is dependency-free (like `pushtap-trace` and
//! `pushtap-wal`) and mirrors the trace sink's cost model: the default
//! [`NullSanitizer`] reports itself disabled, so every instrumented
//! hot path pays exactly one predictable branch and constructs
//! nothing. Arming means installing a [`ShadowSanitizer`] — see
//! `pushtap_shard::ShardedHtap::set_sanitizer`. The shadow state is
//! pure observer: it charges no simulated time and touches no engine
//! state, so an armed run is byte-identical to an unarmed one by
//! construction (and the shard suite asserts it).
//!
//! The engine's own key model (`pushtap_oltp::Key`) cannot be imported
//! here — this crate sits *below* the executor in the dependency
//! order — so keys are mirrored structurally: a table identifier
//! (`u32`, the executor's table enum discriminant) plus either a
//! global row index ([`SanKey::Row`]) or a home-warehouse ring
//! ([`SanKey::Ring`]).
//!
//! [`pushtap_oltp::KeySet`]: ../pushtap_oltp/struct.KeySet.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

/// A conflict key in the sanitizer's mirrored model: the unit at which
/// two transactions can collide. Structurally identical to the
/// executor's `Key`, with the table enum flattened to its `u32`
/// discriminant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SanKey {
    /// A data row: (table discriminant, *global* row index).
    Row(u32, u64),
    /// A warehouse's stripe insert ring: (table discriminant, home
    /// warehouse).
    Ring(u32, u64),
}

impl SanKey {
    /// The table discriminant the key lives in.
    pub fn table(&self) -> u32 {
        match self {
            SanKey::Row(t, _) | SanKey::Ring(t, _) => *t,
        }
    }
}

/// What kind of physical access the engine performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A timed MVCC read of the version visible at the scope's ts.
    Read,
    /// A new version written for an updated row.
    Write,
    /// A version chained onto a row's chain (updates grow chains).
    ChainGrow,
    /// A new row version written by a stripe-ring insert. The physical
    /// row is picked by the runtime ring cursor, which the declared
    /// keyset cannot know — coverage accepts any declared ring of the
    /// same table.
    InsertWrite,
    /// A stripe-ring cursor advance (the conflict unit two inserting
    /// transactions order each other by).
    RingAdvance,
}

impl AccessKind {
    /// Whether the access mutates state (everything but [`Read`]).
    ///
    /// [`Read`]: AccessKind::Read
    pub fn is_write(&self) -> bool {
        !matches!(self, AccessKind::Read)
    }
}

/// One physical access, as recorded by the engine's instrumented
/// paths: for [`AccessKind::RingAdvance`] the key is the home
/// warehouse of the ring; for everything else it is the *global* row
/// index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// What happened.
    pub kind: AccessKind,
    /// Table discriminant.
    pub table: u32,
    /// Global row index, or home warehouse for ring advances.
    pub key: u64,
}

impl Access {
    /// The conflict key this access occupies, and whether it occupies
    /// it as a writer.
    fn conflict_key(&self) -> (SanKey, bool) {
        match self.kind {
            AccessKind::RingAdvance => (SanKey::Ring(self.table, self.key), true),
            kind => (SanKey::Row(self.table, self.key), kind.is_write()),
        }
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            AccessKind::RingAdvance => {
                write!(
                    f,
                    "ring-advance table {} warehouse {}",
                    self.table, self.key
                )
            }
            kind => write!(f, "{kind:?} table {} global row {}", self.table, self.key),
        }
    }
}

/// The invariant a [`ViolationReport`] records a breach of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A physical access not covered by the scope's declared keyset —
    /// the wave scheduler ordered this transaction by a footprint that
    /// undershot reality (scheduler unsoundness).
    UndeclaredAccess,
    /// Two transactions the coordinator overlapped in one wave touched
    /// conflicting keys (at least one as a writer).
    WaveConflict,
    /// A physical access with no open transaction scope at its
    /// timestamp on that engine.
    AccessOutsideScope,
    /// Scope-lifecycle breakage: a prepare/commit/abort without its
    /// counterpart, a scope begun while one was already open at the
    /// same timestamp, or scopes still open at a batch boundary.
    UnbalancedPrepare,
    /// Prepared-but-undecided versions survived a batch boundary on
    /// the engine itself.
    PreparedAtBatchEnd,
    /// Garbage collection freed a delta slot holding a version at or
    /// above a registered snapshot pin — a pinned reader could still
    /// visit that version, so its reclamation is a use-after-free in
    /// the making. The GC cut must stay strictly below every pin
    /// (`TsOracle::gc_eligible_before` guarantees it; this check
    /// catches an engine bypassing the oracle).
    ReclaimedPinnedVersion,
    /// A transaction began execution before its stamped open-loop
    /// arrival time — the front-end dispatched work that had not
    /// arrived yet, breaking the simulated timeline (causality).
    ExecutedBeforeArrival,
    /// A home-shard inbox held more admitted-but-undispatched
    /// transactions than its configured bound — admission control let
    /// an arrival through that backpressure should have rejected.
    InboxOverflow,
}

/// One detected violation, with enough context to locate the access:
/// which engine (track = shard index), which transaction (ts), which
/// wave (0 = unwaved), which access, and a human-readable trail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViolationReport {
    /// Which invariant broke.
    pub kind: ViolationKind,
    /// The engine (shard index) the access ran on.
    pub track: u32,
    /// The owning transaction's pinned commit timestamp.
    pub ts: u64,
    /// The coordinator wave the transaction ran in (0 = none).
    pub wave: u64,
    /// The offending access, when one exists.
    pub access: Option<Access>,
    /// Human-readable context (declared keyset summary, scope state,
    /// the conflicting partner — the "backtrace" of the violation).
    pub context: String,
}

impl fmt::Display for ViolationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?}: track {} ts {} wave {}",
            self.kind, self.track, self.ts, self.wave
        )?;
        if let Some(a) = &self.access {
            write!(f, " [{a}]")?;
        }
        write!(f, " — {}", self.context)
    }
}

/// The shadow-tracker interface the engine records into. Mirrors
/// `pushtap_trace::TraceSink`: implementations are shared behind an
/// `Arc`, and the default [`NullSanitizer`] reports itself disabled so
/// instrumented paths skip everything after one branch.
///
/// Scopes are identified by `(track, ts)` — a cross-shard transaction
/// prepares one scope per participating engine, all at the same pinned
/// timestamp. Wave assignment is per-transaction (by ts alone): the
/// coordinator announces it once, before the wave's prepares fan out.
pub trait AccessSink: fmt::Debug + Send + Sync {
    /// Whether the sink wants records at all. Instrumented paths check
    /// this before constructing anything.
    fn enabled(&self) -> bool {
        true
    }

    /// A transaction scope opened on engine `track` at pinned `ts`,
    /// declaring the keyset the scheduler ordered it by.
    fn begin_scope(&self, track: u32, ts: u64, reads: &[SanKey], writes: &[SanKey]);

    /// A physical access inside (what should be) the scope at
    /// `(track, ts)`.
    fn record_access(&self, track: u32, ts: u64, access: Access);

    /// The scope's effects are fully applied and the engine parked it
    /// prepared (two-phase-commit vote "yes"). Declared-footprint and
    /// wave-isolation checks run here.
    fn prepare_scope(&self, track: u32, ts: u64);

    /// Coordinator commit decision for the prepared scope.
    fn commit_scope(&self, track: u32, ts: u64);

    /// Coordinator abort decision for the prepared scope.
    fn abort_scope(&self, track: u32, ts: u64);

    /// Mid-apply rollback of a scope that never reached prepare (a
    /// `DeltaFull` strike). The declared-footprint check still runs —
    /// the partial attempt's accesses must have been declared too.
    fn abort_active(&self, track: u32, ts: u64);

    /// The coordinator assigned transaction `ts` to overlapped `wave`
    /// (1-based; transactions never announced stay wave 0 = solo).
    fn assign_wave(&self, ts: u64, wave: u64);

    /// A batch boundary: no scope may still be open anywhere, and the
    /// engines report `prepared_versions` prepared-but-undecided
    /// versions (must be zero). Resets wave bookkeeping.
    fn batch_end(&self, prepared_versions: u64);

    /// A snapshot pin registered at `cut` (mirrors
    /// `TsOracle::pin_snapshot`): from now until the matching
    /// [`AccessSink::release_pin`], garbage collection must not free
    /// any version at or above `cut`. Default: ignored.
    fn register_pin(&self, _cut: u64) {}

    /// The pin at `cut` was dropped. Pins are a multiset — each
    /// release undoes exactly one registration. Default: ignored.
    fn release_pin(&self, _cut: u64) {}

    /// Garbage collection on engine `track` folded `row` of `table`
    /// and freed its version at `version_ts` (the newest timestamp the
    /// fold releases — every other freed version is older). Fires
    /// [`ViolationKind::ReclaimedPinnedVersion`] if a registered pin
    /// could still read it. Default: ignored.
    fn reclaim_version(&self, _track: u32, _table: u32, _row: u64, _version_ts: u64) {}

    /// The open-loop front-end admitted transaction `ts` with stamped
    /// arrival time `arrival_ps` (simulated picoseconds). Arms the
    /// no-execution-before-arrival check for this transaction until
    /// the next batch boundary. Default: ignored.
    fn note_arrival(&self, _ts: u64, _arrival_ps: u64) {}

    /// Engine `track` is about to start executing transaction `ts`
    /// with its clock at `now_ps`. Fires
    /// [`ViolationKind::ExecutedBeforeArrival`] if the transaction has
    /// a noted arrival later than `now_ps`. Default: ignored.
    fn begin_execution(&self, _track: u32, _ts: u64, _now_ps: u64) {}

    /// Shard `track`'s inbox holds `depth` admitted-but-undispatched
    /// transactions against configured `bound`. Fires
    /// [`ViolationKind::InboxOverflow`] when `depth > bound`.
    /// Default: ignored.
    fn inbox_admit(&self, _track: u32, _depth: u64, _bound: u64) {}
}

/// The default sink: disabled, records nothing, costs one branch.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSanitizer;

impl AccessSink for NullSanitizer {
    fn enabled(&self) -> bool {
        false
    }
    fn begin_scope(&self, _: u32, _: u64, _: &[SanKey], _: &[SanKey]) {}
    fn record_access(&self, _: u32, _: u64, _: Access) {}
    fn prepare_scope(&self, _: u32, _: u64) {}
    fn commit_scope(&self, _: u32, _: u64) {}
    fn abort_scope(&self, _: u32, _: u64) {}
    fn abort_active(&self, _: u32, _: u64) {}
    fn assign_wave(&self, _: u64, _: u64) {}
    fn batch_end(&self, _: u64) {}
}

/// One open scope's shadow state.
#[derive(Debug, Clone)]
struct Scope {
    /// Declared read keys, sorted.
    reads: Vec<SanKey>,
    /// Declared write keys (rows and rings), sorted.
    writes: Vec<SanKey>,
    /// Physical accesses recorded so far, in order.
    accesses: Vec<Access>,
    /// Whether the engine parked the scope prepared.
    prepared: bool,
}

impl Scope {
    /// Whether `access` is covered by the declared keyset.
    fn covers(&self, access: &Access) -> bool {
        let row = SanKey::Row(access.table, access.key);
        match access.kind {
            AccessKind::Read => {
                self.reads.binary_search(&row).is_ok() || self.writes.binary_search(&row).is_ok()
            }
            AccessKind::Write | AccessKind::ChainGrow => self.writes.binary_search(&row).is_ok(),
            // The physical insert row is picked by the runtime ring
            // cursor; any declared ring of the same table vouches for
            // it (the ring *is* the conflict unit for inserts).
            AccessKind::InsertWrite => {
                self.writes.binary_search(&row).is_ok()
                    || self
                        .writes
                        .iter()
                        .any(|k| matches!(k, SanKey::Ring(t, _) if *t == access.table))
            }
            AccessKind::RingAdvance => self
                .writes
                .binary_search(&SanKey::Ring(access.table, access.key))
                .is_ok(),
        }
    }

    fn declared_summary(&self) -> String {
        format!(
            "declared {} read keys / {} write keys",
            self.reads.len(),
            self.writes.len()
        )
    }
}

/// The armed tracker's interior state (behind the sink's mutex).
#[derive(Debug, Default)]
struct Shadow {
    /// Open scopes by (track, ts).
    scopes: BTreeMap<(u32, u64), Scope>,
    /// Wave assignment by ts (absent = solo / serial).
    waves: BTreeMap<u64, u64>,
    /// Lockset-style wave occupancy: which transactions touched which
    /// conflict key inside which wave, and whether as a writer.
    wave_keys: BTreeMap<(u64, SanKey), Vec<(u64, bool)>>,
    /// Registered snapshot pins: cut → live registrations. Mirrors the
    /// oracle's pin registry; pins outlive batch boundaries (a
    /// long-pinned snapshot spans batches by design).
    pins: BTreeMap<u64, usize>,
    /// Open-loop arrival stamps by ts: no execution of the transaction
    /// may start before its arrival. Cleared at batch boundaries.
    arrivals: BTreeMap<u64, u64>,
    /// Everything detected so far.
    violations: Vec<ViolationReport>,
    /// Physical accesses checked (coverage statistic).
    checked: u64,
    /// Scopes opened (coverage statistic).
    scopes_seen: u64,
}

impl Shadow {
    fn violate(
        &mut self,
        kind: ViolationKind,
        track: u32,
        ts: u64,
        access: Option<Access>,
        context: String,
    ) {
        let wave = self.waves.get(&ts).copied().unwrap_or(0);
        self.violations.push(ViolationReport {
            kind,
            track,
            ts,
            wave,
            access,
            context,
        });
    }

    /// Declared-footprint check over everything the scope touched.
    fn check_coverage(&mut self, track: u32, ts: u64, scope: &Scope) {
        for access in &scope.accesses {
            self.checked += 1;
            if !scope.covers(access) {
                self.violate(
                    ViolationKind::UndeclaredAccess,
                    track,
                    ts,
                    Some(*access),
                    format!(
                        "physical access outside the declared keyset ({}) — \
                         decompose and execute disagree",
                        scope.declared_summary()
                    ),
                );
            }
        }
    }

    /// Wave-isolation check: fold the scope's touched keys into its
    /// wave's occupancy map, flagging any key already occupied by a
    /// *different* transaction when either side writes.
    fn check_wave(&mut self, track: u32, ts: u64, scope: &Scope) {
        let Some(&wave) = self.waves.get(&ts) else {
            return;
        };
        let mut touched: BTreeMap<SanKey, bool> = BTreeMap::new();
        for access in &scope.accesses {
            let (key, write) = access.conflict_key();
            *touched.entry(key).or_insert(false) |= write;
        }
        for (key, write) in touched {
            let occupants = self.wave_keys.entry((wave, key)).or_default();
            let clash = occupants
                .iter()
                .find(|(other, other_write)| *other != ts && (write || *other_write))
                .copied();
            if let Some((other, _)) = clash {
                self.violations.push(ViolationReport {
                    kind: ViolationKind::WaveConflict,
                    track,
                    ts,
                    wave,
                    access: None,
                    context: format!(
                        "wave {wave} overlaps ts {ts} and ts {other} on conflicting \
                         key {key:?} — the scheduler's conflict predicate missed it"
                    ),
                });
            }
            match occupants.iter_mut().find(|(t, _)| *t == ts) {
                Some(slot) => slot.1 |= write,
                None => occupants.push((ts, write)),
            }
        }
    }

    fn close_scope(&mut self, track: u32, ts: u64, decision: &str) -> Option<Scope> {
        match self.scopes.remove(&(track, ts)) {
            Some(scope) if scope.prepared => Some(scope),
            Some(scope) => {
                self.violate(
                    ViolationKind::UnbalancedPrepare,
                    track,
                    ts,
                    None,
                    format!("{decision} decision for a scope that never prepared"),
                );
                Some(scope)
            }
            None => {
                self.violate(
                    ViolationKind::UnbalancedPrepare,
                    track,
                    ts,
                    None,
                    format!("{decision} decision with no open scope"),
                );
                None
            }
        }
    }
}

/// The armed tracker: shadow scope/wave state behind a mutex,
/// violations accumulated for the caller to drain. Install one shared
/// instance across all engines of a deployment
/// (`ShardedHtap::set_sanitizer`) so cross-shard scopes of one
/// transaction and wave occupancy land in one place.
#[derive(Debug, Default)]
pub struct ShadowSanitizer {
    state: Mutex<Shadow>,
}

impl ShadowSanitizer {
    /// A fresh armed tracker with no recorded state.
    pub fn new() -> ShadowSanitizer {
        ShadowSanitizer::default()
    }

    fn state(&self) -> std::sync::MutexGuard<'_, Shadow> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// All violations detected so far (cloned; the tracker keeps them).
    pub fn violations(&self) -> Vec<ViolationReport> {
        self.state().violations.clone()
    }

    /// Drains and returns the detected violations.
    pub fn take_violations(&self) -> Vec<ViolationReport> {
        std::mem::take(&mut self.state().violations)
    }

    /// Whether nothing has been detected.
    pub fn is_clean(&self) -> bool {
        self.state().violations.is_empty()
    }

    /// Physical accesses put through the declared-footprint check.
    pub fn checked_accesses(&self) -> u64 {
        self.state().checked
    }

    /// Transaction scopes opened on any engine.
    pub fn scopes_tracked(&self) -> u64 {
        self.state().scopes_seen
    }

    /// Panics with a readable report if any violation was detected —
    /// the assertion armed test suites run after a batch.
    ///
    /// # Panics
    ///
    /// Panics when violations exist, listing every report.
    pub fn assert_clean(&self, label: &str) {
        let violations = self.violations();
        if violations.is_empty() {
            return;
        }
        let mut msg = format!(
            "{label}: sanitizer detected {} violation(s):",
            violations.len()
        );
        for v in &violations {
            msg.push_str("\n  ");
            msg.push_str(&v.to_string());
        }
        panic!("{msg}");
    }
}

impl AccessSink for ShadowSanitizer {
    fn begin_scope(&self, track: u32, ts: u64, reads: &[SanKey], writes: &[SanKey]) {
        let mut s = self.state();
        s.scopes_seen += 1;
        let mut reads = reads.to_vec();
        let mut writes = writes.to_vec();
        reads.sort_unstable();
        writes.sort_unstable();
        let prior = s.scopes.insert(
            (track, ts),
            Scope {
                reads,
                writes,
                accesses: Vec::new(),
                prepared: false,
            },
        );
        if prior.is_some() {
            s.violate(
                ViolationKind::UnbalancedPrepare,
                track,
                ts,
                None,
                "scope begun while one was already open at the same ts".to_string(),
            );
        }
    }

    fn record_access(&self, track: u32, ts: u64, access: Access) {
        let mut s = self.state();
        match s.scopes.get_mut(&(track, ts)) {
            Some(scope) => scope.accesses.push(access),
            None => s.violate(
                ViolationKind::AccessOutsideScope,
                track,
                ts,
                Some(access),
                "physical access with no open transaction scope".to_string(),
            ),
        }
    }

    fn prepare_scope(&self, track: u32, ts: u64) {
        let mut s = self.state();
        let Some(mut scope) = s.scopes.remove(&(track, ts)) else {
            s.violate(
                ViolationKind::UnbalancedPrepare,
                track,
                ts,
                None,
                "prepare with no open scope".to_string(),
            );
            return;
        };
        if scope.prepared {
            s.violate(
                ViolationKind::UnbalancedPrepare,
                track,
                ts,
                None,
                "scope prepared twice".to_string(),
            );
        }
        scope.prepared = true;
        s.check_coverage(track, ts, &scope);
        s.check_wave(track, ts, &scope);
        s.scopes.insert((track, ts), scope);
    }

    fn commit_scope(&self, track: u32, ts: u64) {
        self.state().close_scope(track, ts, "commit");
    }

    fn abort_scope(&self, track: u32, ts: u64) {
        self.state().close_scope(track, ts, "abort");
    }

    fn abort_active(&self, track: u32, ts: u64) {
        let mut s = self.state();
        match s.scopes.remove(&(track, ts)) {
            // A mid-apply rollback never prepared; its partial accesses
            // must still have been declared (decompose is retry-stable).
            Some(scope) if !scope.prepared => s.check_coverage(track, ts, &scope),
            Some(_) => s.violate(
                ViolationKind::UnbalancedPrepare,
                track,
                ts,
                None,
                "active-abort of a scope already parked prepared".to_string(),
            ),
            None => s.violate(
                ViolationKind::UnbalancedPrepare,
                track,
                ts,
                None,
                "active-abort with no open scope".to_string(),
            ),
        }
    }

    fn assign_wave(&self, ts: u64, wave: u64) {
        self.state().waves.insert(ts, wave);
    }

    fn batch_end(&self, prepared_versions: u64) {
        let mut s = self.state();
        let open: Vec<(u32, u64)> = s.scopes.keys().copied().collect();
        for (track, ts) in open {
            let prepared = s.scopes[&(track, ts)].prepared;
            s.violate(
                ViolationKind::UnbalancedPrepare,
                track,
                ts,
                None,
                format!(
                    "scope still open at batch end (state: {})",
                    if prepared {
                        "prepared, undecided"
                    } else {
                        "active"
                    }
                ),
            );
        }
        if prepared_versions != 0 {
            s.violate(
                ViolationKind::PreparedAtBatchEnd,
                0,
                0,
                None,
                format!("{prepared_versions} prepared version(s) survived the batch boundary"),
            );
        }
        s.scopes.clear();
        s.waves.clear();
        s.wave_keys.clear();
        s.arrivals.clear();
    }

    fn register_pin(&self, cut: u64) {
        *self.state().pins.entry(cut).or_insert(0) += 1;
    }

    fn release_pin(&self, cut: u64) {
        let mut s = self.state();
        match s.pins.get_mut(&cut) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                s.pins.remove(&cut);
            }
            None => s.violate(
                ViolationKind::UnbalancedPrepare,
                0,
                0,
                None,
                format!("pin release at cut {cut} with no matching registration"),
            ),
        }
    }

    fn reclaim_version(&self, track: u32, table: u32, row: u64, version_ts: u64) {
        let mut s = self.state();
        let Some(&oldest) = s.pins.keys().next() else {
            return;
        };
        if version_ts >= oldest {
            s.violate(
                ViolationKind::ReclaimedPinnedVersion,
                track,
                version_ts,
                Some(Access {
                    kind: AccessKind::Write,
                    table,
                    key: row,
                }),
                format!(
                    "gc freed a version at ts {version_ts} while a snapshot is \
                     pinned at cut {oldest} — the pinned reader could still \
                     visit it"
                ),
            );
        }
    }

    fn note_arrival(&self, ts: u64, arrival_ps: u64) {
        self.state().arrivals.insert(ts, arrival_ps);
    }

    fn begin_execution(&self, track: u32, ts: u64, now_ps: u64) {
        let mut s = self.state();
        let Some(&arrival) = s.arrivals.get(&ts) else {
            // No stamped arrival (a closed-loop batch): nothing to hold
            // execution against.
            return;
        };
        if now_ps < arrival {
            s.violate(
                ViolationKind::ExecutedBeforeArrival,
                track,
                ts,
                None,
                format!(
                    "execution started at {now_ps} ps but the transaction \
                     arrives at {arrival} ps — the schedule ran work from \
                     the future"
                ),
            );
        }
    }

    fn inbox_admit(&self, track: u32, depth: u64, bound: u64) {
        if depth > bound {
            self.state().violate(
                ViolationKind::InboxOverflow,
                track,
                0,
                None,
                format!(
                    "inbox depth {depth} exceeds its configured bound {bound} \
                     — admission control failed to reject"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(table: u32, key: u64) -> Access {
        Access {
            kind: AccessKind::Read,
            table,
            key,
        }
    }

    fn write(table: u32, key: u64) -> Access {
        Access {
            kind: AccessKind::Write,
            table,
            key,
        }
    }

    /// A healthy lifecycle — declared accesses, balanced decisions,
    /// clean batch end — stays silent.
    #[test]
    fn clean_lifecycle_reports_nothing() {
        let san = ShadowSanitizer::new();
        san.begin_scope(0, 1, &[SanKey::Row(2, 7)], &[SanKey::Row(0, 0)]);
        san.record_access(0, 1, read(2, 7));
        san.record_access(0, 1, write(0, 0));
        san.record_access(
            0,
            1,
            Access {
                kind: AccessKind::ChainGrow,
                table: 0,
                key: 0,
            },
        );
        san.prepare_scope(0, 1);
        san.commit_scope(0, 1);
        san.batch_end(0);
        san.assert_clean("clean lifecycle");
        assert_eq!(san.checked_accesses(), 3);
        assert_eq!(san.scopes_tracked(), 1);
    }

    /// Inserts are covered by any declared ring of the same table:
    /// the physical row is the runtime cursor's pick.
    #[test]
    fn insert_rows_covered_by_declared_ring() {
        let san = ShadowSanitizer::new();
        san.begin_scope(0, 1, &[], &[SanKey::Ring(3, 2)]);
        san.record_access(
            0,
            1,
            Access {
                kind: AccessKind::InsertWrite,
                table: 3,
                key: 4711,
            },
        );
        san.record_access(
            0,
            1,
            Access {
                kind: AccessKind::RingAdvance,
                table: 3,
                key: 2,
            },
        );
        san.prepare_scope(0, 1);
        san.commit_scope(0, 1);
        san.batch_end(0);
        san.assert_clean("insert under ring");
    }

    /// Injected violation: a row write the scope never declared fires
    /// `UndeclaredAccess` with the offending access attached.
    #[test]
    fn undeclared_row_write_fires() {
        let san = ShadowSanitizer::new();
        san.begin_scope(1, 9, &[SanKey::Row(0, 1)], &[SanKey::Row(0, 2)]);
        san.record_access(1, 9, read(0, 1));
        san.record_access(1, 9, write(0, 3)); // never declared
        san.prepare_scope(1, 9);
        let v = san.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].kind, ViolationKind::UndeclaredAccess);
        assert_eq!(v[0].track, 1);
        assert_eq!(v[0].ts, 9);
        assert_eq!(v[0].access, Some(write(0, 3)));
    }

    /// A read is covered by a declared *write* of the same row (the
    /// scheduler's writes dominate reads), but a write is never covered
    /// by a declared read.
    #[test]
    fn write_key_covers_read_but_not_conversely() {
        let san = ShadowSanitizer::new();
        san.begin_scope(0, 1, &[], &[SanKey::Row(0, 5)]);
        san.record_access(0, 1, read(0, 5));
        san.prepare_scope(0, 1);
        san.commit_scope(0, 1);
        assert!(san.is_clean());

        san.begin_scope(0, 2, &[SanKey::Row(0, 6)], &[]);
        san.record_access(0, 2, write(0, 6));
        san.prepare_scope(0, 2);
        let v = san.take_violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::UndeclaredAccess);
    }

    /// Injected violation: an access with no open scope fires
    /// `AccessOutsideScope`.
    #[test]
    fn access_outside_scope_fires() {
        let san = ShadowSanitizer::new();
        san.record_access(2, 4, write(1, 0));
        let v = san.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::AccessOutsideScope);
        assert_eq!(v[0].track, 2);
    }

    /// Injected violation: a prepare left undecided at the batch
    /// boundary fires `UnbalancedPrepare`; surviving prepared versions
    /// fire `PreparedAtBatchEnd`.
    #[test]
    fn unbalanced_prepare_fires_at_batch_end() {
        let san = ShadowSanitizer::new();
        san.begin_scope(0, 3, &[], &[SanKey::Row(0, 1)]);
        san.record_access(0, 3, write(0, 1));
        san.prepare_scope(0, 3);
        // No decision ever arrives.
        san.batch_end(2);
        let v = san.violations();
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].kind, ViolationKind::UnbalancedPrepare);
        assert!(v[0].context.contains("prepared, undecided"));
        assert_eq!(v[1].kind, ViolationKind::PreparedAtBatchEnd);
    }

    /// Injected violation: decisions without a prepare fire
    /// `UnbalancedPrepare` in both directions (commit and abort).
    #[test]
    fn decision_without_prepare_fires() {
        let san = ShadowSanitizer::new();
        san.commit_scope(0, 7);
        san.begin_scope(0, 8, &[], &[]);
        san.abort_scope(0, 8); // abort decision, but the scope never prepared
        let v = san.violations();
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|r| r.kind == ViolationKind::UnbalancedPrepare));
    }

    /// Injected violation: two transactions assigned to the same wave
    /// touching the same key with a writer involved fire
    /// `WaveConflict`; read/read sharing stays silent.
    #[test]
    fn cross_two_pc_same_wave_conflict_fires() {
        let san = ShadowSanitizer::new();
        san.assign_wave(10, 3);
        san.assign_wave(11, 3);
        san.begin_scope(0, 10, &[], &[SanKey::Row(0, 5)]);
        san.record_access(0, 10, write(0, 5));
        san.prepare_scope(0, 10);
        san.begin_scope(1, 11, &[SanKey::Row(0, 5)], &[]);
        san.record_access(1, 11, read(0, 5));
        san.prepare_scope(1, 11);
        let v = san.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].kind, ViolationKind::WaveConflict);
        assert_eq!(v[0].wave, 3);
        assert!(v[0].context.contains("ts 10"));
    }

    /// Read/read sharing inside a wave (the replicated ITEM pattern)
    /// never conflicts, and different waves never interact.
    #[test]
    fn wave_check_ignores_read_sharing_and_other_waves() {
        let san = ShadowSanitizer::new();
        for (ts, wave) in [(20, 1), (21, 1), (22, 2)] {
            san.assign_wave(ts, wave);
            san.begin_scope(0, ts, &[SanKey::Row(7, 0)], &[SanKey::Row(0, ts)]);
            san.record_access(0, ts, read(7, 0));
            san.record_access(0, ts, write(0, ts));
            san.prepare_scope(0, ts);
            san.commit_scope(0, ts);
        }
        san.batch_end(0);
        san.assert_clean("read sharing");
    }

    /// The same transaction preparing on two engines (a cross-shard
    /// 2PC) never conflicts with itself, and a retry at the same ts
    /// after an abort re-occupies its keys without self-conflict.
    #[test]
    fn same_ts_scopes_and_retries_do_not_self_conflict() {
        let san = ShadowSanitizer::new();
        san.assign_wave(5, 1);
        san.begin_scope(0, 5, &[], &[SanKey::Row(0, 1)]);
        san.record_access(0, 5, write(0, 1));
        san.prepare_scope(0, 5);
        san.begin_scope(1, 5, &[], &[SanKey::Row(0, 9)]);
        san.record_access(1, 5, write(0, 9));
        san.prepare_scope(1, 5);
        // Participant voted no: both scopes abort, then the home shard
        // retries the whole thing at the same pinned ts.
        san.abort_scope(0, 5);
        san.abort_scope(1, 5);
        san.begin_scope(0, 5, &[], &[SanKey::Row(0, 1)]);
        san.record_access(0, 5, write(0, 1));
        san.prepare_scope(0, 5);
        san.commit_scope(0, 5);
        san.batch_end(0);
        san.assert_clean("retry at pinned ts");
    }

    /// GC reclamation strictly below every registered pin stays
    /// silent; at or above any pin it fires `ReclaimedPinnedVersion`.
    #[test]
    fn reclaimed_pinned_version_fires() {
        let san = ShadowSanitizer::new();
        san.register_pin(10);
        san.reclaim_version(0, 1, 7, 9); // below the pin: fine
        assert!(san.is_clean());
        san.reclaim_version(2, 1, 7, 10); // at the pin: a pinned reader could see it
        let v = san.take_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].kind, ViolationKind::ReclaimedPinnedVersion);
        assert_eq!(v[0].track, 2);
        assert_eq!(v[0].ts, 10);
        assert!(
            v[0].context.contains("pinned at cut 10"),
            "{}",
            v[0].context
        );
        // Releasing the pin lifts the floor.
        san.release_pin(10);
        san.reclaim_version(0, 1, 7, 10);
        san.assert_clean("after release");
    }

    /// Pins are a multiset: a duplicate registration keeps the floor
    /// until the last release; pins survive batch boundaries.
    #[test]
    fn pins_are_refcounted_and_survive_batches() {
        let san = ShadowSanitizer::new();
        san.register_pin(5);
        san.register_pin(5);
        san.release_pin(5);
        san.batch_end(0);
        san.reclaim_version(0, 0, 0, 6);
        assert_eq!(
            san.violations()[0].kind,
            ViolationKind::ReclaimedPinnedVersion
        );
    }

    /// Releasing a pin that was never registered is itself a lifecycle
    /// violation.
    #[test]
    fn unmatched_pin_release_fires() {
        let san = ShadowSanitizer::new();
        san.release_pin(3);
        let v = san.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::UnbalancedPrepare);
        assert!(v[0].context.contains("no matching registration"));
    }

    /// `NullSanitizer` is disabled — the hot path's single branch.
    #[test]
    fn null_sanitizer_is_disabled() {
        assert!(!NullSanitizer.enabled());
        let shadow = ShadowSanitizer::new();
        assert!(AccessSink::enabled(&shadow));
    }

    /// Violation reports render their context for humans.
    #[test]
    fn reports_render() {
        let san = ShadowSanitizer::new();
        san.record_access(3, 12, write(1, 44));
        let v = san.violations();
        let text = v[0].to_string();
        assert!(text.contains("AccessOutsideScope"), "{text}");
        assert!(text.contains("track 3"), "{text}");
        assert!(text.contains("global row 44"), "{text}");
    }

    /// Front-end causality, clean side: execution at or after the noted
    /// arrival passes, and a transaction with no noted arrival (a
    /// closed-loop batch) is never held against one.
    #[test]
    fn execution_at_or_after_arrival_is_clean() {
        let san = ShadowSanitizer::new();
        san.note_arrival(7, 1_000);
        san.begin_execution(0, 7, 1_000); // exactly at arrival
        san.begin_execution(1, 7, 5_000); // later, another shard
        san.begin_execution(0, 8, 0); // no arrival noted: exempt
        san.assert_clean("on-time execution");
    }

    /// Injected violation: execution before the stamped arrival fires
    /// `ExecutedBeforeArrival` with the offending clocks in context.
    #[test]
    fn executed_before_arrival_fires() {
        let san = ShadowSanitizer::new();
        san.note_arrival(9, 2_000);
        san.begin_execution(2, 9, 1_999);
        let v = san.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].kind, ViolationKind::ExecutedBeforeArrival);
        assert_eq!(v[0].track, 2);
        assert_eq!(v[0].ts, 9);
        assert!(v[0].context.contains("arrives at 2000"), "{}", v[0].context);
    }

    /// Arrival stamps are batch-scoped: after `batch_end` the same ts
    /// may execute at any clock (a fresh batch reuses timestamps).
    #[test]
    fn arrivals_clear_at_batch_end() {
        let san = ShadowSanitizer::new();
        san.note_arrival(4, 10_000);
        san.batch_end(0);
        san.begin_execution(0, 4, 0);
        san.assert_clean("arrival cleared at batch boundary");
    }

    /// Inbox admission at or below the bound is clean; one past it
    /// fires `InboxOverflow` naming the shard.
    #[test]
    fn inbox_overflow_fires_past_bound() {
        let san = ShadowSanitizer::new();
        san.inbox_admit(0, 1, 4);
        san.inbox_admit(0, 4, 4); // exactly at the bound: admissible
        san.assert_clean("inbox within bound");
        san.inbox_admit(3, 5, 4);
        let v = san.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::InboxOverflow);
        assert_eq!(v[0].track, 3);
        assert!(v[0].context.contains("bound 4"), "{}", v[0].context);
    }
}
