//! Durability for the sharded service: per-shard effect WALs, the
//! coordinator decision log, crash-point fault injection, and the
//! recovery report types.
//!
//! # The logging protocol
//!
//! Every engine owns one effect log ([`pushtap_wal::Wal`]). When a
//! prepare succeeds, the coordinator appends the transaction's effect
//! subset on that shard as an [`EffectRecord`](pushtap_oltp::EffectRecord)
//! — volatile until the
//! next **group-commit force**. The force barrier runs once per wave
//! per involved shard (pipelined) or per two-phase commit / local
//! bucket (serial), *before* the shard's votes reach the coordinator:
//! a shard never votes yes on records a crash could still lose.
//!
//! Cross-shard transactions additionally need the coordinator's
//! **decision log**: after the vote barrier, the coordinator appends
//! one `Commit(ts)` entry per committed cross-shard transaction and
//! forces the decision log *before* any commit decision is delivered.
//! Recovery then resolves prepared-but-undecided scopes by **presumed
//! abort**: a cross-shard record replays only if the decision log holds
//! its timestamp; a warehouse-local record replays iff it is durable
//! (its own force was its commit point).
//!
//! The ordering gives the durable image a crucial shape: it is always
//! the records of some prefix of complete waves plus a possibly-torn
//! final wave — and a wave's members are mutually conflict-free, so
//! *any* durable subset of the torn wave replays to the same bytes the
//! untouched reference commits for those transactions.
//!
//! # Crash points
//!
//! A [`CrashPoint`] arms an in-process simulated kill at one of six
//! [`CrashSite`]s of the `event`-th wave (pipelined) or cross-shard
//! two-phase commit (serial). The coordinator stops dead at the site —
//! pending log bytes evaporate, forced bytes survive — and the service
//! refuses further batches; a test then harvests the durable bytes and
//! recovers them into a fresh deployment
//! ([`ShardedHtap::recover`](crate::ShardedHtap::recover)).

use pushtap_mvcc::Ts;
use pushtap_pim::Ps;
use pushtap_wal::{Wal, WalTrim};

/// Where in the commit protocol an armed crash kills the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSite {
    /// Before the target wave / two-phase commit starts: nothing of it
    /// is logged or applied.
    BeforePrepare,
    /// After every prepare (and its log append) of the target, before
    /// any force barrier: the target's records are pending and die with
    /// the process.
    AfterPrepare,
    /// Mid effect-log flush: the force barriers are underway — earlier
    /// shards' logs are fully forced, the last involved shard's force
    /// tears mid-record, later bytes are lost.
    MidEffectFlush,
    /// Between the vote barrier and the decision-log write: every
    /// effect record is durable, but no decision is — recovery must
    /// presume abort for the target's cross-shard transactions.
    BetweenVoteAndDecision,
    /// Mid decision-log write: the decision entries are appended and
    /// the force tears them mid-record.
    MidDecisionLogWrite,
    /// After the decision log is durable, before any commit decision is
    /// applied to an engine: recovery must *commit* the decided scopes.
    AfterDecision,
}

impl CrashSite {
    /// Every site, in protocol order — the deterministic kill-point
    /// matrix enumerates this.
    pub const ALL: [CrashSite; 6] = [
        CrashSite::BeforePrepare,
        CrashSite::AfterPrepare,
        CrashSite::MidEffectFlush,
        CrashSite::BetweenVoteAndDecision,
        CrashSite::MidDecisionLogWrite,
        CrashSite::AfterDecision,
    ];
}

/// An armed in-process kill: die at `site` of the `event`-th wave
/// (pipelined coordinator, 1-based) or the `event`-th cross-shard
/// two-phase commit (serial coordinator, 1-based). If the batch has
/// fewer events the crash never fires and the batch completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// The protocol point to die at.
    pub site: CrashSite,
    /// Which wave / cross-shard 2PC to die in (1-based).
    pub event: u64,
}

/// The durable bytes a crashed deployment leaves behind: one effect-log
/// image per shard plus the coordinator decision log. This is what a
/// disk would hold after the kill — the only input
/// [`ShardedHtap::recover`](crate::ShardedHtap::recover) gets.
#[derive(Debug, Clone)]
pub struct WalBytes {
    /// Per-shard effect-log images, indexed by shard.
    pub shards: Vec<Vec<u8>>,
    /// The coordinator decision-log image.
    pub decisions: Vec<u8>,
}

impl WalBytes {
    /// Reads the log images a file-backed deployment
    /// ([`crate::ShardedHtap::enable_wal_files`]) wrote under `dir`:
    /// `shard-<i>.wal` for each of `shards` shards plus
    /// `decisions.wal`.
    ///
    /// # Errors
    ///
    /// Propagates the file read errors.
    pub fn read_dir(dir: &std::path::Path, shards: u32) -> std::io::Result<WalBytes> {
        let shards = (0..shards)
            .map(|i| std::fs::read(dir.join(format!("shard-{i}.wal"))))
            .collect::<std::io::Result<Vec<_>>>()?;
        let decisions = std::fs::read(dir.join("decisions.wal"))?;
        Ok(WalBytes { shards, decisions })
    }
}

/// One shard's recovery outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardRecovery {
    /// Valid records recovered from the log's longest valid prefix.
    pub records: u64,
    /// Records replayed and committed (decided cross-shard records plus
    /// every durable warehouse-local record).
    pub replayed: u64,
    /// Durable records *skipped* by presumed abort: prepared cross-shard
    /// scopes whose commit decision never became durable.
    pub skipped: u64,
    /// Durable records superseded by a later append at the same
    /// timestamp: a wave casualty's forced record and its serial
    /// retry's log byte-identical payloads (decomposition is
    /// retry-stable), and replay keeps the last. Always
    /// `replayed + skipped + duplicates == records`.
    pub duplicates: u64,
    /// Row-level effects applied during replay.
    pub effects: u64,
    /// Bytes discarded past the log's longest valid prefix (torn tail).
    pub truncated_bytes: u64,
    /// Whether the log had a torn tail.
    pub torn: bool,
    /// `DeltaFull` retries during replay (replay reclaims arenas with
    /// the same defragment-and-retry loop as live execution; byte
    /// identity is unaffected — that is the invariant the crash-point
    /// suite proves).
    pub defrag_retries: u64,
}

/// What [`ShardedHtap::recover`](crate::ShardedHtap::recover) did.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Per-shard replay outcomes, indexed by shard.
    pub per_shard: Vec<ShardRecovery>,
    /// Every transaction recovery committed (home-side records),
    /// ascending by timestamp — the exact committed stream the
    /// recovered deployment now holds.
    pub committed: Vec<Ts>,
    /// Commit decisions recovered from the decision log.
    pub decisions: u64,
    /// Bytes discarded past the decision log's longest valid prefix.
    pub decision_truncated: u64,
    /// The timestamp watermark after recovery: past every timestamp any
    /// durable record mentioned, so post-recovery batches allocate
    /// fresh timestamps.
    pub watermark: Ts,
}

impl RecoveryReport {
    /// Total records replayed and committed across shards.
    pub fn replayed(&self) -> u64 {
        self.per_shard.iter().map(|s| s.replayed).sum()
    }

    /// Total durable records presumed-abort skipped across shards.
    pub fn skipped(&self) -> u64 {
        self.per_shard.iter().map(|s| s.skipped).sum()
    }
}

/// What [`ShardedHtap::checkpoint`](crate::ShardedHtap::checkpoint)
/// reclaimed: per-log truncation stats under the snapshot cut the
/// checkpoint compacted below.
#[derive(Debug, Clone)]
pub struct CheckpointReport {
    /// The cut the checkpoint compacted below — the oracle watermark at
    /// checkpoint time; every durable record sat at or under it.
    pub cut: Ts,
    /// Per-shard effect-log truncation stats, indexed by shard.
    pub per_shard: Vec<WalTrim>,
    /// Decision-log truncation stats. Compacted effect records carry
    /// `cross = false` (their commit decision is baked in), so every
    /// decision entry at or below the cut is dropped outright.
    pub decisions: WalTrim,
}

impl CheckpointReport {
    /// Total bytes reclaimed across every log.
    pub fn bytes_reclaimed(&self) -> u64 {
        self.decisions.bytes_reclaimed()
            + self
                .per_shard
                .iter()
                .map(WalTrim::bytes_reclaimed)
                .sum::<u64>()
    }

    /// Total records dropped across every log.
    pub fn records_dropped(&self) -> u64 {
        self.decisions.records_dropped
            + self
                .per_shard
                .iter()
                .map(|t| t.records_dropped)
                .sum::<u64>()
    }
}

/// The decision-log payload for `Commit(ts)`: the timestamp, little
/// endian. Presumed abort needs no abort entries.
pub(crate) fn encode_decision(ts: Ts) -> [u8; 8] {
    ts.0.to_le_bytes()
}

/// Decodes a decision-log payload (the frame checksum already vouched
/// for the bytes).
pub(crate) fn decode_decision(payload: &[u8]) -> Ts {
    let bytes: [u8; 8] = match payload.try_into() {
        Ok(b) => b,
        Err(_) => panic!(
            "decision record must be exactly 8 bytes, got {} — log format version skew",
            payload.len()
        ),
    };
    Ts(u64::from_le_bytes(bytes))
}

/// The durability state a deployment owns once its WAL is enabled.
pub(crate) struct Durability {
    /// One effect log per shard.
    pub logs: Vec<Wal>,
    /// The coordinator decision log.
    pub decision_log: Wal,
    /// An armed crash point (cleared only by recovery into a fresh
    /// deployment — a crashed service stays dead).
    pub armed: Option<CrashPoint>,
    /// Whether an armed crash has fired.
    pub crashed: bool,
}

impl std::fmt::Debug for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Durability")
            .field("logs", &self.logs.len())
            .field("armed", &self.armed)
            .field("crashed", &self.crashed)
            .finish()
    }
}

/// The coordinator's borrowed view of a batch's durability state.
pub(crate) struct DurabilityCtx<'a> {
    /// Per-shard effect logs.
    pub logs: &'a mut [Wal],
    /// The decision log.
    pub decision_log: &'a mut Wal,
    /// Group-commit force latency, charged per force barrier.
    pub force_latency: Ps,
    /// The armed crash point, if any.
    pub armed: Option<CrashPoint>,
    /// Set when the armed crash fires; the coordinator stops dead.
    pub crashed: bool,
}

impl DurabilityCtx<'_> {
    /// The armed crash site if it targets 1-based protocol event
    /// `event` and has not fired yet.
    pub fn armed_at(&self, event: u64) -> Option<CrashSite> {
        match self.armed {
            Some(p) if p.event == event && !self.crashed => Some(p.site),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_entries_round_trip() {
        for ts in [0u64, 1, 42, u64::MAX] {
            assert_eq!(decode_decision(&encode_decision(Ts(ts))), Ts(ts));
        }
    }

    #[test]
    fn crash_sites_enumerate_in_protocol_order() {
        assert_eq!(CrashSite::ALL.len(), 6);
        assert_eq!(CrashSite::ALL[0], CrashSite::BeforePrepare);
        assert_eq!(CrashSite::ALL[5], CrashSite::AfterDecision);
    }

    #[test]
    fn armed_ctx_matches_only_its_event() {
        let (mut a, _) = Wal::in_memory();
        let (mut b, _) = Wal::in_memory();
        let ctx = DurabilityCtx {
            logs: std::slice::from_mut(&mut a),
            decision_log: &mut b,
            force_latency: Ps::ZERO,
            armed: Some(CrashPoint {
                site: CrashSite::AfterPrepare,
                event: 3,
            }),
            crashed: false,
        };
        assert_eq!(ctx.armed_at(2), None);
        assert_eq!(ctx.armed_at(3), Some(CrashSite::AfterPrepare));
        let fired = DurabilityCtx {
            crashed: true,
            ..ctx
        };
        assert_eq!(fired.armed_at(3), None, "a fired crash never re-fires");
    }
}
