//! The sharded HTAP service: N PUSHtap engines behind one router, one
//! transaction coordinator (stream-order execution + two-phase commit
//! for cross-shard writes — see [`crate::coordinator`]), and one
//! scatter-gather query coordinator.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::Path;
use std::sync::Arc;
use std::thread;

use pushtap_chbench::{Table, TxnGen};
use pushtap_core::{Pushtap, QueryReport};
use pushtap_format::LayoutError;
use pushtap_mvcc::{Ts, TsOracle};
use pushtap_olap::{merge_partials, Query};
use pushtap_oltp::{codec, ColumnWrite, Effect, EffectRecord, Partition, TaggedEffect, TxnRole};
use pushtap_pim::Ps;
use pushtap_sanitizer::AccessSink;
use pushtap_trace::{Histogram, Phase, Span, TraceSink};
use pushtap_wal::{scan, MemLog, Wal, WalTrim};

use crate::arrival::ArrivalGen;
use crate::config::{CommitConfig, OpenLoopConfig, ShardConfig};
use crate::coordinator;
use crate::coordinator::schedule::WaveScheduler;
use crate::durability::{
    decode_decision, CheckpointReport, CrashPoint, Durability, DurabilityCtx, RecoveryReport,
    ShardRecovery, WalBytes,
};
use crate::partition::WarehouseMap;
use crate::report::{
    CoordStats, OpenLoopReport, RemoteTouches, ShardLoad, ShardOltpReport, ShardQueryReport,
};
use crate::router::TxnRouter;

/// Harvest handles onto an in-memory WAL deployment's durable bytes
/// ([`ShardedHtap::enable_wal`]): they outlive the service, so a test
/// can "kill" it (drop it at its armed crash point) and still read what
/// a disk would hold.
#[derive(Debug, Clone)]
pub struct WalHandles {
    /// Per-shard effect-log handles, indexed by shard.
    pub shards: Vec<MemLog>,
    /// The coordinator decision-log handle.
    pub decisions: MemLog,
}

impl WalHandles {
    /// Snapshots every log's durable bytes — the input
    /// [`ShardedHtap::recover`] takes.
    #[must_use]
    pub fn harvest(&self) -> WalBytes {
        WalBytes {
            shards: self.shards.iter().map(MemLog::bytes).collect(),
            decisions: self.decisions.bytes(),
        }
    }
}

/// A warehouse-partitioned deployment of PUSHtap engines.
///
/// Each shard is a complete [`Pushtap`] instance — its own simulated
/// memory system, PIM scan engine, MVCC state, and clock — holding the
/// shard's slice of the fact tables and a full replica of the dimension
/// tables. Transactions route by home warehouse and execute in global
/// stream order: warehouse-local ones on concurrent per-shard queues,
/// cross-shard ones as coordinator-driven two-phase commits that
/// forward remote-owned effects to their owning shards
/// ([`crate::coordinator`]). Analytical queries scatter to every shard
/// (each runs its snapshot + two-phase PIM scan concurrently) and
/// gather by merging distributive partials.
///
/// All shards share one [`TsOracle`]: the coordinator stamps every
/// routed transaction with a timestamp drawn in global stream order, so
/// the deployment commits the *exact* timestamp sequence a single
/// unpartitioned instance would — and, timestamps being encoded into
/// stored rows, holds byte-identical committed state. Analytical queries
/// agree on the oracle's watermark as a global snapshot cut before
/// scattering, so a cross-shard answer reflects one consistent cut
/// rather than per-shard clocks.
#[derive(Debug)]
pub struct ShardedHtap {
    cfg: ShardConfig,
    router: TxnRouter,
    shards: Vec<Pushtap>,
    oracle: Arc<TsOracle>,
    durability: Option<Durability>,
}

impl ShardedHtap {
    /// Builds and populates all shards.
    ///
    /// # Errors
    ///
    /// Propagates layout-generation errors from any shard build.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero shards or fewer warehouses
    /// than shards.
    pub fn new(cfg: ShardConfig) -> Result<ShardedHtap, LayoutError> {
        assert!(cfg.shards > 0, "need at least one shard");
        let map = WarehouseMap::new(&cfg.base.db, cfg.shards);
        let oracle = Arc::new(TsOracle::new());
        let shards = (0..cfg.shards)
            .map(|i| {
                let mut shard =
                    Pushtap::new_partitioned(cfg.base.clone(), Partition::of(i, cfg.shards))?;
                // One timestamp sequence for the whole deployment: the
                // precondition for byte identity with the single-instance
                // reference and for global-cut snapshots.
                shard.share_timestamps(Arc::clone(&oracle));
                Ok(shard)
            })
            .collect::<Result<Vec<_>, LayoutError>>()?;
        Ok(ShardedHtap {
            router: TxnRouter::new(map),
            cfg,
            shards,
            oracle,
            durability: None,
        })
    }

    /// Turns on write-ahead logging over in-memory stores: one effect
    /// log per shard plus the coordinator decision log. Returns harvest
    /// handles that outlive the service, so a crash-point test can kill
    /// the deployment and still read the durable bytes. Forces charge
    /// [`crate::CommitConfig::force_latency`] to the forcing shard's
    /// clock (group commit amortizes one force across a wave or
    /// bucket).
    pub fn enable_wal(&mut self) -> WalHandles {
        let (logs, handles): (Vec<Wal>, Vec<MemLog>) =
            (0..self.shards.len()).map(|_| Wal::in_memory()).unzip();
        let (decision_log, decisions) = Wal::in_memory();
        self.durability = Some(Durability {
            logs,
            decision_log,
            armed: None,
            crashed: false,
        });
        WalHandles {
            shards: handles,
            decisions,
        }
    }

    /// Turns on write-ahead logging over real files under `dir`:
    /// `shard-<i>.wal` per shard plus `decisions.wal`, the layout
    /// [`WalBytes::read_dir`] reads back. Used by the CI crash-recovery
    /// smoke; tests prefer [`ShardedHtap::enable_wal`].
    ///
    /// # Errors
    ///
    /// Propagates log-file creation errors.
    pub fn enable_wal_files(&mut self, dir: &Path) -> std::io::Result<()> {
        let logs = (0..self.shards.len())
            .map(|i| Wal::to_file(&dir.join(format!("shard-{i}.wal"))))
            .collect::<std::io::Result<Vec<_>>>()?;
        let decision_log = Wal::to_file(&dir.join("decisions.wal"))?;
        self.durability = Some(Durability {
            logs,
            decision_log,
            armed: None,
            crashed: false,
        });
        Ok(())
    }

    /// Whether write-ahead logging is enabled.
    pub fn wal_enabled(&self) -> bool {
        self.durability.is_some()
    }

    /// Arms a simulated kill at `point`: the next batch stops dead when
    /// it reaches the site, leaving only forced bytes behind. The
    /// service then refuses further batches ([`ShardedHtap::crashed`]);
    /// harvest the logs and [`ShardedHtap::recover`] into a fresh
    /// deployment.
    ///
    /// # Panics
    ///
    /// Panics if the WAL is not enabled — a crash without durable logs
    /// has nothing to prove.
    pub fn arm_crash(&mut self, point: CrashPoint) {
        let Some(d) = self.durability.as_mut() else {
            panic!("arm_crash requires an enabled WAL");
        };
        d.armed = Some(point);
    }

    /// Whether an armed crash has fired. A crashed service is dead: it
    /// refuses further batches, exactly like the process it simulates.
    pub fn crashed(&self) -> bool {
        self.durability.as_ref().is_some_and(|d| d.crashed)
    }

    /// Rebuilds a deployment from the durable log bytes a crash left
    /// behind: builds the seed database fresh (deterministic), replays
    /// each shard's longest valid log prefix through the ordinary
    /// `prepare`/`commit` pipeline at the original pinned timestamps —
    /// committing warehouse-local records outright and cross-shard
    /// records only if the decision log vouches for them (presumed
    /// abort) — and advances the shared oracle past every durable
    /// timestamp. The recovered service has no WAL enabled (call
    /// [`ShardedHtap::enable_wal`] again to keep logging).
    ///
    /// Replay defragments and retries on `DeltaFull` exactly like live
    /// execution, so recovery succeeds under delta pressure and — by
    /// retry-stability of the effect decomposition — reconstructs
    /// byte-identical committed state.
    ///
    /// # Errors
    ///
    /// Propagates layout-generation errors from the fresh build.
    ///
    /// # Panics
    ///
    /// Panics if `logs` has a different shard count than `cfg`, or if a
    /// checksummed record fails to decode (log format version skew —
    /// torn or corrupt records are *truncated* by the scan, never
    /// decoded).
    pub fn recover(
        cfg: ShardConfig,
        logs: &WalBytes,
    ) -> Result<(ShardedHtap, RecoveryReport), LayoutError> {
        let mut service = ShardedHtap::new(cfg)?;
        let report = service.replay(logs);
        Ok((service, report))
    }

    /// [`ShardedHtap::recover`] with a trace sink installed first, so
    /// the replay emits per-shard [`Phase::Recovery`] spans into the
    /// same timeline as the post-recovery batches.
    ///
    /// # Errors
    ///
    /// Propagates layout-generation errors from the fresh build.
    pub fn recover_traced(
        cfg: ShardConfig,
        logs: &WalBytes,
        sink: Arc<dyn TraceSink>,
    ) -> Result<(ShardedHtap, RecoveryReport), LayoutError> {
        let mut service = ShardedHtap::new(cfg)?;
        service.set_trace_sink(sink);
        let report = service.replay(logs);
        Ok((service, report))
    }

    /// Replays harvested log bytes into this (freshly built) deployment.
    fn replay(&mut self, logs: &WalBytes) -> RecoveryReport {
        assert_eq!(
            logs.shards.len(),
            self.shards.len(),
            "log images must match the deployment's shard count"
        );
        let dscan = scan(&logs.decisions);
        let decided: BTreeSet<u64> = dscan.records.iter().map(|p| decode_decision(p).0).collect();
        let decided = &decided;
        type ShardOutcome = (usize, ShardRecovery, Vec<Ts>, u64);
        let results: Vec<ShardOutcome> = thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .zip(logs.shards.iter())
                .enumerate()
                .map(|(i, (shard, bytes))| {
                    scope.spawn(move || (i, replay_shard(shard, bytes, decided)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    let (i, (rec, committed, max_ts)) = coordinator::join_worker(h);
                    (i, rec, committed, max_ts)
                })
                .collect()
        });
        let mut per_shard = vec![ShardRecovery::default(); self.shards.len()];
        let mut committed: Vec<Ts> = Vec::new();
        let mut watermark = 0u64;
        for (i, rec, c, max_ts) in results {
            per_shard[i] = rec;
            committed.extend(c);
            watermark = watermark.max(max_ts);
        }
        committed.sort_unstable();
        // Past every timestamp any durable record mentioned — skipped
        // (presumed-abort) records included, their timestamps were
        // allocated — so post-recovery batches draw fresh ones.
        self.oracle.advance_to(Ts(watermark));
        RecoveryReport {
            per_shard,
            committed,
            decisions: dscan.records.len() as u64,
            decision_truncated: dscan.truncated_bytes,
            watermark: Ts(watermark),
        }
    }

    /// The deployment-wide timestamp oracle all shards draw from.
    pub fn ts_oracle(&self) -> &Arc<TsOracle> {
        &self.oracle
    }

    /// The configuration in effect.
    pub fn cfg(&self) -> &ShardConfig {
        &self.cfg
    }

    /// The partitioning map.
    pub fn map(&self) -> &WarehouseMap {
        self.router.map()
    }

    /// The router.
    pub fn router(&self) -> &TxnRouter {
        &self.router
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The shard engines.
    pub fn shards(&self) -> &[Pushtap] {
        &self.shards
    }

    /// One shard engine.
    pub fn shard(&self, i: u32) -> &Pushtap {
        &self.shards[i as usize]
    }

    /// Routes every engine's and the coordinator's lifecycle spans to
    /// `sink`. Shard `i`'s spans carry track `i`, so a merged trace
    /// renders one row per shard (see `pushtap_trace::chrome`). The
    /// default [`pushtap_trace::NullSink`] is disabled and keeps the hot
    /// path span-free; install a [`pushtap_trace::MemSink`] before a
    /// batch to collect its timeline.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        for (i, shard) in self.shards.iter_mut().enumerate() {
            shard.set_trace_sink(Arc::clone(&sink), i as u32);
        }
    }

    /// Arms a keyset-soundness shadow tracker on every engine. Shard
    /// `i`'s mirrored accesses and scopes carry track `i`; the wave
    /// coordinator additionally reports each wave's membership, so the
    /// tracker can cross-check declared keysets, wave isolation and
    /// prepared-scope discipline across the whole deployment. Install a
    /// [`pushtap_sanitizer::ShadowSanitizer`] before a batch and assert
    /// [`ShadowSanitizer::is_clean`](pushtap_sanitizer::ShadowSanitizer::is_clean)
    /// after; the default `NullSanitizer` keeps unarmed runs at one
    /// branch per hook. Hooks charge zero simulated time, so arming
    /// never perturbs committed bytes.
    pub fn set_sanitizer(&mut self, san: Arc<dyn AccessSink>) {
        for (i, shard) in self.shards.iter_mut().enumerate() {
            shard.set_sanitizer(Arc::clone(&san), i as u32);
        }
    }

    /// A transaction generator over the *global* population (home
    /// warehouses across every shard) — the stream a front-end would
    /// hand the router.
    pub fn global_txn_gen(&self, seed: u64) -> TxnGen {
        let m = self.map();
        TxnGen::new(seed, m.warehouses(), m.customers(), m.items(), m.stocks())
    }

    /// Per-shard generators whose home warehouses stay inside each
    /// shard's range *and* whose customer/stock rows come from the home
    /// warehouse's stripe ([`pushtap_chbench::RemoteMix::LOCAL`]) — the
    /// perfectly-partitionable load used to measure peak scale-out
    /// throughput. No row a generated transaction touches is owned by
    /// another shard, so no two-phase commit ever fires on this load.
    pub fn local_txn_gens(&self, seed: u64) -> Vec<TxnGen> {
        let m = *self.map();
        (0..self.shard_count())
            .map(|i| {
                TxnGen::with_warehouse_range(
                    seed.wrapping_add(i as u64),
                    m.warehouse_range(i),
                    m.customers(),
                    m.items(),
                    m.stocks(),
                )
                .with_remote_mix(pushtap_chbench::RemoteMix::LOCAL, m.warehouses())
            })
            .collect()
    }

    /// Routes `n` transactions from a global stream and executes them in
    /// stream order: warehouse-local transactions run in concurrent
    /// per-shard queues, cross-shard transactions run as coordinator-
    /// driven two-phase commits (effects forwarded to their owning
    /// shards — see [`crate::coordinator`]). Every transaction is
    /// stamped with its stream-order timestamp from the shared oracle at
    /// routing time, so the deployment commits exactly the timestamps a
    /// single unpartitioned instance executing the same stream would.
    pub fn run_txns(&mut self, gen: &mut TxnGen, n: u64) -> ShardOltpReport {
        let batch = gen.batch(n as usize);
        let (stream, remote) = self.router.route_stream(batch, &self.oracle);
        let (per_shard, coord) = self.execute_stream(stream);
        ShardOltpReport {
            per_shard,
            remote,
            coord,
        }
    }

    /// Executes `per_shard` transactions on every shard from that
    /// shard's own warehouse-local stream (all shards run concurrently;
    /// no transaction crosses a shard, so no two-phase commit fires).
    pub fn run_local_txns(&mut self, seed: u64, per_shard: u64) -> ShardOltpReport {
        // Each generator's home warehouses lie inside its own shard's
        // range, so routing the concatenated streams re-creates exactly
        // the per-shard batches (order preserved within each shard).
        let batch: Vec<_> = self
            .local_txn_gens(seed)
            .iter_mut()
            .flat_map(|g| g.batch(per_shard as usize))
            .collect();
        let (stream, remote) = self.router.route_stream(batch, &self.oracle);
        debug_assert_eq!(
            remote.remote_touches, 0,
            "warehouse-local streams must never cross shards"
        );
        let (per_shard, coord) = self.execute_stream(stream);
        ShardOltpReport {
            per_shard,
            remote,
            coord,
        }
    }

    /// Runs a routed stream through the coordinator: stamps every
    /// transaction's conflict keyset (derived from the home engine's
    /// read-only decomposition — the wave scheduler's input; skipped
    /// under the serial oracle, which never reads it) and executes
    /// under the configured [`crate::CoordinatorMode`].
    fn execute_stream(
        &mut self,
        mut stream: Vec<crate::router::RoutedTxn>,
    ) -> (Vec<ShardLoad>, crate::report::CoordStats) {
        assert!(
            !self.crashed(),
            "service crashed at its armed crash point; harvest the logs and \
             recover into a fresh deployment"
        );
        if self.cfg.mode == crate::CoordinatorMode::Pipelined {
            for routed in &mut stream {
                routed.keys = self.shards[routed.shard as usize]
                    .db()
                    .keyset(&routed.txn, routed.ts);
            }
        }
        for routed in &stream {
            let home = &self.shards[routed.shard as usize];
            if home.trace_enabled() {
                // Ingestion marker: the stream-order point where this
                // transaction entered its home shard's pipeline.
                home.trace_record(Span::instant(
                    home.trace_track(),
                    Phase::Routed,
                    routed.ts.0,
                    home.now().ps(),
                ));
            }
        }
        let map = *self.router.map();
        let force_latency = self.cfg.commit.force_latency;
        let mut ctx = self.durability.as_mut().map(|d| DurabilityCtx {
            logs: &mut d.logs,
            decision_log: &mut d.decision_log,
            force_latency,
            armed: d.armed,
            crashed: d.crashed,
        });
        let out = coordinator::execute_stream(
            &mut self.shards,
            &map,
            stream,
            self.cfg.commit,
            self.cfg.mode,
            ctx.as_mut(),
        );
        let crashed = ctx.map(|c| c.crashed); // consumes ctx, ending its borrow
        if let (Some(crashed), Some(d)) = (crashed, self.durability.as_mut()) {
            d.crashed = crashed;
        }
        // Batch boundary for the shadow tracker: every scope must be
        // decided and zero prepared versions may linger. A crashed batch
        // legitimately leaves prepared scopes behind (recovery resolves
        // them by presumed abort), so the boundary check is skipped.
        if !self.crashed() {
            let san = self.shards[0].db().sanitizer();
            if san.enabled() {
                let pending: u64 = self.shards.iter().map(|s| s.db().prepared_versions()).sum();
                san.batch_end(pending);
            }
        }
        out
    }

    /// Drives the deployment **open-loop**: `n` transactions arrive on
    /// the simulated clock of `arrivals` (not back-to-back), pass
    /// admission control at their home shard's bounded inbox, and are
    /// scheduled incrementally by a sliding-window [`WaveScheduler`]
    /// whose frontier waves dispatch whenever every engine would
    /// otherwise sit idle (work conservation) or the window fills.
    ///
    /// Rejected arrivals draw **no** timestamp, so the admitted stream
    /// carries contiguous oracle timestamps and commits byte-identical
    /// state to a closed-loop run of the same admitted transactions —
    /// the invariant `crates/shard/tests/open_loop.rs` proves.
    ///
    /// # Panics
    ///
    /// Panics if the service crashed at an armed crash point, if a WAL
    /// is attached (open-loop durability is future work), if the
    /// coordinator mode is not [`crate::CoordinatorMode::Pipelined`]
    /// (the serial oracle has no wave scheduler to feed), or if `open`
    /// has a zero inbox depth or window.
    pub fn run_open_loop(
        &mut self,
        gen: &mut TxnGen,
        arrivals: &mut ArrivalGen,
        n: u64,
        open: &OpenLoopConfig,
    ) -> OpenLoopReport {
        assert!(
            !self.crashed(),
            "service crashed at its armed crash point; harvest the logs and \
             recover into a fresh deployment"
        );
        assert!(
            self.durability.is_none(),
            "open-loop runs do not support an attached WAL yet"
        );
        assert_eq!(
            self.cfg.mode,
            crate::CoordinatorMode::Pipelined,
            "open-loop scheduling requires the pipelined coordinator"
        );
        assert!(open.inbox_depth > 0, "inbox depth must be positive");
        assert!(open.window > 0, "scheduling window must be positive");

        /// One dispatch step: pop the scheduler's frontier wave, move
        /// its members from waiting to in-flight, and execute it
        /// (clock-gated to its members' arrivals). A member's inbox
        /// slot stays occupied until its wave *completes* on its home
        /// clock (`in_flight` holds the completion times), the way a
        /// bounded queue counts its in-service customers.
        #[allow(clippy::too_many_arguments)]
        fn dispatch_open_wave(
            shards: &mut [Pushtap],
            map: &WarehouseMap,
            commit: CommitConfig,
            sched: &mut WaveScheduler,
            waiting: &mut [u64],
            in_flight: &mut [VecDeque<Ps>],
            loads: &mut [ShardLoad],
            stats: &mut CoordStats,
            wave_seq: &mut u64,
            sojourn: &mut Histogram,
        ) {
            let Some(wave) = sched.pop_wave() else { return };
            let homes: Vec<usize> = wave.iter().map(|t| t.shard as usize).collect();
            for &h in &homes {
                waiting[h] -= 1;
            }
            *wave_seq += 1;
            coordinator::execute_open_wave(
                shards, map, wave, commit, loads, stats, *wave_seq, sojourn,
            );
            for &h in &homes {
                // Shard clocks are monotone and waves execute in
                // dispatch order, so each queue stays sorted.
                in_flight[h].push_back(shards[h].now());
            }
        }

        let map = *self.router.map();
        let commit = self.cfg.commit;
        let starts: Vec<Ps> = self.shards.iter().map(Pushtap::now).collect();
        let mut loads: Vec<ShardLoad> = (0..self.shards.len())
            .map(|_| ShardLoad::default())
            .collect();
        let mut stats = CoordStats {
            mode: self.cfg.mode,
            ..CoordStats::default()
        };
        let mut remote = RemoteTouches::default();
        let mut sched = WaveScheduler::new(open.window);
        // Inbox occupancy per shard = `waiting` (admitted, not yet
        // dispatched) + `in_flight` (dispatched, wave still completing
        // at the arrival instant under scrutiny — sorted completion
        // clocks, drained lazily as later arrivals pass them).
        let mut waiting: Vec<u64> = vec![0; self.shards.len()];
        let mut in_flight: Vec<VecDeque<Ps>> = vec![VecDeque::new(); self.shards.len()];
        let mut rejected: Vec<u64> = vec![0; self.shards.len()];
        let mut sojourn = Histogram::default();
        let mut inbox_depth = Histogram::default();
        let mut committed_ts: Vec<Ts> = Vec::new();
        let mut admitted_index: Vec<u64> = Vec::new();
        let mut wave_seq = 0u64;
        let mut horizon = Ps::ZERO;
        for arrival_idx in 0..n {
            let txn = gen.next_txn();
            let at = arrivals.next_arrival();
            horizon = at;
            // Work conservation: while every engine would sit idle
            // before this arrival lands, flush pending frontier waves
            // into the gap instead of holding admitted work hostage to
            // a window that may never fill.
            while !sched.is_empty() {
                let busy_until = self
                    .shards
                    .iter()
                    .map(Pushtap::now)
                    .max()
                    .unwrap_or(Ps::ZERO);
                if busy_until >= at {
                    break;
                }
                dispatch_open_wave(
                    &mut self.shards,
                    &map,
                    commit,
                    &mut sched,
                    &mut waiting,
                    &mut in_flight,
                    &mut loads,
                    &mut stats,
                    &mut wave_seq,
                    &mut sojourn,
                );
            }
            let mut routed = self.router.route(txn);
            let home = routed.shard as usize;
            // Free the slots of home transactions whose waves completed
            // before this arrival landed.
            while in_flight[home].front().is_some_and(|&done| done <= at) {
                in_flight[home].pop_front();
            }
            let depth = waiting[home] + in_flight[home].len() as u64;
            if depth >= open.inbox_depth as u64 {
                // Admission control: a full home inbox turns the
                // arrival away *before* it draws a timestamp, keeping
                // the admitted stream's timestamps contiguous. The
                // rejection is counted and traced, never silent.
                rejected[home] += 1;
                let s = &self.shards[home];
                if s.trace_enabled() {
                    s.trace_record(Span::instant(s.trace_track(), Phase::Rejected, 0, at.ps()));
                }
                continue;
            }
            routed.ts = self.oracle.allocate();
            routed.keys = self.shards[home].db().keyset(&routed.txn, routed.ts);
            routed.arrival = at;
            remote.routed += 1;
            if routed.remote > 0 {
                remote.cross_shard_txns += 1;
                remote.remote_touches += routed.remote;
            }
            waiting[home] += 1;
            inbox_depth.record(depth + 1);
            {
                let san = self.shards[home].db().sanitizer();
                if san.enabled() {
                    san.note_arrival(routed.ts.0, at.ps());
                    san.inbox_admit(routed.shard, depth + 1, open.inbox_depth as u64);
                }
            }
            let s = &self.shards[home];
            if s.trace_enabled() {
                // Ingestion marker at the arrival instant (the batch
                // path stamps it at the home clock instead).
                s.trace_record(Span::instant(
                    s.trace_track(),
                    Phase::Routed,
                    routed.ts.0,
                    at.ps(),
                ));
            }
            committed_ts.push(routed.ts);
            admitted_index.push(arrival_idx);
            sched.admit(routed);
            while sched.window_full() {
                dispatch_open_wave(
                    &mut self.shards,
                    &map,
                    commit,
                    &mut sched,
                    &mut waiting,
                    &mut in_flight,
                    &mut loads,
                    &mut stats,
                    &mut wave_seq,
                    &mut sojourn,
                );
            }
        }
        // The arrival process ended; drain everything still queued.
        while !sched.is_empty() {
            dispatch_open_wave(
                &mut self.shards,
                &map,
                commit,
                &mut sched,
                &mut waiting,
                &mut in_flight,
                &mut loads,
                &mut stats,
                &mut wave_seq,
                &mut sojourn,
            );
        }
        debug_assert!(
            waiting.iter().all(|&d| d == 0),
            "drained inboxes must be empty"
        );
        // Batch boundary for the shadow tracker (see execute_stream):
        // every scope decided, no prepared versions, arrivals cleared.
        {
            let san = self.shards[0].db().sanitizer();
            if san.enabled() {
                let pending: u64 = self.shards.iter().map(|s| s.db().prepared_versions()).sum();
                san.batch_end(pending);
            }
        }
        for (i, load) in loads.iter_mut().enumerate() {
            load.elapsed = self.shards[i].now().saturating_sub(starts[i]);
            load.report.gc.merge(&self.shards[i].take_gc_stats());
        }
        OpenLoopReport {
            exec: ShardOltpReport {
                per_shard: loads,
                remote,
                coord: stats,
            },
            arrivals: n,
            rejected_per_shard: rejected,
            sojourn,
            inbox_depth,
            committed_ts,
            admitted_index,
            horizon,
        }
    }

    /// Defragments every shard concurrently (each pauses its own OLTP,
    /// §5.3). Returns the deployment-wide pause: the slowest shard's.
    pub fn defragment_all(&mut self) -> Ps {
        thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .map(|shard| scope.spawn(move || shard.defragment_all().1))
                .collect();
            handles
                .into_iter()
                .map(coordinator::join_worker)
                .max()
                .unwrap_or(Ps::ZERO)
        })
    }

    /// Checkpoints the write-ahead logs: compacts every shard's effect
    /// log below the oracle watermark and drops every covered decision
    /// entry, bounding log growth the way garbage collection bounds
    /// version-chain growth.
    ///
    /// A naive "drop records below the cut" breaks crash recovery's
    /// byte identity: replay reconstructs committed state *from the
    /// log*, so a record may only disappear if the state it built is
    /// re-derivable. The compaction therefore keeps **one record per
    /// committed transaction** — preserving its pinned timestamp and
    /// role, which downstream identity checks reconstruct the committed
    /// stream from — and shrinks its payload to the part that still
    /// matters:
    ///
    /// - presumed-abort casualties (cross-shard records the decision
    ///   log never vouched for) are dropped outright;
    /// - `Read` effects are dropped (they move no bytes);
    /// - `Update` writes survive only on the row+column's **last**
    ///   committed writer, with read-modify-write [`ColumnWrite::Add`]s
    ///   folded into [`ColumnWrite::Set`]s of the newest committed
    ///   bytes ([`pushtap_oltp::TpccDb::committed_column`]) — a row's
    ///   replayed version timestamp still matches, because the row's
    ///   last writer is always some column's last writer;
    /// - `Insert` effects are kept in order (replay rebuilds stripe-
    ///   ring cursors and indexes by re-running them);
    /// - survivors are rewritten with `cross = false`: their commit
    ///   decision is baked into survival itself, so the decision log
    ///   truncates to nothing below the cut.
    ///
    /// Recovery code is untouched — a compacted log replays through the
    /// exact pipeline a full log does, to byte-identical state.
    ///
    /// # Panics
    ///
    /// Panics if the WAL is disabled, the service crashed, a snapshot
    /// pin is active (a pinned reader's cut must stay reconstructible),
    /// or any log holds pending (unforced) bytes — a checkpoint runs on
    /// a quiesced deployment between batches.
    pub fn checkpoint(&mut self) -> CheckpointReport {
        assert!(
            !self.crashed(),
            "checkpoint on a crashed service — recover it instead"
        );
        assert_eq!(
            self.oracle.active_pins(),
            0,
            "checkpoint under an active snapshot pin"
        );
        let cut = self.oracle.watermark();
        let ShardedHtap {
            shards, durability, ..
        } = self;
        let Some(d) = durability.as_mut() else {
            panic!("checkpoint requires an enabled WAL");
        };
        let decided: BTreeSet<u64> = scan(&d.decision_log.durable_image())
            .records
            .iter()
            .map(|p| decode_decision(p).0)
            .collect();
        let per_shard = shards
            .iter()
            .zip(d.logs.iter_mut())
            .map(|(shard, log)| compact_shard_log(shard, log, &decided))
            .collect();
        let decisions = d
            .decision_log
            .truncate_before(|p| (decode_decision(p).0 > cut.0).then(|| p.to_vec()));
        CheckpointReport {
            cut,
            per_shard,
            decisions,
        }
    }

    /// Answers `query` by global-cut scatter-gather: the coordinator
    /// first agrees on the snapshot cut — the shared oracle's current
    /// watermark — then every shard snapshots *at that cut* and runs its
    /// partial concurrently (two-phase PIM scan over its slice), and the
    /// coordinator merges the distributive partials.
    ///
    /// Because every shard cuts at the same timestamp, the merged answer
    /// reflects one consistent global snapshot (every transaction with a
    /// timestamp at or below the cut, nothing newer) rather than each
    /// shard's own clock, and is value-identical to running the query on
    /// a single unpartitioned instance that executed the same committed
    /// transaction stream up to the cut. The agreed cut is recorded in
    /// [`ShardQueryReport::cut`].
    pub fn run_query(&mut self, query: Query) -> ShardQueryReport {
        // Agree on the cut before scattering: the oracle's watermark
        // bounds every committed timestamp on every shard.
        let cut = self.oracle.watermark();
        self.run_query_at(query, cut)
    }

    /// [`ShardedHtap::run_query`] at an explicit snapshot cut — a
    /// historical query. The caller is responsible for the cut's
    /// *reconstructibility*: garbage collection may already have folded
    /// versions a cut below its eligible floor needed, so a long-lived
    /// historical cut must be kept readable with a standing
    /// [`TsOracle::pin_snapshot`] taken while the cut was still at or
    /// above the floor.
    pub fn run_query_at(&mut self, query: Query, cut: Ts) -> ShardQueryReport {
        // Pin the cut for the scatter's duration: garbage collection on
        // any shard may reclaim only strictly below it, so every
        // partial reads its exact as-of-cut versions even if GC runs
        // concurrently. Mirrored to an armed sanitizer, which fires if
        // a reclaimed version violates the pin.
        let _pin = self.oracle.pin_snapshot(cut);
        let san = Arc::clone(self.shards[0].db().sanitizer());
        if san.enabled() {
            san.register_pin(cut.0);
        }
        let partials: Vec<QueryReport> = thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .map(|shard| scope.spawn(move || shard.run_query_at(query, cut)))
                .collect();
            handles.into_iter().map(coordinator::join_worker).collect()
        });
        let scatter_latency = partials.iter().map(|p| p.total()).max().unwrap_or(Ps::ZERO);
        let gathered: u64 = partials.iter().map(|p| p.result.rows()).sum();
        let merge_time = self.shards[0]
            .db()
            .meter()
            .cpu
            .cycles(gathered * self.cfg.merge_cycles_per_row);
        let result = merge_partials(partials.iter().map(|p| p.result.clone()))
            .unwrap_or_else(|| panic!("scatter-gather over zero shards"));
        if san.enabled() {
            san.release_pin(cut.0);
        }
        ShardQueryReport {
            result,
            per_shard: partials,
            scatter_latency,
            merge_time,
            cut,
        }
    }
}

/// Compacts one shard's effect log under a checkpoint (see
/// [`ShardedHtap::checkpoint`] for the invariants): plans per-record
/// rewrites from the shard's committed state, then rewrites the log in
/// place via [`Wal::truncate_before`].
fn compact_shard_log(shard: &Pushtap, log: &mut Wal, decided: &BTreeSet<u64>) -> WalTrim {
    let image = log.durable_image();
    let scanned = scan(&image);
    // Dedupe by timestamp keep-last, mirroring replay (duplicate
    // appends — a wave casualty and its serial retry — are
    // byte-identical by retry-stability).
    let mut by_ts: BTreeMap<u64, EffectRecord> = BTreeMap::new();
    for payload in &scanned.records {
        let r = EffectRecord::decode(payload)
            .unwrap_or_else(|e| panic!("checksummed record must decode ({e:?})"));
        by_ts.insert(r.ts.0, r);
    }
    let committed = |ts: &u64, r: &EffectRecord| !r.cross || decided.contains(ts);
    // Last committed writer per (table, row, column), in ascending
    // timestamp order — the only update writes worth replaying.
    let mut last_writer: BTreeMap<(Table, u64, u32), u64> = BTreeMap::new();
    for (ts, r) in &by_ts {
        if !committed(ts, r) {
            continue;
        }
        for te in &r.effects {
            if let Effect::Update { table, row, writes } = &te.effect {
                for (col, _) in writes {
                    last_writer.insert((*table, *row, *col), *ts);
                }
            }
        }
    }
    let db = shard.db();
    let mut plan: BTreeMap<u64, Option<Vec<u8>>> = BTreeMap::new();
    for (ts, r) in &by_ts {
        if !committed(ts, r) {
            plan.insert(*ts, None); // presumed abort, now permanent
            continue;
        }
        let mut effects: Vec<TaggedEffect> = Vec::new();
        for te in &r.effects {
            match &te.effect {
                Effect::Read { .. } => {} // moves no bytes
                Effect::Insert { .. } => effects.push(te.clone()),
                Effect::Update { table, row, writes } => {
                    let kept: Vec<(u32, ColumnWrite)> = writes
                        .iter()
                        .filter(|(col, _)| last_writer[&(*table, *row, *col)] == *ts)
                        .map(|(col, _)| {
                            (
                                *col,
                                ColumnWrite::Set(db.committed_column(*table, *row, *col)),
                            )
                        })
                        .collect();
                    if !kept.is_empty() {
                        effects.push(TaggedEffect {
                            effect: Effect::Update {
                                table: *table,
                                row: *row,
                                writes: kept,
                            },
                            warehouse: te.warehouse,
                        });
                    }
                }
            }
        }
        // A participant record with nothing left to apply is pure
        // noise; a coordinator record must survive even empty — the
        // committed-stream reconstruction reads home-side roles.
        plan.insert(
            *ts,
            if effects.is_empty() && r.role == TxnRole::Participant {
                None
            } else {
                Some(codec::encode_parts(Ts(*ts), r.role, false, &effects))
            },
        );
    }
    // Emit each surviving timestamp once, at its first occurrence
    // (duplicates are byte-identical, so first-vs-last is immaterial).
    let mut emitted: BTreeSet<u64> = BTreeSet::new();
    log.truncate_before(|payload| {
        let ts = match EffectRecord::decode(payload) {
            Ok(r) => r.ts.0,
            Err(e) => panic!("record decoded on the planning pass must re-decode ({e:?})"),
        };
        if emitted.insert(ts) {
            plan[&ts].clone()
        } else {
            None
        }
    })
}

/// Replays one shard's log image: scans the longest valid record
/// prefix, dedupes by timestamp keeping the last append (a wave attempt
/// and its serial retry log byte-identical records — decomposition is
/// retry-stable — so last-wins is harmless), and re-commits every
/// record that is warehouse-local or decision-log-vouched through the
/// ordinary prepare/commit pipeline at its pinned timestamp. Returns
/// the shard's outcome, the home-side (coordinator-role) timestamps it
/// committed, and the highest timestamp any durable record mentioned.
fn replay_shard(
    shard: &mut Pushtap,
    bytes: &[u8],
    decided: &BTreeSet<u64>,
) -> (ShardRecovery, Vec<Ts>, u64) {
    let log = scan(bytes);
    let mut rec = ShardRecovery {
        records: log.records.len() as u64,
        truncated_bytes: log.truncated_bytes,
        torn: log.torn,
        ..ShardRecovery::default()
    };
    let mut by_ts: BTreeMap<u64, EffectRecord> = BTreeMap::new();
    for payload in &log.records {
        let r = match EffectRecord::decode(payload) {
            Ok(r) => r,
            Err(e) => panic!("checksummed record must decode ({e:?}) — log format version skew"),
        };
        by_ts.insert(r.ts.0, r);
    }
    rec.duplicates = rec.records - by_ts.len() as u64;
    let mut committed: Vec<Ts> = Vec::new();
    let mut max_ts = 0u64;
    let start = shard.now();
    // Ascending timestamp order: per-row commit timestamps must land
    // monotonically, exactly as the live coordinator applied them.
    for (ts, r) in by_ts {
        max_ts = max_ts.max(ts);
        // Presumed abort: a cross-shard record commits only if the
        // decision log vouches for its timestamp. (The force ordering —
        // effect logs before the decision log — guarantees the converse:
        // a durable decision implies durable effect records everywhere.)
        if r.cross && !decided.contains(&ts) {
            rec.skipped += 1;
            continue;
        }
        loop {
            match shard.prepare_effects_at(&r.effects, Ts(ts)) {
                Ok(_) => break,
                Err(_full) => {
                    // Same defragment-and-retry loop as live execution;
                    // retry-stability keeps the committed bytes identical
                    // however often replay has to reclaim arenas.
                    rec.defrag_retries += 1;
                    shard.defragment_all();
                }
            }
        }
        shard.commit_prepared(Ts(ts), r.role);
        rec.replayed += 1;
        rec.effects += r.effects.len() as u64;
        if r.role == TxnRole::Coordinator {
            committed.push(Ts(ts));
        }
    }
    if rec.replayed > 0 && shard.trace_enabled() {
        shard.trace_record(Span::new(
            shard.trace_track(),
            Phase::Recovery,
            0,
            start.ps(),
            shard.now().ps(),
        ));
    }
    (rec, committed, max_ts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushtap_olap::QueryResult;

    fn service(shards: u32) -> ShardedHtap {
        ShardedHtap::new(ShardConfig::small(shards)).expect("build")
    }

    #[test]
    fn build_partitions_fact_tables_and_replicates_dimensions() {
        use pushtap_chbench::Table;
        let s = service(4);
        let ol_total: u64 = (0..4)
            .map(|i| s.shard(i).db().table(Table::OrderLine).n_rows())
            .sum();
        let single = service(1);
        assert_eq!(
            ol_total,
            single.shard(0).db().table(Table::OrderLine).n_rows(),
            "ORDERLINE must partition without loss"
        );
        for i in 0..4 {
            assert_eq!(
                s.shard(i).db().table(Table::Item).n_rows(),
                single.shard(0).db().table(Table::Item).n_rows(),
                "ITEM must be replicated"
            );
        }
    }

    #[test]
    fn routed_batch_commits_everything() {
        let mut s = service(2);
        let mut gen = s.global_txn_gen(3);
        let report = s.run_txns(&mut gen, 120);
        assert_eq!(report.committed(), 120);
        assert_eq!(report.remote.routed, 120);
        assert!(report.makespan() > Ps::ZERO);
        let routed: u64 = report.per_shard.iter().map(|l| l.routed).sum();
        assert_eq!(routed, 120);
    }

    #[test]
    fn local_load_scales_across_shards() {
        let mut s = service(4);
        let report = s.run_local_txns(9, 40);
        assert_eq!(report.committed(), 160);
        // Four engines running concurrently: the makespan must sit well
        // below the summed busy time.
        assert!(report.parallel_efficiency() > 2.0);
    }

    #[test]
    fn two_pc_rounds_cost_time() {
        use crate::config::CommitConfig;
        let mut cheap = ShardConfig::small(4);
        cheap.commit = CommitConfig::FREE;
        let mut dear = ShardConfig::small(4);
        dear.commit = CommitConfig {
            prepare_hop: Ps::from_us(5.0),
            commit_hop: Ps::from_us(5.0),
            ..CommitConfig::FREE
        };
        let mut a = ShardedHtap::new(cheap).expect("build");
        let mut b = ShardedHtap::new(dear).expect("build");
        let mut ga = a.global_txn_gen(7);
        let mut gb = b.global_txn_gen(7);
        let ra = a.run_txns(&mut ga, 100);
        let rb = b.run_txns(&mut gb, 100);
        // Same stream, same routing: identical remote-touch accounting
        // and identical commit rounds — only the hop latency differs.
        assert_eq!(ra.remote.remote_touches, rb.remote.remote_touches);
        assert_eq!(ra.commit_rounds(), rb.commit_rounds());
        assert_eq!(ra.two_pc_time(), Ps::ZERO, "free hops cost nothing");
        assert!(rb.two_pc_time() > Ps::ZERO);
        assert!(rb.remote_time() > ra.remote_time());
        assert!(rb.makespan() > ra.makespan());
        assert!(rb.two_pc_time_share() > 0.0);
    }

    /// Cross-shard transactions go through the full 2PC pipeline: the
    /// home shard prepares, participants receive forwarded effects, and
    /// everything commits — the metrics must say so.
    #[test]
    fn cross_shard_txns_prepare_and_forward_effects() {
        let mut s = service(4);
        let mut gen = s.global_txn_gen(7);
        let report = s.run_txns(&mut gen, 100);
        assert_eq!(report.committed(), 100);
        assert!(report.remote.cross_shard_txns > 0);
        // Every cross-shard transaction prepares at home and on each
        // participant at least once.
        assert!(report.prepared_txns() > report.remote.cross_shard_txns);
        assert!(report.forwarded_effects() >= report.remote.remote_touches);
        assert!(report.commit_rounds() > 0);
        assert!(report.two_pc_time() > Ps::ZERO);
        // No prepared scope survives the batch.
        for shard in s.shards() {
            assert!(!shard.db().in_prepared_txn());
            assert_eq!(shard.db().prepared_versions(), 0);
        }
    }

    #[test]
    fn scatter_gather_merges_all_shards() {
        let mut s = service(2);
        let mut gen = s.global_txn_gen(5);
        s.run_txns(&mut gen, 80);
        let q6 = s.run_query(Query::Q6);
        assert_eq!(q6.per_shard.len(), 2);
        let QueryResult::Q6 { revenue } = q6.result else {
            panic!("wrong kind")
        };
        let partials: u64 = q6
            .per_shard
            .iter()
            .map(|p| {
                let QueryResult::Q6 { revenue } = p.result else {
                    panic!("wrong kind")
                };
                revenue
            })
            .sum();
        assert_eq!(revenue, partials);
        assert!(q6.merge_time > Ps::ZERO);
        assert!(q6.total() >= q6.scatter_latency);
    }

    #[test]
    fn one_oracle_drives_all_shards_and_queries_record_the_cut() {
        let mut s = service(4);
        let mut gen = s.global_txn_gen(13);
        s.run_txns(&mut gen, 96);
        // Stream-order stamping: the oracle handed out exactly one
        // timestamp per routed transaction, and every shard sees the
        // deployment watermark.
        assert_eq!(s.ts_oracle().watermark().0, 96);
        for shard in s.shards() {
            assert_eq!(shard.db().last_ts().0, 96);
        }
        // The scattered query agrees on one cut and records it.
        let q = s.run_query(Query::Q6);
        assert_eq!(q.cut, pushtap_mvcc::Ts(96));
        assert_eq!(q.global_cut(), Some(pushtap_mvcc::Ts(96)));
        for p in &q.per_shard {
            assert_eq!(p.cut.0, 96, "every shard snapshot at the agreed cut");
        }
    }

    #[test]
    fn queries_see_fresh_cross_shard_data() {
        let mut s = service(2);
        let before = s.run_query(Query::Q9);
        let mut gen = s.global_txn_gen(21);
        s.run_txns(&mut gen, 100);
        let after = s.run_query(Query::Q9);
        assert_ne!(before.result, after.result, "Q9 must see new order lines");
    }
}
