//! Open-loop arrival process: deterministic, seeded transaction
//! arrival times in simulated picoseconds.
//!
//! Closed-loop runs (`ShardedHtap::run_txns`) hand the coordinator the
//! whole batch at once — offered load is whatever the engines can
//! absorb, so queueing never appears. The open-loop front-end instead
//! *arrives* transactions over simulated time: [`ArrivalGen`] draws a
//! nondecreasing sequence of absolute arrival timestamps from a seeded
//! Poisson process at a target rate, optionally modulated by an on/off
//! square wave (the burstiness knob) that alternates between a hot
//! half-period at `rate · (1 + b)` and a cold half-period at
//! `rate · (1 − b)` — the mean rate is preserved while bursts stress
//! the inbox bound and the sliding-window scheduler.
//!
//! Determinism is load-bearing: the whole repo's byte-identity proofs
//! rest on replayable streams, so the generator uses the vendored
//! `StdRng` (splitmix-seeded xoshiro256++) and pure integer/f64
//! arithmetic — same seed, same config ⇒ bit-identical arrival times
//! on every platform. No wall clock is ever read.

use pushtap_pim::Ps;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of an open-loop arrival process.
///
/// `rate_tps` is the *mean* offered load in transactions per second of
/// simulated time. `burstiness` in `[0, 1]` modulates the instantaneous
/// rate with a 50%-duty square wave of period `period`: `0.0` is plain
/// homogeneous Poisson, `1.0` alternates between doubled rate and
/// silence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalConfig {
    /// Mean offered load, transactions per simulated second.
    pub rate_tps: f64,
    /// On/off modulation depth in `[0, 1]`: the hot half-period runs at
    /// `rate_tps · (1 + burstiness)`, the cold one at
    /// `rate_tps · (1 − burstiness)`.
    pub burstiness: f64,
    /// Square-wave period of the on/off modulation. Ignored when
    /// `burstiness == 0.0`.
    pub period: Ps,
}

impl ArrivalConfig {
    /// A homogeneous Poisson process at `rate_tps` transactions per
    /// simulated second.
    pub fn poisson(rate_tps: f64) -> ArrivalConfig {
        ArrivalConfig {
            rate_tps,
            burstiness: 0.0,
            period: Ps::ZERO,
        }
    }

    /// An on/off-modulated Poisson process: mean rate `rate_tps`,
    /// modulation depth `burstiness`, square-wave period `period`.
    pub fn bursty(rate_tps: f64, burstiness: f64, period: Ps) -> ArrivalConfig {
        ArrivalConfig {
            rate_tps,
            burstiness,
            period,
        }
    }
}

/// Deterministic, seeded generator of absolute arrival timestamps.
///
/// Successive [`next_arrival`](ArrivalGen::next_arrival) calls return a nondecreasing
/// sequence of simulated-picosecond instants drawn from the configured
/// (possibly nonhomogeneous) Poisson process via inversion: a
/// unit-mean exponential is integrated against the piecewise-constant
/// instantaneous rate, so the same seed and config reproduce the same
/// stream bit for bit.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    cfg: ArrivalConfig,
    rng: StdRng,
    /// Current absolute position on the simulated clock, in picoseconds
    /// (f64 keeps sub-picosecond fractions so high rates don't
    /// accumulate truncation drift; exact up to 2^53 ps ≈ 2.5 h).
    now_ps: f64,
}

impl ArrivalGen {
    /// Creates a generator for `cfg` seeded with `seed`.
    ///
    /// # Panics
    /// Panics if `rate_tps` is not strictly positive and finite, if
    /// `burstiness` is outside `[0, 1]`, or if `burstiness > 0` with a
    /// zero modulation period.
    pub fn new(seed: u64, cfg: ArrivalConfig) -> ArrivalGen {
        assert!(
            cfg.rate_tps.is_finite() && cfg.rate_tps > 0.0,
            "arrival rate must be positive and finite"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.burstiness),
            "burstiness must lie in [0, 1]"
        );
        assert!(
            cfg.burstiness == 0.0 || cfg.period > Ps::ZERO,
            "bursty arrivals need a positive modulation period"
        );
        ArrivalGen {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            now_ps: 0.0,
        }
    }

    /// The configuration this generator draws from.
    pub fn config(&self) -> &ArrivalConfig {
        &self.cfg
    }

    /// A unit-mean exponential variate. The uniform is built from the
    /// top 53 bits of the raw draw, offset into `(0, 1]` so `ln` never
    /// sees zero.
    fn unit_exp(&mut self) -> f64 {
        let u = ((self.rng.next_u64() >> 11) as f64 + 1.0) * (1.0 / (1u64 << 53) as f64);
        -u.ln()
    }

    /// Draws the next absolute arrival time. Nondecreasing across
    /// calls (strictly increasing up to picosecond truncation).
    pub fn next_arrival(&mut self) -> Ps {
        let mut need = self.unit_exp();
        if self.cfg.burstiness == 0.0 {
            // Homogeneous: inter-arrival = E / rate, in picoseconds.
            self.now_ps += need * 1e12 / self.cfg.rate_tps;
            return Ps::new(self.now_ps as u64);
        }
        // Nonhomogeneous inversion: consume `need` units of integrated
        // rate across the piecewise-constant on/off phases.
        let period = self.cfg.period.ps() as f64;
        let half = period / 2.0;
        loop {
            let pos = self.now_ps % period;
            let (rate_tps, span_ps) = if pos < half {
                (self.cfg.rate_tps * (1.0 + self.cfg.burstiness), half - pos)
            } else {
                (
                    self.cfg.rate_tps * (1.0 - self.cfg.burstiness),
                    period - pos,
                )
            };
            let rate_per_ps = rate_tps / 1e12;
            if rate_per_ps > 0.0 {
                let capacity = rate_per_ps * span_ps;
                if capacity >= need {
                    self.now_ps += need / rate_per_ps;
                    break;
                }
                need -= capacity;
            }
            // Rate exhausted (or zero, at burstiness == 1): skip to the
            // phase boundary and keep integrating.
            self.now_ps += span_ps;
        }
        Ps::new(self.now_ps as u64)
    }

    /// Draws `n` arrivals into a vector (test/bench convenience).
    pub fn take(&mut self, n: usize) -> Vec<Ps> {
        (0..n).map(|_| self.next_arrival()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_identical_per_seed() {
        for &b in &[0.0, 0.5, 1.0] {
            let cfg = ArrivalConfig::bursty(50_000.0, b, Ps::from_us(200.0));
            let a = ArrivalGen::new(9, cfg).take(500);
            let b2 = ArrivalGen::new(9, cfg).take(500);
            assert_eq!(a, b2, "same seed must replay bit-identically");
        }
    }

    #[test]
    fn seeds_differ() {
        let cfg = ArrivalConfig::poisson(50_000.0);
        let a = ArrivalGen::new(1, cfg).take(100);
        let b = ArrivalGen::new(2, cfg).take(100);
        assert_ne!(a, b, "different seeds must differ");
    }

    #[test]
    fn nondecreasing() {
        let cfg = ArrivalConfig::bursty(200_000.0, 1.0, Ps::from_us(50.0));
        let times = ArrivalGen::new(3, cfg).take(2_000);
        for w in times.windows(2) {
            assert!(w[1] >= w[0], "arrivals must be nondecreasing");
        }
    }

    #[test]
    fn mean_rate_is_respected() {
        // 100k tps ⇒ mean inter-arrival 10 µs; over 20k draws the
        // empirical rate should land within a few percent, with or
        // without modulation (the square wave preserves the mean).
        for &b in &[0.0, 0.7] {
            let cfg = ArrivalConfig::bursty(100_000.0, b, Ps::from_us(100.0));
            let mut generator = ArrivalGen::new(11, cfg);
            let n = 20_000usize;
            let last = generator.take(n).pop().unwrap();
            let observed = n as f64 / last.as_secs();
            let err = (observed - 100_000.0).abs() / 100_000.0;
            assert!(err < 0.05, "observed rate {observed} off by {err} (b={b})");
        }
    }

    #[test]
    fn burstiness_clusters_arrivals_in_the_hot_phase() {
        let period = Ps::from_us(100.0);
        let cfg = ArrivalConfig::bursty(100_000.0, 0.9, period);
        let mut generator = ArrivalGen::new(5, cfg);
        let (mut hot, mut cold) = (0u64, 0u64);
        for _ in 0..10_000 {
            let at = generator.next_arrival();
            if at.ps() % period.ps() < period.ps() / 2 {
                hot += 1;
            } else {
                cold += 1;
            }
        }
        // rate_on/rate_off = 1.9/0.1 = 19:1; allow generous slack.
        assert!(
            hot > cold * 8,
            "hot phase must dominate: hot={hot} cold={cold}"
        );
    }

    #[test]
    fn full_burstiness_silences_the_cold_phase() {
        let period = Ps::from_us(100.0);
        let cfg = ArrivalConfig::bursty(100_000.0, 1.0, period);
        let mut generator = ArrivalGen::new(6, cfg);
        for _ in 0..5_000 {
            let at = generator.next_arrival();
            assert!(
                at.ps() % period.ps() <= period.ps() / 2,
                "burstiness 1.0 must place every arrival in the hot half"
            );
        }
    }
}
