//! Sharded HTAP service layer over PUSHtap (`pushtap-shard`).
//!
//! The paper's engine is a *single-instance* HTAP system: one unified
//! format store, one PIM memory, one clock. This crate scales it out the
//! way the ROADMAP's production north star (and the HTAP scale-out
//! literature — Polynesia's isolated islands, the survey's partitioned
//! fresh-analytics challenge) demands, while keeping the property that
//! makes PUSHtap special: *per-shard analytics over the unified format
//! are cheap and fresh*, so cross-shard analytics reduce to
//! scatter-gather over distributive partials.
//!
//! The pieces:
//!
//! * [`ShardConfig`] — shard count + the per-shard PUSHtap configuration
//!   plus the scale-out cost knobs (two-phase-commit message-round
//!   latencies in [`CommitConfig`], gather merge cost);
//! * [`WarehouseMap`] — the contiguous warehouse-range partitioning and
//!   its ownership queries (home shard of a warehouse, of a customer
//!   row, of a stock row);
//! * [`TxnRouter`] — routes CH-benCHmark transactions to their home
//!   shard, computes each transaction's *participant set* (the shards
//!   owning its remote-touched rows — NewOrder stock lines and Payment
//!   customers that live elsewhere), and stamps every transaction's
//!   commit timestamp from the deployment's shared
//!   [`pushtap_mvcc::TsOracle`] in *global stream order*;
//! * [`coordinator`] — conflict-aware execution under a
//!   [`CoordinatorMode`] knob. The default *pipelined* path derives
//!   every transaction's keyset ([`pushtap_oltp::KeySet`]) from the
//!   read-only decomposition, cuts the stream into conflict-free
//!   waves ([`coordinator::schedule`]), and executes each wave —
//!   warehouse-local and cross-shard transactions alike — concurrently
//!   with all two-phase-commit prepare/vote/decide rounds overlapped;
//!   the *serial* oracle keeps the original discipline (local
//!   transactions on per-shard queues, every cross-shard transaction
//!   behind a barrier flush with its 2PC run alone). In both modes the
//!   home shard decomposes the transaction into owner-tagged effects
//!   ([`pushtap_oltp::TpccDb::decompose`]), prepares its own, forwards
//!   the rest, collects votes, and commits (or aborts and retries at
//!   the same pinned timestamp) everywhere;
//! * [`ArrivalGen`] / [`OpenLoopConfig`] — the open-loop front-end:
//!   a deterministic seeded arrival process (Poisson plus an on/off
//!   burstiness knob) feeds bounded per-shard inboxes with admission
//!   control, and an incremental sliding-window
//!   [`coordinator::schedule::WaveScheduler`] maintains the batch
//!   scheduler's last-writer/last-reader maps online, dispatching
//!   conflict-free waves as windows close — byte-identical committed
//!   state to the batch path over the admitted stream
//!   ([`ShardedHtap::run_open_loop`], [`OpenLoopReport`]);
//! * [`ShardedHtap`] — the service: N independent [`pushtap_core::Pushtap`]
//!   engines (fact tables warehouse-partitioned, dimension tables
//!   replicated, all drawing timestamps from one oracle), OLTP driven
//!   through the coordinator, and Q1/Q6/Q9 answered by global-cut
//!   scatter-gather with [`pushtap_olap::merge_partials`];
//! * [`ShardOltpReport`] / [`ShardQueryReport`] — per-shard and
//!   aggregate accounting (routed counts, remote touches, makespan,
//!   scatter latency, merge cost, wasted retry latency, the agreed
//!   snapshot cut, the 2PC metrics — prepared transactions,
//!   participant aborts, forwarded effects, commit rounds, the
//!   sequential 2PC-time ledger and the critical-path time that
//!   actually landed on clocks — plus the coordinator's scheduling
//!   stats in [`CoordStats`]: barrier flushes, waves, overlap).
//!
//! # Byte identity
//!
//! The load-time invariant (shards hold byte-identical slices of the
//! global fact rows, full replicas of dimension rows — see
//! [`pushtap_oltp::TpccDb::build_partitioned`]) plus the distributivity
//! of the Q1/Q6/Q9 aggregates make the gathered result *exactly equal*
//! to what a single unpartitioned instance would answer after the same
//! transaction stream. The integration tests assert byte equality
//! against [`pushtap_olap::ref_q1`]/[`ref_q6`](pushtap_olap::ref_q6)/
//! [`ref_q9`](pushtap_olap::ref_q9) at 1, 2, and 4 shards.
//!
//! The identity holds under *delta pressure* too: each engine's
//! transactions are atomic (the `pushtap_mvcc::UndoLog` rolls back
//! partial effects when a delta arena fills mid-statement), so insert
//! rings stay aligned across deployments however often shards abort
//! and retry — `tests/delta_pressure.rs` squeezes every arena until
//! all transaction classes abort and re-asserts the equality, and the
//! shard reports surface the retry/abort counts
//! ([`ShardOltpReport::aborts`]).
//!
//! The shared timestamp oracle lifts the invariant from values to raw
//! bytes, and write forwarding extends it to **every table**: commit
//! timestamps are encoded into stored rows, every shard commits under
//! the globally-stream-ordered timestamps the router stamped, and a
//! transaction's remote-owned CUSTOMER/STOCK effects are forwarded to
//! the owning shard and committed there — under the coordinator's
//! pinned timestamp — by the simulated two-phase commit. A shard's
//! committed table bytes (timestamp columns included) therefore equal
//! the corresponding rows of the unpartitioned reference for all
//! tables, under any remote mix, even when participants abort
//! mid-prepare. Scattered queries first agree on one cut — the
//! oracle's watermark — and every shard snapshots at it, so a
//! cross-shard answer reflects a single global snapshot
//! ([`ShardQueryReport::global_cut`]) rather than per-shard clocks.
//!
//! # Examples
//!
//! ```
//! use pushtap_shard::{ShardConfig, ShardedHtap};
//! use pushtap_olap::Query;
//!
//! let mut service = ShardedHtap::new(ShardConfig::small(2))?;
//! let mut gen = service.global_txn_gen(7);
//! let oltp = service.run_txns(&mut gen, 64);
//! assert_eq!(oltp.committed(), 64);
//! let q6 = service.run_query(Query::Q6);
//! assert!(q6.total() > pushtap_pim::Ps::ZERO);
//! # Ok::<(), pushtap_format::LayoutError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arrival;
mod config;
pub mod coordinator;
pub mod durability;
mod partition;
mod report;
mod router;
mod service;

pub use arrival::{ArrivalConfig, ArrivalGen};
pub use config::{CommitConfig, CoordinatorMode, OpenLoopConfig, ShardConfig};
pub use durability::{
    CheckpointReport, CrashPoint, CrashSite, RecoveryReport, ShardRecovery, WalBytes,
};
pub use partition::WarehouseMap;
pub use report::{
    CoordStats, OpenLoopReport, RemoteTouches, ShardLoad, ShardOltpReport, ShardQueryReport,
};
pub use router::{RoutedTxn, TxnRouter};
pub use service::{ShardedHtap, WalHandles};
