//! Warehouse-range partitioning and row-ownership queries.

use std::ops::Range;

use pushtap_chbench::Table;
use pushtap_oltp::{global_rows, warehouse_of_row, DbConfig, Partition};

/// The global partitioning picture of a deployment: which shard owns
/// which contiguous warehouse range, and — because the other fact tables
/// are split with the same floor rule — which shard owns any fact row.
#[derive(Debug, Clone, Copy)]
pub struct WarehouseMap {
    shards: u32,
    warehouses: u64,
    customers: u64,
    items: u64,
    stocks: u64,
}

impl WarehouseMap {
    /// Derives the map for `shards` shards over the global population of
    /// `db` (see [`global_rows`]).
    ///
    /// # Panics
    ///
    /// Panics if there are fewer warehouses than shards.
    pub fn new(db: &DbConfig, shards: u32) -> WarehouseMap {
        let warehouses = global_rows(db, Table::Warehouse);
        assert!(
            warehouses >= shards as u64,
            "{warehouses} warehouses cannot cover {shards} shards"
        );
        WarehouseMap {
            shards,
            warehouses,
            customers: global_rows(db, Table::Customer),
            items: global_rows(db, Table::Item),
            stocks: global_rows(db, Table::Stock),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Global warehouse population.
    pub fn warehouses(&self) -> u64 {
        self.warehouses
    }

    /// Global customer population.
    pub fn customers(&self) -> u64 {
        self.customers
    }

    /// Global item population (replicated on every shard).
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Global stock population.
    pub fn stocks(&self) -> u64 {
        self.stocks
    }

    /// The contiguous warehouse range shard `shard` owns.
    pub fn warehouse_range(&self, shard: u32) -> Range<u64> {
        Partition::of(shard, self.shards).range(self.warehouses)
    }

    /// The home shard of warehouse `w_id`.
    ///
    /// # Panics
    ///
    /// Panics if `w_id` is out of the global population.
    pub fn shard_of_warehouse(&self, w_id: u64) -> u32 {
        Partition::owner_of(w_id, self.warehouses, self.shards)
    }

    /// The shard owning global customer row `c_row` (via the customer's
    /// home-warehouse stripe — the same split `build_partitioned` uses).
    pub fn shard_of_customer(&self, c_row: u64) -> u32 {
        let w = warehouse_of_row(c_row % self.customers, self.customers, self.warehouses);
        self.shard_of_warehouse(w)
    }

    /// The shard owning global stock row `s_row` (via its warehouse
    /// stripe).
    pub fn shard_of_stock(&self, s_row: u64) -> u32 {
        let w = warehouse_of_row(s_row % self.stocks, self.stocks, self.warehouses);
        self.shard_of_warehouse(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(shards: u32) -> WarehouseMap {
        let mut db = DbConfig::small();
        db.min_warehouses = 8;
        WarehouseMap::new(&db, shards)
    }

    #[test]
    fn ranges_cover_all_warehouses_disjointly() {
        for shards in [1u32, 2, 3, 4, 8] {
            let m = map(shards);
            let mut covered = 0;
            for s in 0..shards {
                let r = m.warehouse_range(s);
                assert_eq!(r.start, covered, "gap before shard {s}");
                covered = r.end;
                for w in r.clone() {
                    assert_eq!(m.shard_of_warehouse(w), s, "warehouse {w}");
                }
            }
            assert_eq!(covered, m.warehouses());
        }
    }

    #[test]
    fn ownership_matches_build_partitioning() {
        // shard_of_* must agree with the warehouse-stripe row ranges
        // build_partitioned hands each shard.
        use pushtap_oltp::stripe_start;
        let m = map(4);
        for s in 0..4 {
            let wr = m.warehouse_range(s);
            let start = stripe_start(wr.start, m.customers(), m.warehouses());
            let end = stripe_start(wr.end, m.customers(), m.warehouses());
            for c in [start, (start + end) / 2, end - 1] {
                assert_eq!(m.shard_of_customer(c), s, "customer {c}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot cover")]
    fn too_many_shards_panics() {
        let db = DbConfig::small(); // 1 warehouse at this scale
        let _ = WarehouseMap::new(&db, 4);
    }
}
