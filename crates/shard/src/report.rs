//! Per-shard and aggregate accounting of the sharded service.

use pushtap_core::{tpmc, OltpReport, QueryReport};
use pushtap_mvcc::Ts;
use pushtap_olap::QueryResult;
use pushtap_pim::Ps;
use pushtap_trace::Histogram;

use crate::config::CoordinatorMode;

/// Aggregate cross-shard accounting of one routed batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemoteTouches {
    /// Transactions routed.
    pub routed: u64,
    /// Transactions that touched at least one remote-owned row.
    pub cross_shard_txns: u64,
    /// Individual remote row touches (NewOrder stock lines + Payment
    /// customers owned by other shards).
    pub remote_touches: u64,
}

impl RemoteTouches {
    /// Fraction of transactions that crossed a shard boundary.
    pub fn cross_shard_fraction(&self) -> f64 {
        if self.routed == 0 {
            0.0
        } else {
            self.cross_shard_txns as f64 / self.routed as f64
        }
    }
}

/// One shard's outcome for one batch.
#[derive(Debug, Clone, Default)]
pub struct ShardLoad {
    /// The engine-level OLTP report (txn time excludes 2PC message
    /// rounds, which are tracked in [`OltpReport::two_pc_time`] and
    /// [`ShardLoad::remote_time`]).
    pub report: OltpReport,
    /// Transactions *homed* at this shard (participant work for
    /// transactions homed elsewhere shows up in
    /// [`OltpReport::forwarded_effects`], not here).
    pub routed: u64,
    /// Remote row touches of transactions homed at this shard (their
    /// effects were forwarded to the owning shards under 2PC).
    pub remote_touches: u64,
    /// Time this shard's clock spent on 2PC message rounds (prepare and
    /// commit/abort deliveries; the decision round-trip on the home
    /// side).
    pub remote_time: Ps,
    /// This shard's wall-clock for the batch (txns + defrag + hops).
    pub elapsed: Ps,
}

/// Coordinator-level scheduling statistics of one routed batch: how the
/// stream was cut into execution units and how much two-phase-commit
/// overlap the schedule extracted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoordStats {
    /// Which coordinator executed the batch.
    pub mode: CoordinatorMode,
    /// Barrier flushes: times the serial coordinator drained the
    /// involved shards' local queues before running a cross-shard
    /// two-phase commit alone (one per cross-shard transaction). The
    /// pipelined coordinator never flushes — waves subsume the barrier —
    /// so this is zero there, which is exactly the reduction the
    /// refactor claims.
    pub barrier_flushes: u64,
    /// Waves scheduled (pipelined only; zero under the serial path).
    pub waves: u64,
    /// Transactions in the largest wave.
    pub max_wave: u64,
    /// Cross-shard two-phase commits that ran concurrently with at
    /// least one other 2PC of the same wave: a wave holding `k ≥ 2` of
    /// them contributes all `k` (each overlapped the others; a wave
    /// casualty retried serially still overlapped on its wave attempt).
    /// Zero under the serial coordinator (every 2PC runs alone).
    pub overlapped_two_pcs: u64,
    /// `Commit(ts)` entries appended to the coordinator decision log
    /// (one per committed cross-shard transaction; zero with the WAL
    /// off).
    pub decision_appends: u64,
    /// Decision-log force barriers (one per wave holding a committed
    /// cross-shard transaction under the pipelined coordinator, one per
    /// committed 2PC under the serial one). Charged to no engine clock:
    /// the decision log is coordinator-side state, forced while the
    /// decision round-trip is already in flight.
    pub decision_forces: u64,
    /// Whether an armed crash point fired during the batch (the stream
    /// stopped dead at the crash site).
    pub crashed: bool,
}

/// The outcome of one batch across all shards.
#[derive(Debug, Clone)]
pub struct ShardOltpReport {
    /// Per-shard loads, indexed by shard.
    pub per_shard: Vec<ShardLoad>,
    /// Aggregate routing/remote accounting.
    pub remote: RemoteTouches,
    /// Coordinator scheduling statistics (waves, overlap, barrier
    /// flushes).
    pub coord: CoordStats,
}

impl ShardOltpReport {
    /// Transactions committed across all shards.
    pub fn committed(&self) -> u64 {
        self.per_shard.iter().map(|s| s.report.committed).sum()
    }

    /// The batch's wall-clock: the slowest shard (shards run
    /// concurrently).
    pub fn makespan(&self) -> Ps {
        self.per_shard
            .iter()
            .map(|s| s.elapsed)
            .max()
            .unwrap_or(Ps::ZERO)
    }

    /// Aggregate transactions-per-minute over the batch makespan,
    /// `cores` driving threads per shard.
    pub fn tpmc(&self, cores: u32) -> f64 {
        tpmc(self.committed(), self.makespan(), cores)
    }

    /// Ratio of the summed per-shard busy time to the makespan — the
    /// parallel speedup actually realised by this batch (≤ shard count;
    /// lower when routing skews load). An empty batch (zero makespan)
    /// realised no speedup and reports 0.0, consistent with how
    /// [`ShardOltpReport::tpmc`] and the time-share accessors degrade on
    /// empty input — it previously claimed a perfect 1.0.
    pub fn parallel_efficiency(&self) -> f64 {
        let makespan = self.makespan();
        if makespan == Ps::ZERO {
            return 0.0;
        }
        let busy: u64 = self.per_shard.iter().map(|s| s.elapsed.ps()).sum();
        busy as f64 / makespan.ps() as f64
    }

    /// Total time spent in defragmentation pauses across shards.
    pub fn defrag_time(&self) -> Ps {
        self.per_shard.iter().map(|s| s.report.defrag_time).sum()
    }

    /// Time shard engines spent in incremental garbage-collection
    /// pauses across all shards.
    pub fn gc_time(&self) -> Ps {
        self.per_shard.iter().map(|s| s.report.gc_time).sum()
    }

    /// Deployment-wide garbage-collection stats: pass counters sum over
    /// every shard's passes; the `live_versions` / `commit_log_len`
    /// gauges sum each shard's end-of-batch sample — the figures the
    /// soak benchmark proves plateau under sustained traffic.
    pub fn gc(&self) -> pushtap_core::GcStats {
        let mut total = pushtap_core::GcStats::default();
        for s in &self.per_shard {
            total.merge(&s.report.gc);
        }
        total
    }

    /// Delta-pressure aborts (rolled-back attempts, each retried
    /// atomically) across all shards.
    pub fn aborts(&self) -> u64 {
        self.per_shard.iter().map(|s| s.report.aborts).sum()
    }

    /// Distinct transactions across all shards that needed at least one
    /// retry before committing.
    pub fn retried_txns(&self) -> u64 {
        self.per_shard.iter().map(|s| s.report.retried_txns).sum()
    }

    /// Total cross-shard coordination time across shards.
    pub fn remote_time(&self) -> Ps {
        self.per_shard.iter().map(|s| s.remote_time).sum()
    }

    /// Latency consumed by rolled-back attempts across all shards —
    /// already included in each shard's transaction time (a retry
    /// charges its failed attempt to the transaction's completion
    /// latency).
    pub fn wasted_retry_time(&self) -> Ps {
        self.per_shard
            .iter()
            .map(|s| s.report.wasted_retry_time)
            .sum()
    }

    /// Two-phase-commit prepare phases completed across all shards
    /// (home halves and forwarded participants; retried attempts count
    /// each time the work was done).
    pub fn prepared_txns(&self) -> u64 {
        self.per_shard.iter().map(|s| s.report.prepared_txns).sum()
    }

    /// Prepared scopes rolled back on a coordinator abort decision
    /// across all shards (a participant's `DeltaFull` aborted the whole
    /// transaction everywhere before its retry).
    pub fn participant_aborts(&self) -> u64 {
        self.per_shard
            .iter()
            .map(|s| s.report.participant_aborts)
            .sum()
    }

    /// Effects applied on non-home shards on behalf of forwarded
    /// transactions.
    pub fn forwarded_effects(&self) -> u64 {
        self.per_shard
            .iter()
            .map(|s| s.report.forwarded_effects)
            .sum()
    }

    /// Two-phase-commit message rounds charged across all shards.
    pub fn commit_rounds(&self) -> u64 {
        self.per_shard.iter().map(|s| s.report.commit_rounds).sum()
    }

    /// Total 2PC message-round latency charged across all shards under
    /// *sequential* delivery — the ledger sum of every hop (one entry
    /// per counted round). The latency that actually landed on the
    /// clocks is [`ShardOltpReport::critical_path_time`]: smaller when
    /// a wave's deliveries overlap in flight, larger when the laggard
    /// vote barrier ([`crate::CommitConfig::vote_jitter`] and slow
    /// participants) stalls a decision past its own hop budget — the
    /// ledger counts hops, not waits.
    pub fn two_pc_time(&self) -> Ps {
        self.per_shard.iter().map(|s| s.report.two_pc_time).sum()
    }

    /// 2PC message latency on the shards' critical paths — the clock
    /// advance the rounds and vote-barrier stalls actually caused,
    /// summed across shards. Below [`ShardOltpReport::two_pc_time`]
    /// when waves overlap deliveries; above it when laggard votes
    /// (a slow participant's prepare pass, or its vote-processing
    /// skew) hold a decision longer than the hop ledger accounts for.
    pub fn critical_path_time(&self) -> Ps {
        self.per_shard
            .iter()
            .map(|s| s.report.critical_path_time)
            .sum()
    }

    /// Share of the deployment's summed busy time spent on 2PC message
    /// rounds — the commit-round time share of the batch. Computed from
    /// [`ShardOltpReport::critical_path_time`] (what actually landed on
    /// the clocks) minus the group-commit force time it includes —
    /// forces are durability, not messaging, so a logged but fully
    /// warehouse-local batch reports zero here. The share can never
    /// exceed 1.0 even when the pipelined coordinator overlaps many
    /// 2PCs — dividing the sequential ledger by busy time could.
    pub fn two_pc_time_share(&self) -> f64 {
        let busy: u64 = self.per_shard.iter().map(|s| s.elapsed.ps()).sum();
        let rounds = self
            .critical_path_time()
            .saturating_sub(self.wal_force_time());
        if busy == 0 {
            0.0
        } else {
            rounds.ps() as f64 / busy as f64
        }
    }

    /// Effect records appended to the per-shard WALs (zero with the WAL
    /// off): one per successful prepare, home halves and forwarded
    /// participants alike.
    pub fn wal_appends(&self) -> u64 {
        self.per_shard.iter().map(|s| s.report.wal_appends).sum()
    }

    /// Group-commit force barriers across the per-shard effect logs
    /// (the decision log's forces are counted separately in
    /// [`CoordStats::decision_forces`]).
    pub fn wal_forces(&self) -> u64 {
        self.per_shard.iter().map(|s| s.report.wal_forces).sum()
    }

    /// Framed bytes appended to the per-shard effect logs.
    pub fn wal_bytes(&self) -> u64 {
        self.per_shard.iter().map(|s| s.report.wal_bytes).sum()
    }

    /// Force-barrier latency charged to shard clocks (and their
    /// critical paths) by group commit.
    pub fn wal_force_time(&self) -> Ps {
        self.per_shard.iter().map(|s| s.report.wal_force_time).sum()
    }

    /// Durable syncs per committed transaction: every effect-log force
    /// plus every decision-log force, over the batch's commits. Group
    /// commit's whole point is to push this **below 1.0** — one barrier
    /// amortized across a wave or bucket — where naive per-transaction
    /// durability would pay ≥ 1.
    pub fn fsync_per_txn(&self) -> f64 {
        let committed = self.committed();
        if committed == 0 {
            0.0
        } else {
            (self.wal_forces() + self.coord.decision_forces) as f64 / committed as f64
        }
    }

    /// Fraction of this batch's cross-shard two-phase commits that ran
    /// concurrently with another 2PC of their wave: the overlap the
    /// pipelined scheduler extracted (zero under the serial
    /// coordinator, or when nothing crossed shards).
    pub fn overlap_ratio(&self) -> f64 {
        if self.remote.cross_shard_txns == 0 {
            0.0
        } else {
            self.coord.overlapped_two_pcs as f64 / self.remote.cross_shard_txns as f64
        }
    }

    /// End-to-end commit latency merged across all shards: one sample
    /// per committed transaction (retries, defragmentation pauses, and
    /// 2PC rounds included), so
    /// `commit_latency().stats().count == committed()`.
    pub fn commit_latency(&self) -> Histogram {
        self.merged(|r| &r.commit_latency)
    }

    /// Coordinator-queue wait merged across all shards: how long
    /// warehouse-local transactions sat parked before a flush under the
    /// serial coordinator, or how long admitted arrivals sat in their
    /// home inbox before their wave dispatched under the open-loop
    /// front-end (one sample per admitted transaction there). Empty
    /// for a pipelined *batch* run — waves subsume the queues and the
    /// whole batch is offered at time zero.
    pub fn queue_wait(&self) -> Histogram {
        self.merged(|r| &r.queue_wait)
    }

    /// Defragmentation pause durations merged across all shards, one
    /// sample per pass.
    pub fn defrag_stall(&self) -> Histogram {
        self.merged(|r| &r.defrag_stall)
    }

    /// Per-pause garbage-collection stall merged across all shards; the
    /// sample sum equals [`ShardOltpReport::gc_time`].
    pub fn gc_stall(&self) -> Histogram {
        self.merged(|r| &r.gc_stall)
    }

    /// Per-round 2PC message stall merged across all shards:
    /// `two_pc_stall().stats().count == commit_rounds()` and the sample
    /// sum equals [`ShardOltpReport::critical_path_time`] — the serial
    /// path records full hops, the pipelined path records only the
    /// residual stall after overlap.
    pub fn two_pc_stall(&self) -> Histogram {
        self.merged(|r| &r.two_pc_stall)
    }

    fn merged(&self, pick: impl Fn(&OltpReport) -> &Histogram) -> Histogram {
        let mut h = Histogram::default();
        for s in &self.per_shard {
            h.merge(pick(&s.report));
        }
        h
    }
}

/// The outcome of one scatter-gather analytical query.
#[derive(Debug, Clone)]
pub struct ShardQueryReport {
    /// The merged (global) result — value-identical to a single-instance
    /// execution over the unpartitioned database.
    pub result: QueryResult,
    /// Per-shard partial reports (scatter phase), indexed by shard.
    pub per_shard: Vec<QueryReport>,
    /// Scatter wall-clock: the slowest shard's snapshot + scan.
    pub scatter_latency: Ps,
    /// Coordinator-side gather + merge time.
    pub merge_time: Ps,
    /// The snapshot cut the coordinator agreed on (the shared oracle's
    /// watermark) before scattering: every shard snapshot its slice at
    /// this timestamp. The cut each shard *actually* observed is
    /// recorded per shard in [`QueryReport::cut`] (`per_shard[i].cut`);
    /// [`ShardQueryReport::global_cut`] cross-checks the two.
    pub cut: Ts,
}

impl ShardQueryReport {
    /// End-to-end query latency: scatter (parallel) then merge.
    pub fn total(&self) -> Ps {
        self.scatter_latency + self.merge_time
    }

    /// The single global cut timestamp this query observed, if the cut
    /// every shard actually snapshot at ([`QueryReport::cut`] in
    /// `per_shard`) equals the coordinator's agreed cut — always true
    /// for queries issued through `ShardedHtap::run_query`. `None` if
    /// any shard disagrees (e.g. its forward-only snapshot sat past the
    /// requested cut), so a consumer can never mistake coordinator
    /// *intent* for what the shards observed.
    pub fn global_cut(&self) -> Option<Ts> {
        self.per_shard
            .iter()
            .all(|p| p.cut == self.cut)
            .then_some(self.cut)
    }

    /// Total consistency (snapshotting) time paid across shards.
    pub fn consistency(&self) -> Ps {
        self.per_shard.iter().map(|p| p.consistency).sum()
    }

    /// Partial result rows gathered from the shards.
    pub fn gathered_rows(&self) -> u64 {
        self.per_shard.iter().map(|p| p.result.rows()).sum()
    }
}

/// The outcome of one open-loop run
/// ([`crate::ShardedHtap::run_open_loop`]): the admitted stream's
/// execution report wrapped with the front-end's arrival, admission,
/// and sojourn accounting. Backpressure is first-class here — rejected
/// arrivals are counted per home shard, never silently dropped.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// Execution report over the *admitted* stream: per-shard loads,
    /// remote accounting (admitted transactions only), and the
    /// incremental scheduler's wave stats.
    pub exec: ShardOltpReport,
    /// Arrivals offered (admitted + rejected).
    pub arrivals: u64,
    /// Arrivals turned away at a full home-shard inbox, per shard.
    pub rejected_per_shard: Vec<u64>,
    /// Sojourn times — arrival to home-shard wave completion — one
    /// sample per admitted transaction: the open-loop latency the
    /// queueing front-end exists to measure.
    pub sojourn: Histogram,
    /// Inbox depth sampled after every admission (merged over shards);
    /// its max is the deepest backlog any inbox held.
    pub inbox_depth: Histogram,
    /// The admitted commit timestamps in admission order — contiguous
    /// from `Ts(1)` because rejected arrivals never draw one, which is
    /// what lets a closed-loop reference re-execute exactly the
    /// admitted stream for byte-identity checks.
    pub committed_ts: Vec<Ts>,
    /// Arrival index (position in the generated arrival stream,
    /// rejected arrivals included) of each admitted transaction, in
    /// admission order. Rejected arrivals still consume a generator
    /// draw, so a byte-identity reference must replay `batch[index]`
    /// at `committed_ts[k]` — not `batch[ts - 1]`.
    pub admitted_index: Vec<u64>,
    /// The last arrival's timestamp: the offered-load horizon.
    pub horizon: Ps,
}

impl OpenLoopReport {
    /// Arrivals admitted past the inbox bound (equals
    /// `committed_ts.len()`).
    pub fn admitted(&self) -> u64 {
        self.committed_ts.len() as u64
    }

    /// Arrivals rejected across all shards.
    pub fn rejected(&self) -> u64 {
        self.rejected_per_shard.iter().sum()
    }

    /// Fraction of offered arrivals rejected — the backpressure signal
    /// (0.0 for an empty run).
    pub fn rejection_rate(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.rejected() as f64 / self.arrivals as f64
        }
    }

    /// The offered arrival rate actually generated, in transactions
    /// per simulated second (0.0 for an empty horizon).
    pub fn offered_rate_tps(&self) -> f64 {
        let secs = self.horizon.as_secs();
        if secs == 0.0 {
            0.0
        } else {
            self.arrivals as f64 / secs
        }
    }

    /// Committed throughput over the run's makespan, transactions per
    /// simulated second (0.0 for an empty run).
    pub fn throughput_tps(&self) -> f64 {
        let secs = self.exec.makespan().as_secs();
        if secs == 0.0 {
            0.0
        } else {
            self.exec.committed() as f64 / secs
        }
    }

    /// Sojourn quantile in picoseconds (see [`Histogram::quantile`]).
    pub fn sojourn_quantile(&self, q: f64) -> u64 {
        self.sojourn.quantile(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(loads: Vec<ShardLoad>) -> ShardOltpReport {
        ShardOltpReport {
            per_shard: loads,
            remote: RemoteTouches::default(),
            coord: CoordStats::default(),
        }
    }

    #[test]
    fn parallel_efficiency_is_zero_on_empty_batch() {
        // A batch that ran nothing realised no speedup: 0.0, never the
        // old perfect-score 1.0 (and never NaN from 0/0).
        let empty = report_with(vec![ShardLoad::default(), ShardLoad::default()]);
        assert_eq!(empty.makespan(), Ps::ZERO);
        assert_eq!(empty.parallel_efficiency(), 0.0);
        assert_eq!(report_with(Vec::new()).parallel_efficiency(), 0.0);
    }

    #[test]
    fn parallel_efficiency_on_balanced_load() {
        let a = ShardLoad {
            elapsed: Ps::new(1_000),
            ..Default::default()
        };
        let b = ShardLoad {
            elapsed: Ps::new(1_000),
            ..Default::default()
        };
        let r = report_with(vec![a, b]);
        assert!((r.parallel_efficiency() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_accessors_merge_across_shards() {
        let mut a = ShardLoad::default();
        a.report.commit_latency.record(100);
        a.report.two_pc_stall.record(10);
        let mut b = ShardLoad::default();
        b.report.commit_latency.record(300);
        let r = report_with(vec![a, b]);
        let commit = r.commit_latency().stats();
        assert_eq!(commit.count, 2);
        assert!(commit.max >= 300);
        assert_eq!(r.two_pc_stall().stats().count, 1);
        assert_eq!(r.queue_wait().stats().count, 0);
    }
}
