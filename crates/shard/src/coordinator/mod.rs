//! The transaction coordinator: stream-order execution over the shard
//! engines, with a simulated two-phase commit for transactions whose
//! effects span shards — either one 2PC at a time behind a barrier
//! flush ([`CoordinatorMode::Serial`], the oracle path) or
//! conflict-aware wave scheduling that overlaps every non-conflicting
//! transaction ([`CoordinatorMode::Pipelined`], the default).
//!
//! # The serial oracle
//!
//! The original execution model: warehouse-local transactions queue per
//! home shard and flush in concurrent per-shard runs, but every
//! cross-shard transaction first drains the involved shards' queues (a
//! *barrier flush*) and then runs its prepare/vote/decide rounds alone.
//! Correct, and byte-identical to the unpartitioned reference — but the
//! hot remote mixes degenerate toward one 2PC at a time exactly when
//! scale-out matters most.
//!
//! # Wave scheduling (the pipelined path)
//!
//! [`TpccDb::decompose`](pushtap_oltp::TpccDb::decompose) is read-only
//! and retry-stable, so every transaction's keyset — rows read, rows
//! written, insert rings consumed — is known *before* execution
//! ([`pushtap_oltp::KeySet`]). The [`schedule`] module cuts the
//! timestamp-ordered stream into **waves** of mutually non-conflicting
//! transactions; conflicting pairs always land in timestamp order
//! across waves, so per-row commit order (and therefore every committed
//! byte) matches the reference. One wave executes as:
//!
//! 1. **Decompose** every wave member at its home engine and split the
//!    effects by owning shard (read-only; wave members touch disjoint
//!    rings, so the split is independent of intra-wave order).
//! 2. **Prepare phase** — all shards concurrently
//!    (`std::thread::scope`): each shard prepares its wave items in
//!    timestamp order, holding one prepared undo scope per transaction
//!    (the multi-scope machinery in `pushtap-mvcc`). Forwarded effect
//!    sets pay their prepare-hop *delivery*: a wave's messages are all
//!    in flight together, so a delivery only stalls the engine until
//!    its arrival time — overlapped, not summed.
//! 3. **Vote barrier** — a transaction commits iff every involved shard
//!    prepared it; any `DeltaFull` vote aborts it everywhere.
//! 4. **Decision phase** — all shards concurrently deliver commit/abort
//!    decisions in timestamp order (again overlapped deliveries);
//!    committed scopes resolve, aborted scopes replay their pinned undo
//!    records in reverse.
//! 5. **Retries** — aborted transactions defragment their no-voting
//!    shards and re-run serially at the *same* pinned timestamps before
//!    the next wave starts, feeding the engine-level atomic-retry
//!    machinery. Committed bytes therefore never depend on where or
//!    when arenas filled up.
//!
//! # Timing
//!
//! Message rounds are charged per [`CommitConfig`]. Both modes keep the
//! same *ledger* (`two_pc_time`, `commit_rounds`: one entry per
//! delivered message), but the clock cost differs: the serial path
//! delivers rounds one at a time (each hop lands fully on the receiving
//! shard's clock), while a wave's concurrent deliveries overlap — the
//! clock advance they actually cause is recorded as
//! `critical_path_time` (see [`OltpReport`]). All other engine-time
//! accounting (transaction time, wasted retry latency, defragmentation
//! pauses) is identical across modes.
//!
//! Decision latency uses the **laggard vote-barrier model** in both
//! modes: the coordinator cannot act before the *slowest* participant's
//! vote arrives. A participant's vote leaves its shard the instant that
//! *transaction's* prepare finished on its clock (early vote — the
//! wave's group-commit force overlaps the decision round; the decision
//! *apply* still lands after the force because the participant's clock
//! crossed it at the phase barrier), travels one
//! `prepare_hop`, and is delayed by a deterministic per-(participant,
//! transaction) skew drawn from `[0, vote_jitter]`
//! ([`CommitConfig::vote_jitter`]). The home's own
//! `phase clock + prepare_hop` floors the wait, so coupling clocks
//! never makes a decision *cheaper* than the old uncoupled model; the
//! extra stall lands on `critical_path_time` (and the vote-barrier
//! stall histogram) while the `two_pc_time` hop ledger — one hop per
//! delivered message — is unchanged, which is why the stall can exceed
//! the ledger under a slow participant. The serial/pipelined
//! comparison stays apples-to-apples: both modes wait for the same
//! laggard votes, and still differ only in how much delivery overlap
//! the schedule extracts.
//!
//! [`OltpReport`]: pushtap_core::OltpReport
//! [`CoordinatorMode::Serial`]: crate::CoordinatorMode::Serial
//! [`CoordinatorMode::Pipelined`]: crate::CoordinatorMode::Pipelined

pub mod schedule;

use std::collections::BTreeMap;
use std::thread;

use pushtap_core::{MaintPause, Pushtap};
use pushtap_mvcc::Ts;
use pushtap_oltp::{codec, Breakdown, TaggedEffect, TxnResult, TxnRole};
use pushtap_pim::Ps;
use pushtap_trace::{Phase, Span};
use pushtap_wal::{Wal, HEADER_LEN};

use crate::config::{CommitConfig, CoordinatorMode};
use crate::durability::{encode_decision, CrashSite, DurabilityCtx};
use crate::partition::WarehouseMap;
use crate::report::{CoordStats, ShardLoad};
use crate::router::RoutedTxn;

/// Flags the durability context crashed. An armed crash site implies
/// the context exists (`armed_at` just read it), so a missing context
/// here is a coordinator bug, not an input condition.
fn mark_crashed(dur: &mut Option<&mut DurabilityCtx>) {
    match dur.as_deref_mut() {
        Some(d) => d.crashed = true,
        None => unreachable!("an armed crash site implies a durability ctx"),
    }
}

/// Joins a scoped shard worker, re-raising any panic on the caller's
/// thread with its original payload intact.
pub(crate) fn join_worker<T>(h: thread::ScopedJoinHandle<'_, T>) -> T {
    h.join().unwrap_or_else(|e| std::panic::resume_unwind(e))
}

/// Executes one globally-ordered routed stream across the shard
/// engines under the configured coordinator mode, returning each
/// shard's accumulated load plus the coordinator's scheduling stats.
/// With a durability context the coordinator logs every prepared
/// effect set (group-commit forced before votes), writes the decision
/// log, and honors an armed crash point — a fired crash stops the
/// stream dead and is reported in [`CoordStats::crashed`].
pub(crate) fn execute_stream(
    shards: &mut [Pushtap],
    map: &WarehouseMap,
    stream: Vec<RoutedTxn>,
    commit: CommitConfig,
    mode: CoordinatorMode,
    mut dur: Option<&mut DurabilityCtx>,
) -> (Vec<ShardLoad>, CoordStats) {
    let starts: Vec<Ps> = shards.iter().map(Pushtap::now).collect();
    let mut loads: Vec<ShardLoad> = (0..shards.len()).map(|_| ShardLoad::default()).collect();
    let mut stats = CoordStats {
        mode,
        ..CoordStats::default()
    };
    let decisions_before = dur.as_deref().map(|d| d.decision_log.stats());
    match mode {
        CoordinatorMode::Serial => execute_serial(
            shards,
            map,
            stream,
            commit,
            &mut loads,
            &mut stats,
            dur.as_deref_mut(),
        ),
        CoordinatorMode::Pipelined => execute_pipelined(
            shards,
            map,
            stream,
            commit,
            &mut loads,
            &mut stats,
            dur.as_deref_mut(),
        ),
    }
    if let (Some(d), Some(before)) = (dur.as_deref(), decisions_before) {
        let after = d.decision_log.stats();
        stats.decision_appends = after.appends - before.appends;
        stats.decision_forces = after.forces - before.forces;
        stats.crashed = d.crashed;
    }
    for (i, load) in loads.iter_mut().enumerate() {
        load.elapsed = shards[i].now().saturating_sub(starts[i]);
        // Drain the engine's GC tally (pass counters plus end-of-batch
        // live-version / commit-log gauges) into this batch's report.
        load.report.gc.merge(&shards[i].take_gc_stats());
    }
    (loads, stats)
}

// ---------------------------------------------------------------------
// Durability plumbing shared by both coordinator modes.
// ---------------------------------------------------------------------

/// Appends one prepared effect set to a shard's effect log (volatile
/// until the next force barrier) and accounts it.
#[allow(clippy::too_many_arguments)]
fn wal_append(
    wal: &mut Wal,
    load: &mut ShardLoad,
    shard: &Pushtap,
    ts: Ts,
    role: TxnRole,
    cross: bool,
    effects: &[TaggedEffect],
    wave: u64,
) {
    let payload = codec::encode_parts(ts, role, cross, effects);
    wal.append(&payload);
    load.report.wal_appends += 1;
    load.report.wal_bytes += (payload.len() + HEADER_LEN) as u64;
    if shard.trace_enabled() {
        shard.trace_record(
            Span::instant(
                shard.trace_track(),
                Phase::WalAppend,
                ts.0,
                shard.now().ps(),
            )
            .in_wave(wave),
        );
    }
}

/// The group-commit force barrier: pushes a shard's pending records to
/// durable media, charging the configured force latency to the shard's
/// clock and critical path once for everything pending. A no-op (free)
/// when nothing is pending.
fn wal_force(wal: &mut Wal, load: &mut ShardLoad, shard: &mut Pushtap, latency: Ps, wave: u64) {
    if !wal.has_pending() {
        return;
    }
    let start = shard.now();
    if latency > Ps::ZERO {
        shard.advance(latency);
    }
    wal.force();
    load.report.wal_forces += 1;
    load.report.wal_force_time += latency;
    load.report.critical_path_time += latency;
    if shard.trace_enabled() {
        shard.trace_record(
            Span::new(
                shard.trace_track(),
                Phase::GroupCommit,
                0,
                start.ps(),
                shard.now().ps(),
            )
            .in_wave(wave),
        );
    }
}

/// How a wave's prepare-phase force barriers run under an armed crash.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ForceMode {
    /// No crash at this wave's flush: every involved shard forces.
    Normal,
    /// Crash before any force ([`CrashSite::AfterPrepare`]): pending
    /// records die with the process.
    Skip,
    /// Crash mid-flush ([`CrashSite::MidEffectFlush`]): every shard
    /// forces except the given one, whose force tears halfway through
    /// its pending bytes.
    TornAt(usize),
}

// ---------------------------------------------------------------------
// The serial oracle: per-shard local queues + barrier-flushed 2PCs.
// ---------------------------------------------------------------------

/// The original execution discipline: local transactions queue per home
/// shard, every cross-shard transaction flushes the involved shards'
/// queues and runs its two-phase commit alone.
fn execute_serial(
    shards: &mut [Pushtap],
    map: &WarehouseMap,
    stream: Vec<RoutedTxn>,
    commit: CommitConfig,
    loads: &mut [ShardLoad],
    stats: &mut CoordStats,
    mut dur: Option<&mut DurabilityCtx>,
) {
    // Each queue entry carries the shard clock at enqueue time, so the
    // flush can attribute the wait between routing and execution.
    let mut pending: Vec<Vec<(RoutedTxn, Ps)>> = (0..shards.len()).map(|_| Vec::new()).collect();
    // Serial crash points are counted in cross-shard 2PCs (1-based).
    let mut two_pcs = 0u64;
    for routed in stream {
        if routed.participants.is_empty() {
            let home = routed.shard as usize;
            let enqueued = shards[home].now();
            pending[home].push((routed, enqueued));
        } else {
            // Stream-order discipline: every involved engine applies all
            // its earlier stream work before this transaction's effects
            // land (per-row commit timestamps must stay monotone).
            // Uninvolved shards keep queueing — their rows are disjoint
            // from this transaction's by ownership.
            two_pcs += 1;
            let crash = dur.as_deref().and_then(|d| d.armed_at(two_pcs));
            if crash == Some(CrashSite::BeforePrepare) {
                // The kill lands before this 2PC starts: still-queued
                // local transactions were never logged and die with the
                // process (their effects were never durable — recovery
                // correctly omits them).
                mark_crashed(&mut dur);
                return;
            }
            let mut involved = routed.participants.clone();
            involved.push(routed.shard);
            stats.barrier_flushes += 1;
            let home = &shards[routed.shard as usize];
            if home.trace_enabled() {
                home.trace_record(Span::instant(
                    home.trace_track(),
                    Phase::Barrier,
                    routed.ts.0,
                    home.now().ps(),
                ));
            }
            flush(
                shards,
                &mut pending,
                loads,
                Some(&involved),
                dur.as_deref_mut(),
            );
            if two_phase_commit(
                shards,
                map,
                &routed,
                commit,
                loads,
                0,
                dur.as_deref_mut(),
                crash,
            ) {
                return; // the armed crash fired mid-2PC
            }
        }
    }
    flush(shards, &mut pending, loads, None, dur);
}

/// Drains the pending warehouse-local queues of the selected shards
/// (all shards when `only` is `None`), one OS thread per non-empty
/// queue, and folds the partial loads into `loads`.
fn flush(
    shards: &mut [Pushtap],
    pending: &mut [Vec<(RoutedTxn, Ps)>],
    loads: &mut [ShardLoad],
    only: Option<&[u32]>,
    dur: Option<&mut DurabilityCtx>,
) {
    let force_latency = dur.as_ref().map_or(Ps::ZERO, |d| d.force_latency);
    let mut wals: Vec<Option<&mut Wal>> = match dur {
        Some(d) => d.logs.iter_mut().map(Some).collect(),
        None => shards.iter().map(|_| None).collect(),
    };
    let results: Vec<(usize, ShardLoad)> = thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter_mut()
            .zip(pending.iter_mut())
            .zip(wals.iter_mut())
            .enumerate()
            .filter(|(i, _)| only.is_none_or(|set| set.contains(&(*i as u32))))
            .filter(|(_, ((_, queue), _))| !queue.is_empty())
            .map(|(i, ((shard, queue), wal))| {
                let bucket = std::mem::take(queue);
                let wal = wal.as_deref_mut();
                scope.spawn(move || (i, run_local_bucket(shard, bucket, wal, force_latency)))
            })
            .collect();
        handles.into_iter().map(join_worker).collect()
    });
    for (i, partial) in results {
        merge_load(&mut loads[i], partial);
    }
}

/// Folds one thread's partial load into a shard's batch load.
fn merge_load(into: &mut ShardLoad, partial: ShardLoad) {
    into.routed += partial.routed;
    into.remote_touches += partial.remote_touches;
    into.remote_time += partial.remote_time;
    into.report.merge(&partial.report);
}

/// Executes one shard's queued warehouse-local transactions, each under
/// its pinned stream-order timestamp (a `DeltaFull` retry re-runs under
/// the same timestamp). Each entry's enqueue clock feeds the queue-wait
/// histogram: later entries wait out the bucket's earlier work.
fn run_local_bucket(
    shard: &mut Pushtap,
    bucket: Vec<(RoutedTxn, Ps)>,
    mut wal: Option<&mut Wal>,
    force_latency: Ps,
) -> ShardLoad {
    let mut load = ShardLoad::default();
    for (routed, enqueued) in bucket {
        debug_assert!(
            routed.participants.is_empty(),
            "cross-shard transaction queued as local"
        );
        let wait = shard.now().saturating_sub(enqueued);
        load.report.queue_wait.record(wait.ps());
        if wait > Ps::ZERO && shard.trace_enabled() {
            shard.trace_record(Span::new(
                shard.trace_track(),
                Phase::Queued,
                routed.ts.0,
                enqueued.ps(),
                shard.now().ps(),
            ));
        }
        run_local_txn(shard, &routed, &mut load, false, wal.as_deref_mut());
    }
    // One group-commit force amortized over the whole bucket: the
    // bucket's records become durable (and its transactions recoverable)
    // together.
    if let Some(w) = wal {
        wal_force(w, &mut load, shard, force_latency, 0);
    }
    load
}

/// Executes one warehouse-local transaction through the engine's
/// defragment-and-retry loop, folding the outcome into `load`.
/// `was_retried` marks a transaction whose first (wave) attempt already
/// aborted, so it counts as retried even if this run commits cleanly.
///
/// With a log, the transaction's effect record is appended (pending —
/// the *caller* owns the group-commit force barrier, amortizing it over
/// its bucket or wave). `decompose` is retry-stable, so the record
/// logged up front equals what the engine commits even if it had to
/// defragment and retry in between.
fn run_local_txn(
    shard: &mut Pushtap,
    routed: &RoutedTxn,
    load: &mut ShardLoad,
    was_retried: bool,
    wal: Option<&mut Wal>,
) {
    let before = shard.now();
    if let Some(w) = wal {
        let effects = shard.db().decompose(&routed.txn, routed.ts);
        wal_append(
            w,
            load,
            shard,
            routed.ts,
            TxnRole::Coordinator,
            false,
            &effects,
            0,
        );
    }
    if was_retried && shard.trace_enabled() {
        shard.trace_record(Span::instant(
            shard.trace_track(),
            Phase::Retry,
            routed.ts.0,
            before.ps(),
        ));
    }
    {
        let san = shard.db().sanitizer();
        if san.enabled() {
            san.begin_execution(routed.shard, routed.ts.0, shard.now().ps());
        }
    }
    let aborts_before = shard.db().aborts();
    let wasted_before = shard.db().wasted_retry_time();
    let (result, pauses) = shard.execute_txn_at(&routed.txn, routed.ts);
    load.routed += 1;
    load.report.committed += 1;
    let aborted = shard.db().aborts() - aborts_before;
    load.report.aborts += aborted;
    if aborted > 0 || was_retried {
        load.report.retried_txns += 1;
    }
    charge_maintenance(load, pauses);
    load.report.wasted_retry_time += shard.db().wasted_retry_time().saturating_sub(wasted_before);
    load.report.txn_time += shard
        .now()
        .saturating_sub(before)
        .saturating_sub(pauses.total());
    load.report.breakdown.merge(&result.breakdown);
    load.report
        .commit_latency
        .record(shard.now().saturating_sub(before).ps());
}

/// Charges one serially-delivered 2PC message round (exactly one hop of
/// latency) to a shard's clock and its load accounting, so
/// `commit_rounds` counts message deliveries in uniform units on every
/// shard. Sequential delivery means the full hop lands on the critical
/// path.
fn charge_hop(load: &mut ShardLoad, shard: &mut Pushtap, hop: Ps) {
    if hop > Ps::ZERO {
        shard.advance(hop);
    }
    load.remote_time += hop;
    load.report.two_pc_time += hop;
    load.report.critical_path_time += hop;
    load.report.commit_rounds += 1;
    load.report.two_pc_stall.record(hop.ps());
}

/// Charges one *overlapped* 2PC message delivery: the message was
/// dispatched together with the rest of its wave, so the engine stalls
/// only until the arrival time (zero if it is still busy with earlier
/// wave work). The ledger (`two_pc_time`, `commit_rounds`) counts the
/// full hop like the serial path; the clock and `critical_path_time`
/// record only the stall actually caused.
fn deliver(load: &mut ShardLoad, shard: &mut Pushtap, hop: Ps, arrive_at: Ps) {
    let wait = arrive_at.saturating_sub(shard.now());
    if wait > Ps::ZERO {
        shard.advance(wait);
    }
    load.remote_time += wait;
    load.report.two_pc_time += hop;
    load.report.critical_path_time += wait;
    load.report.commit_rounds += 1;
    load.report.two_pc_stall.record(wait.ps());
}

/// The deterministic per-(participant, transaction) vote-processing
/// skew of the laggard vote-barrier model: uniform over `[0, bound]`,
/// derived by a splitmix64-style bit mix of the timestamp and the
/// participant id so every replay of the stream sees the same laggard.
/// [`Ps::ZERO`] bound short-circuits to zero skew.
fn vote_skew(bound: Ps, participant: u32, ts: Ts) -> Ps {
    if bound == Ps::ZERO {
        return Ps::ZERO;
    }
    let mut x = ts.0 ^ ((u64::from(participant) + 1) << 32);
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    Ps::new(x % (bound.ps() + 1))
}

/// Records a defragmentation pause in a shard's load accounting.
fn charge_defrag(load: &mut ShardLoad, pause: Ps) {
    if pause > Ps::ZERO {
        load.report.defrag_passes += 1;
        load.report.defrag_time += pause;
        load.report.defrag_stall.record(pause.ps());
    }
}

/// Records an execute call's maintenance pauses in a shard's load
/// accounting, split by mechanism: the defragmentation share keeps its
/// historical counters, the GC share lands in `gc_time`/`gc_stall`
/// (pass counts come from the engine's drained
/// [`pushtap_core::GcStats`] tally at batch end).
fn charge_maintenance(load: &mut ShardLoad, pauses: MaintPause) {
    charge_defrag(load, pauses.defrag);
    if pauses.gc > Ps::ZERO {
        load.report.gc_time += pauses.gc;
        load.report.gc_stall.record(pauses.gc.ps());
    }
}

/// Runs one engine call under delta-capture accounting: any clock
/// movement lands in the shard's transaction time, and any wasted-time
/// accrual (a failed prepare, a coordinator-aborted prepared scope) in
/// its wasted-retry counter — keeping the report reconciled with the
/// engine's own counters at every call site.
fn charge_engine<T>(
    load: &mut ShardLoad,
    shard: &mut Pushtap,
    f: impl FnOnce(&mut Pushtap) -> T,
) -> T {
    let before = shard.now();
    let wasted_before = shard.db().wasted_retry_time();
    let r = f(shard);
    load.report.txn_time += shard.now().saturating_sub(before);
    load.report.wasted_retry_time += shard.db().wasted_retry_time().saturating_sub(wasted_before);
    r
}

/// Decomposes `routed` at its home engine and splits the effect set by
/// owning shard: the home's own effects plus one forwarded subset per
/// participant. Decomposition is read-only (cursors and chains
/// untouched), so retries reuse the identical effect set.
fn decompose_split(
    shards: &[Pushtap],
    map: &WarehouseMap,
    routed: &RoutedTxn,
) -> (Vec<TaggedEffect>, BTreeMap<usize, Vec<TaggedEffect>>) {
    let home = routed.shard as usize;
    let effects = shards[home].db().decompose(&routed.txn, routed.ts);
    let mut local: Vec<TaggedEffect> = Vec::new();
    let mut forwarded: BTreeMap<usize, Vec<TaggedEffect>> = BTreeMap::new();
    for e in effects {
        let owner = map.shard_of_warehouse(e.warehouse) as usize;
        if owner == home {
            local.push(e);
        } else {
            forwarded.entry(owner).or_default().push(e);
        }
    }
    debug_assert_eq!(
        forwarded.keys().map(|&s| s as u32).collect::<Vec<_>>(),
        routed.participants,
        "router participant set must match effect ownership"
    );
    (local, forwarded)
}

/// Runs one cross-shard transaction as a serially-delivered two-phase
/// commit, retrying (under the same pinned timestamp) until every
/// participant votes yes. `prior_attempts` counts attempts already made
/// by a pipelined wave, so a transaction the wave aborted still counts
/// as retried when this run commits on its first try.
///
/// With a durability context, every successful prepare appends its
/// effect record, the involved logs force (home first, participants
/// ascending) once all votes are yes — *before* the decision round —
/// and the commit decision is appended to the decision log and forced
/// before any engine commits. `crash` injects a kill at the given site
/// the first time it is reached; returns `true` if the kill fired (the
/// caller must stop the stream dead).
#[allow(clippy::too_many_arguments)]
fn two_phase_commit(
    shards: &mut [Pushtap],
    map: &WarehouseMap,
    routed: &RoutedTxn,
    commit: CommitConfig,
    loads: &mut [ShardLoad],
    prior_attempts: u64,
    mut dur: Option<&mut DurabilityCtx>,
    crash: Option<CrashSite>,
) -> bool {
    let home = routed.shard as usize;
    let ts = routed.ts;

    // Periodic maintenance (GC first, defragmentation as the fallback)
    // runs between transactions — never while any scope is open.
    charge_maintenance(&mut loads[home], shards[home].defrag_if_due());

    let (local, forwarded) = decompose_split(shards, map, routed);

    // Submitter-perceived latency starts here: every retry loop below
    // (and its defragmentation) is part of what this transaction waited.
    let start = shards[home].now();
    let mut attempts = prior_attempts;
    loop {
        if attempts > 0 && shards[home].trace_enabled() {
            // This iteration re-runs an aborted attempt (a wave casualty
            // or an earlier loop of ours).
            let s = &shards[home];
            s.trace_record(Span::instant(
                s.trace_track(),
                Phase::Retry,
                ts.0,
                s.now().ps(),
            ));
        }
        attempts += 1;
        {
            let san = shards[home].db().sanitizer();
            if san.enabled() {
                san.begin_execution(routed.shard, ts.0, shards[home].now().ps());
            }
        }
        // Phase 1a: the home half prepares its owned effects.
        let home_result = charge_engine(&mut loads[home], &mut shards[home], |s| {
            s.prepare_effects_at(&local, ts)
        });
        let home_result = match home_result {
            Ok(r) => {
                loads[home].report.prepared_txns += 1;
                if let Some(d) = dur.as_deref_mut() {
                    wal_append(
                        &mut d.logs[home],
                        &mut loads[home],
                        &shards[home],
                        ts,
                        TxnRole::Coordinator,
                        true,
                        &local,
                        0,
                    );
                }
                r
            }
            Err(_full) => {
                // Home voted no before anything was forwarded: its
                // partial effects are already rolled back; reclaim its
                // arenas and retry the whole transaction.
                loads[home].report.aborts += 1;
                charge_maintenance(&mut loads[home], shards[home].reclaim_now());
                continue;
            }
        };

        // Phase 1b: forward each participant its owned effect subset (a
        // prepare round delivers it) and collect votes.
        let mut prepared: Vec<(usize, Breakdown)> = Vec::new();
        let mut vote_no: Option<usize> = None;
        for (&p, effs) in &forwarded {
            charge_hop(&mut loads[p], &mut shards[p], commit.prepare_hop);
            {
                let san = shards[p].db().sanitizer();
                if san.enabled() {
                    san.begin_execution(p as u32, ts.0, shards[p].now().ps());
                }
            }
            let r = charge_engine(&mut loads[p], &mut shards[p], |s| {
                s.prepare_effects_at(effs, ts)
            });
            match r {
                Ok(r) => {
                    loads[p].report.prepared_txns += 1;
                    loads[p].report.forwarded_effects += effs.len() as u64;
                    if let Some(d) = dur.as_deref_mut() {
                        wal_append(
                            &mut d.logs[p],
                            &mut loads[p],
                            &shards[p],
                            ts,
                            TxnRole::Participant,
                            true,
                            effs,
                            0,
                        );
                    }
                    prepared.push((p, r.breakdown));
                }
                Err(_full) => {
                    loads[p].report.aborts += 1;
                    vote_no = Some(p);
                    break;
                }
            }
        }

        // The kill after the prepares (and their pending appends) but
        // before any force barrier: every record of this 2PC evaporates
        // with the process.
        if crash == Some(CrashSite::AfterPrepare) {
            mark_crashed(&mut dur);
            return true;
        }

        if let Some(no_shard) = vote_no {
            // Phase 2, abort decision: the home half and every prepared
            // participant roll their pinned effects back (the decision
            // round is charged like a commit would be), and the
            // coordinator pays the same message round-trip it would on
            // a commit — the prepares went out and the "no" vote had to
            // come back, failed rounds are not free. The prepare's
            // latency lands in wasted retry time — the clock already
            // covered the work, now thrown away. The voting shard's
            // arenas are reclaimed, then the whole transaction retries
            // under the same timestamp.
            if let Some(d) = dur.as_deref_mut() {
                // Withdraw the attempt's never-forced records: the
                // involved logs hold nothing else pending (buckets force
                // before a 2PC starts), so the discard is exact.
                d.logs[home].discard_pending();
                for &p in forwarded.keys() {
                    d.logs[p].discard_pending();
                }
            }
            // Laggard vote barrier: the abort decision waits for the
            // slowest vote — each voter's shard clock plus one
            // prepare-hop and its deterministic skew (the "no" voter's
            // vote included). The home's own round-trip floors the
            // wait, so the stall is never cheaper than the uncoupled
            // model's fixed round-trip.
            let vb_start = shards[home].now();
            let mut vote_at = vb_start + commit.prepare_hop;
            for &(q, _) in &prepared {
                vote_at = vote_at.max(
                    shards[q].now()
                        + commit.prepare_hop
                        + vote_skew(commit.vote_jitter, q as u32, ts),
                );
            }
            vote_at = vote_at.max(
                shards[no_shard].now()
                    + commit.prepare_hop
                    + vote_skew(commit.vote_jitter, no_shard as u32, ts),
            );
            deliver(
                &mut loads[home],
                &mut shards[home],
                commit.prepare_hop,
                vote_at,
            );
            charge_hop(&mut loads[home], &mut shards[home], commit.commit_hop);
            if shards[home].trace_enabled() {
                let s = &shards[home];
                s.trace_record(Span::new(
                    s.trace_track(),
                    Phase::VoteBarrier,
                    ts.0,
                    vb_start.ps(),
                    s.now().ps(),
                ));
            }
            charge_engine(&mut loads[home], &mut shards[home], |s| {
                s.abort_prepared(ts)
            });
            loads[home].report.aborts += 1;
            loads[home].report.participant_aborts += 1;
            for &(q, _) in &prepared {
                charge_hop(&mut loads[q], &mut shards[q], commit.commit_hop);
                charge_engine(&mut loads[q], &mut shards[q], |s| s.abort_prepared(ts));
                loads[q].report.aborts += 1;
                loads[q].report.participant_aborts += 1;
            }
            charge_maintenance(&mut loads[no_shard], shards[no_shard].reclaim_now());
            continue;
        }

        // Every vote is yes: each involved shard forces its effect log
        // (home first, then participants ascending) before its vote may
        // reach the coordinator — a shard never votes yes on records a
        // crash could still lose. MidEffectFlush kills the process with
        // the last involved log torn mid-record and the earlier ones
        // fully durable.
        if let Some(d) = dur.as_deref_mut() {
            let latency = d.force_latency;
            let mut involved: Vec<usize> = vec![home];
            involved.extend(forwarded.keys().copied());
            // `involved` starts from `home`, so it is never empty.
            let last = *involved.last().unwrap_or(&home);
            for &i in &involved {
                if crash == Some(CrashSite::MidEffectFlush) && i == last {
                    let half = d.logs[i].pending_len() / 2;
                    d.logs[i].force_torn(half);
                    d.crashed = true;
                    return true;
                }
                wal_force(&mut d.logs[i], &mut loads[i], &mut shards[i], latency, 0);
            }
        }

        // Phase 2, commit decision: the coordinator waits out the
        // laggard vote barrier — the decision round-trip still counts
        // as two ledger rounds (one prepare-delivery out, one
        // vote/decision back), but the stall waits for the *slowest*
        // participant's vote: its shard clock (prepare work and WAL
        // force included) plus one prepare-hop and its deterministic
        // skew, floored by the home's own round-trip. Then every
        // engine commits at the pinned timestamp (metadata-only —
        // prepare already flushed).
        let vb_start = shards[home].now();
        let mut vote_at = vb_start + commit.prepare_hop;
        for &(q, _) in &prepared {
            vote_at = vote_at.max(
                shards[q].now() + commit.prepare_hop + vote_skew(commit.vote_jitter, q as u32, ts),
            );
        }
        deliver(
            &mut loads[home],
            &mut shards[home],
            commit.prepare_hop,
            vote_at,
        );
        charge_hop(&mut loads[home], &mut shards[home], commit.commit_hop);
        if shards[home].trace_enabled() {
            let s = &shards[home];
            s.trace_record(Span::new(
                s.trace_track(),
                Phase::VoteBarrier,
                ts.0,
                vb_start.ps(),
                s.now().ps(),
            ));
        }
        // The commit decision becomes durable before any engine acts on
        // it: append `Commit(ts)` and force the decision log. Recovery
        // presumes abort for any prepared cross-shard scope the decision
        // log does not vouch for.
        if let Some(d) = dur.as_deref_mut() {
            if crash == Some(CrashSite::BetweenVoteAndDecision) {
                d.crashed = true;
                return true;
            }
            d.decision_log.append(&encode_decision(ts));
            if crash == Some(CrashSite::MidDecisionLogWrite) {
                let half = d.decision_log.pending_len() / 2;
                d.decision_log.force_torn(half);
                d.crashed = true;
                return true;
            }
            d.decision_log.force();
            if crash == Some(CrashSite::AfterDecision) {
                d.crashed = true;
                return true;
            }
        }
        shards[home].commit_prepared(ts, TxnRole::Coordinator);
        loads[home].routed += 1;
        loads[home].report.committed += 1;
        loads[home].report.breakdown.merge(&home_result.breakdown);
        loads[home].remote_touches += routed.remote;
        loads[home]
            .report
            .commit_latency
            .record(shards[home].now().saturating_sub(start).ps());
        if shards[home].trace_enabled() {
            // The whole serial 2PC as one span: wave 0 marks a 2PC that
            // ran alone (barrier-flushed or a wave casualty's retry), so
            // overlap analysis never counts it.
            let s = &shards[home];
            s.trace_record(Span::new(
                s.trace_track(),
                Phase::TwoPc,
                ts.0,
                start.ps(),
                s.now().ps(),
            ));
        }
        if attempts > 1 {
            loads[home].report.retried_txns += 1;
        }
        for (q, breakdown) in prepared {
            charge_hop(&mut loads[q], &mut shards[q], commit.commit_hop);
            shards[q].commit_prepared(ts, TxnRole::Participant);
            loads[q].report.breakdown.merge(&breakdown);
        }
        return false;
    }
}

// ---------------------------------------------------------------------
// The pipelined path: conflict-aware waves with overlapped 2PC rounds.
// ---------------------------------------------------------------------

/// One shard's share of a wave: an effect set to prepare at a pinned
/// timestamp, as the transaction's home half or a forwarded
/// participant.
struct WaveItem {
    /// Index of the owning transaction within the wave.
    txn: usize,
    /// The pinned commit timestamp.
    ts: Ts,
    /// Home half or forwarded participant.
    role: TxnRole,
    /// Whether the owning transaction crosses shards (its home pays the
    /// decision round-trip).
    cross: bool,
    /// The effects this shard owns.
    effects: Vec<TaggedEffect>,
}

/// Wave scheduling + execution: cut the stream into conflict-free
/// waves, run each wave's prepares and decisions concurrently across
/// shards with overlapped message deliveries, retry wave casualties
/// serially before the next wave.
fn execute_pipelined(
    shards: &mut [Pushtap],
    map: &WarehouseMap,
    stream: Vec<RoutedTxn>,
    commit: CommitConfig,
    loads: &mut [ShardLoad],
    stats: &mut CoordStats,
    mut dur: Option<&mut DurabilityCtx>,
) {
    let waves = schedule::build_waves(stream);
    stats.waves = waves.len() as u64;
    for (w, wave) in waves.into_iter().enumerate() {
        stats.max_wave = stats.max_wave.max(wave.len() as u64);
        let cross = wave.iter().filter(|t| !t.participants.is_empty()).count() as u64;
        // Every cross-shard 2PC of a wave with at least two of them ran
        // concurrently with another (a wave aborted and retried serially
        // still overlapped on its wave attempt).
        if cross >= 2 {
            stats.overlapped_two_pcs += cross;
        }
        // Wave ids in spans are 1-based: wave 0 is reserved for 2PCs
        // that ran alone (the serial path).
        if run_wave(
            shards,
            map,
            wave,
            commit,
            loads,
            w as u64 + 1,
            dur.as_deref_mut(),
        ) {
            return; // the armed crash fired mid-wave
        }
    }
}

/// Executes one wave dispatched by the open-loop front-end
/// ([`crate::ShardedHtap::run_open_loop`]). Before the wave runs, every
/// shard's clock is gated to the wave's latest member arrival — a wave
/// cannot close before all its members exist, and gating *all* engines
/// keeps the deployment on one open-loop timeline (participants and
/// retry passes included, which is what the sanitizer's
/// no-execution-before-arrival invariant checks). Each member's real
/// inbox wait (arrival → gated home clock) lands in its home shard's
/// queue-wait histogram and, when positive, a [`Phase::Queued`] span;
/// after the wave commits, each member's *sojourn* (arrival →
/// home-shard wave completion) is recorded into `sojourn`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_open_wave(
    shards: &mut [Pushtap],
    map: &WarehouseMap,
    wave: Vec<RoutedTxn>,
    commit: CommitConfig,
    loads: &mut [ShardLoad],
    stats: &mut CoordStats,
    wave_id: u64,
    sojourn: &mut pushtap_trace::Histogram,
) {
    stats.waves += 1;
    stats.max_wave = stats.max_wave.max(wave.len() as u64);
    let cross = wave.iter().filter(|t| !t.participants.is_empty()).count() as u64;
    if cross >= 2 {
        stats.overlapped_two_pcs += cross;
    }
    let gate = wave.iter().map(|t| t.arrival).max().unwrap_or(Ps::ZERO);
    for shard in shards.iter_mut() {
        let wait = gate.saturating_sub(shard.now());
        if wait > Ps::ZERO {
            shard.advance(wait);
        }
    }
    for routed in &wave {
        let home = routed.shard as usize;
        let wait = shards[home].now().saturating_sub(routed.arrival);
        loads[home].report.queue_wait.record(wait.ps());
        if wait > Ps::ZERO && shards[home].trace_enabled() {
            let s = &shards[home];
            s.trace_record(
                Span::new(
                    s.trace_track(),
                    Phase::Queued,
                    routed.ts.0,
                    routed.arrival.ps(),
                    s.now().ps(),
                )
                .in_wave(wave_id),
            );
        }
    }
    let members: Vec<(usize, Ps)> = wave.iter().map(|t| (t.shard as usize, t.arrival)).collect();
    let crashed = run_wave(shards, map, wave, commit, loads, wave_id, None);
    debug_assert!(!crashed, "open-loop waves run without a durability ctx");
    for (home, arrival) in members {
        sojourn.record(shards[home].now().saturating_sub(arrival).ps());
    }
}

/// Executes one conflict-free wave (see the module docs for the five
/// steps). With a durability context, every shard appends its prepared
/// records during the prepare phase and forces once — the wave's group
/// commit — before returning its votes; committed cross-shard
/// transactions land in the decision log (forced) between the vote
/// barrier and the decision phase. Returns `true` if an armed crash
/// fired in this wave (the caller must stop the stream dead).
fn run_wave(
    shards: &mut [Pushtap],
    map: &WarehouseMap,
    wave: Vec<RoutedTxn>,
    commit: CommitConfig,
    loads: &mut [ShardLoad],
    wave_id: u64,
    mut dur: Option<&mut DurabilityCtx>,
) -> bool {
    let crash = dur.as_deref().and_then(|d| d.armed_at(wave_id));
    if crash == Some(CrashSite::BeforePrepare) {
        // The kill lands before the wave starts: nothing of it was
        // logged or applied.
        mark_crashed(&mut dur);
        return true;
    }
    // Report the wave's membership to the shadow tracker (every engine
    // shares one sanitizer): members of the same wave overlap, so the
    // tracker can lockset-check that the scheduler really kept their
    // key footprints disjoint. Wave ids are 1-based here; 0 is the
    // tracker's "solo/serial" wave, which is never cross-checked.
    {
        let san = shards[0].db().sanitizer();
        if san.enabled() {
            for routed in &wave {
                san.assign_wave(routed.ts.0, wave_id);
            }
        }
    }
    // Step 1: decompose every member at its home engine and build each
    // shard's timestamp-ordered item list. Wave members touch disjoint
    // rows and rings, so decomposition order is irrelevant and the
    // splits equal what the serial path would compute.
    let mut items: Vec<Vec<WaveItem>> = (0..shards.len()).map(|_| Vec::new()).collect();
    for (i, routed) in wave.iter().enumerate() {
        let (local, forwarded) = decompose_split(shards, map, routed);
        let cross = !routed.participants.is_empty();
        items[routed.shard as usize].push(WaveItem {
            txn: i,
            ts: routed.ts,
            role: TxnRole::Coordinator,
            cross,
            effects: local,
        });
        for (p, effects) in forwarded {
            items[p].push(WaveItem {
                txn: i,
                ts: routed.ts,
                role: TxnRole::Participant,
                cross,
                effects,
            });
        }
    }
    // Wave members arrive in stream order, but a forwarded subset can
    // land behind a later transaction's home item: restore timestamp
    // order per shard (prepares must apply in pinned-timestamp order).
    for list in &mut items {
        list.sort_by_key(|it| it.ts);
    }

    // Step 2: the prepare phase — all shards concurrently. Each shard
    // prepares its items in timestamp order (appending each prepared
    // record to its effect log) and ends with its group-commit force
    // barrier — one force for the whole wave, before its votes return;
    // forwarded sets pay their (overlapped) prepare-hop delivery.
    let force_latency = dur.as_deref().map_or(Ps::ZERO, |d| d.force_latency);
    let force_mode = match crash {
        Some(CrashSite::AfterPrepare) => ForceMode::Skip,
        Some(CrashSite::MidEffectFlush) => items
            .iter()
            .rposition(|list| !list.is_empty())
            .map_or(ForceMode::Skip, ForceMode::TornAt),
        _ => ForceMode::Normal,
    };
    let mut wals: Vec<Option<&mut Wal>> = match dur.as_deref_mut() {
        Some(d) => d.logs.iter_mut().map(Some).collect(),
        None => shards.iter().map(|_| None).collect(),
    };
    type PrepareOutcome = (usize, ShardLoad, Vec<Option<TxnResult>>, Vec<Ps>, Vec<Ps>);
    let results: Vec<PrepareOutcome> = thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter_mut()
            .zip(items.iter())
            .zip(wals.iter_mut())
            .enumerate()
            .filter(|(_, ((_, list), _))| !list.is_empty())
            .map(|(i, ((shard, list), wal))| {
                let mut wal = wal.as_deref_mut();
                scope.spawn(move || {
                    let mut load = ShardLoad::default();
                    // Periodic maintenance between waves — no scope is
                    // open on this shard here.
                    charge_maintenance(&mut load, shard.defrag_if_due());
                    let phase_start = shard.now();
                    let mut votes: Vec<Option<TxnResult>> = Vec::with_capacity(list.len());
                    // Per-item prepare-start clocks, threaded to the
                    // decision phase for commit-latency attribution.
                    let mut starts: Vec<Ps> = Vec::with_capacity(list.len());
                    // Per-item prepare-end clocks: the instant this
                    // shard's vote for the item leaves (laggard model).
                    let mut ends: Vec<Ps> = Vec::with_capacity(list.len());
                    for item in list {
                        let item_start = shard.now();
                        starts.push(item_start);
                        if item.role == TxnRole::Participant {
                            deliver(
                                &mut load,
                                shard,
                                commit.prepare_hop,
                                phase_start + commit.prepare_hop,
                            );
                        }
                        {
                            let san = shard.db().sanitizer();
                            if san.enabled() {
                                san.begin_execution(i as u32, item.ts.0, shard.now().ps());
                            }
                        }
                        let r = charge_engine(&mut load, shard, |s| {
                            s.prepare_effects_at(&item.effects, item.ts)
                        });
                        match r {
                            Ok(r) => {
                                // `prepared_txns` keeps its 2PC-only
                                // semantics: a warehouse-local wave item
                                // rides the same prepare machinery but is
                                // a one-phase commit, not a 2PC prepare.
                                if item.cross {
                                    load.report.prepared_txns += 1;
                                }
                                if item.role == TxnRole::Participant {
                                    load.report.forwarded_effects += item.effects.len() as u64;
                                }
                                if let Some(w) = wal.as_deref_mut() {
                                    wal_append(
                                        w,
                                        &mut load,
                                        shard,
                                        item.ts,
                                        item.role,
                                        item.cross,
                                        &item.effects,
                                        wave_id,
                                    );
                                }
                                votes.push(Some(r));
                            }
                            Err(_full) => {
                                load.report.aborts += 1;
                                votes.push(None);
                            }
                        }
                        if item.cross && shard.trace_enabled() {
                            shard.trace_record(
                                Span::new(
                                    shard.trace_track(),
                                    Phase::TwoPc,
                                    item.ts.0,
                                    item_start.ps(),
                                    shard.now().ps(),
                                )
                                .in_wave(wave_id),
                            );
                        }
                        ends.push(shard.now());
                    }
                    // The wave's group commit: one force barrier covers every
                    // record this shard appended for the wave. An armed
                    // crash skips it (AfterPrepare) or tears the last
                    // involved shard's force halfway (MidEffectFlush).
                    if let Some(w) = wal {
                        match force_mode {
                            ForceMode::Normal => {
                                wal_force(w, &mut load, shard, force_latency, wave_id);
                            }
                            ForceMode::Skip => {}
                            ForceMode::TornAt(k) if k == i => {
                                let half = w.pending_len() / 2;
                                w.force_torn(half);
                            }
                            ForceMode::TornAt(_) => {
                                wal_force(w, &mut load, shard, force_latency, wave_id);
                            }
                        }
                    }
                    if shard.trace_enabled() && shard.now() > phase_start {
                        shard.trace_record(
                            Span::new(
                                shard.trace_track(),
                                Phase::WavePrepare,
                                0,
                                phase_start.ps(),
                                shard.now().ps(),
                            )
                            .in_wave(wave_id),
                        );
                    }
                    (i, load, votes, starts, ends)
                })
            })
            .collect();
        handles.into_iter().map(join_worker).collect()
    });
    let mut votes: Vec<Vec<Option<TxnResult>>> = (0..shards.len()).map(|_| Vec::new()).collect();
    let mut starts: Vec<Vec<Ps>> = (0..shards.len()).map(|_| Vec::new()).collect();
    let mut ends: Vec<Vec<Ps>> = (0..shards.len()).map(|_| Vec::new()).collect();
    for (i, partial, v, s, e) in results {
        merge_load(&mut loads[i], partial);
        votes[i] = v;
        starts[i] = s;
        ends[i] = e;
    }

    // The kill at (or during) the wave's group commit: the prepare
    // phase ran, but the wave's records are lost (AfterPrepare) or
    // durable only up to one shard's torn force (MidEffectFlush).
    if matches!(
        crash,
        Some(CrashSite::AfterPrepare | CrashSite::MidEffectFlush)
    ) {
        mark_crashed(&mut dur);
        return true;
    }

    // Step 3: the vote barrier — a transaction commits iff every
    // involved shard prepared it; record who voted no for the retry
    // pass's defragmentation.
    let mut committed = vec![true; wave.len()];
    let mut no_voters: Vec<Vec<usize>> = vec![Vec::new(); wave.len()];
    for (i, shard_votes) in votes.iter().enumerate() {
        for (item, vote) in items[i].iter().zip(shard_votes) {
            if vote.is_none() {
                committed[item.txn] = false;
                no_voters[item.txn].push(i);
            }
        }
    }

    // Between the vote barrier and the decision phase, the commit
    // decisions become durable: one `Commit(ts)` entry per committed
    // cross-shard transaction, forced before any decision is delivered.
    // Recovery presumes abort for cross-shard scopes the decision log
    // does not vouch for.
    if let Some(d) = dur.as_deref_mut() {
        if crash == Some(CrashSite::BetweenVoteAndDecision) {
            d.crashed = true;
            return true;
        }
        for (i, routed) in wave.iter().enumerate() {
            if committed[i] && !routed.participants.is_empty() {
                d.decision_log.append(&encode_decision(routed.ts));
            }
        }
        if crash == Some(CrashSite::MidDecisionLogWrite) {
            let half = d.decision_log.pending_len() / 2;
            d.decision_log.force_torn(half);
            d.crashed = true;
            return true;
        }
        d.decision_log.force();
        if crash == Some(CrashSite::AfterDecision) {
            d.crashed = true;
            return true;
        }
    }

    // Step 4: the decision phase — all shards concurrently, decisions
    // delivered in timestamp order with overlapped hops. Commits
    // resolve scopes (metadata-only); aborts replay pinned undo
    // records.
    //
    // Laggard vote clocks: participant `p`'s vote for wave member `t`
    // leaves at `vote_ready[p][t.txn]` — `p`'s clock right after `t`'s
    // prepare applied (early vote; the group-commit force overlaps the
    // decision round, and the decision *apply* on `p` still lands after
    // the force because `p`'s clock crossed it at the phase barrier).
    // A shard with no item for `t` (never happens for a real
    // participant) falls back to its prepare-pass end.
    let prepare_done: Vec<Ps> = shards.iter().map(Pushtap::now).collect();
    let mut vote_ready: Vec<Vec<Ps>> = prepare_done.iter().map(|&d| vec![d; wave.len()]).collect();
    for (i, (list, shard_ends)) in items.iter().zip(&ends).enumerate() {
        for (item, &end) in list.iter().zip(shard_ends) {
            vote_ready[i][item.txn] = end;
        }
    }
    let vote_ready_ref = &vote_ready;
    let committed_ref = &committed;
    let wave_ref = &wave;
    let results: Vec<(usize, ShardLoad)> = thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter_mut()
            .zip(items.iter().zip(votes.iter().zip(starts.iter())))
            .enumerate()
            .filter(|(_, (_, (list, _)))| !list.is_empty())
            .map(|(i, (shard, (list, (shard_votes, shard_starts))))| {
                scope.spawn(move || {
                    let mut load = ShardLoad::default();
                    let phase_start = shard.now();
                    for ((item, vote), &prepare_start) in
                        list.iter().zip(shard_votes).zip(shard_starts)
                    {
                        let Some(result) = vote else {
                            // This shard voted no: nothing is held here
                            // (the failed prepare already rolled back and
                            // charged its wasted latency).
                            continue;
                        };
                        let decision = committed_ref[item.txn];
                        let item_start = shard.now();
                        match item.role {
                            TxnRole::Coordinator => {
                                // The home half pays the decision
                                // round-trip for a cross-shard
                                // transaction, gated by the laggard
                                // vote barrier: the last vote arrives
                                // from the slowest participant — its
                                // prepare-pass end plus one prepare-hop
                                // and its deterministic skew, floored
                                // by the home's own round-trip — and
                                // the decision goes out one commit-hop
                                // later, overlapped with the rest of
                                // the wave's rounds.
                                if item.cross {
                                    let mut vote_at = phase_start + commit.prepare_hop;
                                    for &p in &wave_ref[item.txn].participants {
                                        vote_at = vote_at.max(
                                            vote_ready_ref[p as usize][item.txn]
                                                + commit.prepare_hop
                                                + vote_skew(commit.vote_jitter, p, item.ts),
                                        );
                                    }
                                    deliver(&mut load, shard, commit.prepare_hop, vote_at);
                                    deliver(
                                        &mut load,
                                        shard,
                                        commit.commit_hop,
                                        vote_at + commit.commit_hop,
                                    );
                                    if shard.trace_enabled() {
                                        shard.trace_record(
                                            Span::new(
                                                shard.trace_track(),
                                                Phase::VoteBarrier,
                                                item.ts.0,
                                                item_start.ps(),
                                                shard.now().ps(),
                                            )
                                            .in_wave(wave_id),
                                        );
                                    }
                                }
                                if decision {
                                    shard.commit_prepared(item.ts, TxnRole::Coordinator);
                                    load.routed += 1;
                                    load.report.committed += 1;
                                    load.report.breakdown.merge(&result.breakdown);
                                    load.remote_touches += wave_ref[item.txn].remote;
                                    load.report
                                        .commit_latency
                                        .record(shard.now().saturating_sub(prepare_start).ps());
                                } else {
                                    charge_engine(&mut load, shard, |s| s.abort_prepared(item.ts));
                                    load.report.aborts += 1;
                                    load.report.participant_aborts += 1;
                                }
                            }
                            TxnRole::Participant => {
                                deliver(
                                    &mut load,
                                    shard,
                                    commit.commit_hop,
                                    phase_start + commit.commit_hop,
                                );
                                if decision {
                                    shard.commit_prepared(item.ts, TxnRole::Participant);
                                    load.report.breakdown.merge(&result.breakdown);
                                } else {
                                    charge_engine(&mut load, shard, |s| s.abort_prepared(item.ts));
                                    load.report.aborts += 1;
                                    load.report.participant_aborts += 1;
                                }
                            }
                        }
                        if item.cross && shard.trace_enabled() {
                            shard.trace_record(
                                Span::new(
                                    shard.trace_track(),
                                    Phase::TwoPc,
                                    item.ts.0,
                                    item_start.ps(),
                                    shard.now().ps(),
                                )
                                .in_wave(wave_id),
                            );
                        }
                    }
                    if shard.trace_enabled() && shard.now() > phase_start {
                        shard.trace_record(
                            Span::new(
                                shard.trace_track(),
                                Phase::WaveDecide,
                                0,
                                phase_start.ps(),
                                shard.now().ps(),
                            )
                            .in_wave(wave_id),
                        );
                    }
                    (i, load)
                })
            })
            .collect();
        handles.into_iter().map(join_worker).collect()
    });
    for (i, partial) in results {
        merge_load(&mut loads[i], partial);
    }

    // Step 5: retries — aborted transactions re-run serially at their
    // pinned timestamps before the next wave. Every scope of this wave
    // is resolved by now, so reclaiming the no-voting shards' arenas
    // (GC first, defragmentation as the fallback) is safe; the retried
    // transactions conflict with nothing still in flight (their wave
    // was conflict-free and later waves have not started).
    for (i, routed) in wave.iter().enumerate() {
        if committed[i] {
            continue;
        }
        for &v in &no_voters[i] {
            charge_maintenance(&mut loads[v], shards[v].reclaim_now());
        }
        if routed.participants.is_empty() {
            let home = routed.shard as usize;
            let wal = dur.as_deref_mut().map(|d| &mut d.logs[home]);
            run_local_txn(&mut shards[home], routed, &mut loads[home], true, wal);
            // A retry runs alone, so its record forces alone — no wave
            // to amortize the barrier over.
            if let Some(d) = dur.as_deref_mut() {
                wal_force(
                    &mut d.logs[home],
                    &mut loads[home],
                    &mut shards[home],
                    force_latency,
                    wave_id,
                );
            }
        } else {
            let crashed = two_phase_commit(
                shards,
                map,
                routed,
                commit,
                loads,
                1,
                dur.as_deref_mut(),
                None,
            );
            debug_assert!(!crashed, "an unarmed 2PC cannot crash");
        }
    }
    false
}
