//! Conflict-aware wave scheduling of a routed stream.
//!
//! The stream arrives in global timestamp order with every transaction
//! carrying its conflict keyset ([`pushtap_oltp::KeySet`], derived from
//! the read-only effect decomposition — known *before* execution). The
//! scheduler builds the stream's dependency graph and cuts it into
//! **waves**: maximal greedy groups of mutually non-conflicting
//! transactions. Conflicting transactions land in later waves than every
//! conflicting predecessor, so per-row commit order equals stream
//! (timestamp) order — the invariant MVCC chains and byte identity
//! require — while everything inside one wave, warehouse-local and
//! cross-shard alike, is free to execute concurrently with its
//! two-phase-commit rounds overlapped.
//!
//! Because the stream is timestamp-ordered, the greedy pass assigns any
//! conflicting pair to waves in timestamp order automatically: the
//! earlier transaction is scheduled first, and the later one sees it in
//! the key maps and lands strictly after it.

use std::collections::BTreeMap;

use pushtap_oltp::Key;

use crate::router::RoutedTxn;

/// One wave: transactions that may execute (and two-phase-commit)
/// concurrently, in stream order.
pub type Wave = Vec<RoutedTxn>;

/// Cuts a timestamp-ordered routed stream into conflict-free waves.
///
/// Greedy earliest-wave assignment: transaction `t` joins the first
/// wave after every earlier transaction it conflicts with — a writer
/// waits for earlier readers *and* writers of its keys, a reader only
/// for earlier writers. Within a wave, transactions keep stream order.
///
/// # Panics
///
/// Debug-asserts that every transaction's keyset is stamped (an empty
/// keyset would schedule a TPC-C transaction as conflict-free with
/// everything, which is never true and almost certainly means the
/// service forgot to stamp the stream).
pub fn build_waves(stream: Vec<RoutedTxn>) -> Vec<Wave> {
    let mut waves: Vec<Wave> = Vec::new();
    // Per key: the latest wave holding a writer / any reader of it.
    let mut last_writer: BTreeMap<Key, usize> = BTreeMap::new();
    let mut last_reader: BTreeMap<Key, usize> = BTreeMap::new();
    for routed in stream {
        debug_assert!(
            !routed.keys.is_empty(),
            "unstamped keyset in the scheduled stream (ts {:?})",
            routed.ts
        );
        let mut wave = 0usize;
        for k in routed.keys.reads() {
            if let Some(&w) = last_writer.get(k) {
                wave = wave.max(w + 1);
            }
        }
        for k in routed.keys.writes() {
            if let Some(&w) = last_writer.get(k) {
                wave = wave.max(w + 1);
            }
            if let Some(&w) = last_reader.get(k) {
                wave = wave.max(w + 1);
            }
        }
        for k in routed.keys.reads() {
            let e = last_reader.entry(*k).or_insert(wave);
            *e = (*e).max(wave);
        }
        for k in routed.keys.writes() {
            last_writer.insert(*k, wave);
        }
        if wave == waves.len() {
            waves.push(Vec::new());
        }
        waves[wave].push(routed);
    }
    waves
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushtap_chbench::Table;
    use pushtap_chbench::{Payment, Txn};
    use pushtap_mvcc::Ts;
    use pushtap_oltp::KeySet;

    /// A hand-built routed Payment with an explicit keyset: writes its
    /// warehouse row, its customer row, and HISTORY's ring at `w`.
    fn payment(w: u64, c_row: u64, ts: u64) -> RoutedTxn {
        RoutedTxn {
            txn: Txn::Payment(Payment {
                w_id: w,
                d_id: 0,
                c_row,
                amount: 1,
            }),
            shard: 0,
            participants: vec![],
            remote: 0,
            ts: Ts(ts),
            keys: KeySet::new(
                vec![],
                vec![
                    Key::Row(Table::Warehouse, w),
                    Key::Row(Table::District, w * 10),
                    Key::Row(Table::Customer, c_row),
                    Key::Ring(Table::History, w),
                ],
            ),
        }
    }

    fn ts_of(waves: &[Wave]) -> Vec<Vec<u64>> {
        waves
            .iter()
            .map(|w| w.iter().map(|t| t.ts.0).collect())
            .collect()
    }

    /// Disjoint warehouses (and customers): no shared row, no shared
    /// ring — the whole stream is one wave.
    #[test]
    fn disjoint_warehouses_form_one_wave() {
        let stream = vec![
            payment(0, 100, 1),
            payment(1, 200, 2),
            payment(2, 300, 3),
            payment(3, 400, 4),
        ];
        let waves = build_waves(stream);
        assert_eq!(ts_of(&waves), vec![vec![1, 2, 3, 4]]);
    }

    /// Chained read-modify-writes of one warehouse's YTD: every Payment
    /// conflicts with every earlier one, so the schedule degenerates to
    /// fully serial singleton waves in timestamp order.
    #[test]
    fn chained_payments_on_one_warehouse_serialise() {
        let stream = vec![payment(0, 100, 1), payment(0, 200, 2), payment(0, 300, 3)];
        let waves = build_waves(stream);
        assert_eq!(ts_of(&waves), vec![vec![1], vec![2], vec![3]]);
    }

    /// The mixed case: two warehouses interleaved. Same-warehouse
    /// payments order by timestamp; cross-warehouse ones share waves.
    #[test]
    fn interleaved_warehouses_overlap_without_reordering_conflicts() {
        let stream = vec![
            payment(0, 100, 1),
            payment(1, 200, 2),
            payment(0, 300, 3), // conflicts with ts 1 (warehouse 0 YTD)
            payment(1, 400, 4), // conflicts with ts 2
        ];
        let waves = build_waves(stream);
        assert_eq!(ts_of(&waves), vec![vec![1, 2], vec![3, 4]]);
        // Conflicting pairs stay in timestamp order across waves.
        for (earlier, later) in [(1u64, 3u64), (2, 4)] {
            let we = waves
                .iter()
                .position(|w| w.iter().any(|t| t.ts.0 == earlier))
                .unwrap();
            let wl = waves
                .iter()
                .position(|w| w.iter().any(|t| t.ts.0 == later))
                .unwrap();
            assert!(we < wl, "ts {earlier} must commit before ts {later}");
        }
    }

    /// A shared customer row chains two otherwise-disjoint warehouses:
    /// the remote-payment shape that makes 2PCs conflict.
    #[test]
    fn shared_customer_row_orders_across_warehouses() {
        let stream = vec![payment(0, 500, 1), payment(1, 500, 2)];
        let waves = build_waves(stream);
        assert_eq!(ts_of(&waves), vec![vec![1], vec![2]]);
    }

    /// A reader joins the wave after its writer, but parallel readers
    /// share a wave (read/read never conflicts).
    #[test]
    fn readers_wait_for_writers_but_not_each_other() {
        let write = payment(0, 100, 1);
        let reader = |ts: u64, w: u64| {
            let mut r = payment(w, 1000 + ts, ts);
            r.keys = KeySet::new(
                vec![Key::Row(Table::Customer, 100)],
                vec![Key::Ring(Table::Order, w)],
            );
            r
        };
        let waves = build_waves(vec![write, reader(2, 1), reader(3, 2)]);
        assert_eq!(ts_of(&waves), vec![vec![1], vec![2, 3]]);
    }
}
