//! Conflict-aware wave scheduling of a routed stream.
//!
//! The stream arrives in global timestamp order with every transaction
//! carrying its conflict keyset ([`pushtap_oltp::KeySet`], derived from
//! the read-only effect decomposition — known *before* execution). The
//! scheduler builds the stream's dependency graph and cuts it into
//! **waves**: maximal greedy groups of mutually non-conflicting
//! transactions. Conflicting transactions land in later waves than every
//! conflicting predecessor, so per-row commit order equals stream
//! (timestamp) order — the invariant MVCC chains and byte identity
//! require — while everything inside one wave, warehouse-local and
//! cross-shard alike, is free to execute concurrently with its
//! two-phase-commit rounds overlapped.
//!
//! Because the stream is timestamp-ordered, the greedy pass assigns any
//! conflicting pair to waves in timestamp order automatically: the
//! earlier transaction is scheduled first, and the later one sees it in
//! the key maps and lands strictly after it.

use std::collections::{BTreeMap, VecDeque};

use pushtap_oltp::Key;

use crate::router::RoutedTxn;

/// One wave: transactions that may execute (and two-phase-commit)
/// concurrently, in stream order.
pub type Wave = Vec<RoutedTxn>;

/// Cuts a timestamp-ordered routed stream into conflict-free waves.
///
/// Greedy earliest-wave assignment: transaction `t` joins the first
/// wave after every earlier transaction it conflicts with — a writer
/// waits for earlier readers *and* writers of its keys, a reader only
/// for earlier writers. Within a wave, transactions keep stream order.
///
/// # Panics
///
/// Debug-asserts that every transaction's keyset is stamped (an empty
/// keyset would schedule a TPC-C transaction as conflict-free with
/// everything, which is never true and almost certainly means the
/// service forgot to stamp the stream).
pub fn build_waves(stream: Vec<RoutedTxn>) -> Vec<Wave> {
    let mut waves: Vec<Wave> = Vec::new();
    // Per key: the latest wave holding a writer / any reader of it.
    let mut last_writer: BTreeMap<Key, usize> = BTreeMap::new();
    let mut last_reader: BTreeMap<Key, usize> = BTreeMap::new();
    for routed in stream {
        debug_assert!(
            !routed.keys.is_empty(),
            "unstamped keyset in the scheduled stream (ts {:?})",
            routed.ts
        );
        let mut wave = 0usize;
        for k in routed.keys.reads() {
            if let Some(&w) = last_writer.get(k) {
                wave = wave.max(w + 1);
            }
        }
        for k in routed.keys.writes() {
            if let Some(&w) = last_writer.get(k) {
                wave = wave.max(w + 1);
            }
            if let Some(&w) = last_reader.get(k) {
                wave = wave.max(w + 1);
            }
        }
        for k in routed.keys.reads() {
            let e = last_reader.entry(*k).or_insert(wave);
            *e = (*e).max(wave);
        }
        for k in routed.keys.writes() {
            last_writer.insert(*k, wave);
        }
        if wave == waves.len() {
            waves.push(Vec::new());
        }
        waves[wave].push(routed);
    }
    waves
}

/// Incremental wave construction over a sliding window of admitted
/// transactions — [`build_waves`]' greedy pass run *online*.
///
/// The scheduler maintains the same last-writer/last-reader key maps,
/// but keyed by **global** wave index so they survive across
/// dispatches, and a `floor`: the first wave index not yet dispatched.
/// [`admit`](WaveScheduler::admit) assigns each transaction the
/// earliest wave after every conflicting predecessor (never below the
/// floor — already-dispatched waves are closed), and
/// [`pop_wave`](WaveScheduler::pop_wave) extracts the *frontier*: all
/// pending transactions in the minimum pending wave, in admission
/// order.
///
/// Equivalence with the batch oracle: the greedy rule is identical, the
/// floor only ever rises past fully-dispatched waves, and the stream is
/// admitted in timestamp order — so any conflicting pair lands in
/// strictly increasing waves and is dispatched in timestamp order,
/// whatever the window size. Per-row commit order therefore equals
/// stream order, which is the only property byte identity needs; the
/// `open_loop` integration suite proves the committed bytes equal the
/// batch scheduler's and the unpartitioned reference's across window
/// sizes, mixes, and shard counts. With a window at least the stream
/// length, the partition itself is *exactly* [`build_waves`]' output.
///
/// Memory stays bounded by the window: map entries below the floor are
/// pruned at every dispatch, so only keys touched by still-pending
/// transactions are tracked.
#[derive(Debug, Clone)]
pub struct WaveScheduler {
    window: usize,
    floor: u64,
    last_writer: BTreeMap<Key, u64>,
    last_reader: BTreeMap<Key, u64>,
    /// Admitted-but-undispatched transactions with their assigned
    /// global wave index, in admission order.
    pending: VecDeque<(u64, RoutedTxn)>,
}

impl WaveScheduler {
    /// A scheduler dispatching whenever `window` transactions are
    /// pending.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> WaveScheduler {
        assert!(window > 0, "scheduling window must be positive");
        WaveScheduler {
            window,
            floor: 0,
            last_writer: BTreeMap::new(),
            last_reader: BTreeMap::new(),
            pending: VecDeque::new(),
        }
    }

    /// Admits one transaction: assigns its wave by the greedy
    /// earliest-after-conflicts rule and records its keyset in the
    /// maps. Transactions must be admitted in timestamp order.
    ///
    /// # Panics
    /// Debug-asserts the keyset is stamped, as [`build_waves`] does.
    pub fn admit(&mut self, routed: RoutedTxn) {
        debug_assert!(
            !routed.keys.is_empty(),
            "unstamped keyset admitted to the wave scheduler (ts {:?})",
            routed.ts
        );
        let mut wave = self.floor;
        for k in routed.keys.reads() {
            if let Some(&w) = self.last_writer.get(k) {
                wave = wave.max(w + 1);
            }
        }
        for k in routed.keys.writes() {
            if let Some(&w) = self.last_writer.get(k) {
                wave = wave.max(w + 1);
            }
            if let Some(&w) = self.last_reader.get(k) {
                wave = wave.max(w + 1);
            }
        }
        for k in routed.keys.reads() {
            let e = self.last_reader.entry(*k).or_insert(wave);
            *e = (*e).max(wave);
        }
        for k in routed.keys.writes() {
            self.last_writer.insert(*k, wave);
        }
        self.pending.push_back((wave, routed));
    }

    /// Number of admitted-but-undispatched transactions.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// True when the sliding window is closed: at least `window`
    /// transactions pending, so the frontier wave should dispatch.
    pub fn window_full(&self) -> bool {
        self.pending.len() >= self.window
    }

    /// Key-map entries currently tracked — bounded by the keys of
    /// pending transactions (the bounded-memory test pins this).
    pub fn tracked_keys(&self) -> usize {
        self.last_writer.len() + self.last_reader.len()
    }

    /// Dispatches the frontier: removes and returns every pending
    /// transaction in the minimum pending wave (admission order —
    /// i.e. timestamp order), advances the floor past it, and prunes
    /// map entries the floor subsumes. `None` when nothing is pending.
    pub fn pop_wave(&mut self) -> Option<Wave> {
        let min_wave = self.pending.iter().map(|(w, _)| *w).min()?;
        let mut wave: Wave = Vec::new();
        let mut rest: VecDeque<(u64, RoutedTxn)> = VecDeque::with_capacity(self.pending.len());
        for (w, routed) in self.pending.drain(..) {
            if w == min_wave {
                wave.push(routed);
            } else {
                rest.push_back((w, routed));
            }
        }
        self.pending = rest;
        self.floor = min_wave + 1;
        // Entries below the floor constrain nothing the floor doesn't
        // already: pruning them is what keeps memory window-bounded.
        self.last_writer.retain(|_, w| *w >= self.floor);
        self.last_reader.retain(|_, w| *w >= self.floor);
        Some(wave)
    }
}

/// Runs a whole timestamp-ordered stream through a [`WaveScheduler`]
/// with the given window, returning the dispatched waves in order —
/// the incremental counterpart of [`build_waves`] for tests and
/// benches.
pub fn incremental_waves(stream: Vec<RoutedTxn>, window: usize) -> Vec<Wave> {
    let mut sched = WaveScheduler::new(window);
    let mut waves: Vec<Wave> = Vec::new();
    for routed in stream {
        sched.admit(routed);
        while sched.window_full() {
            match sched.pop_wave() {
                Some(w) => waves.push(w),
                None => break,
            }
        }
    }
    while let Some(w) = sched.pop_wave() {
        waves.push(w);
    }
    waves
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushtap_chbench::Table;
    use pushtap_chbench::{Payment, Txn};
    use pushtap_mvcc::Ts;
    use pushtap_oltp::KeySet;
    use pushtap_pim::Ps;

    /// A hand-built routed Payment with an explicit keyset: writes its
    /// warehouse row, its customer row, and HISTORY's ring at `w`.
    fn payment(w: u64, c_row: u64, ts: u64) -> RoutedTxn {
        RoutedTxn {
            txn: Txn::Payment(Payment {
                w_id: w,
                d_id: 0,
                c_row,
                amount: 1,
            }),
            shard: 0,
            participants: vec![],
            remote: 0,
            ts: Ts(ts),
            keys: KeySet::new(
                vec![],
                vec![
                    Key::Row(Table::Warehouse, w),
                    Key::Row(Table::District, w * 10),
                    Key::Row(Table::Customer, c_row),
                    Key::Ring(Table::History, w),
                ],
            ),
            arrival: Ps::ZERO,
        }
    }

    fn ts_of(waves: &[Wave]) -> Vec<Vec<u64>> {
        waves
            .iter()
            .map(|w| w.iter().map(|t| t.ts.0).collect())
            .collect()
    }

    /// Disjoint warehouses (and customers): no shared row, no shared
    /// ring — the whole stream is one wave.
    #[test]
    fn disjoint_warehouses_form_one_wave() {
        let stream = vec![
            payment(0, 100, 1),
            payment(1, 200, 2),
            payment(2, 300, 3),
            payment(3, 400, 4),
        ];
        let waves = build_waves(stream);
        assert_eq!(ts_of(&waves), vec![vec![1, 2, 3, 4]]);
    }

    /// Chained read-modify-writes of one warehouse's YTD: every Payment
    /// conflicts with every earlier one, so the schedule degenerates to
    /// fully serial singleton waves in timestamp order.
    #[test]
    fn chained_payments_on_one_warehouse_serialise() {
        let stream = vec![payment(0, 100, 1), payment(0, 200, 2), payment(0, 300, 3)];
        let waves = build_waves(stream);
        assert_eq!(ts_of(&waves), vec![vec![1], vec![2], vec![3]]);
    }

    /// The mixed case: two warehouses interleaved. Same-warehouse
    /// payments order by timestamp; cross-warehouse ones share waves.
    #[test]
    fn interleaved_warehouses_overlap_without_reordering_conflicts() {
        let stream = vec![
            payment(0, 100, 1),
            payment(1, 200, 2),
            payment(0, 300, 3), // conflicts with ts 1 (warehouse 0 YTD)
            payment(1, 400, 4), // conflicts with ts 2
        ];
        let waves = build_waves(stream);
        assert_eq!(ts_of(&waves), vec![vec![1, 2], vec![3, 4]]);
        // Conflicting pairs stay in timestamp order across waves.
        for (earlier, later) in [(1u64, 3u64), (2, 4)] {
            let we = waves
                .iter()
                .position(|w| w.iter().any(|t| t.ts.0 == earlier))
                .unwrap();
            let wl = waves
                .iter()
                .position(|w| w.iter().any(|t| t.ts.0 == later))
                .unwrap();
            assert!(we < wl, "ts {earlier} must commit before ts {later}");
        }
    }

    /// A shared customer row chains two otherwise-disjoint warehouses:
    /// the remote-payment shape that makes 2PCs conflict.
    #[test]
    fn shared_customer_row_orders_across_warehouses() {
        let stream = vec![payment(0, 500, 1), payment(1, 500, 2)];
        let waves = build_waves(stream);
        assert_eq!(ts_of(&waves), vec![vec![1], vec![2]]);
    }

    /// A reader joins the wave after its writer, but parallel readers
    /// share a wave (read/read never conflicts).
    #[test]
    fn readers_wait_for_writers_but_not_each_other() {
        let write = payment(0, 100, 1);
        let reader = |ts: u64, w: u64| {
            let mut r = payment(w, 1000 + ts, ts);
            r.keys = KeySet::new(
                vec![Key::Row(Table::Customer, 100)],
                vec![Key::Ring(Table::Order, w)],
            );
            r
        };
        let waves = build_waves(vec![write, reader(2, 1), reader(3, 2)]);
        assert_eq!(ts_of(&waves), vec![vec![1], vec![2, 3]]);
    }

    /// A representative mixed stream for the incremental tests: two
    /// hot warehouses, one shared customer, some disjoint traffic.
    fn mixed_stream() -> Vec<RoutedTxn> {
        vec![
            payment(0, 100, 1),
            payment(1, 200, 2),
            payment(0, 300, 3),
            payment(2, 400, 4),
            payment(1, 500, 5),
            payment(3, 600, 6),
            payment(2, 500, 7), // shares customer 500 with ts 5
            payment(0, 700, 8),
        ]
    }

    /// With a window at least the stream length, the incremental
    /// scheduler reproduces the batch partition *exactly*.
    #[test]
    fn wide_window_equals_batch_partition() {
        for window in [8usize, 16, 1000] {
            let batch = ts_of(&build_waves(mixed_stream()));
            let inc = ts_of(&incremental_waves(mixed_stream(), window));
            assert_eq!(inc, batch, "window {window} must match batch");
        }
    }

    /// Any window keeps every conflicting pair in timestamp order
    /// across dispatched waves, and dispatches every transaction
    /// exactly once.
    #[test]
    fn narrow_windows_preserve_conflict_order() {
        for window in 1..=8usize {
            let waves = incremental_waves(mixed_stream(), window);
            let flat: Vec<u64> = waves.iter().flatten().map(|t| t.ts.0).collect();
            let mut sorted = flat.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (1..=8).collect::<Vec<_>>());
            let wave_of = |ts: u64| {
                waves
                    .iter()
                    .position(|w| w.iter().any(|t| t.ts.0 == ts))
                    .unwrap()
            };
            // Conflicting pairs in the stream (same warehouse or same
            // customer row) must land in strictly increasing waves.
            for (earlier, later) in [(1u64, 3u64), (3, 8), (2, 5), (4, 7), (5, 7)] {
                assert!(
                    wave_of(earlier) < wave_of(later),
                    "window {window}: ts {earlier} must dispatch before ts {later}"
                );
            }
        }
    }

    /// Window 1 degenerates to per-admission dispatch: waves pop as
    /// soon as each transaction is admitted, in stream order.
    #[test]
    fn window_one_dispatches_in_stream_order() {
        let waves = incremental_waves(mixed_stream(), 1);
        let flat: Vec<u64> = waves.iter().flatten().map(|t| t.ts.0).collect();
        assert_eq!(flat, (1..=8).collect::<Vec<_>>());
        assert!(waves.iter().all(|w| w.len() == 1));
    }

    /// The key maps stay window-bounded: after every dispatch, only
    /// keys of still-pending transactions survive the floor pruning —
    /// the maps never grow with the length of the stream.
    #[test]
    fn key_maps_stay_window_bounded() {
        let mut sched = WaveScheduler::new(4);
        let mut high_water = 0usize;
        for i in 0..1_000u64 {
            // Every txn hits warehouse i%2 (a conflict chain) plus its
            // own customer row — unbounded distinct keys overall.
            sched.admit(payment(i % 2, 10_000 + i, i + 1));
            while sched.window_full() {
                sched.pop_wave().unwrap();
            }
            high_water = high_water.max(sched.tracked_keys());
        }
        while sched.pop_wave().is_some() {}
        assert_eq!(sched.tracked_keys(), 0, "drained scheduler must be empty");
        // 4 pending txns × 4 written keys is the ceiling.
        assert!(
            high_water <= 16,
            "tracked keys must stay window-bounded, saw {high_water}"
        );
    }

    /// The scheduler is work-conserving about its frontier: popping
    /// with fewer than `window` pending still yields the min wave.
    #[test]
    fn pop_before_window_closes_yields_frontier() {
        let mut sched = WaveScheduler::new(100);
        sched.admit(payment(0, 100, 1));
        sched.admit(payment(0, 200, 2)); // conflicts: later wave
        let first = sched.pop_wave().unwrap();
        assert_eq!(first.iter().map(|t| t.ts.0).collect::<Vec<_>>(), vec![1]);
        let second = sched.pop_wave().unwrap();
        assert_eq!(second.iter().map(|t| t.ts.0).collect::<Vec<_>>(), vec![2]);
        assert!(sched.pop_wave().is_none());
    }
}
