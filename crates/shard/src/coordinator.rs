//! The transaction coordinator: stream-order execution over the shard
//! engines, with a simulated two-phase commit for transactions whose
//! effects span shards.
//!
//! # Execution model
//!
//! The router hands the coordinator one globally-ordered stream of
//! [`RoutedTxn`]s, each stamped with its stream-order timestamp. The
//! coordinator drives it with two disciplines:
//!
//! * **Warehouse-local transactions** (empty participant set — the vast
//!   majority under TPC-C's remote rates) are queued per home shard and
//!   executed in *concurrent* per-shard runs (`std::thread::scope`),
//!   exactly like the pre-2PC bucket execution.
//! * **Cross-shard transactions** trigger a flush of every *involved*
//!   shard's queue (so all earlier stream work lands first — per-row
//!   MVCC timestamps must stay monotone), then run as a two-phase
//!   commit: the home shard decomposes the transaction into tagged
//!   effects ([`pushtap_oltp::TpccDb::decompose`]), prepares the effects
//!   it owns, forwards each participant its owned subset, collects
//!   votes, and commits — or aborts — everywhere at the pinned
//!   timestamp.
//!
//! # Votes, aborts, retries
//!
//! A participant whose delta arena fills mid-prepare votes "no" (its
//! partial effects are already rolled back). The coordinator then
//! delivers the abort decision to the home half and every prepared
//! participant — their pinned undo records replay in reverse, leaving
//! zero trace — defragments the voting shard, and retries the whole
//! transaction under the *same* timestamp, feeding the engine-level
//! atomic-retry machinery. Committed bytes therefore never depend on
//! where or when arenas filled up, which is what extends the
//! byte-identity invariant to remote-owned CUSTOMER/STOCK rows.
//!
//! # Timing
//!
//! Message rounds are charged per [`CommitConfig`]: each participant's
//! clock pays `prepare_hop` to receive its effect set and `commit_hop`
//! to receive the decision; the coordinator pays one
//! `prepare_hop + commit_hop` round-trip before reporting the commit.
//! All 2PC metrics land in each shard's [`OltpReport`]
//! (`prepared_txns`, `participant_aborts`, `forwarded_effects`,
//! `commit_rounds`, `two_pc_time`).
//!
//! [`OltpReport`]: pushtap_core::OltpReport

use std::collections::BTreeMap;
use std::thread;

use pushtap_core::Pushtap;
use pushtap_oltp::{Breakdown, TaggedEffect, TxnRole};
use pushtap_pim::Ps;

use crate::config::CommitConfig;
use crate::partition::WarehouseMap;
use crate::report::ShardLoad;
use crate::router::RoutedTxn;

/// Executes one globally-ordered routed stream across the shard
/// engines, returning each shard's accumulated load.
pub(crate) fn execute_stream(
    shards: &mut [Pushtap],
    map: &WarehouseMap,
    stream: Vec<RoutedTxn>,
    commit: CommitConfig,
) -> Vec<ShardLoad> {
    let starts: Vec<Ps> = shards.iter().map(Pushtap::now).collect();
    let mut loads: Vec<ShardLoad> = (0..shards.len()).map(|_| ShardLoad::default()).collect();
    let mut pending: Vec<Vec<RoutedTxn>> = (0..shards.len()).map(|_| Vec::new()).collect();
    for routed in stream {
        if routed.participants.is_empty() {
            pending[routed.shard as usize].push(routed);
        } else {
            // Stream-order discipline: every involved engine applies all
            // its earlier stream work before this transaction's effects
            // land (per-row commit timestamps must stay monotone).
            // Uninvolved shards keep queueing — their rows are disjoint
            // from this transaction's by ownership.
            let mut involved = routed.participants.clone();
            involved.push(routed.shard);
            flush(shards, &mut pending, &mut loads, Some(&involved));
            two_phase_commit(shards, map, &routed, commit, &mut loads);
        }
    }
    flush(shards, &mut pending, &mut loads, None);
    for (i, load) in loads.iter_mut().enumerate() {
        load.elapsed = shards[i].now().saturating_sub(starts[i]);
    }
    loads
}

/// Drains the pending warehouse-local queues of the selected shards
/// (all shards when `only` is `None`), one OS thread per non-empty
/// queue, and folds the partial loads into `loads`.
fn flush(
    shards: &mut [Pushtap],
    pending: &mut [Vec<RoutedTxn>],
    loads: &mut [ShardLoad],
    only: Option<&[u32]>,
) {
    let results: Vec<(usize, ShardLoad)> = thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter_mut()
            .zip(pending.iter_mut())
            .enumerate()
            .filter(|(i, _)| only.is_none_or(|set| set.contains(&(*i as u32))))
            .filter(|(_, (_, queue))| !queue.is_empty())
            .map(|(i, (shard, queue))| {
                let bucket = std::mem::take(queue);
                scope.spawn(move || (i, run_local_bucket(shard, bucket)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    });
    for (i, partial) in results {
        loads[i].routed += partial.routed;
        loads[i].remote_touches += partial.remote_touches;
        loads[i].remote_time += partial.remote_time;
        loads[i].report.merge(&partial.report);
    }
}

/// Executes one shard's queued warehouse-local transactions, each under
/// its pinned stream-order timestamp (a `DeltaFull` retry re-runs under
/// the same timestamp).
fn run_local_bucket(shard: &mut Pushtap, bucket: Vec<RoutedTxn>) -> ShardLoad {
    let mut load = ShardLoad::default();
    for routed in bucket {
        debug_assert!(
            routed.participants.is_empty(),
            "cross-shard transaction queued as local"
        );
        let before = shard.now();
        let aborts_before = shard.db().aborts();
        let wasted_before = shard.db().wasted_retry_time();
        let (result, pause) = shard.execute_txn_at(&routed.txn, routed.ts);
        load.routed += 1;
        load.report.committed += 1;
        let aborted = shard.db().aborts() - aborts_before;
        load.report.aborts += aborted;
        if aborted > 0 {
            load.report.retried_txns += 1;
        }
        charge_defrag(&mut load, pause);
        load.report.wasted_retry_time +=
            shard.db().wasted_retry_time().saturating_sub(wasted_before);
        load.report.txn_time += shard.now().saturating_sub(before).saturating_sub(pause);
        load.report.breakdown.merge(&result.breakdown);
    }
    load
}

/// Charges one 2PC message round (exactly one hop of latency) to a
/// shard's clock and its load accounting, so `commit_rounds` counts
/// message deliveries in uniform units on every shard.
fn charge_hop(load: &mut ShardLoad, shard: &mut Pushtap, hop: Ps) {
    if hop > Ps::ZERO {
        shard.advance(hop);
    }
    load.remote_time += hop;
    load.report.two_pc_time += hop;
    load.report.commit_rounds += 1;
}

/// Records a defragmentation pause in a shard's load accounting.
fn charge_defrag(load: &mut ShardLoad, pause: Ps) {
    if pause > Ps::ZERO {
        load.report.defrag_passes += 1;
        load.report.defrag_time += pause;
    }
}

/// Runs one engine call under delta-capture accounting: any clock
/// movement lands in the shard's transaction time, and any wasted-time
/// accrual (a failed prepare, a coordinator-aborted prepared scope) in
/// its wasted-retry counter — keeping the report reconciled with the
/// engine's own counters at every call site.
fn charge_engine<T>(
    load: &mut ShardLoad,
    shard: &mut Pushtap,
    f: impl FnOnce(&mut Pushtap) -> T,
) -> T {
    let before = shard.now();
    let wasted_before = shard.db().wasted_retry_time();
    let r = f(shard);
    load.report.txn_time += shard.now().saturating_sub(before);
    load.report.wasted_retry_time += shard.db().wasted_retry_time().saturating_sub(wasted_before);
    r
}

/// Runs one cross-shard transaction as a simulated two-phase commit,
/// retrying (under the same pinned timestamp) until every participant
/// votes yes.
fn two_phase_commit(
    shards: &mut [Pushtap],
    map: &WarehouseMap,
    routed: &RoutedTxn,
    commit: CommitConfig,
    loads: &mut [ShardLoad],
) {
    let home = routed.shard as usize;
    let ts = routed.ts;

    // Periodic defragmentation runs between transactions — never while
    // any scope is open.
    charge_defrag(&mut loads[home], shards[home].defrag_if_due());

    // Decompose at the home engine and split the effect set by owning
    // shard. Decomposition is read-only (cursors and chains untouched),
    // so retries below reuse the identical effect set.
    let effects = shards[home].db().decompose(&routed.txn, ts);
    let mut local: Vec<TaggedEffect> = Vec::new();
    let mut forwarded: BTreeMap<usize, Vec<TaggedEffect>> = BTreeMap::new();
    for e in effects {
        let owner = map.shard_of_warehouse(e.warehouse) as usize;
        if owner == home {
            local.push(e);
        } else {
            forwarded.entry(owner).or_default().push(e);
        }
    }
    debug_assert_eq!(
        forwarded.keys().map(|&s| s as u32).collect::<Vec<_>>(),
        routed.participants,
        "router participant set must match effect ownership"
    );

    let mut attempts = 0u64;
    loop {
        attempts += 1;
        // Phase 1a: the home half prepares its owned effects.
        let home_result = charge_engine(&mut loads[home], &mut shards[home], |s| {
            s.prepare_effects_at(&local, ts)
        });
        let home_result = match home_result {
            Ok(r) => {
                loads[home].report.prepared_txns += 1;
                r
            }
            Err(_full) => {
                // Home voted no before anything was forwarded: its
                // partial effects are already rolled back; reclaim its
                // arenas and retry the whole transaction.
                loads[home].report.aborts += 1;
                charge_defrag(&mut loads[home], shards[home].defragment_all().1);
                continue;
            }
        };

        // Phase 1b: forward each participant its owned effect subset (a
        // prepare round delivers it) and collect votes.
        let mut prepared: Vec<(usize, Breakdown)> = Vec::new();
        let mut vote_no: Option<usize> = None;
        for (&p, effs) in &forwarded {
            charge_hop(&mut loads[p], &mut shards[p], commit.prepare_hop);
            let r = charge_engine(&mut loads[p], &mut shards[p], |s| {
                s.prepare_effects_at(effs, ts)
            });
            match r {
                Ok(r) => {
                    loads[p].report.prepared_txns += 1;
                    loads[p].report.forwarded_effects += effs.len() as u64;
                    prepared.push((p, r.breakdown));
                }
                Err(_full) => {
                    loads[p].report.aborts += 1;
                    vote_no = Some(p);
                    break;
                }
            }
        }

        if let Some(no_shard) = vote_no {
            // Phase 2, abort decision: the home half and every prepared
            // participant roll their pinned effects back (the decision
            // round is charged like a commit would be), and the
            // coordinator pays the same message round-trip it would on
            // a commit — the prepares went out and the "no" vote had to
            // come back, failed rounds are not free. The prepare's
            // latency lands in wasted retry time — the clock already
            // covered the work, now thrown away. The voting shard's
            // arenas are reclaimed, then the whole transaction retries
            // under the same timestamp.
            charge_hop(&mut loads[home], &mut shards[home], commit.prepare_hop);
            charge_hop(&mut loads[home], &mut shards[home], commit.commit_hop);
            charge_engine(&mut loads[home], &mut shards[home], |s| s.abort_prepared());
            loads[home].report.aborts += 1;
            loads[home].report.participant_aborts += 1;
            for &(q, _) in &prepared {
                charge_hop(&mut loads[q], &mut shards[q], commit.commit_hop);
                charge_engine(&mut loads[q], &mut shards[q], |s| s.abort_prepared());
                loads[q].report.aborts += 1;
                loads[q].report.participant_aborts += 1;
            }
            charge_defrag(&mut loads[no_shard], shards[no_shard].defragment_all().1);
            continue;
        }

        // Phase 2, commit decision: the coordinator waits out the
        // decision round-trip (one prepare-delivery round out, one
        // vote/decision round back — charged as two rounds so every
        // counted round is exactly one message hop), then every engine
        // commits at the pinned timestamp (metadata-only — prepare
        // already flushed).
        charge_hop(&mut loads[home], &mut shards[home], commit.prepare_hop);
        charge_hop(&mut loads[home], &mut shards[home], commit.commit_hop);
        shards[home].commit_prepared(ts, TxnRole::Coordinator);
        loads[home].routed += 1;
        loads[home].report.committed += 1;
        loads[home].report.breakdown.merge(&home_result.breakdown);
        loads[home].remote_touches += routed.remote;
        if attempts > 1 {
            loads[home].report.retried_txns += 1;
        }
        for (q, breakdown) in prepared {
            charge_hop(&mut loads[q], &mut shards[q], commit.commit_hop);
            shards[q].commit_prepared(ts, TxnRole::Participant);
            loads[q].report.breakdown.merge(&breakdown);
        }
        return;
    }
}
