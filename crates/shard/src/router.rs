//! Transaction routing: home-shard selection plus remote-warehouse
//! accounting.

use pushtap_chbench::Txn;
use pushtap_mvcc::{Ts, TsOracle};

use crate::partition::WarehouseMap;
use crate::report::RemoteTouches;

/// One routed transaction: its home shard, how many of its row touches
/// land on *other* shards (charged as coordination hops by the service),
/// and its globally-ordered commit timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutedTxn {
    /// The transaction itself.
    pub txn: Txn,
    /// Home shard (by home warehouse).
    pub shard: u32,
    /// Touches owned by other shards.
    pub remote: u64,
    /// The commit timestamp the home shard executes this transaction
    /// under, drawn from the deployment's shared [`TsOracle`] in global
    /// stream order by [`TxnRouter::route_batch`] ([`Ts::ZERO`] until
    /// stamped). Stream-order assignment is what makes the sharded
    /// deployment commit the exact timestamps a single-instance
    /// reference would — and therefore byte-identical state, since
    /// timestamps are encoded into stored rows.
    pub ts: Ts,
}

/// Routes transactions by home warehouse and accounts cross-shard
/// touches, mirroring TPC-C's remote-warehouse semantics: a NewOrder's
/// order lines may draw stock from other warehouses, and a Payment may
/// pay a customer homed elsewhere.
#[derive(Debug, Clone, Copy)]
pub struct TxnRouter {
    map: WarehouseMap,
}

impl TxnRouter {
    /// A router over `map`.
    pub fn new(map: WarehouseMap) -> TxnRouter {
        TxnRouter { map }
    }

    /// The partitioning map in effect.
    pub fn map(&self) -> &WarehouseMap {
        &self.map
    }

    /// The home shard of `txn`.
    pub fn home_shard(&self, txn: &Txn) -> u32 {
        self.map.shard_of_warehouse(txn.home_warehouse())
    }

    /// Routes one transaction, counting its remote touches. The commit
    /// timestamp is left unstamped ([`Ts::ZERO`]) — batch routing stamps
    /// it from the deployment's oracle in stream order.
    pub fn route(&self, txn: Txn) -> RoutedTxn {
        let shard = self.map.shard_of_warehouse(txn.home_warehouse());
        let remote = match &txn {
            Txn::Payment(p) => u64::from(self.map.shard_of_customer(p.c_row) != shard),
            Txn::NewOrder(no) => {
                let stock_remote = no
                    .stock_rows
                    .iter()
                    .filter(|&&s| self.map.shard_of_stock(s) != shard)
                    .count() as u64;
                stock_remote + u64::from(self.map.shard_of_customer(no.c_row) != shard)
            }
        };
        RoutedTxn {
            txn,
            shard,
            remote,
            ts: Ts::ZERO,
        }
    }

    /// Routes a batch into per-shard buckets (order-preserving within
    /// each shard), stamping every transaction's commit timestamp from
    /// `oracle` in *global stream order* — transaction `i` of the batch
    /// draws the `i`-th timestamp, exactly as a single unpartitioned
    /// instance executing the same stream would allocate them. Returns
    /// the buckets plus the aggregate remote-touch accounting.
    ///
    /// Stamping must happen here, before the buckets scatter to
    /// concurrent shard threads: once execution interleaves across
    /// threads, the stream order (the only order that matches the
    /// single-instance reference) is gone.
    pub fn route_batch(
        &self,
        batch: Vec<Txn>,
        oracle: &TsOracle,
    ) -> (Vec<Vec<RoutedTxn>>, RemoteTouches) {
        let mut buckets: Vec<Vec<RoutedTxn>> = (0..self.map.shards()).map(|_| Vec::new()).collect();
        let mut touches = RemoteTouches::default();
        for txn in batch {
            let mut routed = self.route(txn);
            routed.ts = oracle.allocate();
            touches.routed += 1;
            if routed.remote > 0 {
                touches.cross_shard_txns += 1;
                touches.remote_touches += routed.remote;
            }
            buckets[routed.shard as usize].push(routed);
        }
        (buckets, touches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushtap_chbench::TxnGen;
    use pushtap_oltp::DbConfig;

    fn router(shards: u32) -> TxnRouter {
        let mut db = DbConfig::small();
        db.min_warehouses = 8;
        TxnRouter::new(WarehouseMap::new(&db, shards))
    }

    #[test]
    fn routing_follows_home_warehouse() {
        let r = router(4);
        let mut gen = TxnGen::new(5, 8, 3000, 10_000, 10_000);
        for txn in gen.batch(200) {
            let routed = r.route(txn.clone());
            assert_eq!(
                routed.shard,
                r.map().shard_of_warehouse(txn.home_warehouse())
            );
        }
    }

    #[test]
    fn single_shard_has_no_remote_touches() {
        let r = router(1);
        let mut gen = TxnGen::new(5, 8, 3000, 10_000, 10_000);
        let (buckets, touches) = r.route_batch(gen.batch(300), &TsOracle::new());
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].len(), 300);
        assert_eq!(touches.remote_touches, 0);
        assert_eq!(touches.cross_shard_txns, 0);
    }

    #[test]
    fn multi_shard_sees_remote_stock_touches() {
        // Stock rows are drawn uniformly over all warehouses, so with 4
        // shards ~3/4 of every NewOrder's lines are remote.
        let r = router(4);
        let mut gen = TxnGen::new(5, 8, 3000, 10_000, 10_000);
        let (buckets, touches) = r.route_batch(gen.batch(400), &TsOracle::new());
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), 400);
        assert!(touches.cross_shard_txns > 0);
        assert!(touches.remote_touches > touches.cross_shard_txns);
        // Every bucket gets a fair share of a uniform 8-warehouse load.
        for b in &buckets {
            assert!(!b.is_empty(), "a shard received no transactions");
        }
    }

    #[test]
    fn route_batch_preserves_per_shard_order() {
        let r = router(2);
        let mut gen = TxnGen::new(11, 8, 3000, 10_000, 10_000);
        let batch = gen.batch(100);
        let (buckets, _) = r.route_batch(batch.clone(), &TsOracle::new());
        let mut replayed: Vec<Vec<Txn>> = vec![Vec::new(); 2];
        for txn in batch {
            let s = r.home_shard(&txn);
            replayed[s as usize].push(txn);
        }
        for (bucket, expect) in buckets.iter().zip(&replayed) {
            let got: Vec<&Txn> = bucket.iter().map(|r| &r.txn).collect();
            let want: Vec<&Txn> = expect.iter().collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn route_batch_stamps_timestamps_in_stream_order() {
        let r = router(4);
        let mut gen = TxnGen::new(5, 8, 3000, 10_000, 10_000);
        let batch = gen.batch(200);
        let oracle = TsOracle::new();
        let (buckets, _) = r.route_batch(batch.clone(), &oracle);
        assert_eq!(oracle.watermark(), Ts(200));
        // Reconstruct the global order: timestamp i+1 must belong to the
        // i-th transaction of the stream, whatever bucket it landed in.
        let mut by_ts: Vec<Option<&Txn>> = vec![None; 201];
        for routed in buckets.iter().flatten() {
            assert!(routed.ts > Ts::ZERO, "unstamped transaction");
            assert!(
                by_ts[routed.ts.0 as usize].is_none(),
                "duplicate {}",
                routed.ts
            );
            by_ts[routed.ts.0 as usize] = Some(&routed.txn);
        }
        for (i, txn) in batch.iter().enumerate() {
            assert_eq!(by_ts[i + 1], Some(txn), "stream position {i}");
        }
        // Within each bucket, stamped timestamps are strictly increasing
        // (the per-engine MVCC monotonicity precondition).
        for bucket in &buckets {
            for w in bucket.windows(2) {
                assert!(w[0].ts < w[1].ts);
            }
        }
    }
}
