//! Transaction routing: home-shard selection, participant-set
//! computation, and remote-touch accounting.

use pushtap_chbench::Txn;
use pushtap_mvcc::{Ts, TsOracle};
use pushtap_oltp::KeySet;
use pushtap_pim::Ps;

use crate::partition::WarehouseMap;
use crate::report::RemoteTouches;

/// One routed transaction: its home shard, the *participant* shards
/// owning rows its effects touch, how many of its row touches land on
/// other shards, and its globally-ordered commit timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutedTxn {
    /// The transaction itself.
    pub txn: Txn,
    /// Home shard (by home warehouse).
    pub shard: u32,
    /// Shards other than the home shard that own at least one row this
    /// transaction touches (sorted, deduplicated). Empty for a fully
    /// warehouse-local transaction; non-empty means the coordinator runs
    /// a two-phase commit across `{shard} ∪ participants` — the home
    /// shard executes its owned effects and forwards the rest.
    pub participants: Vec<u32>,
    /// Touches owned by other shards (individual rows, not shards).
    pub remote: u64,
    /// The commit timestamp every participant executes this transaction
    /// under, drawn from the deployment's shared [`TsOracle`] in global
    /// stream order by [`TxnRouter::route_stream`] ([`Ts::ZERO`] until
    /// stamped). Stream-order assignment is what makes the sharded
    /// deployment commit the exact timestamps a single-instance
    /// reference would — and therefore byte-identical state, since
    /// timestamps are encoded into stored rows.
    pub ts: Ts,
    /// The transaction's conflict keyset — the rows it reads, the rows
    /// it writes, and the insert rings it consumes, derived from the
    /// home engine's read-only decomposition
    /// ([`pushtap_oltp::TpccDb::keyset`]). Empty until the service
    /// stamps it ([`crate::ShardedHtap`] stamps every stream it routes);
    /// the pipelined coordinator's wave scheduler requires it.
    pub keys: KeySet,
    /// The instant this transaction *arrived* at the deployment, in
    /// simulated picoseconds. [`Ps::ZERO`] for closed-loop (batch)
    /// streams, where the whole batch is offered at time zero; the
    /// open-loop front-end ([`crate::ShardedHtap::run_open_loop`])
    /// stamps it from the seeded [`crate::ArrivalGen`] at admission,
    /// and the sanitizer's front-end invariant holds that no
    /// transaction begins execution before it.
    pub arrival: Ps,
}

/// Routes transactions by home warehouse and computes each transaction's
/// participant set, mirroring TPC-C's remote-warehouse semantics: a
/// NewOrder's order lines may draw stock from other warehouses, and a
/// Payment may pay a customer homed elsewhere. Those rows' effects are
/// *forwarded* to the owning shard and committed there by the
/// coordinator's two-phase commit.
#[derive(Debug, Clone, Copy)]
pub struct TxnRouter {
    map: WarehouseMap,
}

impl TxnRouter {
    /// A router over `map`.
    pub fn new(map: WarehouseMap) -> TxnRouter {
        TxnRouter { map }
    }

    /// The partitioning map in effect.
    pub fn map(&self) -> &WarehouseMap {
        &self.map
    }

    /// The home shard of `txn`.
    pub fn home_shard(&self, txn: &Txn) -> u32 {
        self.map.shard_of_warehouse(txn.home_warehouse())
    }

    /// Routes one transaction: computes its home shard, participant set,
    /// and remote-touch count. The commit timestamp is left unstamped
    /// ([`Ts::ZERO`]) — stream routing stamps it from the deployment's
    /// oracle in stream order.
    pub fn route(&self, txn: Txn) -> RoutedTxn {
        let shard = self.map.shard_of_warehouse(txn.home_warehouse());
        let mut participants: Vec<u32> = Vec::new();
        let remote = match &txn {
            Txn::Payment(p) => {
                let owner = self.map.shard_of_customer(p.c_row);
                if owner != shard {
                    participants.push(owner);
                }
                u64::from(owner != shard)
            }
            Txn::NewOrder(no) => {
                let mut remote = 0;
                for &s in &no.stock_rows {
                    let owner = self.map.shard_of_stock(s);
                    if owner != shard {
                        participants.push(owner);
                        remote += 1;
                    }
                }
                let owner = self.map.shard_of_customer(no.c_row);
                if owner != shard {
                    participants.push(owner);
                    remote += 1;
                }
                remote
            }
        };
        participants.sort_unstable();
        participants.dedup();
        RoutedTxn {
            txn,
            shard,
            participants,
            remote,
            ts: Ts::ZERO,
            keys: KeySet::default(),
            arrival: Ps::ZERO,
        }
    }

    /// Routes a batch into one globally-ordered stream, stamping every
    /// transaction's commit timestamp from `oracle` in *stream order* —
    /// transaction `i` of the batch draws the `i`-th timestamp, exactly
    /// as a single unpartitioned instance executing the same stream
    /// would allocate them. Returns the stream plus the aggregate
    /// remote-touch accounting.
    ///
    /// Stamping must happen here, before execution fans out: once
    /// transactions interleave across concurrent shard threads, the
    /// stream order (the only order that matches the single-instance
    /// reference) is gone. The coordinator preserves that order for
    /// every *conflicting* pair by flushing each involved shard's queued
    /// local work before a cross-shard transaction's effects land.
    pub fn route_stream(
        &self,
        batch: Vec<Txn>,
        oracle: &TsOracle,
    ) -> (Vec<RoutedTxn>, RemoteTouches) {
        let mut touches = RemoteTouches::default();
        let stream = batch
            .into_iter()
            .map(|txn| {
                let mut routed = self.route(txn);
                routed.ts = oracle.allocate();
                touches.routed += 1;
                if routed.remote > 0 {
                    touches.cross_shard_txns += 1;
                    touches.remote_touches += routed.remote;
                }
                routed
            })
            .collect();
        (stream, touches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushtap_chbench::TxnGen;
    use pushtap_oltp::DbConfig;

    fn router(shards: u32) -> TxnRouter {
        let mut db = DbConfig::small();
        db.min_warehouses = 8;
        TxnRouter::new(WarehouseMap::new(&db, shards))
    }

    #[test]
    fn routing_follows_home_warehouse() {
        let r = router(4);
        let mut gen = TxnGen::new(5, 8, 3000, 10_000, 10_000);
        for txn in gen.batch(200) {
            let routed = r.route(txn.clone());
            assert_eq!(
                routed.shard,
                r.map().shard_of_warehouse(txn.home_warehouse())
            );
        }
    }

    #[test]
    fn single_shard_has_no_remote_touches() {
        let r = router(1);
        let mut gen = TxnGen::new(5, 8, 3000, 10_000, 10_000);
        let (stream, touches) = r.route_stream(gen.batch(300), &TsOracle::new());
        assert_eq!(stream.len(), 300);
        assert!(stream.iter().all(|t| t.participants.is_empty()));
        assert_eq!(touches.remote_touches, 0);
        assert_eq!(touches.cross_shard_txns, 0);
    }

    #[test]
    fn multi_shard_sees_remote_stock_touches() {
        // Stock rows are drawn uniformly over all warehouses, so with 4
        // shards ~3/4 of every NewOrder's lines are remote.
        let r = router(4);
        let mut gen = TxnGen::new(5, 8, 3000, 10_000, 10_000);
        let (stream, touches) = r.route_stream(gen.batch(400), &TsOracle::new());
        assert_eq!(stream.len(), 400);
        assert!(touches.cross_shard_txns > 0);
        assert!(touches.remote_touches > touches.cross_shard_txns);
        // Every shard gets a fair share of a uniform 8-warehouse load.
        for s in 0..4u32 {
            assert!(
                stream.iter().any(|t| t.shard == s),
                "shard {s} received no transactions"
            );
        }
    }

    /// The participant set is exactly the set of non-home shards owning
    /// touched rows: sorted, deduplicated, non-empty iff the transaction
    /// has remote touches.
    #[test]
    fn participants_match_row_ownership() {
        let r = router(4);
        let mut gen = TxnGen::new(5, 8, 3000, 10_000, 10_000);
        for txn in gen.batch(300) {
            let routed = r.route(txn.clone());
            let mut expect: Vec<u32> = match &txn {
                Txn::Payment(p) => vec![r.map().shard_of_customer(p.c_row)],
                Txn::NewOrder(no) => {
                    let mut v: Vec<u32> = no
                        .stock_rows
                        .iter()
                        .map(|&s| r.map().shard_of_stock(s))
                        .collect();
                    v.push(r.map().shard_of_customer(no.c_row));
                    v
                }
            };
            expect.retain(|&s| s != routed.shard);
            expect.sort_unstable();
            expect.dedup();
            assert_eq!(routed.participants, expect);
            assert_eq!(routed.participants.is_empty(), routed.remote == 0);
        }
    }

    #[test]
    fn route_stream_preserves_global_order() {
        let r = router(2);
        let mut gen = TxnGen::new(11, 8, 3000, 10_000, 10_000);
        let batch = gen.batch(100);
        let (stream, _) = r.route_stream(batch.clone(), &TsOracle::new());
        let got: Vec<&Txn> = stream.iter().map(|t| &t.txn).collect();
        let want: Vec<&Txn> = batch.iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn route_stream_stamps_timestamps_in_stream_order() {
        let r = router(4);
        let mut gen = TxnGen::new(5, 8, 3000, 10_000, 10_000);
        let batch = gen.batch(200);
        let oracle = TsOracle::new();
        let (stream, _) = r.route_stream(batch.clone(), &oracle);
        assert_eq!(oracle.watermark(), Ts(200));
        // Timestamp i+1 belongs to the i-th transaction of the stream:
        // the exact sequence a single-instance reference would allocate.
        for (i, routed) in stream.iter().enumerate() {
            assert_eq!(routed.ts, Ts(i as u64 + 1), "stream position {i}");
            assert_eq!(&routed.txn, &batch[i]);
        }
    }
}
