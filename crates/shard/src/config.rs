//! Configuration of the sharded service.

use pushtap_core::PushtapConfig;
use pushtap_pim::Ps;

/// Configuration of a [`crate::ShardedHtap`] deployment.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of shards (each a full PUSHtap instance).
    pub shards: u32,
    /// Per-shard engine configuration. The warehouse population
    /// (`base.db.min_warehouses` combined with the scale) must be at
    /// least `shards` so every shard owns a non-empty warehouse range.
    pub base: PushtapConfig,
    /// Latency charged to a shard's clock per remote-warehouse touch
    /// (a NewOrder stock line or Payment customer owned by another
    /// shard): one coordination round trip on the inter-shard fabric.
    pub remote_hop: Ps,
    /// CPU cycles per gathered partial row spent merging scatter-gather
    /// results on the coordinator.
    pub merge_cycles_per_row: u64,
}

impl ShardConfig {
    /// A small test/example deployment: the engine's small instance with
    /// the warehouse floor raised to 8, so shard counts 1–8 all partition
    /// the *same* global population (results stay comparable across
    /// shard counts), a 500 ns cross-shard hop, and an 8-cycle-per-row
    /// merge.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0 or exceeds the 8-warehouse floor.
    pub fn small(shards: u32) -> ShardConfig {
        assert!(
            (1..=8).contains(&shards),
            "small config supports 1..=8 shards, got {shards}"
        );
        let mut base = PushtapConfig::small();
        base.db.min_warehouses = 8;
        ShardConfig {
            shards,
            base,
            remote_hop: Ps::from_ns(500.0),
            merge_cycles_per_row: 8,
        }
    }
}
