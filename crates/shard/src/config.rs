//! Configuration of the sharded service.

use pushtap_core::PushtapConfig;
use pushtap_pim::Ps;

/// Message-round latencies of the simulated two-phase commit.
///
/// A cross-shard transaction pays one prepare round (the coordinator
/// forwards each participant its owned effect set) and one decision
/// round (commit or abort). Each hop is charged to the clock of the
/// engine receiving the message; the coordinator additionally waits out
/// one `prepare_hop + commit_hop` round-trip per attempt — including
/// attempts that end in a participant's "no" vote — before it can act
/// on the decision.
#[derive(Debug, Clone, Copy)]
pub struct CommitConfig {
    /// Latency of delivering a prepare request (with its forwarded
    /// effect set) to a participant shard.
    pub prepare_hop: Ps,
    /// Latency of delivering the commit/abort decision to a participant
    /// shard.
    pub commit_hop: Ps,
    /// Latency of one write-ahead-log force barrier (the group-commit
    /// fsync, extending the §6.3 force-barrier model to durable media).
    /// Charged to the forcing shard's clock and `critical_path_time`
    /// once per *force*, not per transaction — a pipelined wave
    /// amortizes one force across every record the wave appended.
    /// Inert unless the deployment enables its WAL
    /// (`ShardedHtap::enable_wal`).
    pub force_latency: Ps,
    /// Upper bound of the per-participant vote-processing skew in the
    /// laggard vote-barrier model. A participant's "yes" vote leaves
    /// its shard when that shard's *whole* prepare pass finished (its
    /// clock), travels one `prepare_hop`, and is additionally delayed
    /// by a deterministic per-(participant, transaction) skew drawn
    /// uniformly from `[0, vote_jitter]` — so the coordinator's
    /// decision stall reflects the *slowest* participant, not a free
    /// round-trip. [`Ps::ZERO`] disables the jitter term but not the
    /// laggard coupling itself.
    pub vote_jitter: Ps,
}

impl CommitConfig {
    /// All rounds, forces, and vote skews free — isolates pure engine
    /// time in experiments.
    pub const FREE: CommitConfig = CommitConfig {
        prepare_hop: Ps::ZERO,
        commit_hop: Ps::ZERO,
        force_latency: Ps::ZERO,
        vote_jitter: Ps::ZERO,
    };
}

/// How the coordinator executes a routed stream.
///
/// Both modes commit byte-identical state (the committed bytes are a
/// pure function of the committed transaction stream — the
/// Serial-vs-Pipelined proptests assert it); they differ in how much
/// concurrency the execution schedule extracts and therefore in
/// wall-clock, message-delivery stalls, and host-side parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoordinatorMode {
    /// The oracle path: warehouse-local transactions queue per shard and
    /// run concurrently, but every cross-shard transaction first
    /// *flushes* the involved shards' queues (a barrier) and then runs
    /// its two-phase commit alone — one 2PC in flight at a time,
    /// message rounds delivered sequentially.
    Serial,
    /// Conflict-aware wave scheduling: the stream's keysets
    /// ([`pushtap_oltp::KeySet`]) build a dependency graph, conflicting
    /// transactions are ordered by pinned timestamp, and each wave of
    /// mutually non-conflicting transactions — local *and* cross-shard —
    /// executes concurrently, with all of a wave's 2PC prepare/vote/
    /// decide rounds overlapped instead of run one at a time. The
    /// default.
    #[default]
    Pipelined,
}

/// Configuration of a [`crate::ShardedHtap`] deployment.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of shards (each a full PUSHtap instance).
    pub shards: u32,
    /// Per-shard engine configuration. The warehouse population
    /// (`base.db.min_warehouses` combined with the scale) must be at
    /// least `shards` so every shard owns a non-empty warehouse range.
    pub base: PushtapConfig,
    /// Two-phase-commit message-round latencies charged when a
    /// transaction's effects span shards (remote-owned CUSTOMER/STOCK
    /// rows are *forwarded* to their owning shard and committed there
    /// under the coordinator's pinned timestamp).
    pub commit: CommitConfig,
    /// How the coordinator schedules the routed stream:
    /// [`CoordinatorMode::Pipelined`] (conflict-aware waves, the
    /// default) or [`CoordinatorMode::Serial`] (the barrier-flush
    /// oracle).
    pub mode: CoordinatorMode,
    /// CPU cycles per gathered partial row spent merging scatter-gather
    /// results on the coordinator.
    pub merge_cycles_per_row: u64,
}

impl ShardConfig {
    /// A small test/example deployment: the engine's small instance with
    /// the warehouse floor raised to 8, so shard counts 1–8 all partition
    /// the *same* global population (results stay comparable across
    /// shard counts), 500 ns prepare/commit hops, and an 8-cycle-per-row
    /// merge.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0 or exceeds the 8-warehouse floor.
    pub fn small(shards: u32) -> ShardConfig {
        assert!(
            (1..=8).contains(&shards),
            "small config supports 1..=8 shards, got {shards}"
        );
        let mut base = PushtapConfig::small();
        base.db.min_warehouses = 8;
        ShardConfig {
            shards,
            base,
            commit: CommitConfig {
                prepare_hop: Ps::from_ns(500.0),
                commit_hop: Ps::from_ns(500.0),
                force_latency: Ps::from_us(2.0),
                vote_jitter: Ps::from_ns(200.0),
            },
            mode: CoordinatorMode::default(),
            merge_cycles_per_row: 8,
        }
    }

    /// The same configuration with a different coordinator mode.
    pub fn with_mode(mut self, mode: CoordinatorMode) -> ShardConfig {
        self.mode = mode;
        self
    }
}

/// Configuration of the open-loop front-end
/// ([`crate::ShardedHtap::run_open_loop`]): admission control and the
/// incremental scheduler's sliding window. The arrival process itself
/// lives in [`crate::ArrivalConfig`] / [`crate::ArrivalGen`].
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopConfig {
    /// Per-shard inbox bound: an arrival finding this many transactions
    /// already admitted-but-undispatched at its home shard is
    /// *rejected* — counted, reported as backpressure, never silently
    /// dropped. Must be positive.
    pub inbox_depth: usize,
    /// Sliding-window size of the incremental wave scheduler: the
    /// frontier wave is dispatched whenever this many admitted
    /// transactions are pending (the window closes), or earlier if the
    /// engines would otherwise idle. Must be positive.
    pub window: usize,
}

impl OpenLoopConfig {
    /// A front-end with the given inbox bound and scheduling window.
    pub fn new(inbox_depth: usize, window: usize) -> OpenLoopConfig {
        OpenLoopConfig {
            inbox_depth,
            window,
        }
    }
}
