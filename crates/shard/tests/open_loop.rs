//! The open-loop front-end's acceptance properties:
//!
//! * **Incremental == batch**: the sliding-window [`WaveScheduler`]
//!   behind [`ShardedHtap::run_open_loop`] commits **byte-identical**
//!   state to the batch pipelined coordinator and the unpartitioned
//!   reference — at every swept window size, shard count and remote
//!   mix. Committed bytes are a pure function of the admitted stream;
//!   when the window closes early the scheduler may split what batch
//!   `build_waves` would co-schedule, but conflicting transactions
//!   still dispatch in timestamp order, so per-row commit order is
//!   unchanged.
//! * **Admission control**: a bounded inbox rejects (counted, never
//!   silently dropped) exactly when occupancy is at the bound; the
//!   admitted substream commits byte-identically to a reference
//!   replaying only the admitted arrivals at their pinned timestamps.
//! * **Laggard votes**: turning on `vote_jitter` changes *when* —
//!   never *what* — the deployment commits.
//!
//! [`WaveScheduler`]: pushtap_shard::ShardedHtap
//! [`ShardedHtap::run_open_loop`]: pushtap_shard::ShardedHtap::run_open_loop

mod common;

use proptest::prelude::*;
use pushtap_chbench::{RemoteMix, ALL_TABLES};
use pushtap_core::Pushtap;
use pushtap_format::RowSlot;
use pushtap_pim::Ps;
use pushtap_shard::{
    ArrivalConfig, ArrivalGen, CoordinatorMode, OpenLoopConfig, OpenLoopReport, ShardConfig,
    ShardedHtap,
};

const SEED: u64 = 2025;
const ARRIVAL_SEED: u64 = 7;
const TXNS: u64 = 120;
/// Fast enough that inboxes back up under a bounded depth, slow enough
/// that the generator's simulated horizon stays sane.
const RATE_TPS: f64 = 40_000_000.0;

fn mix_name(mix: RemoteMix) -> &'static str {
    match mix {
        RemoteMix::LOCAL => "local",
        RemoteMix::TPCC => "tpcc",
        _ => "uniform",
    }
}

/// Runs `txns` Poisson arrivals open-loop on a fresh deployment and
/// returns it defragmented (committed state folded into data regions).
fn run_open(
    cfg: ShardConfig,
    mix: RemoteMix,
    seed: u64,
    txns: u64,
    arrivals: ArrivalConfig,
    open: OpenLoopConfig,
    label: &str,
) -> (ShardedHtap, OpenLoopReport) {
    let mut service = ShardedHtap::new(cfg).expect("build shards");
    let san = common::maybe_sanitize(&mut service);
    let warehouses = service.map().warehouses();
    let mut gen = service
        .global_txn_gen(seed)
        .with_remote_mix(mix, warehouses);
    let mut arr = ArrivalGen::new(ARRIVAL_SEED, arrivals);
    let report = service.run_open_loop(&mut gen, &mut arr, txns, &open);
    assert_eq!(
        report.admitted() + report.rejected(),
        txns,
        "{label}: every arrival is admitted or counted rejected"
    );
    // Rejected arrivals draw no timestamp: the admitted stream's
    // timestamps are contiguous from Ts(1) in admission order.
    for (k, ts) in report.committed_ts.iter().enumerate() {
        assert_eq!(ts.0, k as u64 + 1, "{label}: admitted ts not contiguous");
    }
    assert_eq!(
        report.exec.committed(),
        report.admitted(),
        "{label}: every admitted transaction commits"
    );
    assert_eq!(
        report.sojourn.count(),
        report.admitted(),
        "{label}: one sojourn sample per admitted transaction"
    );
    common::assert_sanitized_clean(&san, label);
    service.defragment_all();
    (service, report)
}

/// Builds the unpartitioned reference executing exactly the admitted
/// arrivals (`admitted_index` into the regenerated arrival stream) at
/// their pinned timestamps.
fn reference_of_admitted(mix: RemoteMix, seed: u64, txns: u64, report: &OpenLoopReport) -> Pushtap {
    let cfg = ShardConfig::small(1).with_mode(CoordinatorMode::Pipelined);
    let mut reference = Pushtap::new(cfg.base.clone()).expect("build reference");
    let warehouses = reference.db().warehouses_global();
    let mut gen = reference.txn_gen(seed).with_remote_mix(mix, warehouses);
    let batch = gen.batch(txns as usize);
    for (ts, &idx) in report.committed_ts.iter().zip(&report.admitted_index) {
        reference.execute_txn_at(&batch[idx as usize], *ts);
    }
    reference.defragment_all();
    reference
}

/// Byte-compares every table of every shard between two deployments of
/// the same shard count (both defragmented by the caller).
fn assert_services_match(a: &ShardedHtap, b: &ShardedHtap, label: &str) {
    assert_eq!(a.shard_count(), b.shard_count());
    for i in 0..a.shard_count() {
        let da = a.shard(i).db();
        let db = b.shard(i).db();
        assert_eq!(da.last_ts(), db.last_ts(), "{label}: shard {i} watermark");
        for table in ALL_TABLES {
            let ta = da.table(table);
            let tb = db.table(table);
            assert_eq!(ta.n_rows(), tb.n_rows());
            for row in 0..ta.n_rows() {
                assert_eq!(
                    ta.store().read_row(RowSlot::Data { row }),
                    tb.store().read_row(RowSlot::Data { row }),
                    "{label}: shard {i} {table:?} row {row} diverged"
                );
            }
        }
    }
}

/// The headline identity: with an unbounded inbox every arrival is
/// admitted, so the open-loop run must commit byte-identical state to
/// the batch pipelined coordinator over the same stream — and to the
/// unpartitioned reference — at every window × shard count × mix.
#[test]
fn incremental_waves_match_batch_and_reference() {
    for mix in [RemoteMix::LOCAL, RemoteMix::TPCC, RemoteMix::Uniform] {
        for shards in [1u32, 2, 4, 8] {
            // One batch service + one unpartitioned reference per
            // (mix, shards), shared across the window sweep.
            let cfg = ShardConfig::small(shards).with_mode(CoordinatorMode::Pipelined);
            let mut batch_service = ShardedHtap::new(cfg.clone()).expect("build shards");
            let warehouses = batch_service.map().warehouses();
            let mut gen = batch_service
                .global_txn_gen(SEED)
                .with_remote_mix(mix, warehouses);
            let batch_report = batch_service.run_txns(&mut gen, TXNS);
            assert_eq!(batch_report.committed(), TXNS);
            batch_service.defragment_all();
            let reference = common::reference_holding(
                &cfg,
                mix,
                SEED,
                TXNS,
                &(1..=TXNS).map(pushtap_mvcc::Ts).collect::<Vec<_>>(),
            );
            for window in [1usize, 4, 32] {
                let label = format!("{} {shards} shards window {window}", mix_name(mix));
                let (open_service, report) = run_open(
                    cfg.clone(),
                    mix,
                    SEED,
                    TXNS,
                    ArrivalConfig::poisson(RATE_TPS),
                    OpenLoopConfig::new(usize::MAX, window),
                    &label,
                );
                assert_eq!(report.rejected(), 0, "{label}: unbounded inbox rejected");
                assert_eq!(report.admitted(), TXNS);
                assert_services_match(&open_service, &batch_service, &label);
                for (i, shard) in open_service.shards().iter().enumerate() {
                    for table in ALL_TABLES {
                        common::assert_table_bytes_match(
                            shard,
                            &reference,
                            table,
                            &format!("{label} shard {i} vs reference"),
                        );
                    }
                }
            }
        }
    }
}

/// Admission control under overload: a shallow inbox must reject some
/// arrivals (backpressure, counted per shard) while the admitted
/// substream still commits byte-identically to a reference replaying
/// exactly the admitted arrivals.
#[test]
fn bounded_inbox_rejects_and_admitted_stream_stays_identical() {
    let cfg = ShardConfig::small(4).with_mode(CoordinatorMode::Pipelined);
    // 4x the identity rate: arrivals land far faster than service.
    let arrivals = ArrivalConfig::poisson(4.0 * RATE_TPS);
    let open = OpenLoopConfig::new(4, 8);
    let (service, report) = run_open(
        cfg,
        RemoteMix::TPCC,
        SEED,
        TXNS,
        arrivals,
        open,
        "bounded inbox",
    );
    assert!(
        report.rejected() > 0,
        "overload must trip admission control"
    );
    assert!(
        report.admitted() > 0,
        "admission control rejected everything"
    );
    assert!(
        report.inbox_depth.max() <= 4,
        "inbox depth {} exceeded its bound",
        report.inbox_depth.max()
    );
    let reference = reference_of_admitted(RemoteMix::TPCC, SEED, TXNS, &report);
    for (i, shard) in service.shards().iter().enumerate() {
        for table in ALL_TABLES {
            common::assert_table_bytes_match(
                shard,
                &reference,
                table,
                &format!("bounded inbox shard {i}"),
            );
        }
    }
}

/// The same seeds replay the same run, bit for bit: admissions,
/// rejections, timestamps and every latency sample.
#[test]
fn open_loop_is_deterministic_per_seed() {
    let run = || {
        run_open(
            ShardConfig::small(2).with_mode(CoordinatorMode::Pipelined),
            RemoteMix::TPCC,
            SEED,
            TXNS,
            ArrivalConfig::bursty(2.0 * RATE_TPS, 0.8, Ps::from_us(2.0)),
            OpenLoopConfig::new(8, 4),
            "determinism",
        )
        .1
    };
    let a = run();
    let b = run();
    assert_eq!(a.committed_ts, b.committed_ts);
    assert_eq!(a.admitted_index, b.admitted_index);
    assert_eq!(a.rejected_per_shard, b.rejected_per_shard);
    assert_eq!(a.horizon, b.horizon);
    assert_eq!(a.sojourn.sum(), b.sojourn.sum());
    assert_eq!(a.inbox_depth.max(), b.inbox_depth.max());
}

/// Laggard vote clocks change when the deployment commits, never what:
/// byte-identical state, identical commit counts, and a critical path
/// at least as long as with free votes (coupling clocks is never
/// cheaper).
#[test]
fn laggard_votes_only_add_stall() {
    let run = |jitter: Ps| {
        let mut cfg = ShardConfig::small(4).with_mode(CoordinatorMode::Pipelined);
        cfg.commit.vote_jitter = jitter;
        let mut service = ShardedHtap::new(cfg).expect("build shards");
        let warehouses = service.map().warehouses();
        let mut gen = service
            .global_txn_gen(SEED)
            .with_remote_mix(RemoteMix::Uniform, warehouses);
        let report = service.run_txns(&mut gen, TXNS);
        service.defragment_all();
        (service, report)
    };
    let (free_service, free) = run(Ps::ZERO);
    let (lag_service, lag) = run(Ps::from_ns(500.0));
    assert_eq!(free.committed(), lag.committed());
    assert_eq!(free.two_pc_time(), lag.two_pc_time(), "hop ledger moved");
    assert!(
        lag.critical_path_time() >= free.critical_path_time(),
        "laggard votes made the barrier cheaper ({} < {})",
        lag.critical_path_time(),
        free.critical_path_time()
    );
    assert_services_match(&lag_service, &free_service, "laggard vs free votes");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Identity holds at arbitrary load: any rate × burstiness × seed ×
    /// inbox bound × window admits some prefix-respecting substream and
    /// commits it byte-identically to the unpartitioned reference.
    #[test]
    fn admitted_stream_matches_reference(
        seed in 1u64..1000,
        rate_scale in 1u64..=8,
        burstiness in 0u64..=10,
        inbox in 2usize..=64,
        window in 1usize..=32,
        shards_pick in 0usize..=1,
    ) {
        let shards = [2u32, 4][shards_pick];
        let txns = 60;
        let burst = burstiness as f64 / 10.0;
        let rate = RATE_TPS * rate_scale as f64;
        let arrivals = if burst == 0.0 {
            ArrivalConfig::poisson(rate)
        } else {
            ArrivalConfig::bursty(rate, burst, Ps::from_us(2.0))
        };
        let cfg = ShardConfig::small(shards).with_mode(CoordinatorMode::Pipelined);
        let label = format!(
            "proptest seed {seed} rate x{rate_scale} burst {burst} inbox {inbox} window {window} {shards} shards"
        );
        let (service, report) = run_open(
            cfg,
            RemoteMix::TPCC,
            seed,
            txns,
            arrivals,
            OpenLoopConfig::new(inbox, window),
            &label,
        );
        prop_assert!(report.inbox_depth.max() <= inbox as u64);
        let reference = reference_of_admitted(RemoteMix::TPCC, seed, txns, &report);
        for (i, shard) in service.shards().iter().enumerate() {
            for table in ALL_TABLES {
                common::assert_table_bytes_match(
                    shard,
                    &reference,
                    table,
                    &format!("{label} shard {i}"),
                );
            }
        }
    }
}
