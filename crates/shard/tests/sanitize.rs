//! Sanitizer acceptance: an armed keyset-soundness tracker watches
//! whole sharded batches — serial and pipelined, happy path and
//! `DeltaFull` pressure — and reports **zero** violations, while the
//! armed deployment's committed bytes stay identical to an unarmed
//! twin's (the hooks charge no simulated time, so arming is a pure
//! lens). The injection tests then prove the detector is live end to
//! end: a deliberate protocol breach through the installed tracker
//! fires the matching [`ViolationKind`].

use std::sync::Arc;

use pushtap_chbench::{RemoteMix, ALL_TABLES};
use pushtap_format::RowSlot;
use pushtap_sanitizer::{Access, AccessKind, AccessSink, ShadowSanitizer, ViolationKind};
use pushtap_shard::{CoordinatorMode, ShardConfig, ShardedHtap};

mod common;

const SEED: u64 = 7_341;
const TXNS: u64 = 120;
const SHARDS: u32 = 4;

/// Arenas squeezed as in `tests/delta_pressure.rs`, so the tracker
/// also watches `DeltaFull` aborts, pinned-timestamp retries and wave
/// casualties — the paths where scope discipline is easiest to break.
fn squeezed(mode: CoordinatorMode) -> ShardConfig {
    let mut cfg = ShardConfig::small(SHARDS).with_mode(mode);
    cfg.base.db.delta_frac = 0.06;
    cfg.base.db.min_delta_rows = 8;
    cfg
}

/// Runs one uniform-mix batch, optionally armed, and returns the
/// service plus the tracker (present only when armed).
fn run(mode: CoordinatorMode, armed: bool) -> (ShardedHtap, Option<Arc<ShadowSanitizer>>) {
    let mut service = ShardedHtap::new(squeezed(mode)).expect("build shards");
    let san = armed.then(|| {
        let san = Arc::new(ShadowSanitizer::new());
        service.set_sanitizer(san.clone());
        san
    });
    let warehouses = service.map().warehouses();
    let mut gen = service
        .global_txn_gen(SEED)
        .with_remote_mix(RemoteMix::Uniform, warehouses);
    let report = service.run_txns(&mut gen, TXNS);
    assert_eq!(report.committed(), TXNS);
    service.defragment_all();
    (service, san)
}

/// Byte-compares every table of every shard between two deployments.
fn assert_services_match(a: &ShardedHtap, b: &ShardedHtap, label: &str) {
    assert_eq!(a.shard_count(), b.shard_count());
    for i in 0..a.shard_count() {
        let da = a.shard(i).db();
        let db = b.shard(i).db();
        assert_eq!(da.last_ts(), db.last_ts(), "{label}: shard {i} watermark");
        for table in ALL_TABLES {
            let ta = da.table(table);
            let tb = db.table(table);
            assert_eq!(ta.n_rows(), tb.n_rows());
            for row in 0..ta.n_rows() {
                assert_eq!(
                    ta.store().read_row(RowSlot::Data { row }),
                    tb.store().read_row(RowSlot::Data { row }),
                    "{label}: shard {i} {table:?} row {row} diverged under the sanitizer"
                );
            }
        }
    }
}

#[test]
fn armed_batches_are_violation_free_and_byte_neutral() {
    for mode in [CoordinatorMode::Serial, CoordinatorMode::Pipelined] {
        let label = match mode {
            CoordinatorMode::Serial => "serial",
            CoordinatorMode::Pipelined => "pipelined",
        };
        let (armed, san) = run(mode, true);
        let san = san.expect("armed run returns its tracker");
        // The tracker genuinely watched the batch: every transaction
        // opened at least one scope, and row traffic was checked.
        assert!(
            san.scopes_tracked() >= TXNS,
            "{label}: {} scopes for {TXNS} txns — hooks disconnected?",
            san.scopes_tracked()
        );
        assert!(
            san.checked_accesses() > TXNS,
            "{label}: too few checked accesses ({})",
            san.checked_accesses()
        );
        san.assert_clean(label);
        // And arming changed nothing a byte can see: the hooks charge
        // zero simulated time, so the armed deployment commits the
        // exact state an unarmed twin does.
        let (unarmed, _) = run(mode, false);
        assert_services_match(&armed, &unarmed, label);
    }
}

#[test]
fn default_deployment_stays_unarmed() {
    let service = ShardedHtap::new(squeezed(CoordinatorMode::Serial)).expect("build shards");
    for shard in service.shards() {
        assert!(
            !shard.db().sanitizer().enabled(),
            "the NullSanitizer must report itself disabled"
        );
    }
}

/// Drives a deliberate breach through a tracker installed on a real
/// deployment: an access recorded outside any scope at a timestamp the
/// batch already resolved. The detector must still be live after the
/// batch (it is the same `Arc` the engines hold) and must classify the
/// breach correctly.
#[test]
fn injected_stray_access_fires_end_to_end() {
    let (_service, san) = run(CoordinatorMode::Pipelined, true);
    let san = san.expect("armed");
    san.assert_clean("before injection");
    san.record_access(
        0,
        1,
        Access {
            kind: AccessKind::Write,
            table: 0,
            key: 42,
        },
    );
    san.batch_end(0);
    let violations = san.take_violations();
    assert!(
        violations
            .iter()
            .any(|v| v.kind == ViolationKind::AccessOutsideScope),
        "stray write must be flagged, got {violations:?}"
    );
}

/// An undeclared access inside a declared scope: the scope promises a
/// keyset and touches a row outside it — the exact scheduler-
/// unsoundness the tracker exists to catch, driven through the same
/// installed tracker a real deployment holds.
#[test]
fn injected_undeclared_access_fires_end_to_end() {
    let (_service, san) = run(CoordinatorMode::Serial, true);
    let san = san.expect("armed");
    san.assert_clean("before injection");
    let next_ts = 1_000_000;
    san.begin_scope(0, next_ts, &[], &[]);
    san.record_access(
        0,
        next_ts,
        Access {
            kind: AccessKind::Read,
            table: 3,
            key: 7,
        },
    );
    san.prepare_scope(0, next_ts);
    san.commit_scope(0, next_ts);
    san.batch_end(0);
    let violations = san.take_violations();
    assert!(
        violations
            .iter()
            .any(|v| v.kind == ViolationKind::UndeclaredAccess),
        "undeclared read must be flagged, got {violations:?}"
    );
}

/// Two same-wave scopes writing the same key: the wave scheduler's
/// core promise broken by hand, caught by the lockset check.
#[test]
fn injected_wave_conflict_fires_end_to_end() {
    let (_service, san) = run(CoordinatorMode::Pipelined, true);
    let san = san.expect("armed");
    san.assert_clean("before injection");
    let (a, b) = (2_000_000, 2_000_001);
    let key = pushtap_sanitizer::SanKey::Row(0, 9);
    san.assign_wave(a, 77);
    san.assign_wave(b, 77);
    for ts in [a, b] {
        san.begin_scope(0, ts, &[], &[key]);
        san.record_access(
            0,
            ts,
            Access {
                kind: AccessKind::Write,
                table: 0,
                key: 9,
            },
        );
        san.prepare_scope(0, ts);
        san.commit_scope(0, ts);
    }
    san.batch_end(0);
    let violations = san.take_violations();
    assert!(
        violations
            .iter()
            .any(|v| v.kind == ViolationKind::WaveConflict),
        "same-wave overlapping writers must be flagged, got {violations:?}"
    );
}

/// The GC-vs-reader race, broken by hand: a snapshot pin is registered
/// (as [`ShardedHtap::run_query`](pushtap_shard::ShardedHtap) does for
/// the scatter's duration) and a version at the pinned cut is reclaimed
/// anyway — the keyset-soundness tracker must flag it, and must go
/// silent again once the pin is released.
#[test]
fn injected_reclaim_under_pin_fires_end_to_end() {
    let (_service, san) = run(CoordinatorMode::Pipelined, true);
    let san = san.expect("armed");
    san.assert_clean("before injection");
    let cut = 4_000_000;
    san.register_pin(cut);
    san.reclaim_version(0, 2, 11, cut - 1); // strictly below: legal
    san.reclaim_version(1, 2, 11, cut); // at the pin: a pinned reader's version
    san.batch_end(0);
    let violations = san.take_violations();
    assert!(
        violations
            .iter()
            .any(|v| v.kind == ViolationKind::ReclaimedPinnedVersion),
        "reclaiming a pinned version must be flagged, got {violations:?}"
    );
    // Released pin: the same reclaim is clean.
    san.release_pin(cut);
    san.reclaim_version(1, 2, 11, cut);
    san.batch_end(0);
    san.assert_clean("after release");
}

/// The batch-boundary discipline: a scope left prepared-but-undecided
/// (and lingering prepared versions) at batch end is exactly what a
/// coordinator bug would leave behind.
#[test]
fn injected_unbalanced_prepare_fires_end_to_end() {
    let (_service, san) = run(CoordinatorMode::Serial, true);
    let san = san.expect("armed");
    san.assert_clean("before injection");
    let ts = 3_000_000;
    san.begin_scope(0, ts, &[], &[]);
    san.prepare_scope(0, ts);
    // No decision ever arrives; the batch ends with versions pending.
    san.batch_end(5);
    let violations = san.take_violations();
    assert!(
        violations
            .iter()
            .any(|v| v.kind == ViolationKind::UnbalancedPrepare),
        "undecided scope must be flagged, got {violations:?}"
    );
    assert!(
        violations
            .iter()
            .any(|v| v.kind == ViolationKind::PreparedAtBatchEnd),
        "lingering prepared versions must be flagged, got {violations:?}"
    );
}
