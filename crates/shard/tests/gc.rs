//! Garbage-collection acceptance for the sharded service: version
//! reclamation is *invisible* to committed bytes and to pinned readers.
//!
//! 1. **Byte identity**: a deployment that garbage-collects aggressively
//!    mid-batch (tiny maintenance period, so the GC-first policy fires
//!    constantly) commits byte-identical state to an untouched
//!    unpartitioned reference that never collected — at 1/2/4 shards,
//!    under every remote mix, both coordinator modes.
//! 2. **Pinned snapshots**: a long-lived snapshot pin keeps its cut
//!    readable across arbitrarily many GC passes — the historical
//!    answer is exactly the answer the cut gave when it was fresh — and
//!    releasing the pin lets the eligible floor advance again.

mod common;

use proptest::prelude::*;
use pushtap_chbench::{RemoteMix, ALL_TABLES};
use pushtap_mvcc::Ts;
use pushtap_olap::Query;
use pushtap_shard::{CoordinatorMode, ShardConfig, ShardedHtap};

const SEED: u64 = 2025;
const TXNS: u64 = 96;

/// Ample arenas, but a maintenance period so short the GC-first policy
/// runs throughout the batch.
fn collecting(shards: u32, mode: CoordinatorMode) -> ShardConfig {
    let mut cfg = ShardConfig::small(shards).with_mode(mode);
    cfg.base.defrag_period = 25;
    cfg
}

fn mode_name(mode: CoordinatorMode) -> &'static str {
    match mode {
        CoordinatorMode::Serial => "serial",
        CoordinatorMode::Pipelined => "pipelined",
    }
}

/// Runs one batch on a collecting deployment and proves byte identity
/// against the never-collecting unpartitioned reference.
fn collect_and_compare(
    cfg: ShardConfig,
    mix: RemoteMix,
    seed: u64,
    txns: u64,
    require_collect: bool,
    label: &str,
) {
    let mut service = ShardedHtap::new(cfg).expect("build shards");
    let san = common::maybe_sanitize(&mut service);
    let warehouses = service.map().warehouses();
    let mut gen = service
        .global_txn_gen(seed)
        .with_remote_mix(mix, warehouses);
    let report = service.run_txns(&mut gen, txns);
    assert_eq!(report.committed(), txns, "{label}: everything commits");
    let gc = report.gc();
    if require_collect {
        assert!(gc.passes > 0, "{label}: the short period must collect");
        assert!(
            gc.slots_recycled > 0 && gc.log_trimmed > 0,
            "{label}: collection must actually reclaim"
        );
    }
    common::assert_sanitized_clean(&san, label);
    service.defragment_all();
    // The reference executes the same committed stream and never
    // garbage-collects (default period, one batch, no pressure).
    let committed: Vec<Ts> = (1..=txns).map(Ts).collect();
    let reference = common::reference_holding(service.cfg(), mix, seed, txns, &committed);
    for (i, shard) in service.shards().iter().enumerate() {
        for table in ALL_TABLES {
            common::assert_table_bytes_match(
                shard,
                &reference,
                table,
                &format!("{label}: shard {i}"),
            );
        }
    }
}

#[test]
fn collected_batches_stay_byte_identical() {
    for shards in [1u32, 2, 4] {
        for mode in [CoordinatorMode::Serial, CoordinatorMode::Pipelined] {
            for (mix, mix_name) in [
                (RemoteMix::LOCAL, "local"),
                (RemoteMix::TPCC, "tpcc"),
                (RemoteMix::Uniform, "uniform"),
            ] {
                let label = format!("gc {} {mix_name} at {shards} shards", mode_name(mode));
                collect_and_compare(collecting(shards, mode), mix, SEED, TXNS, true, &label);
            }
        }
    }
}

#[test]
fn pinned_snapshot_reads_its_exact_cut_across_gc() {
    let mut service = ShardedHtap::new(collecting(2, CoordinatorMode::Pipelined)).expect("build");
    let san = common::maybe_sanitize(&mut service);
    let warehouses = service.map().warehouses();
    let mut gen = service
        .global_txn_gen(SEED)
        .with_remote_mix(RemoteMix::Uniform, warehouses);
    let first = service.run_txns(&mut gen, 48);
    assert_eq!(first.committed(), 48);
    let cut = service.ts_oracle().watermark();
    assert_eq!(cut, Ts(48));
    let fresh = service.run_query_at(Query::Q6, cut);

    // The long-lived reader: pin the cut, then keep committing and
    // collecting on top of it. The pin floors the eligible cut, so no
    // version the reader needs is ever folded away.
    let oracle = std::sync::Arc::clone(service.ts_oracle());
    let pin = oracle.pin_snapshot(cut);
    let mut passes = 0;
    for _ in 0..3 {
        let r = service.run_txns(&mut gen, 48);
        assert_eq!(r.committed(), 48);
        passes += r.gc().passes;
    }
    assert!(passes > 0, "traffic above the pin must still collect");
    assert_eq!(
        oracle.gc_eligible_before(),
        Ts(cut.0 - 1),
        "the pin floors the eligible cut"
    );
    let pinned = service.run_query_at(Query::Q6, cut);
    assert_eq!(
        pinned.result, fresh.result,
        "the pinned cut must answer exactly as it did when fresh"
    );
    // A current-cut query sees the new traffic (the revenue grew).
    let now = service.run_query(Query::Q6);
    assert!(now.cut > cut);
    assert_ne!(now.result, fresh.result, "new traffic must be visible");

    // Releasing the pin un-floors the eligible cut.
    drop(pin);
    assert_eq!(service.ts_oracle().active_pins(), 0);
    assert_eq!(
        oracle.gc_eligible_before(),
        oracle.watermark(),
        "no pin, no floor"
    );
    common::assert_sanitized_clean(&san, "pinned snapshot");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Arbitrary seed, mix, shard count, mode, and maintenance period:
    /// the collected deployment's bytes always equal the
    /// never-collecting reference's.
    #[test]
    fn any_collected_batch_is_byte_identical(
        seed in 1u64..=1000,
        txns in 40u64..=80,
        period in 10u64..=40,
        mode_pick in 0u8..2,
        shard_pick in 0u8..3,
        mix_pick in 0u8..3,
    ) {
        let mode = if mode_pick == 0 {
            CoordinatorMode::Serial
        } else {
            CoordinatorMode::Pipelined
        };
        let shards = [1u32, 2, 4][shard_pick as usize];
        let mix = match mix_pick {
            0 => RemoteMix::LOCAL,
            1 => RemoteMix::TPCC,
            _ => RemoteMix::Uniform,
        };
        let mut cfg = ShardConfig::small(shards).with_mode(mode);
        cfg.base.defrag_period = period;
        let label = format!(
            "proptest gc {} at {shards} shards (seed {seed}, mix {mix_pick}, period {period})",
            mode_name(mode),
        );
        // Small draws at high shard counts may never trip the per-shard
        // period — identity must hold either way, so collection is not
        // required here.
        collect_and_compare(cfg, mix, seed, txns, false, &label);
    }
}
