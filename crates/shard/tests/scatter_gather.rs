//! The acceptance property of the shard layer: scatter-gather Q1/Q6/Q9
//! over 1, 2, and 4 warehouse-partitioned shards produce results
//! *exactly equal* to the reference executor on one unpartitioned
//! instance that committed the same global transaction stream.
//!
//! The reference answers come from `ref_q1`/`ref_q6`/`ref_q9` — the
//! naive chain-walking executor that validates the PIM path itself — so
//! this closes the loop: sharded PIM scatter-gather ≡ single-instance
//! PIM scan ≡ naive reference.

use pushtap_core::Pushtap;
use pushtap_olap::{ref_q1, ref_q6, ref_q9, Query, QueryResult};
use pushtap_shard::{ShardConfig, ShardedHtap};

const SEED: u64 = 2025;
const TXNS: u64 = 150;

/// Builds the unpartitioned reference, commits the stream, and returns
/// the expected answers at its final timestamp.
fn reference_answers() -> Vec<(Query, QueryResult)> {
    // ShardConfig::small(k) uses the same base configuration for every
    // k, so one reference serves all shard counts.
    let cfg = ShardConfig::small(1);
    let mut reference = Pushtap::new(cfg.base).expect("build reference");
    let mut gen = reference.txn_gen(SEED);
    reference.run_txns(&mut gen, TXNS);
    let ts = reference.db().last_ts();
    Query::ALL
        .iter()
        .map(|&q| {
            let expect = match q {
                Query::Q1 => ref_q1(reference.db(), ts),
                Query::Q6 => ref_q6(reference.db(), ts),
                Query::Q9 => ref_q9(reference.db(), ts),
            };
            (q, expect)
        })
        .collect()
}

#[test]
fn merged_results_equal_unpartitioned_reference_at_1_2_4_shards() {
    // 3 shards over 8 warehouses exercises the non-divisible floor
    // split (warehouse ranges [0,2), [2,5), [5,8)) on top of the
    // required 1/2/4 sweep.
    let expected = reference_answers();
    for shards in [1u32, 2, 3, 4] {
        let mut service = ShardedHtap::new(ShardConfig::small(shards)).expect("build shards");
        let mut gen = service.global_txn_gen(SEED);
        let oltp = service.run_txns(&mut gen, TXNS);
        assert_eq!(oltp.committed(), TXNS, "{shards} shards");
        for (q, expect) in &expected {
            let report = service.run_query(*q);
            assert_eq!(
                &report.result,
                expect,
                "{} diverged from the unpartitioned reference at {shards} shards",
                q.name()
            );
        }
    }
}

#[test]
fn merged_results_survive_defragmentation() {
    // Defragmentation moves delta versions into the data region on every
    // shard concurrently; the merged scatter-gather answer must not move.
    let mut service = ShardedHtap::new(ShardConfig::small(4)).expect("build");
    let mut gen = service.global_txn_gen(SEED);
    service.run_txns(&mut gen, 100);
    assert!(
        service
            .shards()
            .iter()
            .any(|s| s.db().live_delta_rows() > 0),
        "the batch must leave delta versions to defragment"
    );
    let before_q9 = service.run_query(Query::Q9).result;
    let before_q1 = service.run_query(Query::Q1).result;
    let pause = service.defragment_all();
    assert!(pause > pushtap_pim::Ps::ZERO);
    assert!(
        service
            .shards()
            .iter()
            .all(|s| s.db().live_delta_rows() == 0),
        "defragmentation must clear every shard's delta regions"
    );
    assert_eq!(service.run_query(Query::Q9).result, before_q9);
    assert_eq!(service.run_query(Query::Q1).result, before_q1);
}

#[test]
fn scatter_latency_is_the_slowest_shard_not_the_sum() {
    let mut service = ShardedHtap::new(ShardConfig::small(4)).expect("build");
    let mut gen = service.global_txn_gen(7);
    service.run_txns(&mut gen, 80);
    let report = service.run_query(Query::Q6);
    let slowest = report
        .per_shard
        .iter()
        .map(|p| p.total())
        .max()
        .expect("4 shards");
    let sum: u64 = report.per_shard.iter().map(|p| p.total().ps()).sum();
    assert_eq!(report.scatter_latency, slowest);
    assert!(
        report.scatter_latency.ps() < sum,
        "scatter must parallelise the per-shard scans"
    );
}
