//! The upgraded shard acceptance property: scatter-gather results stay
//! *exactly equal* to the unpartitioned reference even when delta arenas
//! are deliberately undersized, so that every shard keeps hitting
//! `DeltaFull` and retrying transactions mid-batch.
//!
//! PR 1 proved value identity for arenas sized to the stream; the
//! transaction-level undo log extends it to arbitrary delta pressure:
//! an aborted transaction rolls back completely (slots, chains, bytes,
//! index, stripe cursors, timestamp), so *when* a deployment's arenas
//! fill up can no longer influence *what* it commits.
//!
//! The shared timestamp oracle extends the invariant once more, from
//! values to *bytes*: every shard commits under the globally-stream-
//! ordered timestamps the coordinator stamps from the one `TsOracle`, so
//! the timestamp-encoded columns now match the unpartitioned instance's
//! too. And the coordinator's simulated two-phase commit closes the last
//! gap: a transaction's remote-owned CUSTOMER/STOCK effects are
//! *forwarded* to the owning shard and committed there at the pinned
//! timestamp (aborting everywhere and retrying when any participant's
//! arena fills mid-prepare), so byte identity shard-vs-reference holds
//! for **every table under every remote mix** — uniform worst case,
//! TPC-C's specified remote rates, and the fully local mix — with and
//! without delta pressure. Scattered queries are asserted to observe one
//! agreed global cut timestamp.

mod common;

use common::assert_table_bytes_match;
use pushtap_chbench::{RemoteMix, Table};
use pushtap_core::Pushtap;
use pushtap_format::RowSlot;
use pushtap_mvcc::Ts;
use pushtap_olap::{ref_q1, ref_q6, ref_q9, Query, QueryResult};
use pushtap_pim::Ps;
use pushtap_shard::{ShardConfig, ShardedHtap};

const SEED: u64 = 2025;
const TXNS: u64 = 120;

/// Insert-bearing fact tables whose stripe rings the identity proof
/// tracks.
const RING_TABLES: [Table; 4] = [
    Table::History,
    Table::Order,
    Table::NewOrder,
    Table::OrderLine,
];

/// The shard configuration with delta arenas squeezed proportionally:
/// the single-row hot tables (WAREHOUSE, DISTRICT) get one-slot arenas —
/// the second transaction of any class since the last defragmentation
/// aborts — while the burst tables keep just enough room that one
/// transaction always fits after defragmentation. The fraction is
/// calibrated to the *smallest* partitioned slice (STOCK at 4 shards is
/// 2500 rows → 18-slot arenas ≥ the 15 worst-case stock updates of one
/// NewOrder); any tighter and a single transaction could exceed an
/// empty arena and retry forever.
fn squeezed_cfg(shards: u32) -> ShardConfig {
    let mut cfg = ShardConfig::small(shards);
    cfg.base.db.delta_frac = 0.06;
    cfg.base.db.min_delta_rows = 8;
    cfg
}

/// Reference answers from an unpartitioned engine under the *same*
/// delta pressure, plus its per-warehouse stripe cursors.
fn reference(seed: u64, txns: u64) -> (Pushtap, Vec<(Query, QueryResult)>) {
    let mut reference = Pushtap::new(squeezed_cfg(1).base).expect("build reference");
    let mut gen = reference.txn_gen(seed);
    let report = reference.run_txns(&mut gen, txns);
    assert!(
        report.aborts > 0,
        "the reference must feel the delta pressure too"
    );
    let ts = reference.db().last_ts();
    let answers = Query::ALL
        .iter()
        .map(|&q| {
            let expect = match q {
                Query::Q1 => ref_q1(reference.db(), ts),
                Query::Q6 => ref_q6(reference.db(), ts),
                Query::Q9 => ref_q9(reference.db(), ts),
            };
            (q, expect)
        })
        .collect();
    (reference, answers)
}

#[test]
fn pressured_shards_match_pressured_reference_at_1_2_4_shards() {
    let (reference, expected) = reference(SEED, TXNS);
    for shards in [1u32, 2, 4] {
        let mut service = ShardedHtap::new(squeezed_cfg(shards)).expect("build shards");
        let san = common::maybe_sanitize(&mut service);
        let mut gen = service.global_txn_gen(SEED);
        let oltp = service.run_txns(&mut gen, TXNS);
        assert_eq!(oltp.committed(), TXNS, "{shards} shards");
        common::assert_sanitized_clean(&san, "pressured uniform mix");
        assert!(
            oltp.aborts() > 0,
            "{shards} shards: undersized arenas must force retries"
        );
        assert!(oltp.retried_txns() > 0 && oltp.retried_txns() <= oltp.aborts());

        // Merged analytical answers equal the unpartitioned reference.
        for (q, expect) in &expected {
            let report = service.run_query(*q);
            assert_eq!(
                &report.result,
                expect,
                "{} diverged from the reference at {shards} shards under pressure",
                q.name()
            );
        }

        // The insert rings stayed aligned: every warehouse's stripe
        // cursor matches the reference on the shard that owns it.
        for w in 0..reference.db().warehouses_global() {
            let owner = service
                .shards()
                .iter()
                .find(|s| s.db().warehouse_range().contains(&w))
                .expect("every warehouse has an owner");
            for table in RING_TABLES {
                assert_eq!(
                    owner.db().insert_cursor(table, w),
                    reference.db().insert_cursor(table, w),
                    "{table:?} stripe cursor of warehouse {w} at {shards} shards"
                );
            }
        }

        // No leaked stripe slots: defragmentation reclaims everything —
        // aborted attempts left no versions behind.
        let pause = service.defragment_all();
        assert!(pause >= Ps::ZERO);
        for (i, s) in service.shards().iter().enumerate() {
            assert_eq!(
                s.db().live_delta_rows(),
                0,
                "shard {i} of {shards} leaked delta slots"
            );
        }
    }
}

/// The tentpole acceptance property: with one deployment-wide timestamp
/// oracle stamping transactions in global stream order and two-phase
/// commit forwarding remote-owned writes to their owning shards, a
/// sharded deployment's committed bytes — including the
/// timestamp-encoded columns and the insert rings — equal the
/// unpartitioned reference's for **all tables** (CUSTOMER and STOCK no
/// longer excluded), at 1, 2, and 4 shards, *under delta pressure*.
///
/// The uniform mix is the cross-shard worst case: ~(k−1)/k of customer
/// and stock touches are remote at k shards, so this stream exercises
/// the forwarding path constantly, including participant aborts when
/// undersized arenas fill mid-prepare.
#[test]
fn committed_state_is_byte_identical_shard_vs_reference() {
    let mut reference = Pushtap::new(squeezed_cfg(1).base).expect("build reference");
    let mut rgen = reference.txn_gen(SEED);
    let r = reference.run_txns(&mut rgen, TXNS);
    assert!(r.aborts > 0, "the reference must feel the pressure");
    reference.defragment_all();
    assert_eq!(reference.db().last_ts(), Ts(TXNS));

    for shards in [1u32, 2, 4] {
        let mut service = ShardedHtap::new(squeezed_cfg(shards)).expect("build shards");
        let san = common::maybe_sanitize(&mut service);
        let mut gen = service.global_txn_gen(SEED);
        let oltp = service.run_txns(&mut gen, TXNS);
        common::assert_sanitized_clean(&san, "pressured forwarding mix");
        assert!(oltp.aborts() > 0, "{shards} shards: pressure expected");
        if shards > 1 {
            assert!(
                oltp.forwarded_effects() > 0,
                "{shards} shards: the uniform mix must forward effects"
            );
        }
        service.defragment_all();
        // Every shard saw the deployment watermark — the last stamped
        // timestamp — and it equals the reference's final timestamp.
        assert_eq!(service.ts_oracle().watermark(), Ts(TXNS));
        for (i, shard) in service.shards().iter().enumerate() {
            assert_eq!(shard.db().last_ts(), Ts(TXNS), "shard {i} watermark");
            assert_eq!(shard.db().prepared_versions(), 0, "shard {i} prepared");
            for table in pushtap_chbench::ALL_TABLES {
                assert_table_bytes_match(
                    shard,
                    &reference,
                    table,
                    &format!("uniform stream at {shards} shards"),
                );
            }
        }
    }
}

/// The acceptance-criteria mix: under `RemoteMix::TPCC` (1 % remote
/// NewOrder supply warehouses, 15 % remote Payment customers) committed
/// bytes for all nine TPC-C tables equal the unpartitioned reference at
/// 1/2/4 shards — both *without* delta pressure (ample arenas, no
/// aborts anywhere) and *with* it (squeezed arenas, participants
/// aborting mid-prepare).
#[test]
fn all_tables_byte_identical_under_tpcc_mix() {
    for pressured in [false, true] {
        let cfg = |shards: u32| {
            if pressured {
                squeezed_cfg(shards)
            } else {
                ShardConfig::small(shards)
            }
        };
        let label = if pressured {
            "TPC-C mix, pressured"
        } else {
            "TPC-C mix, ample"
        };
        let mut reference = Pushtap::new(cfg(1).base).expect("build reference");
        let warehouses = reference.db().warehouses_global();
        let mut rgen = reference
            .txn_gen(SEED)
            .with_remote_mix(RemoteMix::TPCC, warehouses);
        let r = reference.run_txns(&mut rgen, TXNS);
        assert_eq!(r.aborts > 0, pressured, "{label}: reference pressure");
        reference.defragment_all();

        for shards in [1u32, 2, 4] {
            let mut service = ShardedHtap::new(cfg(shards)).expect("build shards");
            let san = common::maybe_sanitize(&mut service);
            let mut gen = service
                .global_txn_gen(SEED)
                .with_remote_mix(RemoteMix::TPCC, warehouses);
            let oltp = service.run_txns(&mut gen, TXNS);
            assert_eq!(oltp.committed(), TXNS, "{label} at {shards} shards");
            common::assert_sanitized_clean(&san, label);
            assert_eq!(
                oltp.aborts() > 0,
                pressured,
                "{label} at {shards} shards: aborts"
            );
            if shards > 1 {
                assert!(
                    oltp.remote.cross_shard_txns > 0,
                    "{label}: the TPC-C mix must cross shards"
                );
                assert!(
                    oltp.forwarded_effects() >= oltp.remote.remote_touches,
                    "{label}: every remote touch is a forwarded effect"
                );
            }
            service.defragment_all();
            for shard in service.shards() {
                assert_eq!(shard.db().prepared_versions(), 0, "{label}: prepared");
                for table in pushtap_chbench::ALL_TABLES {
                    assert_table_bytes_match(
                        shard,
                        &reference,
                        table,
                        &format!("{label} at {shards} shards"),
                    );
                }
            }
        }
    }
}

/// Under a fully warehouse-local TPC-C mix (the 1 %/15 % remote knob
/// turned to 0 %), every row a transaction touches is owned by its home
/// shard — the two-phase commit path never fires — and every table must
/// be byte-identical to the unpartitioned reference, still under delta
/// pressure.
#[test]
fn all_tables_byte_identical_under_local_tpcc_mix() {
    let mut reference = Pushtap::new(squeezed_cfg(1).base).expect("build reference");
    let warehouses = reference.db().warehouses_global();
    let mut rgen = reference
        .txn_gen(SEED)
        .with_remote_mix(RemoteMix::LOCAL, warehouses);
    let r = reference.run_txns(&mut rgen, TXNS);
    assert!(r.aborts > 0, "the reference must feel the pressure");
    reference.defragment_all();

    for shards in [1u32, 2, 4] {
        let mut service = ShardedHtap::new(squeezed_cfg(shards)).expect("build shards");
        let san = common::maybe_sanitize(&mut service);
        let mut gen = service
            .global_txn_gen(SEED)
            .with_remote_mix(RemoteMix::LOCAL, warehouses);
        let oltp = service.run_txns(&mut gen, TXNS);
        common::assert_sanitized_clean(&san, "pressured local mix");
        assert!(oltp.aborts() > 0, "{shards} shards: pressure expected");
        assert_eq!(
            oltp.remote.remote_touches, 0,
            "a local mix must never cross shards"
        );
        service.defragment_all();
        for shard in service.shards() {
            for table in pushtap_chbench::ALL_TABLES {
                assert_table_bytes_match(
                    shard,
                    &reference,
                    table,
                    &format!("local mix at {shards} shards"),
                );
            }
        }
    }
}

/// A query scattered mid-stream observes one agreed global cut: every
/// shard snapshots at the same oracle watermark, and the merged answer
/// equals the unpartitioned reference's answer *as of that cut* — not
/// whatever each shard's own clock would have given it.
#[test]
fn scattered_query_reflects_one_global_cut() {
    const MID: u64 = 70;
    const REST: u64 = 50;
    // Ample arenas: the reference must keep its version chains (no
    // defragmentation) so as-of-cut answers stay computable.
    let mut reference = Pushtap::new(ShardConfig::small(1).base).expect("build reference");
    let mut rgen = reference.txn_gen(SEED);
    reference.run_txns(&mut rgen, MID + REST);

    for shards in [2u32, 4] {
        let mut service = ShardedHtap::new(ShardConfig::small(shards)).expect("build shards");
        let san = common::maybe_sanitize(&mut service);
        let mut gen = service.global_txn_gen(SEED);
        service.run_txns(&mut gen, MID);
        common::assert_sanitized_clean(&san, "mid-stream cut batch");
        let mid_q6 = service.run_query(Query::Q6);
        let mid_q1 = service.run_query(Query::Q1);
        // The coordinator recorded the agreed cut at the stream position
        // of the scatter, and every shard observed exactly it.
        assert_eq!(mid_q6.cut, Ts(MID));
        assert_eq!(mid_q6.global_cut(), Some(Ts(MID)), "{shards} shards");
        assert!(
            mid_q6.per_shard.iter().all(|p| p.cut == Ts(MID)),
            "every shard snapshot at the agreed cut"
        );

        service.run_txns(&mut gen, REST);
        let late_q6 = service.run_query(Query::Q6);
        assert_eq!(late_q6.global_cut(), Some(Ts(MID + REST)));

        // The mid-stream answers equal the reference *as of the cut*,
        // the late answers as of the final timestamp.
        assert_eq!(
            mid_q6.result,
            ref_q6(reference.db(), Ts(MID)),
            "{shards} shards: Q6 at the mid-stream cut"
        );
        assert_eq!(mid_q1.result, ref_q1(reference.db(), Ts(MID)));
        assert_eq!(
            late_q6.result,
            ref_q6(reference.db(), Ts(MID + REST)),
            "{shards} shards: Q6 at the final cut"
        );
    }
}

/// Within one topology, delta pressure must not change a single byte:
/// each pressured shard's tables (data regions after defragmentation,
/// i.e. the full committed state including the insert rings) equal the
/// ample-arena deployment's, at every shard count.
#[test]
fn pressure_leaves_ring_contents_byte_identical_per_topology() {
    for shards in [1u32, 2, 4] {
        let mut squeezed = ShardedHtap::new(squeezed_cfg(shards)).expect("build");
        let mut roomy = ShardedHtap::new(ShardConfig::small(shards)).expect("build");
        let san_a = common::maybe_sanitize(&mut squeezed);
        let san_b = common::maybe_sanitize(&mut roomy);
        let mut gen_a = squeezed.global_txn_gen(SEED);
        let mut gen_b = roomy.global_txn_gen(SEED);
        let a = squeezed.run_txns(&mut gen_a, TXNS);
        let b = roomy.run_txns(&mut gen_b, TXNS);
        common::assert_sanitized_clean(&san_a, "squeezed ring topology");
        common::assert_sanitized_clean(&san_b, "roomy ring topology");
        assert!(a.aborts() > 0, "{shards} shards: pressure expected");
        assert_eq!(b.aborts(), 0, "{shards} shards: ample arenas abort-free");

        squeezed.defragment_all();
        roomy.defragment_all();
        for i in 0..shards {
            let da = squeezed.shard(i).db();
            let db = roomy.shard(i).db();
            assert_eq!(da.last_ts(), db.last_ts(), "shard {i} timestamps");
            for table in pushtap_chbench::ALL_TABLES {
                let ta = da.table(table);
                let tb = db.table(table);
                assert_eq!(ta.n_rows(), tb.n_rows());
                for row in 0..ta.n_rows() {
                    assert_eq!(
                        ta.store().read_row(RowSlot::Data { row }),
                        tb.store().read_row(RowSlot::Data { row }),
                        "shard {i}/{shards}: {table:?} row {row} diverged under pressure"
                    );
                }
            }
        }
    }
}
