//! The upgraded shard acceptance property: scatter-gather results stay
//! *exactly equal* to the unpartitioned reference even when delta arenas
//! are deliberately undersized, so that every shard keeps hitting
//! `DeltaFull` and retrying transactions mid-batch.
//!
//! PR 1 proved value identity for arenas sized to the stream; the
//! transaction-level undo log extends it to arbitrary delta pressure:
//! an aborted transaction rolls back completely (slots, chains, bytes,
//! index, stripe cursors, timestamp), so *when* a deployment's arenas
//! fill up can no longer influence *what* it commits.
//!
//! Timestamps are per-engine, so a shard's encoded timestamp columns
//! legitimately differ from the unpartitioned instance's; byte-level
//! ring identity is therefore asserted within a topology
//! (pressure vs ample), while cross-topology identity is asserted on
//! the query values and the stripe-ring cursors.

use pushtap_chbench::Table;
use pushtap_core::Pushtap;
use pushtap_format::RowSlot;
use pushtap_olap::{ref_q1, ref_q6, ref_q9, Query, QueryResult};
use pushtap_pim::Ps;
use pushtap_shard::{ShardConfig, ShardedHtap};

const SEED: u64 = 2025;
const TXNS: u64 = 120;

/// Insert-bearing fact tables whose stripe rings the identity proof
/// tracks.
const RING_TABLES: [Table; 4] = [
    Table::History,
    Table::Order,
    Table::NewOrder,
    Table::OrderLine,
];

/// The shard configuration with delta arenas squeezed proportionally:
/// the single-row hot tables (WAREHOUSE, DISTRICT) get one-slot arenas —
/// the second transaction of any class since the last defragmentation
/// aborts — while the burst tables keep just enough room that one
/// transaction always fits after defragmentation. The fraction is
/// calibrated to the *smallest* partitioned slice (STOCK at 4 shards is
/// 2500 rows → 18-slot arenas ≥ the 15 worst-case stock updates of one
/// NewOrder); any tighter and a single transaction could exceed an
/// empty arena and retry forever.
fn squeezed_cfg(shards: u32) -> ShardConfig {
    let mut cfg = ShardConfig::small(shards);
    cfg.base.db.delta_frac = 0.06;
    cfg.base.db.min_delta_rows = 8;
    cfg
}

/// Reference answers from an unpartitioned engine under the *same*
/// delta pressure, plus its per-warehouse stripe cursors.
fn reference(seed: u64, txns: u64) -> (Pushtap, Vec<(Query, QueryResult)>) {
    let mut reference = Pushtap::new(squeezed_cfg(1).base).expect("build reference");
    let mut gen = reference.txn_gen(seed);
    let report = reference.run_txns(&mut gen, txns);
    assert!(
        report.aborts > 0,
        "the reference must feel the delta pressure too"
    );
    let ts = reference.db().last_ts();
    let answers = Query::ALL
        .iter()
        .map(|&q| {
            let expect = match q {
                Query::Q1 => ref_q1(reference.db(), ts),
                Query::Q6 => ref_q6(reference.db(), ts),
                Query::Q9 => ref_q9(reference.db(), ts),
            };
            (q, expect)
        })
        .collect();
    (reference, answers)
}

#[test]
fn pressured_shards_match_pressured_reference_at_1_2_4_shards() {
    let (reference, expected) = reference(SEED, TXNS);
    for shards in [1u32, 2, 4] {
        let mut service = ShardedHtap::new(squeezed_cfg(shards)).expect("build shards");
        let mut gen = service.global_txn_gen(SEED);
        let oltp = service.run_txns(&mut gen, TXNS);
        assert_eq!(oltp.committed(), TXNS, "{shards} shards");
        assert!(
            oltp.aborts() > 0,
            "{shards} shards: undersized arenas must force retries"
        );
        assert!(oltp.retried_txns() > 0 && oltp.retried_txns() <= oltp.aborts());

        // Merged analytical answers equal the unpartitioned reference.
        for (q, expect) in &expected {
            let report = service.run_query(*q);
            assert_eq!(
                &report.result,
                expect,
                "{} diverged from the reference at {shards} shards under pressure",
                q.name()
            );
        }

        // The insert rings stayed aligned: every warehouse's stripe
        // cursor matches the reference on the shard that owns it.
        for w in 0..reference.db().warehouses_global() {
            let owner = service
                .shards()
                .iter()
                .find(|s| s.db().warehouse_range().contains(&w))
                .expect("every warehouse has an owner");
            for table in RING_TABLES {
                assert_eq!(
                    owner.db().insert_cursor(table, w),
                    reference.db().insert_cursor(table, w),
                    "{table:?} stripe cursor of warehouse {w} at {shards} shards"
                );
            }
        }

        // No leaked stripe slots: defragmentation reclaims everything —
        // aborted attempts left no versions behind.
        let pause = service.defragment_all();
        assert!(pause >= Ps::ZERO);
        for (i, s) in service.shards().iter().enumerate() {
            assert_eq!(
                s.db().live_delta_rows(),
                0,
                "shard {i} of {shards} leaked delta slots"
            );
        }
    }
}

/// Within one topology, delta pressure must not change a single byte:
/// each pressured shard's tables (data regions after defragmentation,
/// i.e. the full committed state including the insert rings) equal the
/// ample-arena deployment's, at every shard count.
#[test]
fn pressure_leaves_ring_contents_byte_identical_per_topology() {
    for shards in [1u32, 2, 4] {
        let mut squeezed = ShardedHtap::new(squeezed_cfg(shards)).expect("build");
        let mut roomy = ShardedHtap::new(ShardConfig::small(shards)).expect("build");
        let mut gen_a = squeezed.global_txn_gen(SEED);
        let mut gen_b = roomy.global_txn_gen(SEED);
        let a = squeezed.run_txns(&mut gen_a, TXNS);
        let b = roomy.run_txns(&mut gen_b, TXNS);
        assert!(a.aborts() > 0, "{shards} shards: pressure expected");
        assert_eq!(b.aborts(), 0, "{shards} shards: ample arenas abort-free");

        squeezed.defragment_all();
        roomy.defragment_all();
        for i in 0..shards {
            let da = squeezed.shard(i).db();
            let db = roomy.shard(i).db();
            assert_eq!(da.last_ts(), db.last_ts(), "shard {i} timestamps");
            for table in pushtap_chbench::ALL_TABLES {
                let ta = da.table(table);
                let tb = db.table(table);
                assert_eq!(ta.n_rows(), tb.n_rows());
                for row in 0..ta.n_rows() {
                    assert_eq!(
                        ta.store().read_row(RowSlot::Data { row }),
                        tb.store().read_row(RowSlot::Data { row }),
                        "shard {i}/{shards}: {table:?} row {row} diverged under pressure"
                    );
                }
            }
        }
    }
}
