//! Shared helpers for the shard integration tests.

use pushtap_chbench::{Partitioning, Table};
use pushtap_core::Pushtap;
use pushtap_format::RowSlot;
use pushtap_oltp::stripe_start;

/// Compares one table's committed bytes (data region — the caller
/// defragments both sides first so every committed version is folded
/// in) between a shard and the rows of the unpartitioned reference that
/// shard holds, timestamp-encoded columns included.
/// Builds an unpartitioned reference holding *exactly* the `committed`
/// subset of the routed stream — the byte-identity oracle for crash
/// recovery. The i-th generated transaction carries pinned timestamp
/// `i + 1` (the router stamps stream order), so each committed
/// timestamp selects its transaction from the regenerated batch and
/// executes at the original pin; everything a crash lost is simply
/// never run.
#[allow(dead_code)]
pub fn reference_holding(
    cfg: &pushtap_shard::ShardConfig,
    mix: pushtap_chbench::RemoteMix,
    seed: u64,
    txns: u64,
    committed: &[pushtap_mvcc::Ts],
) -> Pushtap {
    let mut reference = Pushtap::new(cfg.base.clone()).expect("build reference");
    let warehouses = reference.db().warehouses_global();
    let mut gen = reference.txn_gen(seed).with_remote_mix(mix, warehouses);
    let batch = gen.batch(txns as usize);
    for &ts in committed {
        let idx = usize::try_from(ts.0).expect("ts fits usize") - 1;
        reference.execute_txn_at(&batch[idx], ts);
    }
    reference.defragment_all();
    reference
}

pub fn assert_table_bytes_match(shard: &Pushtap, reference: &Pushtap, table: Table, label: &str) {
    let db = shard.db();
    let rdb = reference.db();
    let global = rdb.global_rows_of(table);
    let row_base = match table.partitioning() {
        Partitioning::Replicated => 0,
        Partitioning::ByWarehouse => {
            stripe_start(db.warehouse_range().start, global, db.warehouses_global())
        }
    };
    let t = db.table(table);
    let rt = rdb.table(table);
    for row in 0..t.n_rows() {
        assert_eq!(
            t.store().read_row(RowSlot::Data { row }),
            rt.store().read_row(RowSlot::Data {
                row: row_base + row
            }),
            "{label}: {table:?} local row {row} (global {}) diverged from the reference",
            row_base + row
        );
    }
}
