//! Shared helpers for the shard integration tests.

use std::sync::Arc;

use pushtap_chbench::{Partitioning, Table};
use pushtap_core::Pushtap;
use pushtap_format::RowSlot;
use pushtap_oltp::stripe_start;
use pushtap_sanitizer::ShadowSanitizer;

/// Arms a keyset-soundness shadow tracker on `service` when the suite
/// runs under `PUSHTAP_SANITIZE=1` (the CI sanitized job); unset, the
/// service keeps its [`pushtap_sanitizer::NullSanitizer`] and the test
/// behaves exactly as before. Pair with [`assert_sanitized_clean`]
/// once the batch under test has run.
#[allow(dead_code)]
pub fn maybe_sanitize(service: &mut pushtap_shard::ShardedHtap) -> Option<Arc<ShadowSanitizer>> {
    if std::env::var("PUSHTAP_SANITIZE").as_deref() != Ok("1") {
        return None;
    }
    let san = Arc::new(ShadowSanitizer::new());
    service.set_sanitizer(san.clone());
    Some(san)
}

/// Panics (listing every violation) if an armed tracker saw the
/// scheduler break keyset soundness, wave isolation or prepared-scope
/// discipline; also asserts the tracker genuinely watched the run.
/// A `None` tracker (unarmed run) passes silently.
#[allow(dead_code)]
pub fn assert_sanitized_clean(san: &Option<Arc<ShadowSanitizer>>, label: &str) {
    if let Some(s) = san {
        assert!(
            s.scopes_tracked() > 0,
            "{label}: armed tracker saw no scopes — hooks disconnected?"
        );
        s.assert_clean(label);
    }
}

/// Compares one table's committed bytes (data region — the caller
/// defragments both sides first so every committed version is folded
/// in) between a shard and the rows of the unpartitioned reference that
/// shard holds, timestamp-encoded columns included.
/// Builds an unpartitioned reference holding *exactly* the `committed`
/// subset of the routed stream — the byte-identity oracle for crash
/// recovery. The i-th generated transaction carries pinned timestamp
/// `i + 1` (the router stamps stream order), so each committed
/// timestamp selects its transaction from the regenerated batch and
/// executes at the original pin; everything a crash lost is simply
/// never run.
#[allow(dead_code)]
pub fn reference_holding(
    cfg: &pushtap_shard::ShardConfig,
    mix: pushtap_chbench::RemoteMix,
    seed: u64,
    txns: u64,
    committed: &[pushtap_mvcc::Ts],
) -> Pushtap {
    let mut reference = Pushtap::new(cfg.base.clone()).expect("build reference");
    let warehouses = reference.db().warehouses_global();
    let mut gen = reference.txn_gen(seed).with_remote_mix(mix, warehouses);
    let batch = gen.batch(txns as usize);
    for &ts in committed {
        let idx = usize::try_from(ts.0).expect("ts fits usize") - 1;
        reference.execute_txn_at(&batch[idx], ts);
    }
    reference.defragment_all();
    reference
}

#[allow(dead_code)]
pub fn assert_table_bytes_match(shard: &Pushtap, reference: &Pushtap, table: Table, label: &str) {
    let db = shard.db();
    let rdb = reference.db();
    let global = rdb.global_rows_of(table);
    let row_base = match table.partitioning() {
        Partitioning::Replicated => 0,
        Partitioning::ByWarehouse => {
            stripe_start(db.warehouse_range().start, global, db.warehouses_global())
        }
    };
    let t = db.table(table);
    let rt = rdb.table(table);
    for row in 0..t.n_rows() {
        assert_eq!(
            t.store().read_row(RowSlot::Data { row }),
            rt.store().read_row(RowSlot::Data {
                row: row_base + row
            }),
            "{label}: {table:?} local row {row} (global {}) diverged from the reference",
            row_base + row
        );
    }
}
