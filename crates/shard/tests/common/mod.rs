//! Shared helpers for the shard integration tests.

use pushtap_chbench::{Partitioning, Table};
use pushtap_core::Pushtap;
use pushtap_format::RowSlot;
use pushtap_oltp::stripe_start;

/// Compares one table's committed bytes (data region — the caller
/// defragments both sides first so every committed version is folded
/// in) between a shard and the rows of the unpartitioned reference that
/// shard holds, timestamp-encoded columns included.
pub fn assert_table_bytes_match(shard: &Pushtap, reference: &Pushtap, table: Table, label: &str) {
    let db = shard.db();
    let rdb = reference.db();
    let global = rdb.global_rows_of(table);
    let row_base = match table.partitioning() {
        Partitioning::Replicated => 0,
        Partitioning::ByWarehouse => {
            stripe_start(db.warehouse_range().start, global, db.warehouses_global())
        }
    };
    let t = db.table(table);
    let rt = rdb.table(table);
    for row in 0..t.n_rows() {
        assert_eq!(
            t.store().read_row(RowSlot::Data { row }),
            rt.store().read_row(RowSlot::Data {
                row: row_base + row
            }),
            "{label}: {table:?} local row {row} (global {}) diverged from the reference",
            row_base + row
        );
    }
}
