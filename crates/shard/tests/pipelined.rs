//! The pipelined-coordinator acceptance property: conflict-aware wave
//! scheduling commits **byte-identical** state to both the serial
//! (barrier-flush) coordinator and the unpartitioned reference — at
//! every shard count, under every remote mix, with and without delta
//! pressure, including waves where participants abort on `DeltaFull`
//! mid-flight — while strictly reducing barrier flushes and overlapping
//! the two-phase commits of non-conflicting transactions.
//!
//! Committed bytes are a pure function of the committed transaction
//! stream: the wave scheduler orders conflicting transactions by pinned
//! timestamp (so per-row commit order equals the reference's) and lets
//! everything else run concurrently, with multiple prepared undo scopes
//! coexisting per shard and resolving independently. These tests are
//! the proof obligation for that claim.

mod common;

use proptest::prelude::*;
use pushtap_chbench::{RemoteMix, ALL_TABLES};
use pushtap_core::Pushtap;
use pushtap_format::RowSlot;
use pushtap_shard::{CoordinatorMode, ShardConfig, ShardedHtap};

const SEED: u64 = 2025;
const TXNS: u64 = 120;

/// Arenas squeezed as in `tests/delta_pressure.rs`: hot single-row
/// tables get one-slot arenas so every transaction class aborts, while
/// the smallest partitioned STOCK slice still fits one worst-case
/// NewOrder after defragmentation.
fn squeezed(shards: u32, mode: CoordinatorMode) -> ShardConfig {
    let mut cfg = ShardConfig::small(shards).with_mode(mode);
    cfg.base.db.delta_frac = 0.06;
    cfg.base.db.min_delta_rows = 8;
    cfg
}

fn mix_name(mix: RemoteMix) -> &'static str {
    match mix {
        RemoteMix::LOCAL => "local",
        RemoteMix::TPCC => "tpcc",
        _ => "uniform",
    }
}

/// Runs one batch on a fresh deployment and returns the service with
/// all arenas defragmented (committed state folded into data regions).
fn run_batch(
    cfg: ShardConfig,
    mix: RemoteMix,
    seed: u64,
    txns: u64,
) -> (ShardedHtap, pushtap_shard::ShardOltpReport) {
    let mut service = ShardedHtap::new(cfg).expect("build shards");
    let san = common::maybe_sanitize(&mut service);
    let warehouses = service.map().warehouses();
    let mut gen = service
        .global_txn_gen(seed)
        .with_remote_mix(mix, warehouses);
    let report = service.run_txns(&mut gen, txns);
    assert_eq!(report.committed(), txns);
    common::assert_sanitized_clean(&san, "pipelined batch");
    for (i, shard) in service.shards().iter().enumerate() {
        assert!(!shard.db().in_prepared_txn(), "shard {i} holds a scope");
        assert_eq!(shard.db().prepared_versions(), 0, "shard {i} prepared");
    }
    service.defragment_all();
    for (i, shard) in service.shards().iter().enumerate() {
        assert_eq!(shard.db().live_delta_rows(), 0, "shard {i} leaked slots");
    }
    (service, report)
}

/// Byte-compares every table of every shard between two deployments of
/// the same shard count (both defragmented by the caller).
fn assert_services_match(a: &ShardedHtap, b: &ShardedHtap, label: &str) {
    assert_eq!(a.shard_count(), b.shard_count());
    for i in 0..a.shard_count() {
        let da = a.shard(i).db();
        let db = b.shard(i).db();
        assert_eq!(da.last_ts(), db.last_ts(), "{label}: shard {i} watermark");
        for table in ALL_TABLES {
            let ta = da.table(table);
            let tb = db.table(table);
            assert_eq!(ta.n_rows(), tb.n_rows());
            for row in 0..ta.n_rows() {
                assert_eq!(
                    ta.store().read_row(RowSlot::Data { row }),
                    tb.store().read_row(RowSlot::Data { row }),
                    "{label}: shard {i} {table:?} row {row} diverged"
                );
            }
        }
    }
}

fn reference(pressured: bool, mix: RemoteMix, seed: u64, txns: u64) -> Pushtap {
    let cfg = if pressured {
        squeezed(1, CoordinatorMode::Serial)
    } else {
        ShardConfig::small(1)
    };
    let mut reference = Pushtap::new(cfg.base).expect("build reference");
    let warehouses = reference.db().warehouses_global();
    let mut gen = reference.txn_gen(seed).with_remote_mix(mix, warehouses);
    let r = reference.run_txns(&mut gen, txns);
    assert_eq!(
        r.aborts > 0,
        pressured,
        "reference pressure mismatch ({} mix)",
        mix_name(mix)
    );
    reference.defragment_all();
    reference
}

/// The tentpole invariant under delta pressure: at 2, 4, and 8 shards,
/// under all three remote mixes, the pipelined coordinator's committed
/// bytes equal the serial coordinator's and the unpartitioned
/// reference's — with undersized arenas forcing aborts everywhere,
/// including participants voting no mid-wave.
#[test]
fn pipelined_matches_serial_and_reference_under_pressure() {
    for mix in [RemoteMix::LOCAL, RemoteMix::TPCC, RemoteMix::Uniform] {
        let reference = reference(true, mix, SEED, TXNS);
        for shards in [2u32, 4, 8] {
            let label = format!("{} mix at {shards} shards", mix_name(mix));
            let (serial, rs) =
                run_batch(squeezed(shards, CoordinatorMode::Serial), mix, SEED, TXNS);
            let (pipelined, rp) = run_batch(
                squeezed(shards, CoordinatorMode::Pipelined),
                mix,
                SEED,
                TXNS,
            );
            assert!(rs.aborts() > 0, "{label}: serial must feel the pressure");
            assert!(rp.aborts() > 0, "{label}: pipelined must feel the pressure");
            // The uniform mix at several shards forwards constantly:
            // participants must have aborted prepared scopes mid-wave.
            if mix == RemoteMix::Uniform {
                assert!(
                    rp.participant_aborts() > 0,
                    "{label}: squeezed uniform waves must abort participants"
                );
            }
            assert_services_match(&serial, &pipelined, &label);
            for (i, shard) in pipelined.shards().iter().enumerate() {
                for table in ALL_TABLES {
                    common::assert_table_bytes_match(
                        shard,
                        &reference,
                        table,
                        &format!("{label}: shard {i}"),
                    );
                }
            }
        }
    }
}

/// The same identity without delta pressure (ample arenas, no aborts
/// anywhere): waves overlap cleanly and still commit the reference's
/// exact bytes.
#[test]
fn pipelined_matches_serial_and_reference_ample() {
    for mix in [RemoteMix::TPCC, RemoteMix::Uniform] {
        let reference = reference(false, mix, SEED, TXNS);
        for shards in [4u32, 8] {
            let label = format!("ample {} mix at {shards} shards", mix_name(mix));
            let (serial, rs) = run_batch(
                ShardConfig::small(shards).with_mode(CoordinatorMode::Serial),
                mix,
                SEED,
                TXNS,
            );
            let (pipelined, rp) = run_batch(
                ShardConfig::small(shards).with_mode(CoordinatorMode::Pipelined),
                mix,
                SEED,
                TXNS,
            );
            assert_eq!(rs.aborts(), 0, "{label}: ample arenas abort-free");
            assert_eq!(rp.aborts(), 0, "{label}: ample arenas abort-free");
            assert_services_match(&serial, &pipelined, &label);
            for (i, shard) in pipelined.shards().iter().enumerate() {
                for table in ALL_TABLES {
                    common::assert_table_bytes_match(
                        shard,
                        &reference,
                        table,
                        &format!("{label}: shard {i}"),
                    );
                }
            }
        }
    }
}

/// The scheduling claims of the refactor: the pipelined coordinator
/// never barrier-flushes (the serial one does, once per cross-shard
/// transaction), overlaps a positive fraction of the 2PCs under
/// cross-shard-heavy mixes at ≥ 4 shards, and its overlapped message
/// deliveries keep the 2PC time share meaningful (≤ 1, with the
/// critical-path cost at most the sequential ledger).
#[test]
fn waves_reduce_barrier_flushes_and_overlap_two_pcs() {
    for mix in [RemoteMix::TPCC, RemoteMix::Uniform] {
        for shards in [4u32, 8] {
            let label = format!("{} mix at {shards} shards", mix_name(mix));
            let (_, rs) = run_batch(
                ShardConfig::small(shards).with_mode(CoordinatorMode::Serial),
                mix,
                SEED,
                TXNS,
            );
            let (_, rp) = run_batch(
                ShardConfig::small(shards).with_mode(CoordinatorMode::Pipelined),
                mix,
                SEED,
                TXNS,
            );
            // Same stream, same routing.
            assert_eq!(rs.remote.cross_shard_txns, rp.remote.cross_shard_txns);
            assert!(rs.remote.cross_shard_txns > 0, "{label}: stream must cross");
            // Serial flushes once per cross-shard txn; waves never flush.
            assert_eq!(rs.coord.barrier_flushes, rs.remote.cross_shard_txns);
            assert_eq!(rp.coord.barrier_flushes, 0, "{label}: waves never flush");
            assert!(
                rp.coord.barrier_flushes < rs.coord.barrier_flushes,
                "{label}: flushes must strictly reduce"
            );
            // Waves exist and overlap 2PCs.
            assert!(rp.coord.waves > 0, "{label}: no waves scheduled");
            assert!(
                rp.coord.waves < TXNS,
                "{label}: the schedule must beat fully-serial"
            );
            assert!(rp.coord.max_wave > 1, "{label}: no wave held >1 txn");
            assert!(rp.overlap_ratio() > 0.0, "{label}: zero 2PC overlap");
            assert_eq!(rs.overlap_ratio(), 0.0, "serial never overlaps");
            // The message-round ledger is schedule-independent, but the
            // latency that lands on the clocks shrinks under overlap.
            assert_eq!(rs.commit_rounds(), rp.commit_rounds(), "{label}");
            assert_eq!(rs.two_pc_time(), rp.two_pc_time(), "{label}");
            assert!(
                rp.critical_path_time() < rs.critical_path_time(),
                "{label}: overlapped deliveries must cost less clock"
            );
            assert!(rs.two_pc_time_share() <= 1.0 && rp.two_pc_time_share() <= 1.0);
            assert!(
                rp.two_pc_time_share() < rs.two_pc_time_share(),
                "{label}: 2PC share must drop under overlap"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Byte identity over arbitrary arena sizes, stream lengths, seeds,
    /// and remote mixes: wherever `DeltaFull` strikes — a local wave
    /// item, the home half, or a forwarded participant mid-wave — the
    /// pipelined deployment ends byte-identical to the serial one and
    /// to an unpartitioned reference under the same pressure, with zero
    /// prepared versions and zero leaked delta slots after every batch.
    #[test]
    fn pipelined_commits_reference_bytes_under_any_pressure(
        frac in 0.02f64..0.03,
        min_delta in 2u64..=3,
        txns in 40u64..=80,
        seed in 1u64..=1000,
        mix_pick in 0u8..3,
        shard_pick in 0u8..2,
    ) {
        let mix = match mix_pick {
            0 => RemoteMix::LOCAL,
            1 => RemoteMix::TPCC,
            _ => RemoteMix::Uniform,
        };
        let shards = if shard_pick == 0 { 2 } else { 4 };
        let min_rows = min_delta * 8;
        let squeeze = |mode| {
            let mut cfg = ShardConfig::small(shards).with_mode(mode);
            cfg.base.db.delta_frac = frac;
            cfg.base.db.min_delta_rows = min_rows;
            cfg
        };

        let mut reference = {
            let mut cfg = ShardConfig::small(1);
            cfg.base.db.delta_frac = frac;
            cfg.base.db.min_delta_rows = min_rows;
            Pushtap::new(cfg.base).expect("build reference")
        };
        let warehouses = reference.db().warehouses_global();
        let mut rgen = reference.txn_gen(seed).with_remote_mix(mix, warehouses);
        reference.run_txns(&mut rgen, txns);
        reference.defragment_all();

        let (serial, rs) = run_batch(squeeze(CoordinatorMode::Serial), mix, seed, txns);
        let (pipelined, rp) = run_batch(squeeze(CoordinatorMode::Pipelined), mix, seed, txns);
        prop_assert!(rs.aborts() > 0, "arenas this small must abort");
        prop_assert!(rp.aborts() > 0, "arenas this small must abort");
        assert_services_match(&serial, &pipelined, "proptest serial-vs-pipelined");
        for (i, shard) in pipelined.shards().iter().enumerate() {
            for table in ALL_TABLES {
                common::assert_table_bytes_match(
                    shard,
                    &reference,
                    table,
                    &format!("proptest shard {i}"),
                );
            }
        }
    }
}
