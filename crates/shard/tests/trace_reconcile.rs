//! Observability acceptance: tracing is a *read-only* lens. A traced
//! batch commits byte-identical state to an untraced one (serial and
//! pipelined alike), and the emitted spans and histograms reconcile
//! exactly with the coordinator's own counters — span counts are not
//! decorative, they are the same events the reports count, seen from
//! the timeline side.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use pushtap_chbench::{RemoteMix, ALL_TABLES};
use pushtap_format::RowSlot;
use pushtap_shard::{
    ArrivalConfig, ArrivalGen, CoordinatorMode, CrashPoint, CrashSite, OpenLoopConfig,
    OpenLoopReport, ShardConfig, ShardOltpReport, ShardedHtap, WalHandles,
};
use pushtap_trace::{two_pc_overlap_peak, MemSink, Phase, Span};

mod common;

const SEED: u64 = 2025;
const TXNS: u64 = 120;
const SHARDS: u32 = 4;

/// Arenas squeezed as in `tests/delta_pressure.rs`, so the abort and
/// retry span paths are exercised, not just the happy path.
fn squeezed(mode: CoordinatorMode) -> ShardConfig {
    let mut cfg = ShardConfig::small(SHARDS).with_mode(mode);
    cfg.base.db.delta_frac = 0.06;
    cfg.base.db.min_delta_rows = 8;
    cfg
}

/// Runs one uniform-mix batch, optionally traced, and defragments so
/// committed bytes are comparable.
fn run(mode: CoordinatorMode, traced: bool) -> (ShardedHtap, ShardOltpReport, Vec<Span>) {
    let mut service = ShardedHtap::new(squeezed(mode)).expect("build shards");
    let san = common::maybe_sanitize(&mut service);
    let sink = Arc::new(MemSink::default());
    if traced {
        service.set_trace_sink(sink.clone());
    }
    let warehouses = service.map().warehouses();
    let mut gen = service
        .global_txn_gen(SEED)
        .with_remote_mix(RemoteMix::Uniform, warehouses);
    let report = service.run_txns(&mut gen, TXNS);
    assert_eq!(report.committed(), TXNS);
    common::assert_sanitized_clean(&san, "traced batch");
    service.defragment_all();
    (service, report, sink.take())
}

/// [`run`] with the effect WAL enabled (always traced): every prepare
/// appends a record and every wave/bucket ends in one group-commit
/// force barrier, charged at `ShardConfig::small`'s force latency.
fn run_wal(mode: CoordinatorMode) -> (ShardedHtap, ShardOltpReport, Vec<Span>, WalHandles) {
    let mut service = ShardedHtap::new(squeezed(mode)).expect("build shards");
    let san = common::maybe_sanitize(&mut service);
    let handles = service.enable_wal();
    let sink = Arc::new(MemSink::default());
    service.set_trace_sink(sink.clone());
    let warehouses = service.map().warehouses();
    let mut gen = service
        .global_txn_gen(SEED)
        .with_remote_mix(RemoteMix::Uniform, warehouses);
    let report = service.run_txns(&mut gen, TXNS);
    assert_eq!(report.committed(), TXNS);
    common::assert_sanitized_clean(&san, "walled traced batch");
    service.defragment_all();
    (service, report, sink.take(), handles)
}

fn count(spans: &[Span], phase: Phase) -> u64 {
    spans.iter().filter(|s| s.phase == phase).count() as u64
}

/// Byte-compares every table of every shard between two deployments.
fn assert_services_match(a: &ShardedHtap, b: &ShardedHtap, label: &str) {
    assert_eq!(a.shard_count(), b.shard_count());
    for i in 0..a.shard_count() {
        let da = a.shard(i).db();
        let db = b.shard(i).db();
        assert_eq!(da.last_ts(), db.last_ts(), "{label}: shard {i} watermark");
        for table in ALL_TABLES {
            let ta = da.table(table);
            let tb = db.table(table);
            assert_eq!(ta.n_rows(), tb.n_rows());
            for row in 0..ta.n_rows() {
                assert_eq!(
                    ta.store().read_row(RowSlot::Data { row }),
                    tb.store().read_row(RowSlot::Data { row }),
                    "{label}: shard {i} {table:?} row {row} diverged"
                );
            }
        }
    }
}

/// The histogram/counter invariants shared by both coordinator modes.
fn assert_report_reconciles(report: &ShardOltpReport, spans: &[Span], label: &str) {
    // One commit-latency sample per committed transaction.
    assert_eq!(
        report.commit_latency().count(),
        report.committed(),
        "{label}: commit-latency samples"
    );
    // One 2PC-stall sample per counted message round. Message rounds
    // and group-commit force barriers are the *only* two charges to the
    // critical path, so the stall sum plus the force time reproduce it
    // exactly (the force term is zero whenever the WAL is off).
    let stall = report.two_pc_stall();
    assert_eq!(
        stall.count(),
        report.commit_rounds(),
        "{label}: stall samples"
    );
    assert_eq!(
        stall.sum() + u128::from(report.wal_force_time().ps()),
        u128::from(report.critical_path_time().ps()),
        "{label}: stall sum + force time vs critical path"
    );
    // One defrag-stall sample per counted pass.
    let passes: u64 = report
        .per_shard
        .iter()
        .map(|s| s.report.defrag_passes)
        .sum();
    assert_eq!(
        report.defrag_stall().count(),
        passes,
        "{label}: defrag samples"
    );
    // Garbage collection reconciles on both axes. One GcPass interval
    // per *reclaiming* pass (empty passes cost nothing and emit
    // nothing), and the gc-stall histogram's total is exactly the GC
    // time the reports charged — a sample covers every pass one
    // execute call absorbed, so its count bounds the pass count from
    // below without ever exceeding it.
    let gc = report.gc();
    assert!(
        gc.passes > 0,
        "{label}: squeezed arenas must garbage-collect"
    );
    assert_eq!(
        count(spans, Phase::GcPass),
        gc.passes,
        "{label}: gc pass intervals"
    );
    let gc_stall = report.gc_stall();
    assert!(gc_stall.count() > 0 && gc_stall.count() <= gc.passes);
    assert_eq!(
        gc_stall.sum(),
        u128::from(report.gc_time().ps()),
        "{label}: gc stall sum vs charged gc time"
    );
    for s in spans.iter().filter(|s| s.phase == Phase::GcPass) {
        assert!(s.track < SHARDS, "{label}: gc runs on a shard track");
        assert!(s.end > s.start, "{label}: a reclaiming pass takes time");
        assert_eq!(s.wave, 0, "{label}: gc runs outside wave execution");
    }
    // Every abort the report counts appears on the timeline: a failed
    // prepare (PrepareAbort span) or a coordinator abort decision
    // (Abort instant).
    assert!(report.aborts() > 0, "{label}: squeezed arenas must abort");
    assert_eq!(
        count(spans, Phase::PrepareAbort) + count(spans, Phase::Abort),
        report.aborts(),
        "{label}: abort events"
    );
    // Every routed transaction was marked at ingestion, and every
    // commit decision (home and participant halves) left an instant.
    assert_eq!(count(spans, Phase::Routed), TXNS, "{label}: routed markers");
    assert!(count(spans, Phase::Commit) >= report.committed());
    // A retry instant only ever follows an abort of the *same*
    // transaction (pinned timestamps make the identity exact), and the
    // squeezed arenas guarantee the retry path ran at all.
    let aborted_ts: BTreeSet<u64> = spans
        .iter()
        .filter(|s| s.phase == Phase::PrepareAbort || s.phase == Phase::Abort)
        .map(|s| s.txn)
        .collect();
    let committed_ts: BTreeSet<u64> = spans
        .iter()
        .filter(|s| s.phase == Phase::Commit)
        .map(|s| s.txn)
        .collect();
    let retried_ts: BTreeSet<u64> = spans
        .iter()
        .filter(|s| s.phase == Phase::Retry)
        .map(|s| s.txn)
        .collect();
    for ts in &retried_ts {
        assert!(
            aborted_ts.contains(ts),
            "{label}: retry of {ts} without an abort"
        );
        assert!(
            committed_ts.contains(ts),
            "{label}: retry of {ts} never committed"
        );
    }
    // Vote-barrier waits belong to cross-shard two-phase commits only,
    // and every routed cross-shard transaction crossed the barrier at
    // least once (its final, committing attempt).
    assert!(
        report.remote.cross_shard_txns > 0,
        "{label}: mix routes remotes"
    );
    let two_pc_ts: BTreeSet<u64> = spans
        .iter()
        .filter(|s| s.phase == Phase::TwoPc)
        .map(|s| s.txn)
        .collect();
    for s in spans.iter().filter(|s| s.phase == Phase::VoteBarrier) {
        assert!(
            two_pc_ts.contains(&s.txn),
            "{label}: vote barrier on non-2PC txn {}",
            s.txn
        );
    }
    assert!(
        count(spans, Phase::VoteBarrier) >= report.remote.cross_shard_txns,
        "{label}: every cross-shard txn waits out a vote round-trip"
    );
    // A participant's decision wait is not separately instrumented:
    // decision delivery is charged inside the home shard's vote
    // barrier, so no `Decide` interval may appear. (Adding the span
    // must come with its reconciliation here.)
    assert_eq!(count(spans, Phase::Decide), 0, "{label}: decide spans");
    // One defrag-stall interval per counted mid-batch pass, plus the
    // one pass per shard the harness runs after the batch to make
    // committed bytes comparable.
    let passes: u64 = report
        .per_shard
        .iter()
        .map(|s| s.report.defrag_passes)
        .sum();
    assert_eq!(
        count(spans, Phase::DefragStall),
        passes + u64::from(SHARDS),
        "{label}: defrag stall intervals"
    );
}

#[test]
fn serial_trace_reconciles_with_counters() {
    let (_, report, spans) = run(CoordinatorMode::Serial, true);
    assert_report_reconciles(&report, &spans, "serial");
    // One barrier instant per barrier flush.
    assert!(report.coord.barrier_flushes > 0);
    assert_eq!(count(&spans, Phase::Barrier), report.coord.barrier_flushes);
    // The serial queues attribute a wait to every warehouse-local
    // transaction (cross-shard ones never queue).
    let local_txns = TXNS - report.remote.cross_shard_txns;
    assert_eq!(report.queue_wait().count(), local_txns);
    // Queued intervals are the nonzero waits of that histogram: at most
    // one per local transaction, every one strictly positive, and their
    // durations sum to exactly the histogram's total — zero-wait
    // transactions contribute zero on both sides.
    assert!(count(&spans, Phase::Queued) <= local_txns);
    assert!(count(&spans, Phase::Queued) > 0, "serial queues must wait");
    let queued: u128 = spans
        .iter()
        .filter(|s| s.phase == Phase::Queued)
        .map(|s| {
            assert!(s.end > s.start, "a queued interval is never empty");
            u128::from(s.end - s.start)
        })
        .sum();
    assert_eq!(
        queued,
        report.queue_wait().sum(),
        "queued time vs histogram"
    );
    // Serial 2PCs run alone: every TwoPc span sits on wave 0, so the
    // overlap scan (which ignores wave 0) finds nothing.
    assert!(spans
        .iter()
        .filter(|s| s.phase == Phase::TwoPc)
        .all(|s| s.wave == 0));
    assert_eq!(two_pc_overlap_peak(&spans).1, 0);
    // No wave machinery under the serial oracle.
    assert_eq!(count(&spans, Phase::WavePrepare), 0);
    assert_eq!(count(&spans, Phase::WaveDecide), 0);
}

#[test]
fn pipelined_trace_reconciles_with_counters() {
    let (_, report, spans) = run(CoordinatorMode::Pipelined, true);
    assert_report_reconciles(&report, &spans, "pipelined");
    // Every scheduled wave shows up: the distinct wave ids on the
    // phase-interval spans are exactly 1..=waves.
    let wave_ids: BTreeSet<u64> = spans
        .iter()
        .filter(|s| s.phase == Phase::WavePrepare)
        .map(|s| s.wave)
        .collect();
    assert_eq!(wave_ids.len() as u64, report.coord.waves);
    assert_eq!(wave_ids.iter().copied().max(), Some(report.coord.waves));
    // The overlap statistic recomputed from the timeline: a wave with
    // k ≥ 2 distinct cross-shard 2PCs contributes all k.
    let mut per_wave: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    for s in spans
        .iter()
        .filter(|s| s.phase == Phase::TwoPc && s.wave > 0)
    {
        per_wave.entry(s.wave).or_default().insert(s.txn);
    }
    let overlapped: u64 = per_wave
        .values()
        .map(|txns| txns.len() as u64)
        .filter(|&k| k >= 2)
        .sum();
    assert_eq!(overlapped, report.coord.overlapped_two_pcs);
    // And the spans genuinely overlap in time: the busiest wave holds
    // at least two 2PCs open concurrently (the pipelining claim, read
    // off the timeline rather than the counters).
    let (wave, peak) = two_pc_overlap_peak(&spans);
    assert!(wave > 0);
    assert!(peak >= 2, "peak concurrent 2PCs {peak} in wave {wave}");
    // Queues are subsumed by waves.
    assert_eq!(report.queue_wait().count(), 0);
    assert_eq!(count(&spans, Phase::Queued), 0);
    assert_eq!(count(&spans, Phase::Barrier), 0);
}

#[test]
fn wal_trace_reconciles_with_durability_counters() {
    for mode in [CoordinatorMode::Serial, CoordinatorMode::Pipelined] {
        let label = match mode {
            CoordinatorMode::Serial => "wal serial",
            CoordinatorMode::Pipelined => "wal pipelined",
        };
        let (walled, wr, spans, handles) = run_wal(mode);
        // The shared invariants hold with the WAL's force time now a
        // nonzero term of the critical-path identity.
        assert_report_reconciles(&wr, &spans, label);
        assert!(wr.wal_force_time().ps() > 0, "{label}: forces charged");
        // Every effect-record append left a WalAppend instant, and
        // every group-commit barrier a GroupCommit interval whose
        // duration is exactly the force latency it charged.
        assert!(wr.wal_appends() >= wr.committed(), "{label}: appends");
        assert_eq!(
            count(&spans, Phase::WalAppend),
            wr.wal_appends(),
            "{label}: append instants"
        );
        assert!(wr.wal_forces() > 0, "{label}: forces");
        assert_eq!(
            count(&spans, Phase::GroupCommit),
            wr.wal_forces(),
            "{label}: force intervals"
        );
        let forced: u128 = spans
            .iter()
            .filter(|s| s.phase == Phase::GroupCommit)
            .map(|s| u128::from(s.end - s.start))
            .sum();
        assert_eq!(
            forced,
            u128::from(wr.wal_force_time().ps()),
            "{label}: force interval durations vs charged force time"
        );
        // The coordinator durably decided every cross-shard commit
        // (presumed abort: no decision record, no commit), syncing the
        // decision log at least once but at most once per decision.
        assert!(wr.coord.decision_appends > 0, "{label}: decisions");
        assert!(wr.coord.decision_forces > 0, "{label}: decision syncs");
        assert!(
            wr.coord.decision_forces <= wr.coord.decision_appends,
            "{label}: decision syncs amortize, never multiply"
        );
        // Logging changes *time* (the barriers are on the critical
        // path) but never a committed byte: state, commits, aborts all
        // match the unlogged run, and the logs themselves are nonempty.
        let (plain, pr, _) = run(mode, false);
        assert_services_match(&walled, &plain, label);
        assert_eq!(wr.committed(), pr.committed(), "{label}: commits");
        assert_eq!(wr.aborts(), pr.aborts(), "{label}: aborts");
        assert!(
            wr.makespan() > pr.makespan(),
            "{label}: force barriers cost simulated time"
        );
        let image = handles.harvest();
        assert!(image.shards.iter().any(|s| !s.is_empty()));
        assert!(!image.decisions.is_empty());
    }
    // Group commit's acceptance number, measured on ample arenas (the
    // squeezed config's delta-pressure retries pay per-retry barriers
    // in both modes, drowning the scheduling difference): one barrier
    // amortized across a whole pipelined wave keeps durable syncs per
    // committed transaction below one, where the serial coordinator's
    // bucket-at-a-time cadence pays several.
    let fsync = |mode: CoordinatorMode| {
        let mut service =
            ShardedHtap::new(ShardConfig::small(SHARDS).with_mode(mode)).expect("build shards");
        let _handles = service.enable_wal();
        let warehouses = service.map().warehouses();
        let mut gen = service
            .global_txn_gen(SEED)
            .with_remote_mix(RemoteMix::Uniform, warehouses);
        let report = service.run_txns(&mut gen, TXNS);
        assert_eq!(report.committed(), TXNS);
        report.fsync_per_txn()
    };
    let serial = fsync(CoordinatorMode::Serial);
    let pipelined = fsync(CoordinatorMode::Pipelined);
    assert!(
        pipelined < 1.0,
        "pipelined fsync/txn {pipelined:.3} must stay below 1"
    );
    assert!(
        pipelined < serial,
        "waves must amortize better than serial buckets ({pipelined:.3} vs {serial:.3})"
    );
}

#[test]
fn recovery_spans_land_on_replaying_shards() {
    // Crash a logged pipelined batch mid-flight, recover with a sink
    // installed, and check the replay shows up on the timeline: one
    // Recovery interval per shard that actually replayed records, on
    // that shard's own track.
    let cfg = squeezed(CoordinatorMode::Pipelined);
    let mut service = ShardedHtap::new(cfg.clone()).expect("build shards");
    let handles = service.enable_wal();
    service.arm_crash(CrashPoint {
        site: CrashSite::AfterDecision,
        event: 3,
    });
    let warehouses = service.map().warehouses();
    let mut gen = service
        .global_txn_gen(SEED)
        .with_remote_mix(RemoteMix::Uniform, warehouses);
    let _ = service.run_txns(&mut gen, TXNS);
    assert!(service.crashed(), "the armed crash must fire mid-batch");
    let image = handles.harvest();
    drop(service);

    let sink = Arc::new(MemSink::default());
    let (recovered, rec) = ShardedHtap::recover_traced(cfg, &image, sink.clone()).expect("recover");
    let spans = sink.take();
    let replaying = rec.per_shard.iter().filter(|s| s.replayed > 0).count() as u64;
    assert!(replaying > 0, "a crash after 3 waves leaves work to replay");
    assert_eq!(
        count(&spans, Phase::Recovery),
        replaying,
        "one recovery interval per replaying shard"
    );
    let tracks: BTreeSet<u32> = spans
        .iter()
        .filter(|s| s.phase == Phase::Recovery)
        .map(|s| s.track)
        .collect();
    assert_eq!(tracks.len() as u64, replaying, "distinct per-shard tracks");
    for s in spans.iter().filter(|s| s.phase == Phase::Recovery) {
        assert!(s.track < SHARDS);
        assert!(s.end >= s.start);
        assert_eq!(s.txn, 0, "recovery spans are not tied to one txn");
        assert_eq!(s.wave, 0, "recovery runs outside wave execution");
    }
    drop(recovered);
}

/// The open-loop front-end's timeline reconciles with its queueing
/// counters: one `Rejected` instant per counted rejection, `Routed`
/// instants mark admissions only, and the `Queued` intervals are
/// exactly the nonzero samples of the queue-wait histogram — while the
/// vote-barrier stall identities survive the laggard decision model.
#[test]
fn open_loop_trace_reconciles_with_queue_counters() {
    let run = |traced: bool| -> (ShardedHtap, OpenLoopReport, Vec<Span>) {
        let cfg = ShardConfig::small(SHARDS).with_mode(CoordinatorMode::Pipelined);
        let mut service = ShardedHtap::new(cfg).expect("build shards");
        let san = common::maybe_sanitize(&mut service);
        let sink = Arc::new(MemSink::default());
        if traced {
            service.set_trace_sink(sink.clone());
        }
        let warehouses = service.map().warehouses();
        let mut gen = service
            .global_txn_gen(SEED)
            .with_remote_mix(RemoteMix::TPCC, warehouses);
        // Overload: arrivals far outpace service through a shallow
        // inbox, so both the rejection and the queue-wait paths fire.
        let mut arr = ArrivalGen::new(7, ArrivalConfig::poisson(160_000_000.0));
        let report = service.run_open_loop(&mut gen, &mut arr, TXNS, &OpenLoopConfig::new(4, 8));
        common::assert_sanitized_clean(&san, "open loop");
        service.defragment_all();
        (service, report, sink.take())
    };
    let (service, report, spans) = run(true);
    assert!(report.rejected() > 0, "overload must reject");
    assert!(report.admitted() > 0, "overload must still admit");
    // Every rejection left a counted instant on its home shard's track;
    // a rejected arrival never drew a timestamp.
    assert_eq!(count(&spans, Phase::Rejected), report.rejected());
    for s in spans.iter().filter(|s| s.phase == Phase::Rejected) {
        assert!(s.track < SHARDS, "rejections land on shard tracks");
        assert_eq!(s.end, s.start, "rejections are instants");
        assert_eq!(s.txn, 0, "a rejected arrival has no timestamp");
    }
    // Ingestion markers belong to admitted transactions only.
    assert_eq!(count(&spans, Phase::Routed), report.admitted());
    // One queue-wait sample per admitted transaction; the Queued
    // intervals are that histogram's nonzero waits and their durations
    // sum to exactly its total.
    let qw = report.exec.queue_wait();
    assert_eq!(qw.count(), report.admitted(), "queue-wait samples");
    assert!(count(&spans, Phase::Queued) > 0, "overload must queue");
    assert!(count(&spans, Phase::Queued) <= report.admitted());
    let queued: u128 = spans
        .iter()
        .filter(|s| s.phase == Phase::Queued)
        .map(|s| {
            assert!(s.end > s.start, "a queued interval is never empty");
            u128::from(s.end - s.start)
        })
        .sum();
    assert_eq!(queued, qw.sum(), "queued time vs histogram");
    // Sojourn covers every admitted transaction and dominates its own
    // queueing component.
    assert_eq!(report.sojourn.count(), report.admitted());
    assert!(report.sojourn.sum() >= qw.sum());
    // The critical-path identities survive the laggard vote-barrier
    // model: one stall sample per counted message round, and stalls
    // plus force barriers (zero here — no WAL) reproduce the critical
    // path exactly.
    let stall = report.exec.two_pc_stall();
    assert_eq!(stall.count(), report.exec.commit_rounds(), "stall samples");
    assert_eq!(
        stall.sum() + u128::from(report.exec.wal_force_time().ps()),
        u128::from(report.exec.critical_path_time().ps()),
        "stall sum + force time vs critical path"
    );
    // Tracing stays a read-only lens on the open loop too.
    let (untraced, ur, none) = run(false);
    assert!(none.is_empty(), "disabled sink must stay empty");
    assert_eq!(report.committed_ts, ur.committed_ts);
    assert_eq!(report.rejected_per_shard, ur.rejected_per_shard);
    assert_services_match(&service, &untraced, "open loop traced vs untraced");
}

#[test]
fn tracing_changes_no_committed_byte() {
    // The sink sees every lifecycle event, yet committed state and the
    // report counters are identical to an untraced run — for both
    // coordinators, under delta pressure.
    for mode in [CoordinatorMode::Serial, CoordinatorMode::Pipelined] {
        let (traced, tr, spans) = run(mode, true);
        let (untraced, ur, none) = run(mode, false);
        assert!(!spans.is_empty());
        assert!(none.is_empty(), "disabled sink must stay empty");
        assert_services_match(&traced, &untraced, "traced vs untraced");
        assert_eq!(tr.committed(), ur.committed());
        assert_eq!(tr.aborts(), ur.aborts());
        assert_eq!(tr.commit_rounds(), ur.commit_rounds());
        assert_eq!(tr.makespan(), ur.makespan());
        assert_eq!(
            tr.commit_latency().stats(),
            ur.commit_latency().stats(),
            "histograms are recorded unconditionally — sink on or off"
        );
    }
}
