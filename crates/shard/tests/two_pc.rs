//! Participant-abort coverage for the two-phase commit path: when a
//! *remote* participant's delta arena fills while it prepares a
//! forwarded effect set, the coordinator must abort the transaction on
//! every involved shard, defragment the voter, and retry under the same
//! pinned timestamp — leaving zero leaked delta slots, zero
//! prepared-but-uncommitted versions, and committed bytes identical to
//! the unpartitioned reference on every shard.

mod common;

use proptest::prelude::*;
use pushtap_chbench::ALL_TABLES;
use pushtap_core::Pushtap;
use pushtap_pim::Ps;
use pushtap_shard::{ShardConfig, ShardedHtap};

const SEED: u64 = 9;
const TXNS: u64 = 120;

/// Arenas squeezed so every transaction class keeps hitting `DeltaFull`
/// (same calibration as `tests/delta_pressure.rs`).
fn squeezed_cfg(shards: u32, delta_frac: f64, min_delta_rows: u64) -> ShardConfig {
    let mut cfg = ShardConfig::small(shards);
    cfg.base.db.delta_frac = delta_frac;
    cfg.base.db.min_delta_rows = min_delta_rows;
    cfg
}

/// Byte-compares every table of every shard against the rows of the
/// unpartitioned reference that the shard holds (both sides
/// defragmented by the caller).
fn assert_shards_match_reference(service: &ShardedHtap, reference: &Pushtap, label: &str) {
    for (i, shard) in service.shards().iter().enumerate() {
        for table in ALL_TABLES {
            common::assert_table_bytes_match(
                shard,
                reference,
                table,
                &format!("{label}: shard {i}"),
            );
        }
    }
}

/// The deterministic participant-abort scenario: the uniform mix at 4
/// shards forwards ~3/4 of customer/stock writes, and the arena sizing
/// (two-slot hot arenas, so home transactions defragment *less* often
/// and forwarded writes accumulate in the customer/stock arenas)
/// guarantees some forwarded prepares hit `DeltaFull` on the
/// participant — a coordinator-side global abort and retry. After the
/// batch: clean state everywhere, byte-identical to the reference.
#[test]
fn participant_delta_full_aborts_globally_and_retries_clean() {
    let mut reference = Pushtap::new(squeezed_cfg(1, 0.02, 16).base).expect("build reference");
    let mut rgen = reference.txn_gen(SEED);
    reference.run_txns(&mut rgen, TXNS);
    reference.defragment_all();

    let mut service = ShardedHtap::new(squeezed_cfg(4, 0.02, 16)).expect("build shards");
    let mut gen = service.global_txn_gen(SEED);
    let report = service.run_txns(&mut gen, TXNS);
    assert_eq!(report.committed(), TXNS);
    assert!(
        report.participant_aborts() > 0,
        "squeezed arenas under the uniform mix must abort prepared scopes"
    );
    assert!(report.aborts() > report.participant_aborts());
    assert!(report.wasted_retry_time() > Ps::ZERO);
    // The report captures every wasted attempt — including the latency
    // of prepared scopes the coordinator aborted — so it reconciles
    // exactly with the engines' own counters.
    let engine_wasted: Ps = service
        .shards()
        .iter()
        .map(|s| s.db().wasted_retry_time())
        .sum();
    assert_eq!(
        report.wasted_retry_time(),
        engine_wasted,
        "per-shard reports must account coordinator-aborted prepare latency"
    );

    // No prepared scope or undecided version survives the batch…
    for (i, shard) in service.shards().iter().enumerate() {
        assert!(!shard.db().in_prepared_txn(), "shard {i} holds a scope");
        assert_eq!(shard.db().prepared_versions(), 0, "shard {i} prepared");
    }
    // …defragmentation reclaims every slot (aborted prepares leaked
    // nothing)…
    service.defragment_all();
    for (i, shard) in service.shards().iter().enumerate() {
        assert_eq!(shard.db().live_delta_rows(), 0, "shard {i} leaked slots");
    }
    // …and the committed bytes equal the unpartitioned reference's.
    assert_shards_match_reference(&service, &reference, "deterministic");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Coordinator-side retry invariance over arbitrary arena sizes and
    /// streams: wherever `DeltaFull` strikes — home shard mid-prepare,
    /// remote participant mid-prepare, or a local transaction — the
    /// retried deployment ends with zero leaked delta slots, zero
    /// prepared-but-uncommitted versions, and state byte-identical to
    /// an unpartitioned reference under the *same* delta pressure.
    #[test]
    fn retry_leaves_clean_identical_state(
        frac in 0.02f64..0.03,
        min_delta in 2u64..=3,
        txns in 40u64..=90,
        seed in 1u64..=1000,
    ) {
        let min_rows = min_delta * 8;
        let mut reference =
            Pushtap::new(squeezed_cfg(1, frac, min_rows).base).expect("build reference");
        let mut rgen = reference.txn_gen(seed);
        reference.run_txns(&mut rgen, txns);
        reference.defragment_all();

        let mut service = ShardedHtap::new(squeezed_cfg(2, frac, min_rows)).expect("build");
        let mut gen = service.global_txn_gen(seed);
        let report = service.run_txns(&mut gen, txns);
        prop_assert_eq!(report.committed(), txns);
        prop_assert!(report.aborts() > 0, "arenas this small must abort");

        for (i, shard) in service.shards().iter().enumerate() {
            prop_assert!(!shard.db().in_prepared_txn(), "shard {} holds a scope", i);
            prop_assert_eq!(shard.db().prepared_versions(), 0, "shard {} prepared", i);
        }
        service.defragment_all();
        for (i, shard) in service.shards().iter().enumerate() {
            prop_assert_eq!(shard.db().live_delta_rows(), 0, "shard {} leaked", i);
        }
        assert_shards_match_reference(&service, &reference, "proptest");
    }
}
