//! The durability acceptance property: kill the deployment at *any*
//! point of the commit protocol, recover from nothing but the forced
//! log bytes, and the recovered committed state is **byte-identical**
//! to an untouched reference that executed exactly the recovered
//! committed transactions — at every shard count, under both
//! coordinator modes, with and without delta pressure.
//!
//! The deterministic matrix enumerates every [`CrashSite`] against both
//! coordinator modes; the proptest then draws arbitrary kill points
//! (site × event × seed × mix × shards × pressure) and re-proves the
//! identity. Both also check the recovery hygiene obligations: no
//! prepared scope, no prepared versions, no leaked delta slots, a
//! watermark past every durable timestamp, and a recovered deployment
//! that keeps accepting batches.

mod common;

use proptest::prelude::*;
use pushtap_chbench::{RemoteMix, ALL_TABLES};
use pushtap_shard::{
    CoordinatorMode, CrashPoint, CrashSite, RecoveryReport, ShardConfig, ShardedHtap,
};

const SEED: u64 = 2025;
const TXNS: u64 = 64;

/// Arena knobs from `tests/delta_pressure.rs`: every transaction class
/// aborts at least once, so crash points land amid `DeltaFull` retries.
fn squeezed(shards: u32, mode: CoordinatorMode) -> ShardConfig {
    let mut cfg = ShardConfig::small(shards).with_mode(mode);
    cfg.base.db.delta_frac = 0.06;
    cfg.base.db.min_delta_rows = 8;
    cfg
}

fn mode_name(mode: CoordinatorMode) -> &'static str {
    match mode {
        CoordinatorMode::Serial => "serial",
        CoordinatorMode::Pipelined => "pipelined",
    }
}

/// Runs one armed batch to its crash (or completion), kills the
/// service, recovers a fresh deployment from the harvested bytes, and
/// proves the full obligation set: scan hygiene (every valid record
/// either replays or is presumed-abort skipped — never half-applied),
/// no prepared scopes / versions / leaked slots, byte identity of all
/// tables on all shards against an unpartitioned reference holding
/// exactly the recovered committed set, a watermark past every
/// committed timestamp, and a post-recovery batch that commits.
///
/// Returns the recovery report and whether the armed crash fired (an
/// `event` past the batch's last wave / 2PC never fires — the batch
/// just completes, and recovery must then reproduce *all* of it).
fn crash_and_recover(
    cfg: ShardConfig,
    mix: RemoteMix,
    seed: u64,
    txns: u64,
    point: CrashPoint,
    label: &str,
) -> (RecoveryReport, bool) {
    let mut service = ShardedHtap::new(cfg.clone()).expect("build shards");
    // A crashed batch legitimately leaves prepared scopes behind (the
    // batch-end check is skipped), so an armed tracker must still be
    // violation-free across every kill point.
    let san = common::maybe_sanitize(&mut service);
    let handles = service.enable_wal();
    service.arm_crash(point);
    let warehouses = service.map().warehouses();
    let mut gen = service
        .global_txn_gen(seed)
        .with_remote_mix(mix, warehouses);
    let report = service.run_txns(&mut gen, txns);
    common::assert_sanitized_clean(&san, label);
    let crashed = service.crashed();
    assert_eq!(
        report.coord.crashed, crashed,
        "{label}: the batch report must agree with the service"
    );
    if !crashed {
        assert_eq!(
            report.committed(),
            txns,
            "{label}: an unfired crash point must not lose transactions"
        );
    }
    // The kill: drop the service. Only what the force barriers made
    // durable survives — exactly what a disk would hold.
    let image = handles.harvest();
    drop(service);

    let (mut recovered, rec) = ShardedHtap::recover(cfg, &image).expect("recover");
    assert!(!recovered.crashed(), "{label}: recovery starts fresh");
    for (i, s) in rec.per_shard.iter().enumerate() {
        assert_eq!(
            s.replayed + s.skipped + s.duplicates,
            s.records,
            "{label}: shard {i} scan handed out a partial record"
        );
    }
    if !crashed {
        assert_eq!(
            rec.committed.len() as u64,
            txns,
            "{label}: a completed batch must recover in full"
        );
    }
    for (i, shard) in recovered.shards().iter().enumerate() {
        assert!(
            !shard.db().in_prepared_txn(),
            "{label}: shard {i} holds a scope after recovery"
        );
        assert_eq!(
            shard.db().prepared_versions(),
            0,
            "{label}: shard {i} leaked prepared versions"
        );
    }
    recovered.defragment_all();
    for (i, shard) in recovered.shards().iter().enumerate() {
        assert_eq!(
            shard.db().live_delta_rows(),
            0,
            "{label}: shard {i} leaked delta slots"
        );
    }
    if let Some(&max) = rec.committed.last() {
        assert!(
            rec.watermark >= max,
            "{label}: watermark must clear every committed timestamp"
        );
    }

    // The identity: the recovered bytes equal an untouched reference
    // executing exactly the recovered committed stream.
    let reference = common::reference_holding(recovered.cfg(), mix, seed, txns, &rec.committed);
    for (i, shard) in recovered.shards().iter().enumerate() {
        for table in ALL_TABLES {
            common::assert_table_bytes_match(
                shard,
                &reference,
                table,
                &format!("{label}: shard {i}"),
            );
        }
    }

    // Liveness: the recovered deployment accepts fresh batches with
    // fresh timestamps (the advanced watermark makes the pins unique).
    let post_san = common::maybe_sanitize(&mut recovered);
    let mut gen = recovered
        .global_txn_gen(seed ^ 0x5eed)
        .with_remote_mix(mix, warehouses);
    let post = recovered.run_txns(&mut gen, 16);
    assert_eq!(
        post.committed(),
        16,
        "{label}: the recovered deployment must keep committing"
    );
    common::assert_sanitized_clean(&post_san, label);
    (rec, crashed)
}

/// The deterministic kill-point matrix: every [`CrashSite`] × both
/// coordinator modes, killed at the second wave / second cross-shard
/// two-phase commit of a cross-heavy batch. Every cell crashes, every
/// cell recovers byte-identically — and the serial cells additionally
/// pin down the decision-log shape each site must leave behind
/// (presumed abort before the decision is durable, commit after).
#[test]
fn every_site_and_mode_recovers_byte_identically() {
    for mode in [CoordinatorMode::Serial, CoordinatorMode::Pipelined] {
        for site in CrashSite::ALL {
            let label = format!("{} {site:?}", mode_name(mode));
            let point = CrashPoint { site, event: 2 };
            let cfg = ShardConfig::small(4).with_mode(mode);
            let (rec, crashed) =
                crash_and_recover(cfg, RemoteMix::Uniform, SEED, TXNS, point, &label);
            assert!(crashed, "{label}: a uniform batch has a second event");
            if mode == CoordinatorMode::Serial {
                // Serial events *are* cross-shard 2PCs, ample arenas make
                // every vote yes, and exactly one decision precedes the
                // target — so each site's durable image is fully pinned.
                match site {
                    CrashSite::BetweenVoteAndDecision => {
                        assert_eq!(rec.decisions, 1, "{label}: only the first 2PC decided");
                        assert!(
                            rec.skipped() >= 2,
                            "{label}: the undecided prepare must be presumed abort"
                        );
                    }
                    CrashSite::MidDecisionLogWrite => {
                        assert_eq!(rec.decisions, 1, "{label}: the torn entry must not count");
                        assert!(
                            rec.decision_truncated > 0,
                            "{label}: the tear must leave truncated bytes"
                        );
                        assert!(
                            rec.skipped() >= 2,
                            "{label}: a torn decision is no decision"
                        );
                    }
                    CrashSite::AfterDecision => {
                        assert_eq!(rec.decisions, 2, "{label}: both decisions durable");
                        assert_eq!(
                            rec.skipped(),
                            0,
                            "{label}: every durable prepare was decided"
                        );
                    }
                    _ => {}
                }
            }
        }
    }
}

/// A mid-flush kill at every shard count under delta pressure, both
/// modes: the torn log truncates to whole records, replay re-runs the
/// same defragment-and-retry loop live execution used, and the bytes
/// still match. (At one shard the serial coordinator has no cross-shard
/// 2PC to crash in — the batch completes and recovery reproduces it
/// whole, which the helper asserts.)
#[test]
fn mid_flush_recovers_at_every_shard_count_under_pressure() {
    for shards in [1u32, 2, 4, 8] {
        for mode in [CoordinatorMode::Serial, CoordinatorMode::Pipelined] {
            let label = format!("squeezed {} at {shards} shards", mode_name(mode));
            let point = CrashPoint {
                site: CrashSite::MidEffectFlush,
                event: 2,
            };
            crash_and_recover(
                squeezed(shards, mode),
                RemoteMix::TPCC,
                SEED,
                TXNS,
                point,
                &label,
            );
        }
    }
}

/// An `event` past the batch's last wave / 2PC never fires: the batch
/// completes, the service stays alive, and the durable image recovers
/// the *entire* committed stream.
#[test]
fn crash_past_the_batch_never_fires_and_recovers_everything() {
    for mode in [CoordinatorMode::Serial, CoordinatorMode::Pipelined] {
        let label = format!("{} past-the-end", mode_name(mode));
        let point = CrashPoint {
            site: CrashSite::AfterDecision,
            event: 1_000_000,
        };
        let cfg = ShardConfig::small(4).with_mode(mode);
        let (rec, crashed) = crash_and_recover(cfg, RemoteMix::Uniform, SEED, TXNS, point, &label);
        assert!(!crashed, "{label}: the crash must never fire");
        assert_eq!(rec.committed.len() as u64, TXNS, "{label}");
        assert_eq!(rec.skipped(), 0, "{label}: everything was decided");
    }
}

/// The checkpoint obligation: after a completed batch, compacting the
/// logs ([`ShardedHtap::checkpoint`]) must (1) actually reclaim bytes,
/// (2) leave a durable image that *alone* recovers the full committed
/// stream byte-identically (the compacted records replay through the
/// unchanged pipeline), and (3) keep the crash guarantee alive: a kill
/// in the *next* batch recovers from compacted-batch-1 + torn-batch-2
/// bytes to the same state as an untouched reference executing the
/// recovered committed stream across both batches. Both coordinator
/// modes, two shard counts.
#[test]
fn checkpoint_then_crash_recovers_byte_identically() {
    for shards in [2u32, 4] {
        for mode in [CoordinatorMode::Serial, CoordinatorMode::Pipelined] {
            let label = format!("checkpoint {} at {shards} shards", mode_name(mode));
            let cfg = ShardConfig::small(shards).with_mode(mode);
            let mut service = ShardedHtap::new(cfg.clone()).expect("build shards");
            let san = common::maybe_sanitize(&mut service);
            let handles = service.enable_wal();
            let warehouses = service.map().warehouses();
            let mut gen = service
                .global_txn_gen(SEED)
                .with_remote_mix(RemoteMix::Uniform, warehouses);
            let first = service.run_txns(&mut gen, TXNS);
            assert_eq!(first.committed(), TXNS, "{label}: batch 1 completes");

            let full = handles.harvest();
            let ckpt = service.checkpoint();
            assert_eq!(ckpt.cut.0, TXNS, "{label}: the cut is the watermark");
            assert!(
                ckpt.bytes_reclaimed() > 0,
                "{label}: a checkpoint over {TXNS} txns must reclaim bytes"
            );
            assert_eq!(
                ckpt.decisions.records_kept, 0,
                "{label}: compacted records need no decisions — the log empties"
            );
            let compacted = handles.harvest();
            let size = |img: &pushtap_shard::WalBytes| {
                img.decisions.len() + img.shards.iter().map(Vec::len).sum::<usize>()
            };
            assert!(
                size(&compacted) < size(&full),
                "{label}: the durable image must shrink"
            );

            // Obligation (2): the compacted image alone replays batch 1
            // in full, byte-identically, with nothing presumed-abort.
            let (mut ck, ckrec) =
                ShardedHtap::recover(cfg.clone(), &compacted).expect("recover from checkpoint");
            assert_eq!(
                ckrec.committed.len() as u64,
                TXNS,
                "{label}: every committed txn survives compaction"
            );
            assert_eq!(
                ckrec.skipped(),
                0,
                "{label}: compacted records are decision-free"
            );
            ck.defragment_all();
            let reference = common::reference_holding(
                ck.cfg(),
                RemoteMix::Uniform,
                SEED,
                TXNS,
                &ckrec.committed,
            );
            for (i, shard) in ck.shards().iter().enumerate() {
                for table in ALL_TABLES {
                    common::assert_table_bytes_match(
                        shard,
                        &reference,
                        table,
                        &format!("{label}: compacted-only shard {i}"),
                    );
                }
            }
            drop(ck);

            // Obligation (3): crash mid-batch-2 and recover from the
            // compacted prefix plus the torn second-batch records.
            service.arm_crash(CrashPoint {
                site: CrashSite::MidEffectFlush,
                event: 2,
            });
            let second = service.run_txns(&mut gen, TXNS);
            assert!(service.crashed(), "{label}: batch 2 must hit the kill");
            assert!(second.coord.crashed, "{label}: report agrees");
            common::assert_sanitized_clean(&san, &label);
            let image = handles.harvest();
            drop(service);

            let (mut recovered, rec) = ShardedHtap::recover(cfg, &image).expect("recover");
            for (i, s) in rec.per_shard.iter().enumerate() {
                assert_eq!(
                    s.replayed + s.skipped + s.duplicates,
                    s.records,
                    "{label}: shard {i} scan handed out a partial record"
                );
            }
            assert!(
                rec.committed.len() as u64 >= TXNS,
                "{label}: the checkpointed batch must recover whole"
            );
            recovered.defragment_all();
            for (i, shard) in recovered.shards().iter().enumerate() {
                assert_eq!(
                    shard.db().live_delta_rows(),
                    0,
                    "{label}: shard {i} leaked delta slots"
                );
            }
            // Batches 1 and 2 drew from one continuous generator, so the
            // untouched reference replays the concatenated stream.
            let reference = common::reference_holding(
                recovered.cfg(),
                RemoteMix::Uniform,
                SEED,
                2 * TXNS,
                &rec.committed,
            );
            for (i, shard) in recovered.shards().iter().enumerate() {
                for table in ALL_TABLES {
                    common::assert_table_bytes_match(
                        shard,
                        &reference,
                        table,
                        &format!("{label}: shard {i}"),
                    );
                }
            }
            // Liveness after the full cycle.
            let mut gen = recovered
                .global_txn_gen(SEED ^ 0x5eed)
                .with_remote_mix(RemoteMix::Uniform, warehouses);
            let post = recovered.run_txns(&mut gen, 16);
            assert_eq!(post.committed(), 16, "{label}: recovered and live");
        }
    }
}

/// A crashed service is dead: it refuses further batches, exactly like
/// the process it simulates.
#[test]
#[should_panic(expected = "service crashed")]
fn crashed_service_refuses_batches() {
    let mut service = ShardedHtap::new(ShardConfig::small(2)).expect("build shards");
    let _handles = service.enable_wal();
    service.arm_crash(CrashPoint {
        site: CrashSite::BeforePrepare,
        event: 1,
    });
    let warehouses = service.map().warehouses();
    let mut gen = service
        .global_txn_gen(SEED)
        .with_remote_mix(RemoteMix::Uniform, warehouses);
    service.run_txns(&mut gen, 16);
    assert!(service.crashed());
    service.run_txns(&mut gen, 16);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline property: kill the deployment at an *arbitrary*
    /// protocol point — any site, any event, any seed, any remote mix,
    /// 1/2/4/8 shards, either coordinator mode, with or without delta
    /// pressure — recover from the forced bytes alone, and the
    /// committed state is byte-identical to the untouched reference,
    /// with zero leaked slots and zero prepared versions.
    #[test]
    fn any_crash_point_recovers_byte_identically(
        seed in 1u64..=1000,
        txns in 40u64..=72,
        site_pick in 0u8..6,
        event in 1u64..=5,
        mode_pick in 0u8..2,
        shard_pick in 0u8..4,
        mix_pick in 0u8..3,
        pressured in 0u8..2,
    ) {
        let site = CrashSite::ALL[site_pick as usize];
        let mode = if mode_pick == 0 {
            CoordinatorMode::Serial
        } else {
            CoordinatorMode::Pipelined
        };
        let shards = [1u32, 2, 4, 8][shard_pick as usize];
        let mix = match mix_pick {
            0 => RemoteMix::LOCAL,
            1 => RemoteMix::TPCC,
            _ => RemoteMix::Uniform,
        };
        let cfg = if pressured == 1 {
            squeezed(shards, mode)
        } else {
            ShardConfig::small(shards).with_mode(mode)
        };
        let label = format!(
            "proptest {} {site:?} event {event} at {shards} shards (seed {seed}, mix {mix_pick}, pressure {pressured})",
            mode_name(mode),
        );
        crash_and_recover(cfg, mix, seed, txns, CrashPoint { site, event }, &label);
    }
}
