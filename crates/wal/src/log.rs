//! The write-ahead log object: pending-vs-durable buffering, the
//! group-commit force barrier, and the two backing stores.
//!
//! [`Wal::append`] frames a payload into a **pending** buffer — bytes a
//! crash simply loses, exactly like a page cache. [`Wal::force`] pushes
//! the whole pending buffer to the backing [`WalStore`] and syncs it;
//! only then are the records durable. A crash *during* a force is
//! modelled by [`Wal::force_torn`], which lands a prefix of the pending
//! bytes and drops the rest — [`crate::record::scan`] then recovers the
//! longest valid record prefix.
//!
//! Two stores cover the workspace's needs: [`MemStore`] shares its
//! durable image through an [`Arc`] so a test can harvest the bytes
//! after "killing" the service that owned the log, and [`FileStore`]
//! writes a real file for the CI crash-recovery smoke.

use std::fmt;
use std::fs::File;
use std::io::Write as _;
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::record;

/// Durable media behind a [`Wal`]: receives forced bytes and persists
/// them.
///
/// Methods panic on I/O failure — in this simulation an unwritable log
/// is a harness bug, never a modelled fault (crashes are injected above
/// this layer, via [`Wal::force_torn`] and by dropping pending bytes).
pub trait WalStore: Send {
    /// Appends already-framed bytes to the durable image.
    fn append(&mut self, bytes: &[u8]);
    /// Ensures every appended byte has reached durable media.
    fn sync(&mut self);
    /// Snapshot of the current durable image — a checkpoint re-scans it
    /// before rewriting.
    fn durable_image(&self) -> Vec<u8>;
    /// Replaces the whole durable image with `bytes` and syncs: the
    /// checkpoint truncation rewrote the log.
    fn reset(&mut self, bytes: &[u8]);
}

/// In-memory store whose durable image is shared through an [`Arc`], so
/// it outlives the service that owned the log — tests harvest it after
/// a simulated kill.
pub struct MemStore {
    durable: Arc<Mutex<Vec<u8>>>,
}

impl MemStore {
    /// Creates an empty store plus the harvest handle onto its durable
    /// image.
    #[must_use]
    pub fn new() -> (Self, MemLog) {
        let durable = Arc::new(Mutex::new(Vec::new()));
        let log = MemLog(Arc::clone(&durable));
        (Self { durable }, log)
    }
}

impl WalStore for MemStore {
    fn append(&mut self, bytes: &[u8]) {
        self.durable.lock().unwrap().extend_from_slice(bytes);
    }

    fn sync(&mut self) {} // reaching the shared Vec IS durability here

    fn durable_image(&self) -> Vec<u8> {
        self.durable.lock().unwrap().clone()
    }

    fn reset(&mut self, bytes: &[u8]) {
        // The harvest handles share this Vec, so they observe the
        // truncated image — exactly what a disk would hold.
        let mut durable = self.durable.lock().unwrap();
        durable.clear();
        durable.extend_from_slice(bytes);
    }
}

/// Harvest handle onto a [`MemStore`]'s durable image: the bytes that
/// survive a crash of the log's owner.
#[derive(Clone)]
pub struct MemLog(Arc<Mutex<Vec<u8>>>);

impl MemLog {
    /// Snapshot of the durable bytes.
    #[must_use]
    pub fn bytes(&self) -> Vec<u8> {
        self.0.lock().unwrap().clone()
    }

    /// Durable byte count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.lock().unwrap().len()
    }

    /// Whether nothing has been forced yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for MemLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MemLog({} durable bytes)", self.len())
    }
}

impl fmt::Debug for MemStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MemStore({} durable bytes)",
            self.durable.lock().unwrap().len()
        )
    }
}

/// File-backed store for the CI crash-recovery smoke: forced bytes are
/// appended to a real file and `sync_data`'d.
#[derive(Debug)]
pub struct FileStore {
    file: File,
}

impl FileStore {
    /// Creates (truncating) the log file at `path`, readable so a
    /// checkpoint can re-scan the durable image in place.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self {
            file: std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(path)?,
        })
    }
}

impl WalStore for FileStore {
    fn append(&mut self, bytes: &[u8]) {
        self.file.write_all(bytes).expect("WAL file write failed");
    }

    fn sync(&mut self) {
        self.file.sync_data().expect("WAL file sync failed");
    }

    fn durable_image(&self) -> Vec<u8> {
        use std::io::{Read as _, Seek as _, SeekFrom};
        let mut file = &self.file;
        file.seek(SeekFrom::Start(0)).expect("WAL file seek failed");
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).expect("WAL file read failed");
        bytes
    }

    fn reset(&mut self, bytes: &[u8]) {
        use std::io::{Seek as _, SeekFrom};
        self.file.set_len(0).expect("WAL file truncate failed");
        self.file
            .seek(SeekFrom::Start(0))
            .expect("WAL file seek failed");
        self.file.write_all(bytes).expect("WAL file write failed");
        self.file.sync_data().expect("WAL file sync failed");
    }
}

/// Counters a [`Wal`] keeps about its own traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended (whether or not yet forced).
    pub appends: u64,
    /// Force barriers that actually synced bytes (empty forces are
    /// free no-ops and are not counted — that is the whole point of
    /// group commit).
    pub forces: u64,
    /// Framed bytes appended (header + payload).
    pub bytes: u64,
}

/// What one checkpoint truncation ([`Wal::truncate_before`]) did to the
/// durable image.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalTrim {
    /// Records the edit kept (possibly rewritten in place).
    pub records_kept: u64,
    /// Records the edit dropped.
    pub records_dropped: u64,
    /// Durable image size before the truncation, in bytes.
    pub bytes_before: u64,
    /// Durable image size after, in bytes.
    pub bytes_after: u64,
}

impl WalTrim {
    /// Bytes the truncation reclaimed.
    #[must_use]
    pub fn bytes_reclaimed(&self) -> u64 {
        self.bytes_before.saturating_sub(self.bytes_after)
    }
}

/// A write-ahead log: append into a volatile pending buffer, force at a
/// group-commit barrier.
pub struct Wal {
    store: Box<dyn WalStore>,
    pending: Vec<u8>,
    stats: WalStats,
}

impl Wal {
    /// A log over any store.
    #[must_use]
    pub fn with_store(store: Box<dyn WalStore>) -> Self {
        Self {
            store,
            pending: Vec::new(),
            stats: WalStats::default(),
        }
    }

    /// An in-memory log plus the harvest handle onto its durable image.
    #[must_use]
    pub fn in_memory() -> (Self, MemLog) {
        let (store, log) = MemStore::new();
        (Self::with_store(Box::new(store)), log)
    }

    /// A file-backed log at `path` (truncates any existing file).
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn to_file(path: &Path) -> std::io::Result<Self> {
        Ok(Self::with_store(Box::new(FileStore::create(path)?)))
    }

    /// Frames `payload` and appends it to the pending buffer. The
    /// record is **not** durable until the next [`force`](Self::force).
    pub fn append(&mut self, payload: &[u8]) {
        let framed = record::frame(payload);
        self.stats.appends += 1;
        self.stats.bytes += framed.len() as u64;
        self.pending.extend_from_slice(&framed);
    }

    /// Bytes appended but not yet forced.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Whether a force barrier has work to do.
    #[must_use]
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Group-commit barrier: pushes every pending byte to the store and
    /// syncs. Returns `true` if a sync actually happened (the buffer
    /// was non-empty); an empty force is a free no-op.
    pub fn force(&mut self) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        self.store.append(&self.pending);
        self.store.sync();
        self.pending.clear();
        self.stats.forces += 1;
        true
    }

    /// Drops every pending (never-forced) byte — a transaction attempt
    /// rolled back before any force barrier, so its records must not
    /// survive into the next group commit. The appends stay counted in
    /// [`WalStats`] (the work happened); only durability is withdrawn.
    pub fn discard_pending(&mut self) {
        self.pending.clear();
    }

    /// A crash **during** the force: only the first `keep` pending
    /// bytes land on the store (syncing them); the rest of the buffer
    /// is lost. `keep` past the buffer length lands everything.
    pub fn force_torn(&mut self, keep: usize) {
        let keep = keep.min(self.pending.len());
        if keep > 0 {
            self.store.append(&self.pending[..keep]);
            self.store.sync();
            self.stats.forces += 1;
        }
        self.pending.clear();
    }

    /// Traffic counters.
    #[must_use]
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// A snapshot of the backing store's durable bytes — what a crash at
    /// this instant would leave behind. Checkpoint planning scans this
    /// image to decide which records [`Wal::truncate_before`] keeps.
    #[must_use]
    pub fn durable_image(&self) -> Vec<u8> {
        self.store.durable_image()
    }

    /// Checkpoint truncation: re-scans the durable image and hands each
    /// record payload, in log order, to `edit` — `Some(payload)` keeps
    /// the record (rewritten in place when the payload differs),
    /// `None` drops it — then atomically replaces the image with the
    /// survivors, re-framed and synced. The log stays opaque to its own
    /// payloads: the *caller* decides what "below the watermark" means
    /// for its record format (the shard layer drops decision entries
    /// below the GC cut and compacts covered effect records).
    ///
    /// Traffic counters ([`WalStats`]) are untouched: they ledger the
    /// append traffic that happened, not the image size.
    ///
    /// # Panics
    ///
    /// Panics if bytes are pending (force or discard them first — a
    /// checkpoint runs on a quiesced log) or the durable image has a
    /// torn tail (checkpoints never run mid-crash).
    pub fn truncate_before(&mut self, mut edit: impl FnMut(&[u8]) -> Option<Vec<u8>>) -> WalTrim {
        assert!(
            !self.has_pending(),
            "checkpoint with pending bytes — force or discard first"
        );
        let image = self.store.durable_image();
        let scanned = record::scan(&image);
        assert!(
            !scanned.torn,
            "checkpoint over a torn log — recover it first"
        );
        let mut trim = WalTrim {
            bytes_before: image.len() as u64,
            ..WalTrim::default()
        };
        let mut out = Vec::with_capacity(image.len());
        for payload in &scanned.records {
            match edit(payload) {
                Some(kept) => {
                    out.extend_from_slice(&record::frame(&kept));
                    trim.records_kept += 1;
                }
                None => trim.records_dropped += 1,
            }
        }
        trim.bytes_after = out.len() as u64;
        self.store.reset(&out);
        trim
    }
}

impl fmt::Debug for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Wal({} pending bytes, {:?})",
            self.pending.len(),
            self.stats
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appends_stay_pending_until_forced() {
        let (mut wal, durable) = Wal::in_memory();
        wal.append(b"one");
        wal.append(b"two");
        assert!(durable.is_empty());
        assert!(wal.has_pending());
        assert!(wal.force());
        assert!(!wal.has_pending());
        let scan = record::scan(&durable.bytes());
        assert_eq!(scan.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(!scan.torn);
    }

    #[test]
    fn empty_force_is_free() {
        let (mut wal, durable) = Wal::in_memory();
        assert!(!wal.force());
        assert_eq!(wal.stats().forces, 0);
        assert!(durable.is_empty());
    }

    #[test]
    fn crash_without_force_loses_pending_bytes() {
        let (mut wal, durable) = Wal::in_memory();
        wal.append(b"durable");
        wal.force();
        wal.append(b"lost");
        drop(wal); // the kill: pending buffer evaporates
        let scan = record::scan(&durable.bytes());
        assert_eq!(scan.records, vec![b"durable".to_vec()]);
        assert!(!scan.torn);
    }

    #[test]
    fn torn_force_recovers_longest_valid_prefix() {
        let (mut wal, durable) = Wal::in_memory();
        wal.append(b"first");
        wal.append(b"second");
        let first = record::frame(b"first").len();
        wal.force_torn(first + 4); // tear lands 4 bytes into record two
        let scan = record::scan(&durable.bytes());
        assert_eq!(scan.records, vec![b"first".to_vec()]);
        assert!(scan.torn);
        assert_eq!(scan.truncated_bytes, 4);
    }

    #[test]
    fn stats_count_appends_forces_bytes() {
        let (mut wal, _durable) = Wal::in_memory();
        wal.append(b"abc");
        wal.append(b"defgh");
        wal.force();
        wal.append(b"i");
        wal.force();
        wal.force(); // empty: uncounted
        let stats = wal.stats();
        assert_eq!(stats.appends, 3);
        assert_eq!(stats.forces, 2);
        assert_eq!(stats.bytes, (3 * record::HEADER_LEN + 3 + 5 + 1) as u64);
    }

    #[test]
    fn truncate_before_drops_rewrites_and_keeps() {
        let (mut wal, durable) = Wal::in_memory();
        wal.append(b"drop-me");
        wal.append(b"rewrite-me");
        wal.append(b"keep-me");
        wal.force();
        let before = durable.bytes().len() as u64;
        let trim = wal.truncate_before(|payload| match payload {
            b"drop-me" => None,
            b"rewrite-me" => Some(b"rewritten".to_vec()),
            other => Some(other.to_vec()),
        });
        assert_eq!(trim.records_kept, 2);
        assert_eq!(trim.records_dropped, 1);
        assert_eq!(trim.bytes_before, before);
        assert!(trim.bytes_reclaimed() > 0);
        // The harvest handle sees the truncated image, and the log is
        // still appendable afterwards.
        let scan = record::scan(&durable.bytes());
        assert_eq!(
            scan.records,
            vec![b"rewritten".to_vec(), b"keep-me".to_vec()]
        );
        assert!(!scan.torn);
        wal.append(b"post-checkpoint");
        wal.force();
        let scan = record::scan(&durable.bytes());
        assert_eq!(
            scan.records,
            vec![
                b"rewritten".to_vec(),
                b"keep-me".to_vec(),
                b"post-checkpoint".to_vec()
            ]
        );
    }

    #[test]
    #[should_panic(expected = "pending bytes")]
    fn truncate_before_refuses_pending_bytes() {
        let (mut wal, _durable) = Wal::in_memory();
        wal.append(b"unforced");
        let _ = wal.truncate_before(|p| Some(p.to_vec()));
    }

    #[test]
    fn truncate_before_round_trips_on_file_store() {
        let path = std::env::temp_dir().join("pushtap-wal-truncate-test.wal");
        let mut wal = Wal::to_file(&path).expect("create log file");
        wal.append(b"stale");
        wal.append(b"fresh");
        wal.force();
        let trim = wal.truncate_before(|p| (p == b"fresh").then(|| p.to_vec()));
        assert_eq!((trim.records_kept, trim.records_dropped), (1, 1));
        // Appends after the reset land past the rewritten image on disk.
        wal.append(b"later");
        wal.force();
        drop(wal);
        let scan = record::scan(&std::fs::read(&path).expect("read log"));
        assert_eq!(scan.records, vec![b"fresh".to_vec(), b"later".to_vec()]);
        assert!(!scan.torn);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_store_round_trips() {
        let path = std::env::temp_dir().join("pushtap-wal-log-test.wal");
        let mut wal = Wal::to_file(&path).expect("create log file");
        wal.append(b"on-disk record");
        wal.force();
        drop(wal);
        let scan = record::scan(&std::fs::read(&path).expect("read log"));
        assert_eq!(scan.records, vec![b"on-disk record".to_vec()]);
        let _ = std::fs::remove_file(&path);
    }
}
