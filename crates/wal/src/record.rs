//! Record framing and the torn-tail recovery scan.
//!
//! Every record on a log is framed as
//!
//! ```text
//! [ payload length : u32 LE ][ FNV-1a checksum : u32 LE ][ payload ]
//! ```
//!
//! and a log is nothing but a concatenation of frames. The frame is
//! self-delimiting, so recovery needs no index: [`scan`] walks the
//! bytes front to back and stops at the first frame that is incomplete
//! (a crash tore the tail mid-write) or whose checksum does not match
//! (the tear landed inside the payload, or the media corrupted it).
//! Everything before that point is the **longest valid prefix** — the
//! only bytes a force barrier ever promised were durable.

/// Bytes of framing overhead per record: a `u32` payload length
/// followed by a `u32` checksum, both little-endian.
pub const HEADER_LEN: usize = 8;

/// 32-bit FNV-1a over the payload bytes.
///
/// Chosen because it is strong enough to reject torn frames (any
/// truncation or bit flip inside the payload changes the digest with
/// overwhelming probability) while staying dependency-free.
#[must_use]
pub fn checksum(payload: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in payload {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Frames a payload as one on-log record: header plus payload bytes.
#[must_use]
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("WAL payload exceeds u32::MAX bytes");
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// What [`scan`] recovered from a log image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanOutcome {
    /// The payloads of every record in the longest valid prefix, in
    /// append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of the valid prefix (where an append after recovery would
    /// resume).
    pub valid_len: usize,
    /// Bytes past the valid prefix that were discarded (torn tail or
    /// corruption).
    pub truncated_bytes: u64,
    /// Whether anything was discarded (`truncated_bytes > 0`).
    pub torn: bool,
}

/// Walks a log image front to back and recovers the longest valid
/// prefix of records.
///
/// Stops at the first incomplete header, incomplete payload, or
/// checksum mismatch; all bytes from that point on are reported as
/// truncated. A clean log scans with `torn == false` and
/// `valid_len == bytes.len()`.
#[must_use]
pub fn scan(bytes: &[u8]) -> ScanOutcome {
    let mut records = Vec::new();
    let mut at = 0usize;
    // Ends on the first incomplete header (or the clean end, at == len).
    while let Some(header) = bytes.get(at..at + HEADER_LEN) {
        let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
        let sum = u32::from_le_bytes(header[4..].try_into().unwrap());
        let Some(payload) = bytes.get(at + HEADER_LEN..at + HEADER_LEN + len) else {
            break; // torn mid-payload
        };
        if checksum(payload) != sum {
            break; // tear inside the payload, or media corruption
        }
        records.push(payload.to_vec());
        at += HEADER_LEN + len;
    }
    ScanOutcome {
        records,
        valid_len: at,
        truncated_bytes: (bytes.len() - at) as u64,
        torn: at != bytes.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_of(payloads: &[&[u8]]) -> Vec<u8> {
        payloads.iter().flat_map(|p| frame(p)).collect()
    }

    #[test]
    fn round_trips_multiple_records() {
        let log = log_of(&[b"alpha", b"", b"a longer third record"]);
        let scan = scan(&log);
        assert_eq!(
            scan.records,
            vec![
                b"alpha".to_vec(),
                Vec::new(),
                b"a longer third record".to_vec()
            ]
        );
        assert_eq!(scan.valid_len, log.len());
        assert_eq!(scan.truncated_bytes, 0);
        assert!(!scan.torn);
    }

    #[test]
    fn empty_log_scans_clean() {
        let scan = scan(&[]);
        assert!(scan.records.is_empty());
        assert!(!scan.torn);
    }

    #[test]
    fn torn_header_truncates_to_prior_record() {
        let mut log = log_of(&[b"keep"]);
        let keep = log.len();
        log.extend_from_slice(&frame(b"lost")[..HEADER_LEN - 3]);
        let scan = scan(&log);
        assert_eq!(scan.records, vec![b"keep".to_vec()]);
        assert_eq!(scan.valid_len, keep);
        assert_eq!(scan.truncated_bytes, (HEADER_LEN - 3) as u64);
        assert!(scan.torn);
    }

    #[test]
    fn torn_payload_truncates_to_prior_record() {
        let mut log = log_of(&[b"keep", b"keep2"]);
        let keep = log.len();
        let tail = frame(b"torn-away");
        log.extend_from_slice(&tail[..tail.len() - 1]);
        let scan = scan(&log);
        assert_eq!(scan.records, vec![b"keep".to_vec(), b"keep2".to_vec()]);
        assert_eq!(scan.valid_len, keep);
        assert!(scan.torn);
    }

    #[test]
    fn checksum_mismatch_rejects_record_and_tail() {
        // Flip one payload bit of the middle record: it and everything
        // after it fall outside the valid prefix, even though the third
        // frame is intact — recovery only trusts a contiguous prefix.
        let mut log = log_of(&[b"first", b"second", b"third"]);
        let first = frame(b"first").len();
        log[first + HEADER_LEN] ^= 0x01;
        let scan = scan(&log);
        assert_eq!(scan.records, vec![b"first".to_vec()]);
        assert_eq!(scan.valid_len, first);
        assert_eq!(scan.truncated_bytes, (log.len() - first) as u64);
    }

    #[test]
    fn every_tear_point_yields_whole_record_prefix() {
        // A mid-record kill at ANY byte offset never yields a partial
        // record: the scan returns some whole-record prefix.
        let log = log_of(&[b"r1", b"record-two", b"r3!"]);
        for cut in 0..=log.len() {
            let scan = scan(&log[..cut]);
            for (i, rec) in scan.records.iter().enumerate() {
                let want: &[u8] = [b"r1".as_slice(), b"record-two", b"r3!"][i];
                assert_eq!(rec, want, "cut at {cut}");
            }
        }
    }

    #[test]
    fn checksum_is_order_sensitive() {
        assert_ne!(checksum(b"ab"), checksum(b"ba"));
        assert_ne!(checksum(b""), checksum(b"\0"));
    }
}
