//! # pushtap-wal — write-ahead-log substrate for PUSHtap
//!
//! Byte-level machinery for the per-shard effect logs and the
//! coordinator decision log: checksummed record framing with a
//! torn-tail recovery scan ([`record`]), and a [`Wal`] that models the
//! two durability states a crash cares about — bytes *appended* (still
//! in the volatile pending buffer, lost on crash) versus bytes *forced*
//! (pushed to the backing store by a group-commit barrier, guaranteed
//! to survive).
//!
//! The crate is deliberately **zero-dependency** and knows nothing
//! about transactions: payloads are opaque byte strings. The effect
//! codec that gives records meaning lives in `pushtap-oltp`; log
//! ownership, group commit, and crash points live in `pushtap-shard`.
//!
//! # Examples
//!
//! Append two records, force once, and recover them from the durable
//! image — including a torn tail from a crash mid-force:
//!
//! ```
//! use pushtap_wal::{record, Wal};
//!
//! let (mut wal, durable) = Wal::in_memory();
//! wal.append(b"first");
//! wal.append(b"second");
//! assert!(durable.is_empty()); // appended, not yet forced
//! wal.force();
//!
//! wal.append(b"third");
//! wal.force_torn(3); // crash mid-force: only 3 bytes of the frame land
//!
//! let scan = record::scan(&durable.bytes());
//! assert_eq!(scan.records, vec![b"first".to_vec(), b"second".to_vec()]);
//! assert!(scan.torn);
//! assert_eq!(scan.truncated_bytes, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod log;
pub mod record;

pub use log::{FileStore, MemLog, MemStore, Wal, WalStats, WalStore, WalTrim};
pub use record::{checksum, frame, scan, ScanOutcome, HEADER_LEN};
