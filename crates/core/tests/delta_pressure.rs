//! Atomic-retry acceptance tests: under delta arenas deliberately
//! undersized so transactions keep hitting `DeltaFull`, the committed
//! state of the engine must be a *pure function of the committed
//! transaction stream* — byte-identical to a run with ample arenas that
//! never aborted, with gapless timestamps and untouched insert rings.
//!
//! This is the invariant the transaction-level undo log
//! (`pushtap_mvcc::UndoLog`) exists to provide: before it, a retried
//! transaction re-applied its earlier inserts at fresh stripe slots and
//! the final state depended on *when* the arenas filled up.

use proptest::prelude::*;
use pushtap_chbench::{Table, Txn, ALL_TABLES};
use pushtap_core::{Pushtap, PushtapConfig};
use pushtap_format::RowSlot;
use pushtap_olap::{ref_q1, ref_q6, ref_q9};

const SEED: u64 = 77;
const TXNS: u64 = 120;

/// The paper-default configuration: arenas sized to the stream, no
/// pressure.
fn ample() -> PushtapConfig {
    PushtapConfig::small()
}

/// Arenas squeezed proportionally to each table's size. The floor of 8
/// delta rows gives the hot single-row tables (WAREHOUSE, DISTRICT) a
/// *one-slot* arena, so the second transaction of any class since the
/// last defragmentation hits `DeltaFull` — every class aborts
/// constantly. `delta_frac` keeps the burst tables big enough that one
/// transaction always fits after defragmentation (a NewOrder writes up
/// to 15 order lines into a single rotation arena, and in the worst
/// case all 15 stock updates land in one arena too).
fn pressured(delta_frac: f64, min_delta_rows: u64) -> PushtapConfig {
    let mut cfg = PushtapConfig::small();
    cfg.db.delta_frac = delta_frac;
    cfg.db.min_delta_rows = min_delta_rows;
    cfg
}

/// Runs `txns` transactions from the shared stream, returning per-class
/// abort counts (payment, neworder).
fn run_stream(system: &mut Pushtap, seed: u64, txns: u64) -> (u64, u64) {
    let mut gen = system.txn_gen(seed);
    let (mut payment_aborts, mut neworder_aborts) = (0, 0);
    for _ in 0..txns {
        let txn = gen.next_txn();
        let before = system.db().aborts();
        system.execute_txn(&txn);
        let aborted = system.db().aborts() - before;
        match txn {
            Txn::Payment(_) => payment_aborts += aborted,
            Txn::NewOrder(_) => neworder_aborts += aborted,
        }
    }
    (payment_aborts, neworder_aborts)
}

/// Byte-compare the full functional state of two engines: every row of
/// every table's data region (both defragmented first, so all committed
/// versions are folded in) plus the stripe-ring cursors.
fn assert_states_identical(a: &mut Pushtap, b: &mut Pushtap, label: &str) {
    a.defragment_all();
    b.defragment_all();
    assert_eq!(a.db().live_delta_rows(), 0, "{label}: leaked slots (a)");
    assert_eq!(b.db().live_delta_rows(), 0, "{label}: leaked slots (b)");
    for table in ALL_TABLES {
        let ta = a.db().table(table);
        let tb = b.db().table(table);
        assert_eq!(ta.n_rows(), tb.n_rows(), "{label}: {table:?} size");
        for row in 0..ta.n_rows() {
            assert_eq!(
                ta.store().read_row(RowSlot::Data { row }),
                tb.store().read_row(RowSlot::Data { row }),
                "{label}: {table:?} row {row} diverged"
            );
        }
        for w in 0..a.db().warehouses_global() {
            assert_eq!(
                a.db().insert_cursor(table, w),
                b.db().insert_cursor(table, w),
                "{label}: {table:?} stripe cursor of warehouse {w}"
            );
        }
    }
}

/// The headline property: a run under heavy delta pressure (every
/// transaction class aborts at least once) commits exactly the same
/// state as a pressure-free run of the same stream.
#[test]
fn pressure_run_is_byte_identical_to_ample_run() {
    let mut squeezed = Pushtap::new(pressured(0.012, 8)).expect("build");
    let mut roomy = Pushtap::new(ample()).expect("build");

    let (pay_aborts, no_aborts) = run_stream(&mut squeezed, SEED, TXNS);
    let (ample_pay, ample_no) = run_stream(&mut roomy, SEED, TXNS);

    assert!(pay_aborts > 0, "Payment class must hit DeltaFull");
    assert!(no_aborts > 0, "NewOrder class must hit DeltaFull");
    assert_eq!(ample_pay + ample_no, 0, "ample arenas must not abort");

    // Gapless timestamps: aborted attempts returned their timestamps.
    assert_eq!(squeezed.db().committed(), TXNS);
    assert_eq!(squeezed.db().last_ts(), roomy.db().last_ts());

    // Identical analytical answers at the shared final timestamp…
    let ts = roomy.db().last_ts();
    assert_eq!(ref_q1(squeezed.db(), ts), ref_q1(roomy.db(), ts));
    assert_eq!(ref_q6(squeezed.db(), ts), ref_q6(roomy.db(), ts));
    assert_eq!(ref_q9(squeezed.db(), ts), ref_q9(roomy.db(), ts));

    // …and identical bytes everywhere.
    assert_states_identical(&mut squeezed, &mut roomy, "pressure-vs-ample");
}

/// Abort counters surface through the batch report.
#[test]
fn oltp_report_carries_retry_counters() {
    let mut squeezed = Pushtap::new(pressured(0.012, 8)).expect("build");
    let mut gen = squeezed.txn_gen(SEED);
    let report = squeezed.run_txns(&mut gen, 60);
    assert_eq!(report.committed, 60);
    assert!(report.aborts > 0, "undersized arenas must abort");
    assert!(report.retried_txns > 0);
    assert!(report.retried_txns <= report.aborts);
    assert_eq!(report.aborts, squeezed.db().aborts());

    let mut roomy = Pushtap::new(ample()).expect("build");
    let mut gen = roomy.txn_gen(SEED);
    let report = roomy.run_txns(&mut gen, 60);
    assert_eq!((report.aborts, report.retried_txns), (0, 0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Pressure-invariance over arbitrary arena sizes: however the
    /// arenas are squeezed (from "one slot for the hot tables, barely
    /// one transaction for the burst tables" upward), the committed
    /// state equals the ample-arena run of the same stream.
    #[test]
    fn state_is_invariant_over_arena_size(
        frac in 0.012f64..0.03,
        min_delta in 1u64..=4,
        txns in 30u64..=70,
        seed in 1u64..=1000,
    ) {
        let mut squeezed = Pushtap::new(pressured(frac, min_delta * 8)).expect("build");
        let mut roomy = Pushtap::new(ample()).expect("build");
        run_stream(&mut squeezed, seed, txns);
        run_stream(&mut roomy, seed, txns);

        prop_assert_eq!(squeezed.db().committed(), txns);
        prop_assert_eq!(squeezed.db().last_ts(), roomy.db().last_ts());
        let ts = roomy.db().last_ts();
        prop_assert_eq!(ref_q6(squeezed.db(), ts), ref_q6(roomy.db(), ts));
        // Stripe rings of every insert-bearing table match exactly.
        for table in [Table::History, Table::Order, Table::NewOrder, Table::OrderLine] {
            for w in 0..roomy.db().warehouses_global() {
                prop_assert_eq!(
                    squeezed.db().insert_cursor(table, w),
                    roomy.db().insert_cursor(table, w),
                    "{:?} cursor of warehouse {}", table, w
                );
            }
        }
        assert_states_identical(&mut squeezed, &mut roomy, "proptest");
    }
}
