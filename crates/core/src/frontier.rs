//! The OLTP/OLAP throughput frontier (Fig. 10).
//!
//! For a mixed workload at transaction rate `x` and query rate `y`, two
//! constraints bound `y`:
//!
//! 1. **Consistency**: each query absorbs the consistency work of the
//!    transactions since the previous query (`x / y` of them) — rebuild
//!    for MI, snapshot + amortised defragmentation for PUSHtap. With
//!    per-transaction consistency cost `σ`,
//!    `1 = y·τ_q + x·σ  ⇒  y = (1 − σ·x) / τ_q`.
//! 2. **Memory bandwidth**: OLTP and the CPU-visible part of OLAP share
//!    the bus: `x·β_t + y·β_q ≤ B`.
//!
//! MI's `σ` (shipping whole new-version rows over the bus) is far larger
//! than PUSHtap's (bitmap updates + local copies), which is why PUSHtap's
//! frontier is flat-then-cliff while MI's declines steeply.

use pushtap_pim::Ps;

use crate::metrics::{qphh, tpmc};

/// Measured inputs of the frontier model.
#[derive(Debug, Clone, Copy)]
pub struct FrontierParams {
    /// Per-transaction service time on one core.
    pub txn_time: Ps,
    /// Per-query execution time (without consistency work).
    pub query_time: Ps,
    /// Consistency cost per transaction (σ): rebuild share for MI,
    /// snapshot + defragmentation share for PUSHtap.
    pub per_txn_consistency: Ps,
    /// Cores driving transactions.
    pub cores: u32,
    /// Memory-bus budget, bytes/second.
    pub bus_bytes_per_sec: f64,
    /// Bus bytes per transaction.
    pub txn_bus_bytes: f64,
    /// Bus bytes per query (CPU-visible traffic only).
    pub query_bus_bytes: f64,
}

/// One frontier point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierPoint {
    /// OLTP throughput, tpmC.
    pub tpmc: f64,
    /// Maximum sustainable OLAP throughput at that OLTP rate, QphH.
    pub qphh: f64,
}

impl FrontierParams {
    /// Peak transaction rate (transactions/second) from CPU and bus.
    pub fn peak_txn_rate(&self) -> f64 {
        let cpu = self.cores as f64 / self.txn_time.as_secs();
        let bus = self.bus_bytes_per_sec / self.txn_bus_bytes.max(1.0);
        // Consistency work competes for the same cores as transactions:
        // at y→0 consistency amortises away, so the cap is cpu/bus only.
        cpu.min(bus)
    }

    /// Maximum query rate at transaction rate `x` (per second).
    pub fn max_query_rate(&self, x: f64) -> f64 {
        let tq = self.query_time.as_secs();
        let sigma = self.per_txn_consistency.as_secs();
        let consistency_bound = (1.0 - sigma * x) / tq;
        let bus_bound =
            (self.bus_bytes_per_sec - x * self.txn_bus_bytes) / self.query_bus_bytes.max(1.0);
        consistency_bound.min(bus_bound).max(0.0)
    }

    /// Sweeps the frontier with `n` points from idle OLTP to peak OLTP.
    pub fn sweep(&self, n: usize) -> Vec<FrontierPoint> {
        assert!(n >= 2, "need at least two frontier points");
        let x_max = self.peak_txn_rate();
        (0..n)
            .map(|i| {
                let x = x_max * i as f64 / (n - 1) as f64;
                let y = self.max_query_rate(x);
                FrontierPoint {
                    tpmc: tpmc((x * 60.0) as u64, Ps::from_ms(60_000.0), 1),
                    qphh: qphh((y * 3600.0) as u64, Ps::from_ms(3_600_000.0)),
                }
            })
            .collect()
    }

    /// Peak OLAP throughput (QphH) with OLTP idle.
    pub fn peak_qphh(&self) -> f64 {
        self.max_query_rate(0.0) * 3600.0
    }

    /// Peak OLTP throughput (tpmC) on the frontier.
    pub fn peak_tpmc(&self) -> f64 {
        self.peak_txn_rate() * 60.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pushtap_like() -> FrontierParams {
        FrontierParams {
            txn_time: Ps::from_us(8.0),
            query_time: Ps::from_ms(10.0),
            per_txn_consistency: Ps::new(40_000), // 40 ns/txn
            cores: 16,
            bus_bytes_per_sec: 100e9,
            txn_bus_bytes: 1500.0,
            query_bus_bytes: 2e6,
        }
    }

    fn mi_like() -> FrontierParams {
        FrontierParams {
            per_txn_consistency: Ps::new(2_000_000), // 2 µs/txn rebuild
            txn_bus_bytes: 1200.0,
            ..pushtap_like()
        }
    }

    /// The qualitative Fig. 10 shape: PUSHtap's frontier dominates MI's —
    /// higher peak OLAP retention and a larger usable OLTP range.
    #[test]
    fn pushtap_dominates_mi() {
        let p = pushtap_like();
        let m = mi_like();
        // At MI's peak OLTP rate, PUSHtap still sustains far more OLAP.
        let mi_usable_x = 1.0 / m.per_txn_consistency.as_secs(); // x where MI's OLAP hits 0
        assert!(p.max_query_rate(mi_usable_x * 0.9) > m.max_query_rate(mi_usable_x * 0.9) * 3.0);
    }

    /// PUSHtap's frontier is flat at low OLTP rates (peak OLAP retained),
    /// then declines.
    #[test]
    fn pushtap_frontier_is_flat_then_declines() {
        let p = pushtap_like();
        let peak = p.max_query_rate(0.0);
        let mid = p.max_query_rate(p.peak_txn_rate() * 0.2);
        let high = p.max_query_rate(p.peak_txn_rate() * 0.95);
        assert!(mid > peak * 0.8, "mid {mid} vs peak {peak}");
        assert!(high < mid);
    }

    /// MI's frontier declines steeply from the start.
    #[test]
    fn mi_frontier_declines_early() {
        let m = mi_like();
        let peak = m.max_query_rate(0.0);
        let early = m.max_query_rate(m.peak_txn_rate() * 0.2);
        assert!(early < peak * 0.6, "early {early} vs peak {peak}");
    }

    #[test]
    fn sweep_is_monotone_decreasing() {
        for params in [pushtap_like(), mi_like()] {
            let pts = params.sweep(16);
            assert_eq!(pts.len(), 16);
            for w in pts.windows(2) {
                assert!(w[1].qphh <= w[0].qphh + 1e-6);
                assert!(w[1].tpmc >= w[0].tpmc);
            }
        }
    }

    #[test]
    fn peaks_are_consistent_with_sweep() {
        let p = pushtap_like();
        let pts = p.sweep(8);
        assert!((pts[0].qphh - p.peak_qphh()).abs() / p.peak_qphh() < 0.05);
        assert!((pts[7].tpmc - p.peak_tpmc()).abs() / p.peak_tpmc() < 0.05);
    }
}
