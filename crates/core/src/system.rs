//! The PUSHtap system: single-instance HTAP over the unified format.
//!
//! Ties together the OLTP executor, the OLAP scan engine, MVCC
//! snapshotting, and periodic defragmentation on one simulated memory
//! system. This is the object the experiments drive.

use std::sync::Arc;

use pushtap_chbench::{Table, Txn, TxnGen};
use pushtap_format::LayoutError;
use pushtap_mvcc::{DefragCostModel, DefragStats, DefragStrategy, DeltaFull, Ts, TsOracle};
use pushtap_olap::{Query, QueryResult, QueryTiming, ScanEngine};
use pushtap_oltp::{Breakdown, DbConfig, Partition, TaggedEffect, TpccDb, TxnResult, TxnRole};
use pushtap_pim::{ControlArch, MemSystem, Ps, SystemConfig};
use pushtap_trace::{Histogram, NullSink, Phase, Span, TraceSink};

/// Fixed overhead of one defragmentation pass: worker-thread creation and
/// PIM-unit activation (§7.4: "the fixed overhead, including thread
/// creation and PIM units activation, is amortized when the number of
/// transactions is large").
pub const DEFRAG_FIXED_OVERHEAD: Ps = Ps::new(100_000_000); // 100 µs

/// Fixed overhead of one incremental garbage-collection pass. GC walks
/// only the chains below the eligible cut and recycles slots in place —
/// no worker-thread fan-out, no PIM-unit activation barrier — so the
/// fixed cost is an order of magnitude below a defragmentation pass.
pub const GC_FIXED_OVERHEAD: Ps = Ps::new(10_000_000); // 10 µs

/// The maintenance pause one execute call charged to the engine clock,
/// split by mechanism: incremental garbage collection (no barrier)
/// versus a full defragmentation barrier. The shard coordinator charges
/// each share to its own report counter and histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintPause {
    /// Pause spent in garbage-collection passes.
    pub gc: Ps,
    /// Pause spent in defragmentation barriers.
    pub defrag: Ps,
}

impl MaintPause {
    /// No pause at all.
    pub const ZERO: MaintPause = MaintPause {
        gc: Ps::ZERO,
        defrag: Ps::ZERO,
    };

    /// The combined clock advance.
    pub fn total(&self) -> Ps {
        self.gc + self.defrag
    }

    /// Accumulates another pause (an execute call can pay several
    /// reclamation rounds across its retries).
    pub fn absorb(&mut self, other: MaintPause) {
        self.gc += other.gc;
        self.defrag += other.defrag;
    }
}

/// Aggregate garbage-collection statistics of a run. Counters sum over
/// every pass (and, in a deployment, over every shard); the two gauges
/// are sampled when the tally is drained at batch end and sum across
/// shards into the deployment-wide figure the soak benchmark proves
/// plateaus.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Garbage-collection passes that reclaimed something (empty passes
    /// cost nothing and are not counted).
    pub passes: u64,
    /// Versions reclaimed: rows whose newest committed version at or
    /// below the eligible cut was folded back into the data region.
    pub versions_reclaimed: u64,
    /// Delta slots recycled to the arena free-lists without a
    /// defragmentation barrier.
    pub slots_recycled: u64,
    /// Commit-log entries trimmed below the eligible cut.
    pub log_trimmed: u64,
    /// Chain hops walked planning the passes.
    pub chain_steps: u64,
    /// Bytes moved by the GC copy-backs.
    pub bytes_copied: u64,
    /// Live delta versions at batch end (gauge).
    pub live_versions: u64,
    /// Commit-log entries awaiting snapshot consumption at batch end
    /// (gauge).
    pub commit_log_len: u64,
}

impl GcStats {
    /// Folds one engine pass into the tally.
    pub fn absorb_pass(&mut self, pass: &pushtap_oltp::TableGcPass) {
        self.passes += 1;
        self.versions_reclaimed += pass.rows_folded;
        self.slots_recycled += pass.slots_recycled;
        self.log_trimmed += pass.log_trimmed;
        self.chain_steps += pass.chain_steps;
        self.bytes_copied += pass.bytes_copied;
    }

    /// Accumulates another report's GC stats (counters and gauges both
    /// sum — each shard contributes its own end-of-batch gauge once).
    pub fn merge(&mut self, other: &GcStats) {
        self.passes += other.passes;
        self.versions_reclaimed += other.versions_reclaimed;
        self.slots_recycled += other.slots_recycled;
        self.log_trimmed += other.log_trimmed;
        self.chain_steps += other.chain_steps;
        self.bytes_copied += other.bytes_copied;
        self.live_versions += other.live_versions;
        self.commit_log_len += other.commit_log_len;
    }
}

/// Configuration of a complete PUSHtap instance.
#[derive(Debug, Clone)]
pub struct PushtapConfig {
    /// Database build parameters (scale, format, key queries, costs).
    pub db: DbConfig,
    /// Hardware configuration (DIMM or HBM system).
    pub system: SystemConfig,
    /// Control architecture (PUSHtap scheduler vs original PIM).
    pub arch: ControlArch,
    /// Transactions between defragmentation passes (0 = only on demand).
    /// The paper settles on 10 k (§7.4).
    pub defrag_period: u64,
    /// Defragmentation strategy (§5.3); Hybrid is the paper's choice.
    pub defrag_strategy: DefragStrategy,
}

impl PushtapConfig {
    /// A small DIMM-based instance for tests and examples.
    pub fn small() -> PushtapConfig {
        PushtapConfig {
            db: DbConfig::small(),
            system: SystemConfig::dimm(),
            arch: ControlArch::Pushtap,
            defrag_period: 10_000,
            defrag_strategy: DefragStrategy::Hybrid,
        }
    }
}

/// Aggregate OLTP statistics from a run.
#[derive(Debug, Clone, Default)]
pub struct OltpReport {
    /// Transactions committed.
    pub committed: u64,
    /// Pure transaction time (excludes defragmentation pauses; includes
    /// the latency of rolled-back attempts — see
    /// [`OltpReport::wasted_retry_time`]).
    pub txn_time: Ps,
    /// Time spent in defragmentation pauses (OLTP is paused, §5.3).
    pub defrag_time: Ps,
    /// Number of defragmentation passes.
    pub defrag_passes: u64,
    /// Time spent in incremental garbage-collection pauses (far cheaper
    /// than defragmentation — no stop-the-world barrier).
    pub gc_time: Ps,
    /// Garbage-collection pass counters and end-of-batch gauges.
    pub gc: GcStats,
    /// Transaction attempts rolled back on a full delta arena (each is
    /// re-executed after an on-demand defragmentation, so this is also
    /// the number of retries).
    pub aborts: u64,
    /// Distinct transactions that needed at least one retry before
    /// committing.
    pub retried_txns: u64,
    /// Latency consumed by rolled-back attempts (statements executed
    /// before a mid-transaction [`DeltaFull`](pushtap_mvcc::DeltaFull),
    /// plus prepared work a two-phase-commit coordinator aborted).
    /// Their memory traffic hits the simulated memory system, so their
    /// time is charged to the transaction's completion latency too: this
    /// is the share of [`OltpReport::txn_time`] that retries wasted.
    pub wasted_retry_time: Ps,
    /// Two-phase commit: transactions on this engine that went through a
    /// prepare phase — as coordinator of a cross-shard transaction or as
    /// a remote participant holding a forwarded effect set. Zero on a
    /// single-instance run (one-phase commit pays no prepare round).
    pub prepared_txns: u64,
    /// Prepared scopes this engine rolled back on a coordinator's abort
    /// decision (some participant of the transaction hit
    /// [`DeltaFull`](pushtap_mvcc::DeltaFull) and the whole transaction
    /// aborted everywhere before its retry).
    pub participant_aborts: u64,
    /// Effects this engine applied on behalf of transactions *homed on
    /// other shards* (forwarded remote-owned writes and reads).
    pub forwarded_effects: u64,
    /// Two-phase-commit message rounds charged to this engine's clock
    /// (prepare deliveries, commit/abort deliveries, and — on the
    /// coordinator — the decision round-trip).
    pub commit_rounds: u64,
    /// Latency those message rounds cost this engine under *sequential*
    /// delivery — the ledger sum of every hop's latency, one entry per
    /// counted round (not included in [`OltpReport::txn_time`],
    /// mirroring how the shard layer separates coordination time from
    /// engine time). Under a pipelined coordinator, deliveries of one
    /// wave overlap in flight, so the latency that actually lands on
    /// the engine's clock is [`OltpReport::critical_path_time`] ≤ this
    /// sum.
    pub two_pc_time: Ps,
    /// Two-phase-commit message latency on this engine's *critical
    /// path*: the clock advance the rounds actually caused. A serial
    /// coordinator delivers rounds one at a time, so this equals
    /// [`OltpReport::two_pc_time`]; a pipelined coordinator dispatches a
    /// whole wave's messages concurrently, and a delivery that arrives
    /// while the engine is still busy with earlier wave work stalls it
    /// for less than a full hop (possibly not at all). Time-share
    /// metrics must divide by busy time using *this* figure — the
    /// sequential ledger can exceed the clock under overlap.
    pub critical_path_time: Ps,
    /// Write-ahead-log records this engine appended (one per logged
    /// transaction effect-set; zero with durability off).
    pub wal_appends: u64,
    /// Group-commit force barriers this engine's effect log paid — the
    /// fsync count. Group commit amortizes one force across a whole
    /// wave, so under a pipelined coordinator this stays well below the
    /// committed-transaction count.
    pub wal_forces: u64,
    /// Framed bytes appended to this engine's effect log.
    pub wal_bytes: u64,
    /// Clock time the force barriers cost this engine (`wal_forces ×`
    /// the configured force latency). Charged to
    /// [`OltpReport::critical_path_time`] as well — durability is a
    /// commit-path cost — so trace reconciliation with durability on is
    /// `two_pc_stall sum + wal_force_time == critical_path_time`.
    pub wal_force_time: Ps,
    /// Component breakdown across all transactions.
    pub breakdown: Breakdown,
    /// End-to-end commit latency per committed transaction (picoseconds):
    /// everything the submitter waits for — retried attempts, defrag
    /// pauses folded into the transaction, and (under a sharded
    /// coordinator) the two-phase-commit rounds. One sample per commit,
    /// so `commit_latency.stats().count == committed`.
    pub commit_latency: Histogram,
    /// Time transactions spent parked in a coordinator queue before
    /// execution began (picoseconds). Empty on a single-instance run;
    /// the serial shard coordinator fills it with conflict-barrier
    /// queueing delays.
    pub queue_wait: Histogram,
    /// Duration of each defragmentation pause that landed on this
    /// engine's clock (picoseconds), one sample per pass.
    pub defrag_stall: Histogram,
    /// Duration of each garbage-collection pause that landed on this
    /// engine's clock (picoseconds), one sample per execute call that
    /// paid one; the sample sum equals [`OltpReport::gc_time`].
    pub gc_stall: Histogram,
    /// Latency of each two-phase-commit message round charged to this
    /// engine (picoseconds): `two_pc_stall.stats().count == commit_rounds`
    /// and the sample sum equals [`OltpReport::critical_path_time`].
    pub two_pc_stall: Histogram,
}

impl OltpReport {
    /// Wall-clock time including maintenance pauses.
    pub fn total_time(&self) -> Ps {
        self.txn_time + self.defrag_time + self.gc_time
    }

    /// Defragmentation overhead on OLTP (Fig. 11(a)): pause time over
    /// total time.
    pub fn defrag_overhead(&self) -> f64 {
        if self.total_time() == Ps::ZERO {
            0.0
        } else {
            self.defrag_time.ps() as f64 / self.total_time().ps() as f64
        }
    }

    /// Garbage-collection overhead on OLTP: GC pause time over total
    /// time. Bounded memory should cost well under the defragmentation
    /// barrier it displaces.
    pub fn gc_overhead(&self) -> f64 {
        if self.total_time() == Ps::ZERO {
            0.0
        } else {
            self.gc_time.ps() as f64 / self.total_time().ps() as f64
        }
    }

    /// Share of this engine's wall-clock (transactions + pauses + 2PC
    /// rounds) spent on two-phase-commit messaging — the scale-out
    /// analogue of the paper's single-instance consistency costs.
    /// Computed from [`OltpReport::critical_path_time`] (the latency
    /// that actually landed on the clock) minus the group-commit force
    /// time it includes — forces are durability, not messaging — so the
    /// share stays ≤ 1.0 even when a pipelined coordinator overlaps the
    /// message rounds of concurrent transactions, and stays zero for a
    /// logged but fully warehouse-local batch; the sequential-delivery
    /// ledger [`OltpReport::two_pc_time`] could exceed the clock under
    /// overlap.
    pub fn two_pc_time_share(&self) -> f64 {
        let total = self.total_time() + self.critical_path_time;
        let rounds = self.critical_path_time.saturating_sub(self.wal_force_time);
        if total == Ps::ZERO {
            0.0
        } else {
            rounds.ps() as f64 / total.ps() as f64
        }
    }

    /// Accumulates `other` into this report (all counters and times sum;
    /// breakdowns merge). Used by the shard coordinator to fold
    /// per-flush partial reports into each shard's batch report.
    pub fn merge(&mut self, other: &OltpReport) {
        self.committed += other.committed;
        self.txn_time += other.txn_time;
        self.defrag_time += other.defrag_time;
        self.defrag_passes += other.defrag_passes;
        self.gc_time += other.gc_time;
        self.gc.merge(&other.gc);
        self.aborts += other.aborts;
        self.retried_txns += other.retried_txns;
        self.wasted_retry_time += other.wasted_retry_time;
        self.prepared_txns += other.prepared_txns;
        self.participant_aborts += other.participant_aborts;
        self.forwarded_effects += other.forwarded_effects;
        self.commit_rounds += other.commit_rounds;
        self.two_pc_time += other.two_pc_time;
        self.critical_path_time += other.critical_path_time;
        self.wal_appends += other.wal_appends;
        self.wal_forces += other.wal_forces;
        self.wal_bytes += other.wal_bytes;
        self.wal_force_time += other.wal_force_time;
        self.breakdown.merge(&other.breakdown);
        self.commit_latency.merge(&other.commit_latency);
        self.queue_wait.merge(&other.queue_wait);
        self.defrag_stall.merge(&other.defrag_stall);
        self.gc_stall.merge(&other.gc_stall);
        self.two_pc_stall.merge(&other.two_pc_stall);
    }
}

/// One analytical query's report.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// The value result.
    pub result: QueryResult,
    /// Scan/compute/control timing.
    pub timing: QueryTiming,
    /// Consistency time paid before the scan (snapshotting; plus any
    /// defragmentation folded into this query).
    pub consistency: Ps,
    /// The snapshot cut: the query observes exactly the versions with
    /// commit timestamp `<= cut`. A standalone instance cuts at its own
    /// watermark; a sharded deployment hands every shard one agreed
    /// global cut (see `ShardedHtap::run_query` in `pushtap-shard`).
    pub cut: Ts,
}

impl QueryReport {
    /// Total query latency (scan + CPU coordination + consistency); the
    /// report's `timing.end` is normalised to this duration.
    pub fn total(&self) -> Ps {
        self.timing.end
    }
}

/// A complete PUSHtap instance.
#[derive(Debug)]
pub struct Pushtap {
    cfg: PushtapConfig,
    mem: MemSystem,
    db: TpccDb,
    engine: ScanEngine,
    defrag_cost: DefragCostModel,
    now: Ps,
    txns_since_defrag: u64,
    gc_tally: GcStats,
    sink: Arc<dyn TraceSink>,
    track: u32,
}

impl Pushtap {
    /// Builds and populates an instance.
    ///
    /// # Errors
    ///
    /// Propagates layout-generation errors.
    pub fn new(cfg: PushtapConfig) -> Result<Pushtap, LayoutError> {
        Pushtap::new_partitioned(cfg, Partition::single())
    }

    /// Builds one shard of a warehouse-partitioned deployment: an
    /// otherwise complete PUSHtap instance (own memory system, scan
    /// engine, clock) whose fact tables hold `partition`'s slice of the
    /// global population. See [`pushtap_oltp::TpccDb::build_partitioned`].
    ///
    /// # Errors
    ///
    /// Propagates layout-generation errors.
    pub fn new_partitioned(
        cfg: PushtapConfig,
        partition: Partition,
    ) -> Result<Pushtap, LayoutError> {
        let mem = MemSystem::new(cfg.system);
        let db = TpccDb::build_partitioned(&cfg.db, &mem, partition)?;
        let engine = ScanEngine::new(cfg.arch, &cfg.system);
        // Defragmentation moves scattered row-granule versions, which
        // achieves a fraction of peak bandwidth on either path (short
        // transfers on the bus; DMA setup per row on the PIM side).
        let defrag_cost = DefragCostModel::new(
            16.0,
            cfg.system.cpu_peak_bw() * 0.35,
            cfg.system.pim_peak_bw() * 0.25,
        );
        Ok(Pushtap {
            cfg,
            mem,
            db,
            engine,
            defrag_cost,
            now: Ps::ZERO,
            txns_since_defrag: 0,
            gc_tally: GcStats::default(),
            sink: Arc::new(NullSink),
            track: 0,
        })
    }

    /// Routes lifecycle spans from this instance (and its embedded
    /// [`TpccDb`]) to `sink`, tagging every span with `track` — the
    /// shard layer assigns one track per shard so a merged trace keeps
    /// the shards on separate rows. The default [`NullSink`] reports
    /// `enabled() == false`, so untraced runs skip span construction
    /// entirely.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>, track: u32) {
        self.db.set_trace_sink(Arc::clone(&sink), track);
        self.sink = sink;
        self.track = track;
    }

    /// Installs a keyset-soundness shadow tracker on the embedded
    /// [`TpccDb`], tagging every mirrored access and scope with `track`
    /// (the shard index). See [`pushtap_oltp::TpccDb::set_sanitizer`];
    /// the default `NullSanitizer` keeps untracked runs at one branch
    /// per hook.
    pub fn set_sanitizer(&mut self, san: Arc<dyn pushtap_sanitizer::AccessSink>, track: u32) {
        self.db.set_sanitizer(san, track);
    }

    /// Whether the configured sink wants spans (`false` for the default
    /// [`NullSink`]) — check before building coordinator-level spans.
    pub fn trace_enabled(&self) -> bool {
        self.sink.enabled()
    }

    /// The track tag spans about this instance carry (the shard index in
    /// a sharded deployment).
    pub fn trace_track(&self) -> u32 {
        self.track
    }

    /// Forwards a caller-authored span (e.g. a shard coordinator's
    /// protocol phase) to the configured sink.
    pub fn trace_record(&self, span: Span) {
        self.sink.record(span);
    }

    /// The simulated clock.
    pub fn now(&self) -> Ps {
        self.now
    }

    /// Advances the simulated clock by `d` — externally imposed latency
    /// (e.g. a shard layer charging cross-shard coordination hops).
    pub fn advance(&mut self, d: Ps) {
        self.now += d;
    }

    /// Which slice of the global population this instance holds
    /// ([`Partition::single`] for a standalone instance).
    pub fn partition(&self) -> Partition {
        self.db.partition()
    }

    /// Swaps the instance's private timestamp counter for a shared
    /// deployment-wide [`TsOracle`] (see
    /// [`TpccDb::share_timestamps`](pushtap_oltp::TpccDb::share_timestamps)).
    /// Must be called before any transaction executes; `ShardedHtap::new`
    /// hands every shard the same oracle.
    ///
    /// # Panics
    ///
    /// Panics if transactions have already committed on this instance.
    pub fn share_timestamps(&mut self, oracle: Arc<TsOracle>) {
        self.db.share_timestamps(oracle);
    }

    /// The database.
    pub fn db(&self) -> &TpccDb {
        &self.db
    }

    /// Mutable database access (for experiment setup).
    pub fn db_mut(&mut self) -> &mut TpccDb {
        &mut self.db
    }

    /// The memory system.
    pub fn mem(&self) -> &MemSystem {
        &self.mem
    }

    /// Split borrow for callers that drive the OLAP engine directly:
    /// a shared database view plus the mutable memory system.
    pub fn db_and_mem_mut(&mut self) -> (&TpccDb, &mut MemSystem) {
        (&self.db, &mut self.mem)
    }

    /// The scan engine.
    pub fn engine(&self) -> &ScanEngine {
        &self.engine
    }

    /// The configuration.
    pub fn cfg(&self) -> &PushtapConfig {
        &self.cfg
    }

    /// The §5.3 defragmentation cost model in effect.
    pub fn defrag_cost(&self) -> &DefragCostModel {
        &self.defrag_cost
    }

    /// A transaction generator for this instance: home warehouses drawn
    /// from the warehouse range the instance *owns*, customer/item/stock
    /// indices from the global populations. On an unpartitioned instance
    /// this is the whole population; on a shard it is the shard's own
    /// load (foreign home warehouses never appear).
    pub fn txn_gen(&self, seed: u64) -> TxnGen {
        let wh = self.db.warehouse_range();
        let wh = if wh.is_empty() {
            // Degenerate shard owning no warehouse (more shards than
            // warehouses): fall back to its single clamped row.
            0..self.db.table(Table::Warehouse).n_rows()
        } else {
            wh
        };
        TxnGen::with_warehouse_range(
            seed,
            wh,
            self.db.global_rows_of(Table::Customer),
            self.db.global_rows_of(Table::Item),
            self.db.global_rows_of(Table::Stock),
        )
    }

    /// Executes one transaction; reclaims (GC first, defragmentation as
    /// the fallback) and retries on a full delta arena. Returns the
    /// result plus the maintenance pauses incurred, split by mechanism.
    ///
    /// The retry is *atomic*: [`TpccDb::execute`] rolls back all partial
    /// effects of the failed attempt (including the timestamp) before
    /// returning the error, so the post-reclamation re-execution
    /// commits exactly what a pressure-free run would have committed.
    /// Abort counts are tracked on the database
    /// ([`TpccDb::aborts`](pushtap_oltp::TpccDb::aborts)) and surfaced
    /// per batch in [`OltpReport`].
    pub fn execute_txn(&mut self, txn: &Txn) -> (TxnResult, MaintPause) {
        self.execute_with(txn, None)
    }

    /// Executes one transaction under a caller-assigned (pinned) commit
    /// timestamp (see [`TpccDb::execute_at`](pushtap_oltp::TpccDb::execute_at)),
    /// with the same defragment-and-retry loop as
    /// [`Pushtap::execute_txn`]. The retry re-runs under the *same*
    /// pinned timestamp. This is how a sharded coordinator drives each
    /// shard: timestamps are drawn from the shared [`TsOracle`] in global
    /// stream order, so concurrent shards commit exactly the timestamps a
    /// single-instance reference would.
    pub fn execute_txn_at(&mut self, txn: &Txn, ts: Ts) -> (TxnResult, MaintPause) {
        self.execute_with(txn, Some(ts))
    }

    /// Runs the periodic maintenance check: if the configured period has
    /// elapsed since the last reclamation, runs an incremental
    /// garbage-collection pass below the eligible cut — and only if that
    /// pass reclaims nothing (every surviving version is above the cut
    /// or pinned) falls back to the full defragmentation barrier.
    /// Returns the pause split (zero when the period has not elapsed).
    /// [`Pushtap::execute_txn`] runs this automatically; the shard
    /// coordinator calls it explicitly before starting a
    /// two-phase-commit transaction, because reclamation must never run
    /// while a transaction scope is open.
    ///
    /// Under a **standing snapshot pin** the defragmentation fallback is
    /// suppressed: defragmentation folds each row's *newest* version and
    /// frees the whole chain, which would steal the exact versions a
    /// pinned historical reader still needs. Proactive maintenance
    /// simply re-arms and waits for the release; only genuine delta
    /// pressure ([`Pushtap::reclaim_now`] from the `DeltaFull` retry
    /// loop) may still defragment, trading the pinned cut for forward
    /// progress.
    pub fn defrag_if_due(&mut self) -> MaintPause {
        if self.cfg.defrag_period == 0 || self.txns_since_defrag < self.cfg.defrag_period {
            return MaintPause::ZERO;
        }
        let gc = self.gc_pass();
        if gc > Ps::ZERO {
            self.txns_since_defrag = 0;
            return MaintPause {
                gc,
                defrag: Ps::ZERO,
            };
        }
        if self.db.snapshot_pinned() {
            self.txns_since_defrag = 0;
            return MaintPause::ZERO;
        }
        MaintPause {
            gc: Ps::ZERO,
            defrag: self.defragment_all().1,
        }
    }

    /// On-demand reclamation (the pressure policy): an incremental GC
    /// pass first — recycling committed versions below the eligible cut
    /// without a barrier — then, only if GC freed nothing, the full
    /// defragmentation barrier. Used both by the periodic check and by
    /// the `DeltaFull` retry loop; after one GC pass drained everything
    /// below the cut, a retry that still overflows finds the next GC
    /// pass empty and lands on the defragmentation fallback, so the
    /// loop terminates exactly as it did before GC existed.
    pub fn reclaim_now(&mut self) -> MaintPause {
        let gc = self.gc_pass();
        if gc > Ps::ZERO {
            self.txns_since_defrag = 0;
            MaintPause {
                gc,
                defrag: Ps::ZERO,
            }
        } else {
            MaintPause {
                gc: Ps::ZERO,
                defrag: self.defragment_all().1,
            }
        }
    }

    /// Runs one incremental garbage-collection pass at this engine's
    /// eligible cut ([`TpccDb::gc_eligible_before`]: the shared oracle's
    /// pin-floored watermark in a deployment, the local watermark
    /// standalone). Returns the pause charged (zero for an empty pass).
    pub fn gc_pass(&mut self) -> Ps {
        self.gc_at(self.db.gc_eligible_before())
    }

    /// Runs one incremental garbage-collection pass below `before`
    /// (inclusive): folds each row's newest committed version at or
    /// below the cut into the data region, recycles the superseded
    /// delta slots, and trims the consumed commit-log entries (see
    /// [`TpccDb::gc`]). Charges the copy-back and traverse time to the
    /// clock and emits a [`Phase::GcPass`] span. An empty pass (nothing
    /// eligible) costs nothing, is not counted, and emits no span.
    pub fn gc_at(&mut self, before: Ts) -> Ps {
        let model = self.defrag_cost;
        let strategy = self.cfg.defrag_strategy;
        let (pass, seconds) = self.db.gc(&model, strategy, before);
        if !pass.reclaimed_any() {
            return Ps::ZERO;
        }
        let traverse = self
            .db
            .meter()
            .cpu
            .cycles(pass.chain_steps * self.db.meter().costs.chain_step_cycles);
        let pause = GC_FIXED_OVERHEAD + Ps::new((seconds * 1e12).round() as u64) + traverse;
        let start = self.now;
        self.now += pause;
        self.gc_tally.absorb_pass(&pass);
        if self.sink.enabled() {
            self.sink.record(Span::new(
                self.track,
                Phase::GcPass,
                before.0,
                start.ps(),
                self.now.ps(),
            ));
        }
        pause
    }

    /// Drains the GC tally accumulated since the last drain, stamping
    /// the end-of-batch gauges (live delta versions, commit-log
    /// entries). [`Pushtap::run_txns`] drains into its report; the shard
    /// coordinator drains each shard into its per-shard load after a
    /// batch.
    pub fn take_gc_stats(&mut self) -> GcStats {
        let mut stats = std::mem::take(&mut self.gc_tally);
        stats.live_versions = self.db.live_delta_rows();
        stats.commit_log_len = self.db.commit_log_entries();
        stats
    }

    /// Applies an effect set at pinned timestamp `ts` and parks the
    /// engine's scope *prepared* (see
    /// [`TpccDb::prepare_effects`](pushtap_oltp::TpccDb::prepare_effects)),
    /// advancing this engine's clock by the prepare's latency. On
    /// [`DeltaFull`] the partial effects are already rolled back and the
    /// clock advances by the failed attempt's latency (its memory
    /// traffic hit the simulated memory system); the caller — the shard
    /// coordinator — decides where to defragment and when to retry.
    ///
    /// # Errors
    ///
    /// Returns [`DeltaFull`] when a delta arena filled mid-prepare: this
    /// engine votes "no" holding no state.
    pub fn prepare_effects_at(
        &mut self,
        effects: &[TaggedEffect],
        ts: Ts,
    ) -> Result<TxnResult, DeltaFull> {
        let wasted_before = self.db.wasted_retry_time();
        match self
            .db
            .prepare_effects(effects, ts, &mut self.mem, self.now)
        {
            Ok(r) => {
                self.now = r.end;
                Ok(r)
            }
            Err(full) => {
                self.now += self.db.wasted_retry_time().saturating_sub(wasted_before);
                Err(full)
            }
        }
    }

    /// Delivers the coordinator's commit decision for the prepared scope
    /// (see [`TpccDb::commit_prepared`](pushtap_oltp::TpccDb::commit_prepared)).
    /// The prepare already flushed the write set, so the decision is
    /// metadata-only and costs no engine time; message-round latency is
    /// charged separately by the coordinator.
    pub fn commit_prepared(&mut self, ts: Ts, role: TxnRole) {
        self.db.commit_prepared(ts, role);
        if role == TxnRole::Coordinator {
            self.txns_since_defrag += 1;
        }
        if self.sink.enabled() {
            self.sink.record(Span::instant(
                self.track,
                Phase::Commit,
                ts.0,
                self.now.ps(),
            ));
        }
    }

    /// Delivers the coordinator's abort decision for the scope prepared
    /// at `ts`: its pinned effects roll back and the prepare's latency
    /// is charged to wasted retry time (the clock already covered it —
    /// the work really happened before it was thrown away). Other
    /// scopes prepared on this engine are untouched.
    pub fn abort_prepared(&mut self, ts: Ts) {
        self.db.abort_prepared(ts);
        if self.sink.enabled() {
            self.sink
                .record(Span::instant(self.track, Phase::Abort, ts.0, self.now.ps()));
        }
    }

    fn execute_with(&mut self, txn: &Txn, pinned: Option<Ts>) -> (TxnResult, MaintPause) {
        let mut pauses = self.defrag_if_due();
        loop {
            let wasted_before = self.db.wasted_retry_time();
            let r = match pinned {
                Some(ts) => self.db.execute_at(txn, ts, &mut self.mem, self.now),
                None => self.db.execute(txn, &mut self.mem, self.now),
            };
            match r {
                Ok(r) => {
                    self.now = r.end;
                    self.txns_since_defrag += 1;
                    return (r, pauses);
                }
                // The failed attempt was rolled back, but its statements
                // consumed real time (their memory traffic is charged to
                // the simulated memory system): advance the clock by the
                // attempt's latency, then reclaim the delta regions and
                // re-execute.
                Err(_full) => {
                    self.now += self.db.wasted_retry_time().saturating_sub(wasted_before);
                    pauses.absorb(self.reclaim_now());
                }
            }
        }
    }

    /// Runs `n` transactions from `gen`, defragmenting per the configured
    /// period.
    pub fn run_txns(&mut self, gen: &mut TxnGen, n: u64) -> OltpReport {
        let mut report = OltpReport::default();
        for _ in 0..n {
            let txn = gen.next_txn();
            let before = self.now;
            let aborts_before = self.db.aborts();
            let wasted_before = self.db.wasted_retry_time();
            let (r, pauses) = self.execute_txn(&txn);
            report.committed += 1;
            if pauses.defrag > Ps::ZERO {
                report.defrag_passes += 1;
            }
            let aborted = self.db.aborts() - aborts_before;
            report.aborts += aborted;
            if aborted > 0 {
                report.retried_txns += 1;
            }
            report.defrag_time += pauses.defrag;
            report.gc_time += pauses.gc;
            report.wasted_retry_time += self.db.wasted_retry_time().saturating_sub(wasted_before);
            report.txn_time += self
                .now
                .saturating_sub(before)
                .saturating_sub(pauses.total());
            report.breakdown.merge(&r.breakdown);
            // Submitter-perceived latency: retries and folded-in
            // maintenance pauses included, one sample per commit.
            report
                .commit_latency
                .record(self.now.saturating_sub(before).ps());
            if pauses.defrag > Ps::ZERO {
                report.defrag_stall.record(pauses.defrag.ps());
            }
            if pauses.gc > Ps::ZERO {
                report.gc_stall.record(pauses.gc.ps());
            }
        }
        report.gc.merge(&self.take_gc_stats());
        report
    }

    /// Defragments every table (OLTP paused). Returns the aggregate stats
    /// and the pause duration, and advances the clock.
    pub fn defragment_all(&mut self) -> (DefragStats, Ps) {
        let upto = self.db.last_ts();
        let strategy = self.cfg.defrag_strategy;
        let model = self.defrag_cost;
        let mut total = DefragStats::default();
        let mut seconds = 0.0;
        for table in pushtap_chbench::ALL_TABLES {
            let t = self.db.table_mut(table);
            if t.chains().updated_row_count() == 0 {
                continue;
            }
            let (stats, secs) = t.defragment(&model, strategy, upto);
            seconds += secs;
            total.rows_copied += stats.rows_copied;
            total.slots_reclaimed += stats.slots_reclaimed;
            total.chain_steps += stats.chain_steps;
            total.bytes_copied += stats.bytes_copied;
            total.meta_bytes += stats.meta_bytes;
        }
        let traverse = self
            .db
            .meter()
            .cpu
            .cycles(total.chain_steps * self.db.meter().costs.chain_step_cycles);
        let pause = DEFRAG_FIXED_OVERHEAD + Ps::new((seconds * 1e12).round() as u64) + traverse;
        let start = self.now;
        self.now += pause;
        self.txns_since_defrag = 0;
        if self.sink.enabled() {
            self.sink.record(Span::new(
                self.track,
                Phase::DefragStall,
                self.db.last_ts().0,
                start.ps(),
                self.now.ps(),
            ));
        }
        (total, pause)
    }

    /// Estimates the pause one defragmentation pass would cost *right
    /// now* under `strategy`, without executing it. Mirrors
    /// [`Pushtap::defragment_all`]'s accounting; used by the Fig. 11(b)
    /// and Fig. 12(a) sweeps, which compare strategies on identical
    /// delta-region states.
    pub fn estimate_defrag_pause(&self, strategy: DefragStrategy) -> Ps {
        let model = self.defrag_cost;
        let mut seconds = 0.0;
        let mut chain_steps = 0u64;
        let mut any = false;
        for table in pushtap_chbench::ALL_TABLES {
            let t = self.db.table(table);
            let rows = t.chains().updated_row_count() as u64;
            if rows == 0 {
                continue;
            }
            any = true;
            let slots = t.live_delta_rows();
            chain_steps += slots;
            let p = rows as f64 / slots.max(1) as f64;
            let d = t.layout().devices();
            let widths: Vec<u32> = t.layout().parts().iter().map(|pt| pt.width()).collect();
            seconds += model.comm_parts(strategy, slots.max(1), p, d, &widths);
        }
        if !any {
            return DEFRAG_FIXED_OVERHEAD;
        }
        let traverse = self
            .db
            .meter()
            .cpu
            .cycles(chain_steps * self.db.meter().costs.chain_step_cycles);
        DEFRAG_FIXED_OVERHEAD + Ps::new((seconds * 1e12).round() as u64) + traverse
    }

    /// Snapshots the tables a query touches (the §5.2 consistency step)
    /// at this instance's own watermark. Returns the snapshotting
    /// duration.
    pub fn snapshot_for(&mut self, query: Query) -> Ps {
        let upto = self.db.last_ts();
        self.snapshot_for_at(query, upto)
    }

    /// Snapshots the tables `query` touches at the *given* cut: the
    /// visibility bitmaps advance to cover exactly the versions with
    /// commit timestamp `<= upto`. A sharded coordinator passes one
    /// agreed global cut to every shard so the scattered query observes a
    /// single consistent snapshot. Cuts must be non-decreasing across
    /// calls — snapshots advance monotonically (§5.2), so a cut below a
    /// previous one leaves the fresher snapshot in place. Returns the
    /// snapshotting duration.
    pub fn snapshot_for_at(&mut self, query: Query, upto: Ts) -> Ps {
        let start = self.now;
        let meter = *self.db.meter();
        for &t in Self::query_tables(query) {
            let (_, end) =
                self.db
                    .table_mut(t)
                    .timed_snapshot_update(&mut self.mem, &meter, upto, self.now);
            self.now = self.now.max(end);
        }
        self.now - start
    }

    /// The tables `query` scans (and therefore snapshots).
    fn query_tables(query: Query) -> &'static [Table] {
        match query {
            Query::Q1 | Query::Q6 => &[Table::OrderLine],
            Query::Q9 => &[Table::OrderLine, Table::Item],
        }
    }

    /// Runs one analytical query with fresh data: snapshot at this
    /// instance's own watermark, then scan.
    pub fn run_query(&mut self, query: Query) -> QueryReport {
        let cut = self.db.last_ts();
        self.run_query_at(query, cut)
    }

    /// Runs one analytical query snapshotted at the given `cut`
    /// timestamp: the scan observes exactly the committed versions with
    /// timestamp `<= cut`. This is the per-shard half of the global-cut
    /// scatter protocol (`ShardedHtap::run_query` in `pushtap-shard`
    /// agrees on one cut and passes it to every shard).
    ///
    /// Snapshots are forward-only, so if a touched table's snapshot
    /// already sits *past* `cut` (an earlier query cut fresher), the
    /// scan observes that fresher position; the returned
    /// [`QueryReport::cut`] reports the cut the query actually observed,
    /// never a stale request.
    pub fn run_query_at(&mut self, query: Query, cut: Ts) -> QueryReport {
        let consistency = self.snapshot_for_at(query, cut);
        // The effective cut: what the forward-only snapshots now hold.
        let cut = Self::query_tables(query)
            .iter()
            .fold(cut, |c, &t| c.max(self.db.table(t).snapshot().ts()));
        let start = self.now;
        let (result, mut timing) = query.execute(&self.db, &self.engine, &mut self.mem, start);
        self.now = timing.end.max(start);
        timing.end = self.now - start + consistency;
        QueryReport {
            result,
            timing,
            consistency,
            cut,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Pushtap {
        Pushtap::new(PushtapConfig::small()).unwrap()
    }

    #[test]
    fn txns_then_query_sees_fresh_data() {
        let mut p = small();
        let mut gen = p.txn_gen(11);
        let before = p.run_query(Query::Q6);
        p.run_txns(&mut gen, 80);
        let after = p.run_query(Query::Q6);
        // The snapshot makes the query see committed inserts: Q6 revenue
        // changes (ORDERLINE grew).
        assert_ne!(before.result, after.result, "query must see fresh data");
        assert!(after.consistency > Ps::ZERO);
    }

    #[test]
    fn stale_cut_reports_the_effective_snapshot_position() {
        let mut p = small();
        let mut gen = p.txn_gen(3);
        p.run_txns(&mut gen, 40);
        let fresh = p.run_query_at(Query::Q6, Ts(40));
        assert_eq!(fresh.cut, Ts(40));
        p.run_txns(&mut gen, 20);
        // Request an older cut: the forward-only snapshot stays at T40,
        // and the report must say so rather than echo the stale request.
        let stale = p.run_query_at(Query::Q6, Ts(10));
        assert_eq!(stale.cut, Ts(40), "report the observed cut");
        assert_eq!(stale.result, fresh.result);
    }

    #[test]
    fn period_triggers_gc_first_and_is_small_overhead() {
        let mut cfg = PushtapConfig::small();
        cfg.defrag_period = 50;
        let mut p = Pushtap::new(cfg).unwrap();
        let mut gen = p.txn_gen(3);
        let report = p.run_txns(&mut gen, 200);
        // The GC-first policy: a standalone engine's eligible cut is its
        // own watermark, so every periodic check finds reclaimable
        // versions and the defragmentation barrier never fires.
        assert!(report.gc.passes >= 2, "period must trigger GC");
        assert!(report.gc_time > Ps::ZERO);
        assert!(report.gc.slots_recycled > 0);
        assert!(report.gc.log_trimmed > 0);
        assert_eq!(
            report.defrag_passes, 0,
            "GC reclaimed, so defrag must not fire"
        );
        assert_eq!(
            report.gc_stall.sum(),
            u128::from(report.gc_time.ps()),
            "gc_stall samples must sum to gc_time"
        );
        // Incremental GC costs OLTP even less than the Fig. 11(a)
        // defragmentation budget.
        assert!(
            report.gc_overhead() < 0.25,
            "gc overhead {}",
            report.gc_overhead()
        );
    }

    #[test]
    fn gc_pass_reclaims_and_preserves_query_answers() {
        let mut p = small();
        let mut gen = p.txn_gen(9);
        p.run_txns(&mut gen, 60);
        let live_before = p.db().live_delta_rows();
        let log_before = p.db().commit_log_entries();
        assert!(live_before > 0);
        let before = p.run_query(Query::Q6);
        let pause = p.gc_pass();
        assert!(pause >= GC_FIXED_OVERHEAD);
        assert!(
            p.db().live_delta_rows() < live_before,
            "GC must recycle delta slots"
        );
        assert!(
            p.db().commit_log_entries() < log_before,
            "GC must trim the commit log"
        );
        let after = p.run_query(Query::Q6);
        assert_eq!(before.result, after.result, "GC must not change answers");
        let stats = p.take_gc_stats();
        assert_eq!(stats.passes, 1);
        assert!(stats.versions_reclaimed > 0);
        assert_eq!(stats.live_versions, p.db().live_delta_rows());
        assert_eq!(stats.commit_log_len, p.db().commit_log_entries());
        // The tally drains: a second take reports only fresh gauges.
        assert_eq!(p.take_gc_stats().passes, 0);
    }

    #[test]
    fn empty_gc_pass_costs_nothing() {
        let mut p = small();
        let mut gen = p.txn_gen(2);
        p.run_txns(&mut gen, 30);
        assert!(p.gc_pass() > Ps::ZERO, "first pass reclaims");
        let now = p.now();
        assert_eq!(p.gc_pass(), Ps::ZERO, "nothing left below the cut");
        assert_eq!(p.now(), now, "an empty pass must not advance the clock");
        assert_eq!(p.take_gc_stats().passes, 1, "empty passes are not counted");
    }

    #[test]
    fn defragment_all_clears_versions() {
        let mut p = small();
        let mut gen = p.txn_gen(5);
        p.run_txns(&mut gen, 60);
        assert!(p.db().live_delta_rows() > 0);
        let (stats, pause) = p.defragment_all();
        assert!(stats.rows_copied > 0);
        assert!(pause >= DEFRAG_FIXED_OVERHEAD);
        assert_eq!(p.db().live_delta_rows(), 0);
        // Queries still answer correctly after defragmentation.
        let r = p.run_query(Query::Q1);
        let QueryResult::Q1(rows) = r.result else {
            panic!("wrong result kind")
        };
        assert!(!rows.is_empty());
    }

    #[test]
    fn query_after_defrag_equals_query_before() {
        // Defragmentation must not change query answers (it only moves
        // the newest versions into the data region).
        let mut p = small();
        let mut gen = p.txn_gen(7);
        p.run_txns(&mut gen, 60);
        let before = p.run_query(Query::Q6);
        p.defragment_all();
        let after = p.run_query(Query::Q6);
        assert_eq!(before.result, after.result);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut p = small();
        let mut gen = p.txn_gen(1);
        let t0 = p.now();
        p.run_txns(&mut gen, 10);
        let t1 = p.now();
        assert!(t1 > t0);
        p.run_query(Query::Q6);
        assert!(p.now() > t1);
    }
}
